// Command distributed runs the full distributed MVTL system of §7/§H in
// one process: three storage servers on the simulated "local test bed"
// network, several MVTIL coordinators executing transactions against the
// partitioned key space, the timestamp service purging old state, and a
// deliberately crashed coordinator whose orphaned locks the servers
// clean up via the commitment object (Lemma 4).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/server"
)

func main() {
	ctx := context.Background()

	c, err := cluster.Start(cluster.Config{
		Servers: 3,
		Bed:     cluster.BedLocal,
		ServerConfig: server.Config{
			WriteLockTimeout: 500 * time.Millisecond,
			ScanInterval:     100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("started %d storage servers: %v\n", len(c.Addrs()), c.Addrs())

	// A few coordinators run cross-partition transactions.
	cl, err := c.NewClient(client.ModeTILEarly, 5000, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx, err := cl.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		// Each transaction touches keys on multiple servers.
		if err := tx.Write(ctx, fmt.Sprintf("user-%d", i), []byte("profile")); err != nil {
			log.Fatal(err)
		}
		if err := tx.Write(ctx, fmt.Sprintf("index-%d", i%3), []byte("entry")); err != nil {
			// contention on the shared index: retry once
			tx2, _ := cl.Begin(ctx)
			_ = tx2.Write(ctx, fmt.Sprintf("user-%d", i), []byte("profile"))
			_ = tx2.Write(ctx, fmt.Sprintf("index-%d", i%3), []byte("entry"))
			if err := tx2.Commit(ctx); err != nil {
				log.Fatalf("txn %d retry: %v", i, err)
			}
			continue
		}
		if err := tx.Commit(ctx); err != nil {
			log.Fatalf("txn %d: %v", i, err)
		}
	}
	fmt.Println("10 cross-partition transactions committed")

	// Read the whole user set back through the batched read path: the
	// static read set is grouped by owning server and fetched with one
	// ReadLockBatch request per server. Reading these 10 keys one
	// Read at a time would cost 10 round trips; GetMulti costs at most
	// one per server — 3 here — and issues them in parallel, so the
	// wall-clock cost is a single network round trip.
	readTx, err := cl.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	userKeys := make([]string, 10)
	for i := range userKeys {
		userKeys[i] = fmt.Sprintf("user-%d", i)
	}
	profiles, err := kv.GetMulti(ctx, readTx, userKeys)
	if err != nil {
		log.Fatal(err)
	}
	if err := readTx.Commit(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d user profiles batched: %d round trips instead of %d\n",
		len(profiles), len(c.Addrs()), len(userKeys))

	// Crash a coordinator mid-transaction: its write locks are orphaned.
	crasher, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	doomed, _ := crasher.Begin(ctx)
	if err := doomed.Write(ctx, "user-0", []byte("overwrite-attempt")); err != nil {
		log.Fatal(err)
	}
	_ = crasher.Close() // crash: no commit, no abort
	fmt.Println("coordinator crashed holding write locks on user-0 ...")

	// Another client can still write the key once the servers suspect
	// the dead coordinator and abort it through the commitment object.
	start := time.Now()
	for {
		tx, _ := cl.Begin(ctx)
		if err := tx.Write(ctx, "user-0", []byte("recovered")); err == nil {
			if err := tx.Commit(ctx); err == nil {
				break
			}
		} else {
			_ = tx.Abort(ctx)
		}
		if time.Since(start) > 10*time.Second {
			log.Fatal("recovery took too long")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("servers aborted the dead coordinator; key writable again after %v\n",
		time.Since(start).Round(time.Millisecond))

	// State size before and after the timestamp service purges.
	before, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.StartTimestampService(100*time.Millisecond, 0); err != nil {
		log.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	after, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state before purge: %d versions, %d lock records\n", before.Versions, before.LockEntries)
	fmt.Printf("state after purge:  %d versions, %d lock records\n", after.Versions, after.LockEntries)
}
