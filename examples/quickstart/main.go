// Command quickstart is the smallest possible MVTL program: open a
// store, write, read, and inspect the commit timestamp — the
// serialization point that timestamp locking found for each transaction.
package main

import (
	"context"
	"fmt"
	"log"

	mvtl "github.com/lpd-epfl/mvtl"
)

func main() {
	ctx := context.Background()
	store := mvtl.Open(mvtl.Options{Algorithm: mvtl.TILEarly})

	// Write two keys in one transaction.
	tx, err := store.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Set(ctx, "greeting", []byte("hello")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Set(ctx, "audience", []byte("world")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed txn %d at timestamp %v\n", tx.ID(), tx.CommitTimestamp())

	// Read them back in a read-only transaction.
	err = store.View(ctx, func(tx *mvtl.Txn) error {
		g, err := tx.Get(ctx, "greeting")
		if err != nil {
			return err
		}
		a, err := tx.Get(ctx, "audience")
		if err != nil {
			return err
		}
		fmt.Printf("%s, %s!\n", g, a)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Update helper retries on contention aborts.
	for i := 0; i < 3; i++ {
		err := store.Update(ctx, func(tx *mvtl.Txn) error {
			return tx.Set(ctx, "counter", []byte{byte(i)})
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	st := store.Stats()
	fmt.Printf("state: %d keys, %d versions, %d lock records (%d frozen)\n",
		st.Keys, st.Versions, st.LockEntries, st.FrozenLockEntries)
}
