// Command bank runs the classic transfer workload over MVTL: many
// goroutines move money between accounts concurrently while an auditor
// repeatedly sums all balances. Serializability guarantees the total is
// conserved at every audit, and the multiversion store means audits
// (read-only transactions) never block the transfers.
//
// The example runs the same workload under MVTIL and under the
// pessimistic (2PL-equivalent) policy and prints the abort/retry counts,
// illustrating the paper's claim that timestamp locking commits more of
// a contended read-write mix.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	mvtl "github.com/lpd-epfl/mvtl"
)

const (
	accounts       = 64
	initialBalance = 1000
	transferors    = 8
	duration       = 2 * time.Second
)

func account(i int) string { return fmt.Sprintf("acct-%03d", i) }

func encode(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func decode(b []byte) int64 {
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func run(algorithm mvtl.Algorithm) {
	ctx := context.Background()
	store := mvtl.Open(mvtl.Options{Algorithm: algorithm})

	// Fund the accounts.
	if err := store.Update(ctx, func(tx *mvtl.Txn) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Set(ctx, account(i), encode(initialBalance)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	var transfers, aborts, audits atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Transfer workers.
	for w := 0; w < transferors; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(rng.Intn(20) + 1)
				txCtx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
				tx, err := store.Begin(txCtx)
				if err != nil {
					cancel()
					continue
				}
				err = func() error {
					fb, err := tx.Get(txCtx, account(from))
					if err != nil {
						return err
					}
					tb, err := tx.Get(txCtx, account(to))
					if err != nil {
						return err
					}
					if decode(fb) < amount {
						return tx.Abort(txCtx)
					}
					if err := tx.Set(txCtx, account(from), encode(decode(fb)-amount)); err != nil {
						return err
					}
					if err := tx.Set(txCtx, account(to), encode(decode(tb)+amount)); err != nil {
						return err
					}
					return tx.Commit(txCtx)
				}()
				cancel()
				if err == nil {
					transfers.Add(1)
				} else {
					aborts.Add(1)
				}
			}
		}(int64(w) + 1)
	}

	// Auditor: verifies conservation continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var total int64
			err := store.View(ctx, func(tx *mvtl.Txn) error {
				total = 0
				for i := 0; i < accounts; i++ {
					b, err := tx.Get(ctx, account(i))
					if err != nil {
						return err
					}
					total += decode(b)
				}
				return nil
			})
			if err == nil {
				if total != accounts*initialBalance {
					log.Fatalf("INVARIANT VIOLATED under %v: total = %d, want %d",
						algorithm, total, accounts*initialBalance)
				}
				audits.Add(1)
			}
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	fmt.Printf("%-18s transfers=%-6d aborts=%-6d audits=%-6d (all audits conserved %d total)\n",
		algorithm, transfers.Load(), aborts.Load(), audits.Load(), accounts*initialBalance)
}

func main() {
	fmt.Printf("bank: %d accounts x %d, %d transferors, %v per engine\n\n",
		accounts, initialBalance, transferors, duration)
	for _, a := range []mvtl.Algorithm{mvtl.TILEarly, mvtl.Ghostbuster, mvtl.Pessimistic} {
		run(a)
	}
}
