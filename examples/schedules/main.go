// Command schedules replays the example schedules from the paper against
// several MVTL policies and prints which policies abort:
//
//   - the serial-abort schedule of §5.3 (clock skew makes timestamp
//     ordering abort even serial executions; ε-clock does not);
//   - the ghost-abort schedule of §5.5 (an aborted transaction's
//     leftover read timestamps kill an innocent one under timestamp
//     ordering; Ghostbuster's garbage collection prevents it);
//   - the Theorem 2 workload (the preferential algorithm commits at an
//     alternative timestamp where timestamp ordering aborts).
package main

import (
	"context"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/policy"
)

// procClock pins a transaction's clock at time t with process id p.
func procClock(t int64, p int32) *clock.Process {
	var m clock.Manual
	m.Set(t)
	return clock.NewProcess(&m, p)
}

func outcome(err error) string {
	if err != nil {
		return "ABORT"
	}
	return "commit"
}

// serialAbort replays §5.3: T2 (clock 20) reads X and commits, then T1
// (clock 10, slower clock) writes X. Returns T1's outcome.
func serialAbort(db *core.DB) string {
	ctx := context.Background()
	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(20, 2)
	if _, err := t2.Read(ctx, "x"); err != nil {
		return "ABORT(read)"
	}
	if err := t2.Commit(ctx); err != nil {
		return "ABORT(T2?)"
	}
	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(10, 1)
	if err := t1.Write(ctx, "x", []byte("v")); err != nil {
		return "ABORT"
	}
	return outcome(t1.Commit(ctx))
}

// ghostAbort replays §5.5 and returns T1's outcome; T1 conflicts only
// with T2, which already aborted.
func ghostAbort(db *core.DB) string {
	ctx := context.Background()
	t3, _ := db.Begin(ctx)
	t3.Clock = procClock(30, 3)
	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(20, 2)
	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(10, 1)

	_, _ = t3.Read(ctx, "x")
	_ = t3.Commit(ctx)
	_, _ = t2.Read(ctx, "y")
	_ = t2.Write(ctx, "x", []byte("t2"))
	_ = t2.Commit(ctx) // aborts: T3 read X above T2's timestamp
	if err := t1.Write(ctx, "y", []byte("t1")); err != nil {
		return "ABORT"
	}
	return outcome(t1.Commit(ctx))
}

// theorem2 replays W1(Y)C1 R2(X) R3(Y) C3 W2(Y) C2 and returns T2's
// outcome.
func theorem2(db *core.DB) string {
	ctx := context.Background()
	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(100, 1)
	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(200, 2)
	t3, _ := db.Begin(ctx)
	t3.Clock = procClock(300, 3)

	_ = t1.Write(ctx, "y", []byte("t1"))
	_ = t1.Commit(ctx)
	_, _ = t2.Read(ctx, "x")
	_, _ = t3.Read(ctx, "y")
	_ = t3.Commit(ctx)
	if err := t2.Write(ctx, "y", []byte("t2")); err != nil {
		return "ABORT"
	}
	return outcome(t2.Commit(ctx))
}

func main() {
	mk := func(name string) *core.DB {
		var src clock.Logical
		clk := clock.NewProcess(&src, 0)
		switch name {
		case "mvtl-to":
			return core.New(policy.NewTO(clk), core.Options{})
		case "mvtl-ghostbuster":
			return core.New(policy.NewGhostbuster(clk), core.Options{})
		case "mvtl-eps-clock":
			return core.New(policy.NewEpsilonClock(clk, 15), core.Options{})
		case "mvtl-pref":
			return core.New(policy.NewPref(clk, policy.OffsetAlternatives(-150)), core.Options{})
		default:
			panic("unknown policy " + name)
		}
	}

	fmt.Println("schedule                       policy              outcome of the victim txn")
	fmt.Println("------------------------------ ------------------- -------------------------")
	for _, p := range []string{"mvtl-to", "mvtl-eps-clock"} {
		fmt.Printf("%-30s %-19s %s\n", "serial abort (§5.3)", p, serialAbort(mk(p)))
	}
	for _, p := range []string{"mvtl-to", "mvtl-ghostbuster"} {
		fmt.Printf("%-30s %-19s %s\n", "ghost abort (§5.5)", p, ghostAbort(mk(p)))
	}
	for _, p := range []string{"mvtl-to", "mvtl-pref"} {
		fmt.Printf("%-30s %-19s %s\n", "Theorem 2 workload", p, theorem2(mk(p)))
	}
	fmt.Println()
	fmt.Println("expected: mvtl-to aborts all three; the specialized policies commit.")
}
