// Command priority demonstrates the prioritizer algorithm (§5.2 of the
// paper): transactions marked critical grab timestamp locks greedily
// across the whole timeline and are never aborted by normal
// transactions (Theorem 3) — there is no way to express this guarantee
// in plain timestamp ordering.
//
// The program runs heavy normal churn against a handful of keys while a
// sequence of critical "end-of-day settlement" transactions runs over
// the same keys; every critical transaction must commit.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	mvtl "github.com/lpd-epfl/mvtl"
)

func main() {
	ctx := context.Background()
	store := mvtl.Open(mvtl.Options{Algorithm: mvtl.Prio})

	const keys = 8
	key := func(i int) string { return fmt.Sprintf("ledger-%d", i) }

	var normalCommits, normalAborts atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Normal churn: read-modify-write cycles on random ledger entries.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				txCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
				tx, err := store.Begin(txCtx)
				if err != nil {
					cancel()
					continue
				}
				k := key(rng.Intn(keys))
				_, rerr := tx.Get(txCtx, k)
				var cerr error
				if rerr == nil {
					if werr := tx.Set(txCtx, k, []byte(fmt.Sprintf("n%d", seed))); werr == nil {
						cerr = tx.Commit(txCtx)
					} else {
						cerr = werr
					}
				} else {
					cerr = rerr
				}
				cancel()
				if cerr == nil {
					normalCommits.Add(1)
				} else {
					normalAborts.Add(1)
				}
			}
		}(int64(w) + 1)
	}

	// Critical settlements: must never be aborted by the churn.
	const settlements = 25
	for i := 0; i < settlements; i++ {
		txCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		tx, err := store.BeginCritical(txCtx)
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < keys; k++ {
			if _, err := tx.Get(txCtx, key(k)); err != nil {
				log.Fatalf("critical settlement %d read: %v", i, err)
			}
		}
		if err := tx.Set(txCtx, "settlement", []byte(fmt.Sprintf("s%d", i))); err != nil {
			log.Fatalf("critical settlement %d write: %v", i, err)
		}
		if err := tx.Commit(txCtx); err != nil {
			log.Fatalf("THEOREM 3 VIOLATED: critical settlement %d aborted: %v", i, err)
		}
		cancel()
		time.Sleep(20 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	fmt.Printf("all %d critical settlements committed\n", settlements)
	fmt.Printf("normal churn: %d commits, %d aborts (aborting normal transactions is allowed)\n",
		normalCommits.Load(), normalAborts.Load())
}
