// Command mvtl-server runs one MVTL storage server (§7/§H of the paper)
// over TCP. Start several on different ports, then point coordinators —
// cmd/mvtl-cli or the client package — at the full list; keys partition
// across servers by hash.
//
// Usage:
//
//	mvtl-server -addr :7401
//	mvtl-server -addr :7402 -write-lock-timeout 3s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/transport"
)

func main() {
	log.SetPrefix("mvtl-server: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	addr := flag.String("addr", ":7401", "listen address")
	lockWait := flag.Duration("lock-wait-timeout", time.Second,
		"maximum time a blocking lock request may wait (deadlock resolution)")
	writeLockTimeout := flag.Duration("write-lock-timeout", 3*time.Second,
		"unfrozen write locks older than this trigger coordinator suspicion (§H)")
	scanInterval := flag.Duration("scan-interval", 250*time.Millisecond,
		"suspicion scanner period")
	verbose := flag.Bool("v", false, "log server diagnostics")
	flag.Parse()

	cfg := server.Config{
		Addr:             *addr,
		Network:          transport.TCP{},
		LockWaitTimeout:  *lockWait,
		WriteLockTimeout: *writeLockTimeout,
		ScanInterval:     *scanInterval,
	}
	if *verbose {
		cfg.Logger = log.Default()
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mvtl storage server listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
