// Command mvtl-bench regenerates the paper's evaluation figures (§8.4)
// from the command line, with adjustable scale. Each experiment prints
// the data series the corresponding figure plots: throughput and commit
// rate per protocol (MVTO+, 2PL, MVTIL-early, MVTIL-late).
//
// Usage:
//
//	mvtl-bench -exp fig1
//	mvtl-bench -exp all -measure 3s -clients 8,16,32,64,128
//	mvtl-bench -exp cell -mode mvtil-early -servers 4 -nclients 64
//	mvtl-bench -exp cell -mode mvto+ -transport tcp -conns 4 -servers 4
//	mvtl-bench -exp cell -json   # machine-readable results on stdout
//	mvtl-bench -exp failover -replicas 2   # kill a partition head mid-run
//
// It also fronts the deterministic fault-injection bed (see TESTING.md):
//
//	mvtl-bench -faults partition-crash -fault-verify
//	mvtl-bench -faults all -fault-seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/lpd-epfl/mvtl/internal/bench"
	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/faultbed"
)

// runFaults executes fault-injection scenarios and reports violations:
// every scenario is serializability-checked, and with verify the
// transcript-asserted ones run twice so a determinism regression (H13)
// fails the command, not just a test.
func runFaults(name string, seed int64, verify bool) error {
	var scenarios []faultbed.Scenario
	if name == "all" {
		scenarios = faultbed.Matrix()
	} else {
		s, err := faultbed.Find(name)
		if err != nil {
			return err
		}
		scenarios = []faultbed.Scenario{s}
	}
	failed := false
	for _, s := range scenarios {
		if seed != 0 {
			s.Seed = seed
		}
		res, err := faultbed.Run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		fmt.Println(res.Summary())
		if res.CheckErr != nil {
			failed = true
		}
		if verify && s.AssertTranscript {
			again, err := faultbed.Run(s)
			if err != nil {
				return fmt.Errorf("%s (verify run): %w", s.Name, err)
			}
			if res.Transcript != again.Transcript || res.FaultLog != again.FaultLog || res.Events != again.Events {
				failed = true
				fmt.Printf("%s: DETERMINISM FAILURE — same seed, different runs\n--- run 1 transcript\n%s--- run 2 transcript\n%s",
					s.Name, res.Transcript, again.Transcript)
			} else {
				fmt.Printf("%s: reproduced byte-identically (seed %d)\n", s.Name, res.Scenario.Seed)
			}
		}
	}
	if failed {
		return fmt.Errorf("fault matrix failed")
	}
	return nil
}

func parseClients(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad client count %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseMode(s string) (client.Mode, error) {
	switch s {
	case "mvtil-early":
		return client.ModeTILEarly, nil
	case "mvtil-late":
		return client.ModeTILLate, nil
	case "mvto+", "mvto":
		return client.ModeTO, nil
	case "2pl", "pessimistic":
		return client.ModePessimistic, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (mvtil-early, mvtil-late, mvto+, 2pl)", s)
	}
}

func main() {
	log.SetPrefix("mvtl-bench: ")
	log.SetFlags(0)

	exp := flag.String("exp", "all", "experiment: fig1..fig7, all, cell, or failover")
	measure := flag.Duration("measure", 1500*time.Millisecond, "measurement window per cell")
	warmup := flag.Duration("warmup", 400*time.Millisecond, "warm-up per cell")
	clients := flag.String("clients", "4,8,16,32,64", "client sweep points (comma separated)")

	// -exp cell flags.
	modeFlag := flag.String("mode", "mvtil-early", "protocol for -exp cell")
	servers := flag.Int("servers", 3, "servers for -exp cell")
	nclients := flag.Int("nclients", 32, "clients for -exp cell")
	ops := flag.Int("ops", 20, "operations per transaction for -exp cell")
	writes := flag.Float64("writes", 0.25, "write fraction for -exp cell")
	keys := flag.Int("keys", 10000, "keyspace for -exp cell")
	cloud := flag.Bool("cloud", false, "use the cloud bed for -exp cell")
	transportFlag := flag.String("transport", "mem", "network for -exp cell: mem (latency model) or tcp (real loopback sockets)")
	conns := flag.Int("conns", 0, "RPC connections per server per coordinator for -exp cell (0 = default of 1)")
	valueSize := flag.Int("valuesize", 0, "written value size in bytes for -exp cell (0 = the paper's 8-byte cells)")
	getMulti := flag.Bool("getmulti", false, "batch each transaction's leading reads into one GetMulti per server for -exp cell")
	replicas := flag.Int("replicas", 2, "per-partition replication factor for -exp failover")

	// Fault-injection bed flags.
	faults := flag.String("faults", "", "run a fault-injection scenario (a name from the matrix, or \"all\") instead of a benchmark")
	faultSeed := flag.Int64("fault-seed", 0, "override the scenario seed (0 keeps the scenario's own)")
	faultVerify := flag.Bool("fault-verify", false, "run each transcript-asserted scenario twice and require byte-identical transcripts")

	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout instead of tables (benchmarks only)")
	flag.Parse()

	if *faults != "" {
		if err := runFaults(*faults, *faultSeed, *faultVerify); err != nil {
			log.Fatal(err)
		}
		return
	}

	points, err := parseClients(*clients)
	if err != nil {
		log.Fatal(err)
	}
	sc := bench.Scale{ClientPoints: points, Measure: *measure, WarmUp: *warmup}
	ctx := context.Background()
	var w io.Writer = os.Stdout
	if *jsonOut {
		w = io.Discard // tables off; the JSON document is the output
	}

	// Every experiment returns its data series; with -json the collected
	// results are emitted as one document instead of the printed tables.
	type figFn func() (any, error)
	figs := map[string]figFn{
		"fig1": func() (any, error) { return bench.Fig1(ctx, w, sc) },
		"fig2": func() (any, error) { return bench.Fig2(ctx, w, sc) },
		"fig3": func() (any, error) { return bench.Fig3(ctx, w, sc) },
		"fig4": func() (any, error) { return bench.Fig4(ctx, w, sc) },
		"fig5": func() (any, error) { return bench.Fig5(ctx, w, sc) },
		"fig6": func() (any, error) { return bench.Fig6(ctx, w, sc) },
		"fig7": func() (any, error) { return bench.Fig7(ctx, w, sc) },
	}
	emit := func(v any) {
		if !*jsonOut {
			return
		}
		out, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	}

	switch *exp {
	case "all":
		results := make(map[string]any)
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} {
			res, err := figs[name]()
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			results[name] = res
			fmt.Fprintln(w)
		}
		emit(results)
	case "cell":
		mode, err := parseMode(*modeFlag)
		if err != nil {
			log.Fatal(err)
		}
		bed := cluster.BedLocal
		if *cloud {
			bed = cluster.BedCloud
		}
		var tcp bool
		switch *transportFlag {
		case "mem":
		case "tcp":
			tcp = true
		default:
			log.Fatalf("unknown transport %q (mem, tcp)", *transportFlag)
		}
		row, err := bench.RunCell(ctx, bench.Cell{
			Mode: mode, Bed: bed, Servers: *servers, TCP: tcp, Conns: *conns,
			Clients: *nclients, OpsPerTxn: *ops, WriteFrac: *writes, Keys: *keys,
			ValueSize: *valueSize, BatchReads: *getMulti,
			Delta: 5000, WarmUp: *warmup, Measure: *measure,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, row)
		emit(row)
	case "failover":
		// Kill the partition-0 head mid-measurement on a replicated
		// cluster and report the client-observed availability dip; the
		// recorded history must stay serializable across the failover.
		mode, err := parseMode(*modeFlag)
		if err != nil {
			log.Fatal(err)
		}
		bed := cluster.BedLocal
		if *cloud {
			bed = cluster.BedCloud
		}
		row, err := bench.RunFailoverCell(ctx, bench.Cell{
			Mode: mode, Bed: bed, Servers: *servers, Replicas: *replicas,
			Clients: *nclients, OpsPerTxn: *ops, WriteFrac: *writes, Keys: *keys,
			Delta: 5000, WarmUp: *warmup, Measure: *measure,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, row)
		emit(row)
	default:
		fn, ok := figs[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q", *exp)
		}
		res, err := fn()
		if err != nil {
			log.Fatal(err)
		}
		emit(map[string]any{*exp: res})
	}
}
