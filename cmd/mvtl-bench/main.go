// Command mvtl-bench regenerates the paper's evaluation figures (§8.4)
// from the command line, with adjustable scale. Each experiment prints
// the data series the corresponding figure plots: throughput and commit
// rate per protocol (MVTO+, 2PL, MVTIL-early, MVTIL-late).
//
// Usage:
//
//	mvtl-bench -exp fig1
//	mvtl-bench -exp all -measure 3s -clients 8,16,32,64,128
//	mvtl-bench -exp cell -mode mvtil-early -servers 4 -nclients 64
//	mvtl-bench -exp cell -mode mvto+ -transport tcp -conns 4 -servers 4
//	mvtl-bench -exp cell -json   # machine-readable results on stdout
//	mvtl-bench -exp failover -replicas 2   # kill a partition head mid-run
//
// It also fronts the deterministic fault-injection bed (see TESTING.md):
//
//	mvtl-bench -faults partition-crash -fault-verify
//	mvtl-bench -faults all -fault-seed 7
//	mvtl-bench -faults all -fault-verify -vtime   # same matrix, virtual time
//	mvtl-bench -exp vtime -json > BENCH_vtime.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/lpd-epfl/mvtl/internal/bench"
	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/faultbed"
)

// runFaults executes fault-injection scenarios and reports violations:
// every scenario is serializability-checked, and with verify the
// transcript-asserted ones run twice so a determinism regression (H13)
// fails the command, not just a test. With vtime every scenario runs on
// a virtual timeline: modeled delays cost no wall clock, and transcripts
// are byte-identical to wall-clock runs of the same seed.
func runFaults(name string, seed int64, verify, vtime bool) error {
	var scenarios []faultbed.Scenario
	if name == "all" {
		scenarios = faultbed.Matrix()
	} else {
		s, err := faultbed.Find(name)
		if err != nil {
			return err
		}
		scenarios = []faultbed.Scenario{s}
	}
	run := faultbed.Run
	if vtime {
		run = faultbed.RunVirtual
	}
	failed := false
	for _, s := range scenarios {
		if seed != 0 {
			s.Seed = seed
		}
		start := time.Now()
		res, err := run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		fmt.Printf("[%8.3fs] ", time.Since(start).Seconds())
		fmt.Println(res.Summary())
		if res.CheckErr != nil {
			failed = true
		}
		if verify && s.AssertTranscript {
			again, err := run(s)
			if err != nil {
				return fmt.Errorf("%s (verify run): %w", s.Name, err)
			}
			if res.Transcript != again.Transcript || res.FaultLog != again.FaultLog || res.Events != again.Events {
				failed = true
				fmt.Printf("%s: DETERMINISM FAILURE — same seed, different runs\n--- run 1 transcript\n%s--- run 2 transcript\n%s",
					s.Name, res.Transcript, again.Transcript)
			} else {
				fmt.Printf("%s: reproduced byte-identically (seed %d)\n", s.Name, res.Scenario.Seed)
			}
		}
	}
	if failed {
		return fmt.Errorf("fault matrix failed")
	}
	return nil
}

// vtimeReport is the BENCH_vtime.json row: the fault matrix timed in
// both modes (the speedup virtual time buys), and the big-topology
// scenario — a cluster size only a zero-wall-clock timeline can afford.
type vtimeReport struct {
	MatrixWallSeconds    float64 `json:"matrix_wall_seconds"`
	MatrixVirtualSeconds float64 `json:"matrix_virtual_seconds"`
	MatrixSpeedup        float64 `json:"matrix_speedup"`
	BigTopologyServers   int     `json:"big_topology_servers"`
	BigTopologyTxns      int     `json:"big_topology_txns"`
	BigTopologySeconds   float64 `json:"big_topology_seconds"`
}

// runVtimeReport times the whole scenario matrix wall-clock and
// virtual, requires byte-identical transcripts between the two modes of
// every scenario, then runs big-topology (virtual only). Serializability
// violations and cross-mode divergence both fail the experiment.
func runVtimeReport(w io.Writer, quiet bool) (vtimeReport, error) {
	var rep vtimeReport
	out := w
	if quiet {
		out = io.Discard
	}
	wallRes := make(map[string]faultbed.Result)
	start := time.Now()
	for _, s := range faultbed.Matrix() {
		res, err := faultbed.Run(s)
		if err != nil {
			return rep, fmt.Errorf("%s (wall): %w", s.Name, err)
		}
		if res.CheckErr != nil {
			return rep, fmt.Errorf("%s (wall): %w", s.Name, res.CheckErr)
		}
		wallRes[s.Name] = res
	}
	rep.MatrixWallSeconds = time.Since(start).Seconds()
	fmt.Fprintf(out, "matrix wall-clock mode: %.3fs\n", rep.MatrixWallSeconds)

	start = time.Now()
	for _, s := range faultbed.Matrix() {
		res, err := faultbed.RunVirtual(s)
		if err != nil {
			return rep, fmt.Errorf("%s (virtual): %w", s.Name, err)
		}
		if res.CheckErr != nil {
			return rep, fmt.Errorf("%s (virtual): %w", s.Name, res.CheckErr)
		}
		wall := wallRes[s.Name]
		if res.Transcript != wall.Transcript || res.FaultLog != wall.FaultLog || res.Events != wall.Events {
			return rep, fmt.Errorf("%s: virtual transcript diverges from wall-clock mode", s.Name)
		}
	}
	rep.MatrixVirtualSeconds = time.Since(start).Seconds()
	rep.MatrixSpeedup = rep.MatrixWallSeconds / rep.MatrixVirtualSeconds
	fmt.Fprintf(out, "matrix virtual mode:    %.3fs (%.1fx speedup, transcripts byte-identical)\n",
		rep.MatrixVirtualSeconds, rep.MatrixSpeedup)

	big, err := faultbed.Find("big-topology")
	if err != nil {
		return rep, err
	}
	start = time.Now()
	res, err := faultbed.RunVirtual(big)
	if err != nil {
		return rep, fmt.Errorf("big-topology: %w", err)
	}
	if res.CheckErr != nil {
		return rep, fmt.Errorf("big-topology: %w", res.CheckErr)
	}
	rep.BigTopologySeconds = time.Since(start).Seconds()
	rep.BigTopologyServers = res.Scenario.Servers
	rep.BigTopologyTxns = res.Scenario.Txns
	fmt.Fprintf(out, "big-topology: %d servers, %d txns in %.3fs — %s\n",
		rep.BigTopologyServers, rep.BigTopologyTxns, rep.BigTopologySeconds, res.Summary())
	return rep, nil
}

func parseClients(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad client count %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseMode(s string) (client.Mode, error) {
	switch s {
	case "mvtil-early":
		return client.ModeTILEarly, nil
	case "mvtil-late":
		return client.ModeTILLate, nil
	case "mvto+", "mvto":
		return client.ModeTO, nil
	case "2pl", "pessimistic":
		return client.ModePessimistic, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (mvtil-early, mvtil-late, mvto+, 2pl)", s)
	}
}

func main() {
	log.SetPrefix("mvtl-bench: ")
	log.SetFlags(0)

	exp := flag.String("exp", "all", "experiment: fig1..fig7, all, cell, or failover")
	measure := flag.Duration("measure", 1500*time.Millisecond, "measurement window per cell")
	warmup := flag.Duration("warmup", 400*time.Millisecond, "warm-up per cell")
	clients := flag.String("clients", "4,8,16,32,64", "client sweep points (comma separated)")

	// -exp cell flags.
	modeFlag := flag.String("mode", "mvtil-early", "protocol for -exp cell")
	servers := flag.Int("servers", 3, "servers for -exp cell")
	nclients := flag.Int("nclients", 32, "clients for -exp cell")
	ops := flag.Int("ops", 20, "operations per transaction for -exp cell")
	writes := flag.Float64("writes", 0.25, "write fraction for -exp cell")
	keys := flag.Int("keys", 10000, "keyspace for -exp cell")
	cloud := flag.Bool("cloud", false, "use the cloud bed for -exp cell")
	transportFlag := flag.String("transport", "mem", "network for -exp cell: mem (latency model) or tcp (real loopback sockets)")
	conns := flag.Int("conns", 0, "RPC connections per server per coordinator for -exp cell (0 = default of 1)")
	valueSize := flag.Int("valuesize", 0, "written value size in bytes for -exp cell (0 = the paper's 8-byte cells)")
	getMulti := flag.Bool("getmulti", false, "batch each transaction's leading reads into one GetMulti per server for -exp cell")
	replicas := flag.Int("replicas", 2, "per-partition replication factor for -exp failover")

	// Fault-injection bed flags.
	faults := flag.String("faults", "", "run a fault-injection scenario (a name from the matrix, or \"all\") instead of a benchmark")
	faultSeed := flag.Int64("fault-seed", 0, "override the scenario seed (0 keeps the scenario's own)")
	faultVerify := flag.Bool("fault-verify", false, "run each transcript-asserted scenario twice and require byte-identical transcripts")
	vtime := flag.Bool("vtime", false, "run fault scenarios on a virtual timeline: modeled delays cost no wall clock")

	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout instead of tables (benchmarks only)")
	flag.Parse()

	if *faults != "" {
		if err := runFaults(*faults, *faultSeed, *faultVerify, *vtime); err != nil {
			log.Fatal(err)
		}
		return
	}

	points, err := parseClients(*clients)
	if err != nil {
		log.Fatal(err)
	}
	sc := bench.Scale{ClientPoints: points, Measure: *measure, WarmUp: *warmup}
	ctx := context.Background()
	var w io.Writer = os.Stdout
	if *jsonOut {
		w = io.Discard // tables off; the JSON document is the output
	}

	// Every experiment returns its data series; with -json the collected
	// results are emitted as one document instead of the printed tables.
	type figFn func() (any, error)
	figs := map[string]figFn{
		"fig1": func() (any, error) { return bench.Fig1(ctx, w, sc) },
		"fig2": func() (any, error) { return bench.Fig2(ctx, w, sc) },
		"fig3": func() (any, error) { return bench.Fig3(ctx, w, sc) },
		"fig4": func() (any, error) { return bench.Fig4(ctx, w, sc) },
		"fig5": func() (any, error) { return bench.Fig5(ctx, w, sc) },
		"fig6": func() (any, error) { return bench.Fig6(ctx, w, sc) },
		"fig7": func() (any, error) { return bench.Fig7(ctx, w, sc) },
	}
	emit := func(v any) {
		if !*jsonOut {
			return
		}
		out, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	}

	switch *exp {
	case "vtime":
		rep, err := runVtimeReport(os.Stdout, *jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		emit(rep)
	case "all":
		results := make(map[string]any)
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} {
			res, err := figs[name]()
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			results[name] = res
			fmt.Fprintln(w)
		}
		emit(results)
	case "cell":
		mode, err := parseMode(*modeFlag)
		if err != nil {
			log.Fatal(err)
		}
		bed := cluster.BedLocal
		if *cloud {
			bed = cluster.BedCloud
		}
		var tcp bool
		switch *transportFlag {
		case "mem":
		case "tcp":
			tcp = true
		default:
			log.Fatalf("unknown transport %q (mem, tcp)", *transportFlag)
		}
		row, err := bench.RunCell(ctx, bench.Cell{
			Mode: mode, Bed: bed, Servers: *servers, TCP: tcp, Conns: *conns,
			Clients: *nclients, OpsPerTxn: *ops, WriteFrac: *writes, Keys: *keys,
			ValueSize: *valueSize, BatchReads: *getMulti,
			Delta: 5000, WarmUp: *warmup, Measure: *measure,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, row)
		emit(row)
	case "failover":
		// Kill the partition-0 head mid-measurement on a replicated
		// cluster and report the client-observed availability dip; the
		// recorded history must stay serializable across the failover.
		mode, err := parseMode(*modeFlag)
		if err != nil {
			log.Fatal(err)
		}
		bed := cluster.BedLocal
		if *cloud {
			bed = cluster.BedCloud
		}
		row, err := bench.RunFailoverCell(ctx, bench.Cell{
			Mode: mode, Bed: bed, Servers: *servers, Replicas: *replicas,
			Clients: *nclients, OpsPerTxn: *ops, WriteFrac: *writes, Keys: *keys,
			Delta: 5000, WarmUp: *warmup, Measure: *measure,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, row)
		emit(row)
	default:
		fn, ok := figs[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q", *exp)
		}
		res, err := fn()
		if err != nil {
			log.Fatal(err)
		}
		emit(map[string]any{*exp: res})
	}
}
