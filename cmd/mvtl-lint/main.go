// mvtl-lint is the project's analysis multichecker: it mechanically
// enforces the ownership, escape, and determinism invariants that
// PROTOCOL.md and TESTING.md state in prose (see internal/lint for the
// analyzers and TESTING.md "Mechanically enforced invariants" for the
// rules, suppression directives, and CI wiring).
//
// Usage:
//
//	go run ./cmd/mvtl-lint [-only names] [-list] [packages]
//
// With no packages, ./... is checked. Exit status 1 means findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/loader"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mvtl-lint [-only names] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mvtl-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
