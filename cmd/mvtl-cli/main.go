// Command mvtl-cli is a minimal coordinator front end for a set of
// mvtl-server processes: run single get/set operations or small
// read-modify-write transactions from the shell.
//
// Usage:
//
//	mvtl-cli -servers 127.0.0.1:7401,127.0.0.1:7402 set greeting hello
//	mvtl-cli -servers 127.0.0.1:7401,127.0.0.1:7402 get greeting
//	mvtl-cli -servers ... -mode 2pl txn set a 1 set b 2
//	mvtl-cli -servers ... stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mvtl-cli -servers host:port[,host:port...] [-mode MODE] COMMAND

commands:
  get KEY                      read one key
  set KEY VALUE                write one key
  txn (get KEY | set KEY VAL)...  run several operations in one transaction
  stats                        print per-server state sizes
  purge                        purge history older than now on all servers

modes: mvtil-early (default), mvtil-late, mvto+, 2pl
`)
	os.Exit(2)
}

func main() {
	log.SetPrefix("mvtl-cli: ")
	log.SetFlags(0)

	serversFlag := flag.String("servers", "127.0.0.1:7401", "comma-separated server addresses")
	modeFlag := flag.String("mode", "mvtil-early", "concurrency control mode")
	timeout := flag.Duration("timeout", 5*time.Second, "operation timeout")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var mode client.Mode
	switch *modeFlag {
	case "mvtil-early":
		mode = client.ModeTILEarly
	case "mvtil-late":
		mode = client.ModeTILLate
	case "mvto+", "mvto":
		mode = client.ModeTO
	case "2pl", "pessimistic":
		mode = client.ModePessimistic
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}

	cl, err := client.New(client.Config{
		ID:      int32(os.Getpid()%2_000_000_000 + 1),
		Servers: strings.Split(*serversFlag, ","),
		Network: transport.TCP{},
		Mode:    mode,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = cl.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "get":
		if len(args) != 2 {
			usage()
		}
		tx, err := cl.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		v, err := tx.Read(ctx, args[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			log.Fatal(err)
		}
		if v == nil {
			fmt.Println("(nil)")
		} else {
			fmt.Println(string(v))
		}
	case "set":
		if len(args) != 3 {
			usage()
		}
		tx, err := cl.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Write(ctx, args[1], []byte(args[2])); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")
	case "txn":
		tx, err := cl.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		rest := args[1:]
		for len(rest) > 0 {
			switch rest[0] {
			case "get":
				if len(rest) < 2 {
					usage()
				}
				v, err := tx.Read(ctx, rest[1])
				if err != nil {
					log.Fatalf("read %q: %v", rest[1], err)
				}
				fmt.Printf("%s = %s\n", rest[1], string(v))
				rest = rest[2:]
			case "set":
				if len(rest) < 3 {
					usage()
				}
				if err := tx.Write(ctx, rest[1], []byte(rest[2])); err != nil {
					log.Fatalf("write %q: %v", rest[1], err)
				}
				rest = rest[3:]
			default:
				usage()
			}
		}
		if err := tx.Commit(ctx); err != nil {
			log.Fatalf("commit: %v", err)
		}
		fmt.Println("committed")
	case "stats":
		for _, addr := range strings.Split(*serversFlag, ",") {
			st, err := cl.ServerStats(ctx, addr)
			if err != nil {
				log.Fatalf("%s: %v", addr, err)
			}
			fmt.Printf("%s: keys=%d versions=%d locks=%d (frozen %d)\n",
				addr, st.Keys, st.Versions, st.LockEntries, st.FrozenLocks)
		}
	case "purge":
		v, l, err := cl.PurgeServers(ctx, timestamp.New(time.Now().UnixMicro(), 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("purged %d versions, %d lock records\n", v, l)
	default:
		usage()
	}
}
