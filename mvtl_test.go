package mvtl_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	mvtl "github.com/lpd-epfl/mvtl"
)

func TestOpenDefaults(t *testing.T) {
	s := mvtl.Open(mvtl.Options{})
	if s.Algorithm() != "mvtil-early" {
		t.Fatalf("default algorithm = %q", s.Algorithm())
	}
}

func TestAllAlgorithmsRoundTrip(t *testing.T) {
	algos := []mvtl.Algorithm{
		mvtl.TILEarly, mvtl.TILLate, mvtl.TO, mvtl.Ghostbuster,
		mvtl.Pref, mvtl.Prio, mvtl.EpsilonClock, mvtl.Pessimistic,
	}
	ctx := context.Background()
	for _, a := range algos {
		t.Run(a.String(), func(t *testing.T) {
			s := mvtl.Open(mvtl.Options{Algorithm: a})
			tx, err := s.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Set(ctx, "k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
			if tx.CommitTimestamp() == (mvtl.Timestamp{}) && a != mvtl.Pessimistic {
				t.Log("commit timestamp is zero-ish; acceptable only at epoch")
			}
			tx2, _ := s.Begin(ctx)
			v, err := tx2.Get(ctx, "k")
			if err != nil || string(v) != "v" {
				t.Fatalf("%q %v", v, err)
			}
		})
	}
}

// TestLocalDeadlockClassified: a local AB-BA upgrade deadlock under the
// pessimistic (2PL) algorithm must surface as both IsAborted and
// IsDeadlock, so callers can retry the victim immediately — the same
// classification the distributed client derives from the deadlock
// status code.
func TestLocalDeadlockClassified(t *testing.T) {
	s := mvtl.Open(mvtl.Options{Algorithm: mvtl.Pessimistic})
	ctx := context.Background()
	tx1, _ := s.Begin(ctx)
	tx2, _ := s.Begin(ctx)
	if err := tx1.Set(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Set(ctx, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		err := tx1.Set(ctx, "b", []byte("1"))
		if err == nil {
			err = tx1.Commit(ctx)
		}
		done <- err
	}()
	err2 := tx2.Set(ctx, "a", []byte("2"))
	err1 := <-done
	victim := err1
	if victim == nil {
		victim = err2
	}
	if victim == nil {
		t.Fatal("AB-BA produced no victim")
	}
	if !mvtl.IsAborted(victim) || !mvtl.IsDeadlock(victim) {
		t.Fatalf("victim error must classify as aborted deadlock: %v", victim)
	}
}

func TestUpdateAndView(t *testing.T) {
	s := mvtl.Open(mvtl.Options{})
	ctx := context.Background()
	if err := s.Update(ctx, func(tx *mvtl.Txn) error {
		return tx.Set(ctx, "counter", []byte{1})
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := s.View(ctx, func(tx *mvtl.Txn) error {
		var err error
		got, err = tx.Get(ctx, "counter")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestViewForbidsWrites(t *testing.T) {
	s := mvtl.Open(mvtl.Options{})
	ctx := context.Background()
	err := s.View(ctx, func(tx *mvtl.Txn) error {
		return tx.Set(ctx, "x", nil)
	})
	if err == nil {
		t.Fatal("Set inside View must fail")
	}
}

func TestUpdateRollsBackOnError(t *testing.T) {
	s := mvtl.Open(mvtl.Options{})
	ctx := context.Background()
	wantErr := fmt.Errorf("boom")
	if err := s.Update(ctx, func(tx *mvtl.Txn) error {
		_ = tx.Set(ctx, "x", []byte("no"))
		return wantErr
	}); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	_ = s.View(ctx, func(tx *mvtl.Txn) error {
		if v, _ := tx.Get(ctx, "x"); v != nil {
			t.Fatalf("rolled-back write visible: %q", v)
		}
		return nil
	})
}

func TestIsAborted(t *testing.T) {
	if mvtl.IsAborted(nil) {
		t.Fatal("nil is not aborted")
	}
	if mvtl.IsAborted(fmt.Errorf("random")) {
		t.Fatal("random error is not aborted")
	}
}

func TestCriticalTransaction(t *testing.T) {
	s := mvtl.Open(mvtl.Options{Algorithm: mvtl.Prio})
	ctx := context.Background()
	// Normal reader holds locks.
	n, _ := s.Begin(ctx)
	if _, err := n.Get(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	crit, err := s.BeginCritical(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := crit.Set(ctx, "x", []byte("critical")); err != nil {
		t.Fatal(err)
	}
	if err := crit.Commit(ctx); err != nil {
		t.Fatalf("critical transaction aborted: %v", err)
	}
}

func TestStatsAndPurge(t *testing.T) {
	s := mvtl.Open(mvtl.Options{})
	ctx := context.Background()
	var lastCommit mvtl.Timestamp
	for i := 0; i < 10; i++ {
		tx, _ := s.Begin(ctx)
		_ = tx.Set(ctx, "k", []byte{byte(i)})
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		lastCommit = tx.CommitTimestamp()
	}
	st := s.Stats()
	if st.Versions < 10 {
		t.Fatalf("Versions = %d", st.Versions)
	}
	v, _ := s.Purge(lastCommit.Time+1, 0)
	if v == 0 {
		t.Fatal("purge removed nothing")
	}
	if got := s.Stats().Versions; got >= st.Versions {
		t.Fatalf("versions did not shrink: %d -> %d", st.Versions, got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	s := mvtl.Open(mvtl.Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				err := s.Update(ctx, func(tx *mvtl.Txn) error {
					return tx.Set(ctx, fmt.Sprintf("k%d", g%4), []byte{byte(i)})
				})
				if err != nil && !mvtl.IsAborted(err) {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
