// Package mvtl is a transactional key-value store built on multiversion
// timestamp locking (MVTL), the concurrency control genre introduced in
//
//	Aguilera, David, Guerraoui, Wang:
//	"Locking Timestamps versus Locking Objects", PODC 2018.
//
// Instead of locking whole objects (two-phase locking) or relying on
// per-version read timestamps (timestamp ordering), MVTL transactions
// lock individual timestamps of each key. A transaction commits whenever
// one timestamp is locked across its entire read and write set — that
// timestamp becomes its serialization point. Fine-grained timeline
// locking lets the system explore many serialization points per
// transaction, committing workloads that other schemes abort.
//
// # Quick start
//
//	store := mvtl.Open(mvtl.Options{Algorithm: mvtl.TILEarly})
//	ctx := context.Background()
//	tx, _ := store.Begin(ctx)
//	_ = tx.Set(ctx, "greeting", []byte("hello"))
//	if err := tx.Commit(ctx); err != nil { ... }
//
// # Algorithms
//
// The Algorithm option selects one of the paper's policies (§5): TO
// (equivalent to MVTO+), Ghostbuster (no ghost aborts), Pref
// (preferential timestamps), Prio (critical transactions never aborted
// by normal ones), EpsilonClock (no serial aborts under ε-synchronized
// clocks), Pessimistic (equivalent to 2PL), and TILEarly/TILLate (the
// MVTIL variants evaluated in §8). All algorithms are serializable
// regardless of the choice (Theorem 1); they differ only in which
// workloads abort, block or deadlock.
//
// For the distributed system — storage servers, coordinators, commitment
// objects (§7/§H) — see the cmd/mvtl-server and cmd/mvtl-bench binaries
// and the examples/distributed example.
package mvtl

import (
	"context"
	"errors"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/policy"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Algorithm selects the MVTL locking policy (§5 of the paper).
type Algorithm uint8

// Available algorithms.
const (
	// TILEarly is MVTIL committing at the earliest locked timestamp —
	// the paper's best all-round performer (§8).
	TILEarly Algorithm = iota + 1
	// TILLate is MVTIL committing at the latest locked timestamp.
	TILLate
	// TO is MVTL-TO, behaviourally equivalent to multiversion timestamp
	// ordering (MVTO+, Theorem 5).
	TO
	// Ghostbuster is MVTL-TO plus garbage collection: immune to ghost
	// aborts (Theorem 7).
	Ghostbuster
	// Pref is the preferential algorithm: each transaction carries
	// alternative timestamps to fall back on, aborting strictly less
	// than MVTO+ (Theorem 2).
	Pref
	// Prio is the prioritizer: transactions marked critical are never
	// aborted by normal ones (Theorem 3).
	Prio
	// EpsilonClock avoids serial aborts under ε-synchronized clocks
	// (Theorem 4).
	EpsilonClock
	// Pessimistic emulates two-phase locking (Theorem 6).
	Pessimistic
)

// String renders the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case TILEarly:
		return "mvtil-early"
	case TILLate:
		return "mvtil-late"
	case TO:
		return "mvtl-to"
	case Ghostbuster:
		return "mvtl-ghostbuster"
	case Pref:
		return "mvtl-pref"
	case Prio:
		return "mvtl-prio"
	case EpsilonClock:
		return "mvtl-eps-clock"
	case Pessimistic:
		return "mvtl-pessimistic"
	default:
		return fmt.Sprintf("algorithm(%d)", uint8(a))
	}
}

// Options configure a Store.
type Options struct {
	// Algorithm picks the locking policy; default TILEarly.
	Algorithm Algorithm
	// Delta is the MVTIL interval width in microseconds; default 5000
	// (5ms, as in the paper's evaluation).
	Delta int64
	// Epsilon is the clock synchronization bound for EpsilonClock, in
	// microseconds; default 1000.
	Epsilon int64
	// Alternatives customizes the Pref algorithm's A(t); default
	// {t−1ms, t−10ms}.
	Alternatives func(t Timestamp) []Timestamp
}

// Timestamp re-exports the timestamp type for Options.Alternatives.
type Timestamp = timestamp.Timestamp

// Store is a serializable multiversion key-value store.
type Store struct {
	db *core.DB
}

// Open creates an empty in-process store.
func Open(opts Options) *Store {
	if opts.Algorithm == 0 {
		opts.Algorithm = TILEarly
	}
	if opts.Delta == 0 {
		opts.Delta = 5000
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 1000
	}
	clk := clock.NewProcess(clock.System{}, 1)
	var pol core.Policy
	switch opts.Algorithm {
	case TILLate:
		pol = policy.NewTIL(clk, opts.Delta, policy.CommitLate, true)
	case TO:
		pol = policy.NewTO(clk)
	case Ghostbuster:
		pol = policy.NewGhostbuster(clk)
	case Pref:
		alts := policy.Alternatives(opts.Alternatives)
		if opts.Alternatives == nil {
			alts = policy.OffsetAlternatives(-1_000, -10_000)
		}
		pol = policy.NewPref(clk, alts)
	case Prio:
		pol = policy.NewPrio(clk)
	case EpsilonClock:
		pol = policy.NewEpsilonClock(clk, opts.Epsilon)
	case Pessimistic:
		pol = policy.NewPessimistic()
	default:
		pol = policy.NewTIL(clk, opts.Delta, policy.CommitEarly, true)
	}
	return &Store{db: core.New(pol, core.Options{})}
}

// Algorithm returns the store's policy name.
func (s *Store) Algorithm() string { return s.db.Policy().Name() }

// Begin starts a transaction.
func (s *Store) Begin(ctx context.Context) (*Txn, error) {
	tx, err := s.db.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &Txn{tx: tx}, nil
}

// BeginCritical starts a transaction marked critical; under the Prio
// algorithm it can never be aborted by normal transactions (§5.2).
func (s *Store) BeginCritical(ctx context.Context) (*Txn, error) {
	tx, err := s.db.Begin(ctx)
	if err != nil {
		return nil, err
	}
	tx.Priority = true
	return &Txn{tx: tx}, nil
}

// Update runs fn inside a transaction, committing on nil return and
// aborting otherwise; on abort caused by contention it retries up to
// three times.
func (s *Store) Update(ctx context.Context, fn func(tx *Txn) error) error {
	const maxAttempts = 3
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		tx, err := s.Begin(ctx)
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			_ = tx.Abort(ctx)
			return err
		}
		if err := tx.Commit(ctx); err == nil {
			return nil
		} else if !IsAborted(err) {
			return err
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// View runs fn inside a read-only transaction (enforced by the wrapper:
// Set fails), committing at the end.
func (s *Store) View(ctx context.Context, fn func(tx *Txn) error) error {
	tx, err := s.Begin(ctx)
	if err != nil {
		return err
	}
	tx.readOnly = true
	if err := fn(tx); err != nil {
		_ = tx.Abort(ctx)
		return err
	}
	return tx.Commit(ctx)
}

// StateStats reports the store's state size: keys, interval-compressed
// lock records, frozen records and stored versions (§6, §8.4.5).
type StateStats = core.StateStats

// Stats returns the current state size.
func (s *Store) Stats() StateStats { return s.db.StateStats() }

// Purge discards versions and lock state older than ageMicros
// microseconds before now, keeping the newest version of each key (§6).
// Transactions that later need purged history abort.
func (s *Store) Purge(nowMicros, ageMicros int64) (versions, locks int) {
	bound := nowMicros - ageMicros
	if bound < 0 {
		bound = 0
	}
	return s.db.PurgeBelow(timestamp.New(bound, 0))
}

// IsAborted reports whether err indicates a transaction abort (the
// caller may retry with a new transaction).
func IsAborted(err error) bool { return errors.Is(err, kv.ErrAborted) }

// IsDeadlock reports whether err indicates the transaction was aborted
// as a deadlock victim. Victims should be retried immediately — the
// conflicting work was aborted on purpose — where other aborts warrant
// a backoff. IsAborted also holds for such errors.
func IsDeadlock(err error) bool { return errors.Is(err, kv.ErrDeadlock) }

// Txn is a transaction over a Store. Not safe for concurrent use by
// multiple goroutines.
type Txn struct {
	tx       *core.Txn
	readOnly bool
}

// Get returns the value of key; nil means the key was never written.
func (t *Txn) Get(ctx context.Context, key string) ([]byte, error) {
	return t.tx.Read(ctx, key)
}

// Set buffers a write of value to key, visible after Commit.
func (t *Txn) Set(ctx context.Context, key string, value []byte) error {
	if t.readOnly {
		return fmt.Errorf("mvtl: Set %q inside View: transaction is read-only", key)
	}
	return t.tx.Write(ctx, key, value)
}

// Commit tries to commit; on failure the transaction aborted and
// IsAborted(err) is true.
func (t *Txn) Commit(ctx context.Context) error { return t.tx.Commit(ctx) }

// Abort discards the transaction.
func (t *Txn) Abort(ctx context.Context) error { return t.tx.Abort(ctx) }

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.tx.ID() }

// CommitTimestamp returns the serialization timestamp after a successful
// commit.
func (t *Txn) CommitTimestamp() Timestamp { return t.tx.CommitTS }
