// Package server implements the MVTL storage server of the distributed
// algorithm (§7/§H, Algorithm 13). A server owns a partition of the key
// space and holds, per key, the freezable interval lock table and the
// version history. Coordinators (package client) drive it through the
// wire protocol: read-lock, write-lock, freeze, release, decide, purge —
// either key-at-a-time or, preferably, as per-server footprint batches
// (wire.WriteLockBatchReq and friends) that make one pass over the
// transaction's keys per request.
//
// Shared state is striped: the key map and the transaction map are both
// split over a fixed power-of-two number of shards, each behind its own
// mutex, so concurrent coordinators touch disjoint stripes instead of
// funnelling through one server-wide lock.
//
// Fault tolerance follows §H.1: each update transaction names a decision
// server hosting its commitment object. If a coordinator disappears
// leaving unfrozen write locks behind, the holding server times out and
// proposes "abort" to the decision server; whatever is decided is then
// applied locally (Lemma 4), so no transaction blocks forever on a dead
// coordinator (Theorem 9).
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/commitment"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/metrics"
	"github.com/lpd-epfl/mvtl/internal/repl"
	"github.com/lpd-epfl/mvtl/internal/rpc"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/version"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Config parameterizes a server.
type Config struct {
	// Addr is the listen address (and the server's identity).
	Addr string
	// Network provides the transport.
	Network transport.Network
	// LockWaitTimeout caps how long a blocking lock request may wait
	// before reporting a conflict (deadlock resolution). Default 1s.
	LockWaitTimeout time.Duration
	// WriteLockTimeout is how long unfrozen write locks may sit before
	// the server suspects the coordinator and proposes abort (§H).
	// Default 3s.
	WriteLockTimeout time.Duration
	// ScanInterval is the suspicion scanner period. Default 250ms.
	ScanInterval time.Duration
	// PeerCallTimeout bounds one server-to-server RPC (suspicion
	// proposals and victim aborts), so a partitioned peer costs the
	// scanner a timeout instead of wedging it. Default 2s.
	PeerCallTimeout time.Duration
	// Repl configures the server's replication role; nil keeps the
	// server unreplicated (no epoch fencing, no partition log).
	Repl *ReplConfig
	// Timers supplies every timed wait the server performs (lock-wait
	// budgets, scanner period, peer-call timeouts, standby pull
	// backoff). Nil means SystemTimers; the fault bed passes a
	// clock.Virtual so those waits resolve by timeline jump.
	Timers clock.Timers
	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// ReplConfig makes the server one replica of a partition chain: heads
// append every committed version install to a partition log and serve
// it to standbys through the bulk-transfer messages; standbys pull
// snapshot+tail from Upstream and reject coordinator traffic with
// StatusWrongEpoch until promoted.
type ReplConfig struct {
	// Epoch is the initial membership epoch (≥ 1 in replicated
	// clusters).
	Epoch uint64
	// Standby starts the server as a catching-up replica of Upstream
	// instead of a serving head.
	Standby bool
	// Upstream is the address a standby pulls from.
	Upstream string
	// PullInterval is the standby's poll period once the upstream log
	// is drained (pulls repeat immediately while records flow).
	// Default 2ms.
	PullInterval time.Duration
	// LogCap bounds the partition log's retained records
	// (repl.DefaultLogCap if 0); pulls from before the trim point are
	// redirected to a fresh snapshot.
	LogCap int
}

func (c Config) withDefaults() Config {
	if c.LockWaitTimeout == 0 {
		c.LockWaitTimeout = time.Second
	}
	if c.WriteLockTimeout == 0 {
		c.WriteLockTimeout = 3 * time.Second
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = 250 * time.Millisecond
	}
	if c.PeerCallTimeout == 0 {
		c.PeerCallTimeout = 2 * time.Second
	}
	return c
}

// stripeCount is the number of key-map and txn-map stripes; a power of
// two so stripe selection is a mask.
const stripeCount = 32

// keyState is the per-key server state.
type keyState struct {
	locks    *lock.Table
	versions *version.List
}

// keyStripe is one shard of the key map.
type keyStripe struct {
	mu   sync.RWMutex
	keys map[string]*keyState
}

// txnState tracks what this server knows about one transaction. Its
// fields are guarded by the owning txnStripe's mutex.
type txnState struct {
	decisionSrv string
	// pending holds buffered write values per key (Alg. 13 line 3).
	pending map[string][]byte
	// writeKeys are keys where the txn holds (possibly unfrozen) write
	// locks. Read locks need no record at all: releases and freezes
	// name their keys explicitly, straight off the lock tables.
	writeKeys map[string]bool
	// firstWriteLock is when the txn first write-locked here.
	firstWriteLock time.Time
	// finished marks that a decision was applied locally.
	finished bool
}

// txnStripe is one shard of the transaction map.
type txnStripe struct {
	mu   sync.Mutex
	txns map[uint64]*txnState
}

// Server is one storage server.
type Server struct {
	cfg      Config
	listener transport.Listener
	registry *commitment.Registry
	// waits detects wait-for cycles among transactions blocked on this
	// server's locks. Cross-server cycles are invisible to it, so its
	// edges (labelled with the blocking key) are exported to
	// coordinators — piggybacked on conflicted lock responses and via
	// TWaitGraphReq polling — which assemble the global graph and send
	// back TVictimAbortReq for the victim of a confirmed cycle; the
	// lock-wait timeout remains the backstop.
	waits *lock.WaitGraph
	// purgedTxns counts transaction-state records garbage-collected
	// since startup (finished and fully released).
	purgedTxns atomic.Int64

	// Replication state (see ReplConfig). epoch 0 means unreplicated:
	// the fence passes everything and replLog stays nil. On replicated
	// servers every committed version install appends to replLog, and
	// only a head at the request's exact epoch serves mutating traffic.
	epoch   atomic.Uint64
	head    atomic.Bool
	replLog *repl.Log
	replCtr metrics.ReplCounters
	// replLag is the standby's distance behind its upstream in log
	// records, as of the last pull (0 on heads).
	replLag atomic.Int64
	// appliedLSN is the highest upstream LSN this standby has applied —
	// the snapshot watermark after a sync, then the last tail record. A
	// lag barrier compares it against the head's *current* watermark:
	// the standby's self-reported replLag is only as fresh as its last
	// pull and reads 0 in the window between an upstream commit and the
	// pull that fetches it.
	appliedLSN atomic.Uint64
	// pullStop ends the standby pull loop on promotion; pullOnce guards
	// the close when Close races a Promote.
	pullStop chan struct{}
	pullOnce sync.Once

	keyStripes [stripeCount]keyStripe
	txnStripes [stripeCount]txnStripe

	// peers caches server-to-server RPC clients (suspicion proposals
	// and victim aborts). Each is a single-connection rpc.Client, so
	// concurrent callers get correlation ids instead of taking turns,
	// and a stalled RPC to one peer never blocks victim aborts routed
	// through a healthy one.
	peersMu sync.Mutex
	peers   map[string]*rpc.Client
	// accepted tracks live inbound connections so Close can unblock
	// their serveConn goroutines: a connection dialed by another server
	// (decide traffic) stays open as long as that server lives, and
	// without an explicit close here Close would wait on it forever.
	acceptedMu sync.Mutex
	accepted   map[transport.Conn]struct{}

	stop chan struct{}
	// closing is set before Close sweeps peers and accepted, so the
	// accept and peer-dial paths can refuse to register new entries the
	// sweep would miss: a conn accepted (or a peer client dialed) after
	// the sweep would otherwise never be closed, and on a virtual
	// timeline its parked goroutine would pin wg.Wait forever.
	closing atomic.Bool
	wg      sync.WaitGroup
	timers  clock.Timers
}

// New starts a server listening at cfg.Addr.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	// The listener's address is the server's identity: coordinators put
	// it in DecisionSrv fields, and proposeAbort compares against it.
	// Over TCP a requested ":0" resolves to the real bound address here.
	cfg.Addr = l.Addr()
	s := &Server{
		cfg:      cfg,
		listener: l,
		timers:   clock.OrSystem(cfg.Timers),
		registry: commitment.NewRegistry(),
		waits:    lock.NewWaitGraph(),
		peers:    make(map[string]*rpc.Client),
		accepted: make(map[transport.Conn]struct{}),
		stop:     make(chan struct{}),
	}
	for i := range s.keyStripes {
		s.keyStripes[i].keys = make(map[string]*keyState)
	}
	for i := range s.txnStripes {
		s.txnStripes[i].txns = make(map[uint64]*txnState)
	}
	if r := cfg.Repl; r != nil {
		s.replLog = repl.NewLog(r.LogCap)
		s.epoch.Store(r.Epoch)
		s.head.Store(!r.Standby)
		s.pullStop = make(chan struct{})
		if r.Standby {
			// -1 = no completed pull yet: distinguishable from a drained
			// log, so lag barriers cannot pass before the first sync.
			s.replLag.Store(-1)
			s.wg.Add(1)
			s.timers.Go(s.pullLoop)
		}
	}
	s.wg.Add(2)
	s.timers.Go(s.acceptLoop)
	s.timers.Go(s.suspectLoop)
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	s.closing.Store(true)
	close(s.stop)
	err := s.listener.Close()
	s.peersMu.Lock()
	for _, pc := range s.peers {
		_ = pc.Close()
	}
	s.peers = map[string]*rpc.Client{}
	s.peersMu.Unlock()
	s.acceptedMu.Lock()
	for c := range s.accepted {
		_ = c.Close()
	}
	s.acceptedMu.Unlock()
	s.stopPull()
	s.timers.Idle(s.wg.Wait)
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// key returns the state for k, creating it if needed. Only the owning
// stripe is locked, and only for the map access — per-key lock tables
// and version lists synchronize themselves.
func (s *Server) key(k string) *keyState {
	st := &s.keyStripes[strhash.FNV1a(k)&(stripeCount-1)]
	st.mu.RLock()
	ks, ok := st.keys[k]
	st.mu.RUnlock()
	if ok {
		return ks
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ks, ok = st.keys[k]; ok {
		return ks
	}
	ks = &keyState{locks: lock.NewTableKeyedTimers(s.waits, k, s.timers), versions: version.NewList()}
	st.keys[k] = ks
	return ks
}

// txnStripeFor selects the stripe owning transaction id. The id layout
// is clientID<<32|seq, so both halves are mixed into the stripe index.
func (s *Server) txnStripeFor(id uint64) *txnStripe {
	return &s.txnStripes[uint32(id^(id>>32))&(stripeCount-1)]
}

// withTxn runs fn with the transaction's state (created if absent) under
// its stripe mutex. fn must not block or call back into the server.
// After fn returns, the record is garbage-collected if the transaction
// is finished and fully released, so every touch point doubles as a GC
// opportunity and finished records do not accumulate.
func (s *Server) withTxn(id uint64, fn func(*txnState)) {
	st := s.txnStripeFor(id)
	st.mu.Lock()
	t, ok := st.txns[id]
	if !ok {
		t = &txnState{pending: map[string][]byte{}, writeKeys: map[string]bool{}}
		st.txns[id] = t
	}
	fn(t)
	s.gcTxnLocked(st, id, t)
	st.mu.Unlock()
}

// withTxnIfPresent is withTxn without the create: fn runs only if a
// record exists, and the return reports whether it did. Late-arriving
// messages for garbage-collected transactions (a release retry, a
// duplicate decide) use this so they cannot resurrect state.
func (s *Server) withTxnIfPresent(id uint64, fn func(*txnState)) bool {
	st := s.txnStripeFor(id)
	st.mu.Lock()
	t, ok := st.txns[id]
	if ok {
		fn(t)
		s.gcTxnLocked(st, id, t)
	}
	st.mu.Unlock()
	return ok
}

// gcTxnLocked deletes the transaction's record once it is finished and
// holds no pending values or write-lock bookkeeping (read-lock state
// needs no record: releases and freezes name their keys explicitly).
// Callers hold st.mu.
func (s *Server) gcTxnLocked(st *txnStripe, id uint64, t *txnState) {
	if !t.finished || len(t.pending) != 0 || len(t.writeKeys) != 0 {
		return
	}
	delete(st.txns, id)
	s.purgedTxns.Add(1)
	// Drop any unconsumed deadlock-victim mark along with the record.
	s.waits.ClearAbort(lock.Owner(id))
}

// fence reports whether a mutating request stamped with reqEpoch may be
// served: unreplicated servers (epoch 0) accept everything; replicated
// servers require the head role and an exact epoch match, so a
// coordinator still routing to a demoted or stale replica is turned
// away (and can refresh its route) instead of mutating state the chain
// no longer agrees on. A false return has already been counted.
func (s *Server) fence(reqEpoch uint64) bool {
	e := s.epoch.Load()
	if e == 0 {
		return true
	}
	if s.head.Load() && reqEpoch == e {
		return true
	}
	s.replCtr.WrongEpoch()
	return false
}

// --- connection handling ----------------------------------------------------

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.acceptedMu.Lock()
		if s.closing.Load() {
			// Close's sweep may already have passed; registering now
			// would leak a conn nobody closes. (If closing is still
			// false here, the sweep has not taken acceptedMu yet and
			// will see this entry.)
			s.acceptedMu.Unlock()
			_ = conn.Close()
			continue
		}
		s.accepted[conn] = struct{}{}
		s.acceptedMu.Unlock()
		s.wg.Add(1)
		s.timers.Go(func() { s.serveConn(conn) })
	}
}

// serveConn demultiplexes one coordinator connection through
// rpc.ServeConn: blocking requests run in their own goroutines and may
// reply out of order (responses are tagged with the request's
// correlation id); everything else is handled inline in arrival order.
func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.acceptedMu.Lock()
		delete(s.accepted, conn)
		s.acceptedMu.Unlock()
	}()
	rpc.ServeConnTimers(conn, blocking, s.dispatch, func(err error) {
		s.logf("server %s: send: %v", s.cfg.Addr, err)
	}, s.timers)
}

// blocking reports the message types whose handlers may park — lock
// acquisitions wait on conflicts, and victim aborts may call the
// decision server (a peer RPC) — and must therefore run off the read
// loop. Everything else (freeze, release, decide, purge, stats) is
// non-blocking and handled inline, in arrival order: that preserves the
// FIFO semantics coordinators rely on when they fire-and-forget a
// freeze and then issue the next request on the same flow.
func blocking(t wire.MsgType) bool {
	switch t {
	case wire.TReadLockReq, wire.TReadLockBatchReq, wire.TWriteLockReq, wire.TWriteLockBatchReq, wire.TVictimAbortReq:
		return true
	}
	return false
}

func (s *Server) dispatch(f *wire.FrameBuf, reply rpc.Reply) {
	switch f.Type() {
	case wire.TReadLockReq:
		req, err := wire.DecodeReadLockReq(f.Body())
		if err != nil {
			reply(wire.TReadLockResp, wire.ReadLockResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TReadLockResp, s.handleReadLock(req))
	case wire.TReadLockBatchReq:
		req, err := wire.DecodeReadLockBatchReq(f.Body())
		if err != nil {
			reply(wire.TReadLockBatchResp, wire.ReadLockBatchResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TReadLockBatchResp, s.handleReadLockBatch(req))
	case wire.TWriteLockReq:
		req, err := wire.DecodeWriteLockReq(f.Body())
		if err != nil {
			reply(wire.TWriteLockResp, wire.WriteLockResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TWriteLockResp, s.handleWriteLock(req))
	case wire.TWriteLockBatchReq:
		req, err := wire.DecodeWriteLockBatchReq(f.Body())
		if err != nil {
			reply(wire.TWriteLockBatchResp, wire.WriteLockBatchResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TWriteLockBatchResp, s.handleWriteLockBatch(req))
	case wire.TFreezeWriteReq:
		req, err := wire.DecodeFreezeWriteReq(f.Body())
		if err != nil {
			reply(wire.TFreezeWriteResp, wire.Ack{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TFreezeWriteResp, s.handleFreezeWrite(req))
	case wire.TFreezeReadReq:
		req, err := wire.DecodeFreezeReadReq(f.Body())
		if err != nil {
			reply(wire.TFreezeReadResp, wire.Ack{Status: wire.StatusError, Err: err.Error()})
			return
		}
		// Not fenced, like the freeze/release batch handlers: it only
		// freezes read locks their owner was granted, a no-op elsewhere.
		s.key(req.Key).locks.FreezeReadIn(lock.Owner(req.Txn), timestamp.Span(req.Lo, req.Hi))
		reply(wire.TFreezeReadResp, wire.Ack{Status: wire.StatusOK})
	case wire.TFreezeBatchReq:
		req, err := wire.DecodeFreezeBatchReq(f.Body())
		if err != nil {
			reply(wire.TFreezeBatchResp, wire.FreezeBatchResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TFreezeBatchResp, s.handleFreezeBatch(req))
	case wire.TReleaseReq:
		req, err := wire.DecodeReleaseReq(f.Body())
		if err != nil {
			reply(wire.TReleaseResp, wire.Ack{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TReleaseResp, s.handleRelease(req))
	case wire.TReleaseBatchReq:
		req, err := wire.DecodeReleaseBatchReq(f.Body())
		if err != nil {
			reply(wire.TReleaseBatchResp, wire.Ack{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TReleaseBatchResp, s.handleReleaseBatch(req))
	case wire.TDecideReq:
		req, err := wire.DecodeDecideReq(f.Body())
		if err != nil {
			// An explicit error status: a fabricated "abort" decision
			// would be indistinguishable from the commitment object
			// really deciding abort.
			reply(wire.TDecideResp, wire.DecideResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		// Epoch 0 bypasses the fence: server-to-server abort proposals
		// (the suspicion scanner, victim aborts) do not track
		// coordinator epochs, and accepting them anywhere is safe —
		// abort is the default outcome.
		if req.Epoch != 0 && !s.fence(req.Epoch) {
			reply(wire.TDecideResp, wire.DecideResp{Status: wire.StatusWrongEpoch, Err: "wrong epoch"})
			return
		}
		d := s.handleDecide(req)
		reply(wire.TDecideResp, wire.DecideResp{Status: wire.StatusOK, Kind: d.Kind, TS: d.TS})
	case wire.TPurgeReq:
		req, err := wire.DecodePurgeReq(f.Body())
		if err != nil {
			// An explicit error status: an empty PurgeResp would read
			// as "purged 0, OK".
			reply(wire.TPurgeResp, wire.PurgeResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		v, l := s.purgeBelow(req.Bound)
		reply(wire.TPurgeResp, wire.PurgeResp{Status: wire.StatusOK, Versions: int64(v), Locks: int64(l)})
	case wire.TStatsReq:
		reply(wire.TStatsResp, s.stats())
	case wire.TWaitGraphReq:
		reply(wire.TWaitGraphResp, wire.WaitGraphResp{Edges: s.exportEdges()})
	case wire.TVictimAbortReq:
		req, err := wire.DecodeVictimAbortReq(f.Body())
		if err != nil {
			reply(wire.TVictimAbortResp, wire.Ack{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TVictimAbortResp, s.handleVictimAbort(req))
	case wire.TSnapshotChunkReq:
		req, err := wire.DecodeSnapshotChunkReq(f.Body())
		if err != nil {
			reply(wire.TSnapshotChunkResp, wire.SnapshotChunkResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TSnapshotChunkResp, s.handleSnapshotChunk(req))
	case wire.TLogTailReq:
		req, err := wire.DecodeLogTailReq(f.Body())
		if err != nil {
			reply(wire.TLogTailResp, wire.LogTailResp{Status: wire.StatusError, Err: err.Error()})
			return
		}
		reply(wire.TLogTailResp, s.handleLogTail(req))
	default:
		s.logf("server %s: unknown message type %d", s.cfg.Addr, f.Type())
	}
}

// --- handlers ----------------------------------------------------------------

// handleReadLock runs the server-side read step for one key: a batch of
// one (Alg. 13, receive-read-lock-message).
func (s *Server) handleReadLock(req wire.ReadLockReq) wire.ReadLockResp {
	// Single-key messages predate epochs; they are stamped with the
	// server's own, so the batch fence passes them exactly on heads.
	batch := s.handleReadLockBatch(wire.ReadLockBatchReq{
		Txn: req.Txn, Epoch: s.epoch.Load(), Upper: req.Upper, Wait: req.Wait, Keys: []string{req.Key},
	})
	if batch.Status != wire.StatusOK {
		return wire.ReadLockResp{Status: batch.Status, Err: batch.Err}
	}
	r := batch.Results[0]
	return wire.ReadLockResp{
		Status: r.Status, Err: r.Err, VersionTS: r.VersionTS, Value: r.Value, Got: r.Got,
		Edges: batch.Edges,
	}
}

// handleReadLockBatch runs the read step for a transaction's whole
// share of a static read set: per-key version pick and read-lock
// acquisition (the batched form of handleReadLock). It touches no
// transaction state at all — read-lock bookkeeping lives entirely in
// the per-key lock tables, since releases and freezes name their keys
// explicitly.
func (s *Server) handleReadLockBatch(req wire.ReadLockBatchReq) wire.ReadLockBatchResp {
	if !s.fence(req.Epoch) {
		return wire.ReadLockBatchResp{Status: wire.StatusWrongEpoch, Err: "wrong epoch or not the partition head"}
	}
	owner := lock.Owner(req.Txn)
	results := make([]wire.ReadLockResult, len(req.Keys))
	anyDenied := false
	wait := req.Wait
	for i, k := range req.Keys {
		// Each key gets its own lock-wait budget, exactly as n
		// sequential single-key reads would: one blocked key must not
		// starve its siblings' waits or poison their results.
		results[i] = func() wire.ReadLockResult {
			ctx, cancel := s.timers.WithTimeout(context.Background(), s.cfg.LockWaitTimeout)
			defer cancel()
			return s.readLockKey(ctx, k, owner, req.Upper, wait)
		}()
		if results[i].Status != wire.StatusOK {
			anyDenied = true
			// The coordinator aborts on any per-key failure, so once one
			// sub-read has failed there is no point parking on the rest:
			// the remaining keys fall back to no-wait acquisition. This
			// bounds a doomed waiting batch to roughly one lock-wait
			// timeout instead of one per blocked key, and stops piling
			// up waits for a transaction whose coordinator may already
			// have timed out, aborted and released.
			wait = false
		}
	}
	resp := wire.ReadLockBatchResp{Status: wire.StatusOK, Results: results}
	if anyDenied && req.Wait {
		// Denied sub-reads of a waiting batch mean someone held
		// conflicting locks long enough to park us; export the local
		// wait-for edges so the coordinator's cross-server deadlock
		// detector sees them without polling (no-wait requesters never
		// park, so they cannot be in a cycle and skip the snapshot
		// cost).
		resp.Edges = s.exportEdges()
	}
	return resp
}

// readLockKey is the per-key read step: pick the latest version below
// upper, read-lock the interval above it (waiting on unfrozen write
// locks when requested), retrying while newer frozen versions appear.
func (s *Server) readLockKey(ctx context.Context, key string, owner lock.Owner, upper timestamp.Timestamp, wait bool) wire.ReadLockResult {
	ks := s.key(key)
	for {
		if ctx.Err() != nil {
			return wire.ReadLockResult{Status: wire.StatusConflict, Err: "lock wait timeout"}
		}
		v, err := ks.versions.LatestBefore(upper)
		if err != nil {
			return wire.ReadLockResult{Status: wire.StatusPurged, Err: err.Error()}
		}
		span := timestamp.Span(v.TS.Next(), upper)
		if span.IsEmpty() {
			return wire.ReadLockResult{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: timestamp.Empty}
		}
		res, err := ks.locks.AcquireRead(ctx, owner, span, lock.Options{Wait: wait, Partial: true})
		if err != nil {
			// A deadlock victim gets its own status so coordinators
			// retry it immediately instead of backing off.
			status := wire.StatusConflict
			if errors.Is(err, lock.ErrDeadlock) {
				status = wire.StatusDeadlock
			}
			return wire.ReadLockResult{Status: status, Err: err.Error()}
		}
		switch {
		case res.FrozenAt == nil:
			return wire.ReadLockResult{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: res.Got}
		case !res.FrozenAt.Lo.Before(upper), !wait && !res.Got.IsEmpty():
			// Frozen at the top of the request, or no-wait with a
			// usable prefix: settle.
			return wire.ReadLockResult{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: res.Got}
		default:
			if !res.Got.IsEmpty() {
				ks.locks.ReleaseReadIn(owner, res.Got)
			}
		}
	}
}

// handleWriteLock acquires write locks and buffers the pending value.
func (s *Server) handleWriteLock(req wire.WriteLockReq) wire.WriteLockResp {
	batch := s.handleWriteLockBatch(wire.WriteLockBatchReq{
		Txn:         req.Txn,
		Epoch:       s.epoch.Load(),
		DecisionSrv: req.DecisionSrv,
		Wait:        req.Wait,
		Items:       []wire.WriteLockItem{{Key: req.Key, Set: req.Set, Value: req.Value}},
	})
	if batch.Status != wire.StatusOK {
		return wire.WriteLockResp{Status: batch.Status, Err: batch.Err}
	}
	r := batch.Results[0]
	return wire.WriteLockResp{Status: r.Status, Err: r.Err, Got: r.Got, Denied: r.Denied}
}

// handleWriteLockBatch acquires write locks and buffers pending values
// for a transaction's whole share of the footprint: per-key lock
// acquisition, then a single pass over the transaction state to record
// everything acquired (Alg. 13, receive-write-lock-message, batched).
func (s *Server) handleWriteLockBatch(req wire.WriteLockBatchReq) wire.WriteLockBatchResp {
	if !s.fence(req.Epoch) {
		return wire.WriteLockBatchResp{Status: wire.StatusWrongEpoch, Err: "wrong epoch or not the partition head"}
	}
	// withTxn (creating) is deliberate: this is the one message that
	// legitimately brings a transaction into existence here. The cost is
	// a narrow resurrection race — a write-lock delayed past the
	// suspicion scanner's abort+GC recreates the record and holds locks
	// until the scanner re-reaps it (firstWriteLock is stamped below, so
	// it is re-reaped within WriteLockTimeout); the transaction itself
	// can never commit, since its commitment object already decided.
	finished := false
	s.withTxn(req.Txn, func(t *txnState) {
		if t.finished {
			finished = true
			return
		}
		if req.DecisionSrv != "" {
			t.decisionSrv = req.DecisionSrv
		}
		// Stamp the suspicion clock on the first write-lock *attempt*:
		// even a fully denied batch leaves a record behind, and without
		// a timestamp the suspicion scanner would never reap it if the
		// coordinator dies before deciding.
		if len(req.Items) > 0 && t.firstWriteLock.IsZero() {
			t.firstWriteLock = s.timers.Now()
		}
	})
	if finished {
		return wire.WriteLockBatchResp{Status: wire.StatusAborted, Err: "transaction already decided"}
	}

	owner := lock.Owner(req.Txn)
	ctx, cancel := s.timers.WithTimeout(context.Background(), s.cfg.LockWaitTimeout)
	defer cancel()
	results := make([]wire.WriteLockResult, len(req.Items))
	acquired := make([]bool, len(req.Items))
	any, anyDenied := false, false
	for i, it := range req.Items {
		ks := s.key(it.Key)
		res, err := ks.locks.AcquireWrite(ctx, owner, it.Set, lock.Options{Wait: req.Wait, Partial: true})
		if err != nil {
			status := wire.StatusConflict
			switch {
			case errors.Is(err, lock.ErrFrozen):
				status = wire.StatusFrozen
			case errors.Is(err, lock.ErrDeadlock):
				status = wire.StatusDeadlock
			}
			results[i] = wire.WriteLockResult{Status: status, Err: err.Error(), Denied: res.Denied}
			anyDenied = true
			continue
		}
		results[i] = wire.WriteLockResult{Status: wire.StatusOK, Got: res.Got, Denied: res.Denied}
		if !res.Denied.IsEmpty() {
			anyDenied = true
		}
		if !res.Got.IsEmpty() {
			acquired[i] = true
			any = true
		}
	}
	if any {
		finishedLate := false
		// Re-check the fence after acquisition: a batch that entered as
		// head can park in AcquireWrite across a demotion, and recording
		// pending writes on an ex-head would dodge the failover drain's
		// live-transaction accounting (it assumes no new pending state
		// after the flip). The coordinator sees WrongEpoch — retryable,
		// nothing was exposed.
		fencedLate := !s.fence(req.Epoch)
		s.withTxn(req.Txn, func(t *txnState) {
			// Re-check: the suspicion scanner may have decided the
			// transaction while this batch was acquiring locks;
			// recording pending writes on a finished transaction would
			// leak unfrozen write locks the scanner never revisits.
			if t.finished {
				finishedLate = true
				return
			}
			if fencedLate {
				// Don't record; and if this batch just created the
				// record, finish it so it garbage-collects right here
				// instead of waiting out the suspicion scanner.
				if len(t.pending) == 0 && len(t.writeKeys) == 0 {
					t.finished = true
				}
				return
			}
			for i, it := range req.Items {
				if !acquired[i] {
					continue
				}
				// The decoded value is a borrowed view of the request
				// frame, which is recycled when this handler returns;
				// the pending write outlives it, so copy out.
				t.pending[it.Key] = bytes.Clone(it.Value)
				t.writeKeys[it.Key] = true
			}
		})
		if finishedLate || fencedLate {
			for i, it := range req.Items {
				if acquired[i] {
					s.key(it.Key).locks.ReleaseWrites(owner)
				}
			}
			if fencedLate && !finishedLate {
				return wire.WriteLockBatchResp{Status: wire.StatusWrongEpoch, Err: "demoted during acquisition"}
			}
			return wire.WriteLockBatchResp{Status: wire.StatusAborted, Err: "transaction already decided"}
		}
	}
	resp := wire.WriteLockBatchResp{Status: wire.StatusOK, Results: results}
	if anyDenied && req.Wait {
		// Denied acquisitions of a waiting batch mean someone held
		// conflicting locks long enough to park us; export the local
		// wait-for edges so the coordinator's cross-server deadlock
		// detector sees them without polling. No-wait batches
		// (timestamp ordering) can never deadlock, so their denials
		// skip the snapshot.
		resp.Edges = s.exportEdges()
	}
	return resp
}

// handleFreezeWrite applies a commit at req.TS for one key: install the
// pending value, then freeze the write lock (install-before-freeze keeps
// the frozen-implies-present invariant readers rely on).
func (s *Server) handleFreezeWrite(req wire.FreezeWriteReq) wire.Ack {
	resp := s.handleFreezeBatch(wire.FreezeBatchReq{Txn: req.Txn, Epoch: s.epoch.Load(), TS: req.TS, WriteKeys: []string{req.Key}})
	if resp.Status != wire.StatusOK {
		return wire.Ack{Status: resp.Status, Err: resp.Err}
	}
	return resp.WriteAcks[0]
}

// handleFreezeBatch applies a commit at req.TS across the transaction's
// keys on this server: install every pending value and freeze its write
// lock (install-before-freeze keeps the frozen-implies-present invariant
// readers rely on), then freeze the requested read-lock ranges (garbage
// collection, Alg. 11 line 33).
func (s *Server) handleFreezeBatch(req wire.FreezeBatchReq) wire.FreezeBatchResp {
	// Deliberately NOT fenced. A freeze only acts on pending state that a
	// write-lock grant created, and grants are fenced — so on any server
	// that never granted, this is a no-op (withTxnIfPresent finds
	// nothing). A just-demoted head, though, MUST accept it: the
	// coordinator decided commit before the epoch flipped and freezes are
	// casts, so rejecting here would silently discard a durably decided
	// write — the failover drain waits for exactly these installs to
	// reach the replication log before the old head is crash-stopped.
	owner := lock.Owner(req.Txn)
	resp := wire.FreezeBatchResp{Status: wire.StatusOK}
	if len(req.WriteKeys) > 0 {
		resp.WriteAcks = make([]wire.Ack, len(req.WriteKeys))
		vals := make([][]byte, len(req.WriteKeys))
		has := make([]bool, len(req.WriteKeys))
		s.withTxnIfPresent(req.Txn, func(t *txnState) {
			for i, k := range req.WriteKeys {
				vals[i], has[i] = t.pending[k]
			}
		})
		frozen := make([]bool, len(req.WriteKeys))
		anyFrozen := false
		for i, k := range req.WriteKeys {
			if !has[i] {
				// No buffered value: either the decide path already
				// installed and froze this key (its record was then
				// garbage-collected, making this freeze redundant), or
				// the transaction timed out and aborted. A version
				// sitting exactly at the commit timestamp identifies
				// the redundant case.
				if _, done := s.key(k).versions.At(req.TS); done {
					resp.WriteAcks[i] = wire.Ack{Status: wire.StatusOK}
				} else {
					resp.WriteAcks[i] = wire.Ack{Status: wire.StatusError, Err: "no pending value (timed out and aborted?)"}
				}
				continue
			}
			ks := s.key(k)
			if err := s.install(ks, k, req.TS, vals[i]); err != nil {
				resp.WriteAcks[i] = wire.Ack{Status: wire.StatusError, Err: err.Error()}
				continue
			}
			if !ks.locks.FreezeWriteAt(owner, req.TS) {
				resp.WriteAcks[i] = wire.Ack{Status: wire.StatusError, Err: "write lock not held at commit timestamp"}
				continue
			}
			resp.WriteAcks[i] = wire.Ack{Status: wire.StatusOK}
			frozen[i] = true
			anyFrozen = true
		}
		if anyFrozen {
			s.withTxnIfPresent(req.Txn, func(t *txnState) {
				for i, k := range req.WriteKeys {
					if frozen[i] {
						delete(t.pending, k)
						// The lock at this key is frozen; any unfrozen
						// remainder is dropped by the coordinator's
						// release batch straight off the lock table, so
						// the record need not track the key anymore —
						// without this, committed transactions that
						// never release (timestamp ordering freezes
						// exactly what it locked) would pin their
						// records forever.
						delete(t.writeKeys, k)
					}
				}
				if len(t.pending) == 0 {
					// every buffered write on this server is exposed;
					// stop suspecting the coordinator
					t.finished = true
				}
			})
		}
	}
	for _, r := range req.Reads {
		s.key(r.Key).locks.FreezeReadIn(owner, timestamp.Span(r.Lo, r.Hi))
	}
	return resp
}

// handleRelease drops the transaction's unfrozen locks on a key.
func (s *Server) handleRelease(req wire.ReleaseReq) wire.Ack {
	return s.handleReleaseBatch(wire.ReleaseBatchReq{Txn: req.Txn, Epoch: s.epoch.Load(), WritesOnly: req.WritesOnly, Keys: []string{req.Key}})
}

// handleReleaseBatch drops the transaction's unfrozen locks on every
// listed key, then updates the transaction state in one pass.
func (s *Server) handleReleaseBatch(req wire.ReleaseBatchReq) wire.Ack {
	// Not fenced, for the same reason as handleFreezeBatch: releases only
	// drop locks their owner was granted (a no-op anywhere else), and a
	// demoted head must accept them so aborted in-flight transactions
	// drain their records — the failover harness waits for live
	// transactions to reach zero before freezing the old head's log.
	owner := lock.Owner(req.Txn)
	if req.Committed {
		// The sender's transaction decided commit at req.TS. Any write
		// key still pending here means the freeze cast that should have
		// installed it was lost in flight (both are fire-and-forget):
		// releasing its unfrozen lock below would silently discard a
		// durably committed write. Run the lost freeze first — the
		// freshly frozen locks then survive ReleaseUnfrozen.
		var lost []string
		s.withTxnIfPresent(req.Txn, func(t *txnState) {
			for _, k := range req.Keys {
				if _, ok := t.pending[k]; ok {
					lost = append(lost, k)
				}
			}
		})
		if len(lost) > 0 {
			s.handleFreezeBatch(wire.FreezeBatchReq{Txn: req.Txn, Epoch: req.Epoch, TS: req.TS, WriteKeys: lost})
		}
	}
	for _, k := range req.Keys {
		ks := s.key(k)
		if req.WritesOnly {
			ks.locks.ReleaseWrites(owner)
		} else {
			ks.locks.ReleaseUnfrozen(owner)
		}
	}
	// If-present: a release retried after the record was already
	// garbage-collected must not resurrect it (the lock tables above
	// were still cleaned — they do not need the record).
	s.withTxnIfPresent(req.Txn, func(t *txnState) {
		for _, k := range req.Keys {
			delete(t.pending, k)
			delete(t.writeKeys, k)
		}
		if len(t.writeKeys) == 0 {
			t.firstWriteLock = time.Time{}
		}
		// Release batches are only sent when the coordinator is done
		// with the transaction (Commit/Abort cleanup), so a record left
		// with nothing pending and no write locks is finished. Without
		// this, a client-side abort — whose decide reaches only the
		// decision server — would leave participant servers' records
		// unfinished with a zeroed suspicion clock: invisible to both
		// the GC and the scanner, leaking one record per abort.
		if len(t.pending) == 0 && len(t.writeKeys) == 0 {
			t.finished = true
		}
	})
	return wire.Ack{Status: wire.StatusOK}
}

// handleDecide runs the commitment object hosted on this server and
// applies the decision to local state.
func (s *Server) handleDecide(req wire.DecideReq) commitment.Decision {
	d := s.registry.Object(req.Txn).Decide(commitment.Decision{Kind: req.Proposal, TS: req.TS})
	s.applyDecision(req.Txn, d)
	return d
}

// exportEdges snapshots the local wait-for graph for the wire: each
// edge names the waiting transaction, the holder it blocks on, and the
// key of the blocking lock table.
func (s *Server) exportEdges() []wire.WaitEdge {
	local := s.waits.Edges(nil)
	if len(local) == 0 {
		return nil
	}
	out := make([]wire.WaitEdge, len(local))
	for i, e := range local {
		out[i] = wire.WaitEdge{Waiter: uint64(e.Waiter), Holder: uint64(e.Holder), Key: e.Key}
	}
	return out
}

// handleVictimAbort processes a coordinator's verdict on a cross-server
// deadlock cycle: the named transaction, parked on this server, is the
// cycle's victim. The server validates that the transaction is indeed
// waiting here (the coordinator's merged snapshot may be stale), aborts
// it through the existing decide path when it knows the decision server
// (recorded by the write-lock request that parked it), and wakes the
// parked acquisition with a deadlock error so the victim's coordinator
// aborts and retries immediately instead of sleeping out the lock-wait
// timeout. When the decision server is unknown (a parked read with no
// local writes), only the wake happens — the victim's own coordinator
// then runs the abort through the commitment object, which is the only
// place the outcome is actually decided.
func (s *Server) handleVictimAbort(req wire.VictimAbortReq) wire.Ack {
	owner := lock.Owner(req.Txn)
	if !s.waits.IsWaiting(owner) {
		return wire.Ack{Status: wire.StatusConflict, Err: "transaction not waiting here"}
	}
	var decisionSrv string
	finished := false
	s.withTxnIfPresent(req.Txn, func(t *txnState) {
		decisionSrv = t.decisionSrv
		finished = t.finished
	})
	if !finished && decisionSrv != "" {
		d, ok := s.proposeAbort(req.Txn, decisionSrv)
		if ok {
			s.applyDecision(req.Txn, d)
			if d.Kind == wire.DecideCommit {
				// The commitment object already decided commit — the
				// coordinator won the race, so whatever the snapshot
				// showed is no longer a deadlock involving this txn.
				return wire.Ack{Status: wire.StatusConflict, Err: "transaction already committed"}
			}
		}
	}
	s.logf("server %s: deadlock victim txn %d aborted (blocked on %q)", s.cfg.Addr, req.Txn, req.Key)
	s.waits.Abort(owner)
	return wire.Ack{Status: wire.StatusOK}
}

// applyDecision finalizes a transaction locally: on abort, release its
// locks and drop pending values; on commit, freeze-and-install any
// pending writes at the decided timestamp (the write-lock-timeout path
// of Alg. 13 reaches this with a commit decision when the coordinator
// managed to decide before crashing). Either way the record's pending
// and write-key state is cleared afterwards, so the touch-point GC in
// withTxn purges the finished record.
func (s *Server) applyDecision(txn uint64, d commitment.Decision) {
	var writeKeys []string
	var pending map[string][]byte
	alreadyDone := false
	s.withTxn(txn, func(t *txnState) {
		if t.finished {
			alreadyDone = true
			return
		}
		t.finished = true
		writeKeys = make([]string, 0, len(t.writeKeys))
		for k := range t.writeKeys {
			writeKeys = append(writeKeys, k)
		}
		pending = make(map[string][]byte, len(t.pending))
		for k, v := range t.pending {
			pending[k] = v
		}
	})
	if alreadyDone {
		return
	}

	owner := lock.Owner(txn)
	if d.Kind == wire.DecideAbort {
		for _, k := range writeKeys {
			s.key(k).locks.ReleaseWrites(owner)
		}
	} else {
		for k, val := range pending {
			ks := s.key(k)
			if err := s.install(ks, k, d.TS, val); err != nil {
				s.logf("server %s: install %q at %v: %v", s.cfg.Addr, k, d.TS, err)
				continue
			}
			ks.locks.FreezeWriteAt(owner, d.TS)
		}
	}
	s.withTxnIfPresent(txn, func(t *txnState) {
		t.pending = map[string][]byte{}
		t.writeKeys = map[string]bool{}
	})
}

// --- suspicion scanner --------------------------------------------------------

// suspectLoop periodically looks for transactions whose unfrozen write
// locks have been held too long, suspects their coordinator and proposes
// abort to the decision server (write-lock-timeout, Alg. 13).
func (s *Server) suspectLoop() {
	defer s.wg.Done()
	for {
		if s.timers.SleepStop(s.cfg.ScanInterval, s.stop) {
			return
		}
		s.scanOnce()
	}
}

func (s *Server) scanOnce() {
	type suspect struct {
		txn         uint64
		decisionSrv string
	}
	var suspects []suspect
	now := s.timers.Now()
	for i := range s.txnStripes {
		st := &s.txnStripes[i]
		st.mu.Lock()
		for id, t := range st.txns {
			if t.finished || t.firstWriteLock.IsZero() {
				continue
			}
			if now.Sub(t.firstWriteLock) >= s.cfg.WriteLockTimeout {
				suspects = append(suspects, suspect{txn: id, decisionSrv: t.decisionSrv})
			}
		}
		st.mu.Unlock()
	}
	for _, sp := range suspects {
		d, ok := s.proposeAbort(sp.txn, sp.decisionSrv)
		if !ok {
			continue // decision server unreachable; retry next scan
		}
		s.logf("server %s: suspected txn %d, decision %v", s.cfg.Addr, sp.txn, d.Kind)
		s.applyDecision(sp.txn, d)
	}
}

// proposeAbort reaches the transaction's commitment object — locally if
// this server is the decision point, over the network otherwise — and
// proposes abort.
func (s *Server) proposeAbort(txn uint64, decisionSrv string) (commitment.Decision, bool) {
	proposal := commitment.Decision{Kind: wire.DecideAbort}
	if decisionSrv == "" || decisionSrv == s.cfg.Addr {
		return s.registry.Object(txn).Decide(proposal), true
	}
	f, err := s.callPeer(decisionSrv, wire.TDecideReq,
		wire.DecideReq{Txn: txn, Proposal: wire.DecideAbort})
	if err != nil {
		// Cannot reach the decision server: do not act unilaterally;
		// the scanner retries later.
		s.logf("server %s: decide via %s: %v", s.cfg.Addr, decisionSrv, err)
		return commitment.Decision{}, false
	}
	d, err := wire.DecodeDecideResp(f.Body())
	f.Release()
	if err != nil || d.Status != wire.StatusOK {
		return commitment.Decision{}, false
	}
	return commitment.Decision{Kind: d.Kind, TS: d.TS}, true
}

// callPeer performs one synchronous RPC to another server over the
// cached per-peer rpc.Client. Peer RPCs are rare — suspicion proposals
// and victim aborts only — so each peer gets a single pipelined
// connection; concurrent callers multiplex on it by correlation id. The
// caller owns the returned frame buffer and must Release it after
// decoding. Calls are bounded by PeerCallTimeout, and a client whose
// connection died is evicted (identity-checked) so the next scanner
// pass redials — a peer that crash-restarted on the same address
// becomes reachable again instead of failing forever.
func (s *Server) callPeer(addr string, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	s.peersMu.Lock()
	if s.closing.Load() {
		// Close's peer sweep may already have passed; a client dialed
		// now would never be closed.
		s.peersMu.Unlock()
		return nil, rpc.ErrClosed
	}
	pc, ok := s.peers[addr]
	if !ok {
		pc = rpc.NewClientTimers(s.cfg.Network, addr, 1, s.timers)
		s.peers[addr] = pc
	}
	s.peersMu.Unlock()
	ctx, cancel := s.timers.WithTimeout(context.Background(), s.cfg.PeerCallTimeout)
	defer cancel()
	f, err := pc.Call(ctx, 0, t, m)
	if err != nil && (errors.Is(err, rpc.ErrClosed) || errors.Is(err, transport.ErrClosed) || errors.Is(err, transport.ErrTimeout)) {
		s.peersMu.Lock()
		if s.peers[addr] == pc {
			delete(s.peers, addr)
		}
		s.peersMu.Unlock()
		_ = pc.Close()
	}
	return f, err
}

// --- maintenance ---------------------------------------------------------------

// forEachKeyState calls fn on every key's state. Key pointers are
// snapshotted per stripe before fn runs, so no stripe lock is held while
// per-key locks are taken.
func (s *Server) forEachKeyState(fn func(*keyState)) {
	var states []*keyState
	for i := range s.keyStripes {
		st := &s.keyStripes[i]
		st.mu.RLock()
		states = states[:0]
		for _, ks := range st.keys {
			states = append(states, ks)
		}
		st.mu.RUnlock()
		for _, ks := range states {
			fn(ks)
		}
	}
}

func (s *Server) purgeBelow(bound timestamp.Timestamp) (versions, locks int) {
	s.forEachKeyState(func(ks *keyState) {
		versions += ks.versions.PurgeBelow(bound)
		locks += ks.locks.PurgeFrozenBelow(bound)
	})
	return versions, locks
}

func (s *Server) stats() wire.StatsResp {
	var st wire.StatsResp
	s.forEachKeyState(func(ks *keyState) {
		st.Keys++
		ls := ks.locks.Stats()
		st.LockEntries += int64(ls.Entries)
		st.FrozenLocks += int64(ls.Frozen)
		st.Versions += int64(ks.versions.Count())
	})
	for i := range s.txnStripes {
		tst := &s.txnStripes[i]
		tst.mu.Lock()
		st.LiveTxns += int64(len(tst.txns))
		tst.mu.Unlock()
	}
	st.PurgedTxns = s.purgedTxns.Load()
	if s.replLog != nil {
		st.ReplEpoch = int64(s.epoch.Load())
		st.ReplLag = s.replLag.Load()
		rs := s.replCtr.Snapshot()
		st.ReplPromotions = rs.Promotions
		st.ReplWrongEpoch = rs.WrongEpoch
		st.ReplCatchupBytes = rs.CatchupBytes
	}
	return st
}

// --- replication ---------------------------------------------------------------

// install exposes a committed value at ts and, on a replicated head,
// appends the install to the partition log. The freeze path and the
// decide path can race to install the same version; whoever loses sees
// ErrExists, which means the winner already logged it — so every install
// is logged exactly once, and install-then-append ordering holds: any
// record with an LSN at or below the log's watermark is already visible
// to version reads (the snapshot/tail inclusion property).
func (s *Server) install(ks *keyState, key string, ts timestamp.Timestamp, value []byte) error {
	if err := ks.versions.Install(ts, value); err != nil {
		if errors.Is(err, version.ErrExists) {
			return nil
		}
		return err
	}
	// Log every fresh install, head or not: installs only happen on the
	// commit path (freeze/decide), so each one is durably acked state. A
	// just-demoted head still logs its in-flight freezes here — a fenced
	// handover drains those records to the successor before it starts
	// serving, so no acked commit is lost to the epoch change. (Standby
	// catch-up does not come through here; it replays pulled records via
	// applyReplRecord at the upstream's LSNs.)
	if s.replLog != nil {
		s.replLog.Append(key, ts, value)
	}
	return nil
}

// sortedKeys snapshots the names of every key this server holds, sorted.
// Keys are created on demand and never deleted, so a cursor into the
// sorted list can only be outrun by insertions — a chunked snapshot scan
// may resend a key that slid past the cursor, never skip one.
func (s *Server) sortedKeys() []string {
	var keys []string
	for i := range s.keyStripes {
		st := &s.keyStripes[i]
		st.mu.RLock()
		for k := range st.keys {
			keys = append(keys, k)
		}
		st.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// handleSnapshotChunk serves one chunk of a full-state transfer to a
// joining replica: every committed version of up to MaxKeys keys from
// the cursor onward. The first chunk's LSN is the log watermark, taken
// *before* any version is read: installs append to the log only after
// they are visible, so everything logged at or below the watermark is in
// some chunk, and the puller resumes the tail at watermark+1 (overlap
// re-applies idempotently).
func (s *Server) handleSnapshotChunk(req wire.SnapshotChunkReq) wire.SnapshotChunkResp {
	if s.replLog == nil {
		return wire.SnapshotChunkResp{Status: wire.StatusError, Err: "server is not replicated"}
	}
	e := s.epoch.Load()
	if req.Epoch != 0 && req.Epoch != e {
		s.replCtr.WrongEpoch()
		return wire.SnapshotChunkResp{Status: wire.StatusWrongEpoch, Err: "wrong epoch"}
	}
	maxKeys := int(req.MaxKeys)
	if maxKeys <= 0 {
		maxKeys = 256
	}
	watermark := s.replLog.NextLSN() - 1
	keys := s.sortedKeys()
	start := int(req.Cursor)
	if start > len(keys) {
		start = len(keys)
	}
	end := start + maxKeys
	if end > len(keys) {
		end = len(keys)
	}
	resp := wire.SnapshotChunkResp{Status: wire.StatusOK, Epoch: e, LSN: watermark}
	payload := 0
	for _, k := range keys[start:end] {
		for _, v := range s.key(k).versions.Snapshot() {
			if v.TS == timestamp.Zero {
				continue // the initial ⊥ every fresh version list already holds
			}
			resp.Records = append(resp.Records, wire.ReplRecord{Key: []byte(k), TS: v.TS, Value: v.Value})
			payload += len(k) + len(v.Value)
		}
	}
	if end < len(keys) {
		resp.NextCursor = uint64(end)
	}
	s.replCtr.CatchupBytes(payload)
	return resp
}

// handleLogTail serves the partition log from LSN From onward, capped at
// MaxRecords. A From before the retained window answers SnapshotNeeded
// instead of records; the puller re-syncs via snapshot.
func (s *Server) handleLogTail(req wire.LogTailReq) wire.LogTailResp {
	if s.replLog == nil {
		return wire.LogTailResp{Status: wire.StatusError, Err: "server is not replicated"}
	}
	e := s.epoch.Load()
	if req.Epoch != 0 && req.Epoch != e {
		s.replCtr.WrongEpoch()
		return wire.LogTailResp{Status: wire.StatusWrongEpoch, Err: "wrong epoch"}
	}
	maxRecords := int(req.MaxRecords)
	if maxRecords <= 0 {
		maxRecords = 512
	}
	recs, next, trimmed := s.replLog.From(nil, req.From, maxRecords)
	resp := wire.LogTailResp{Status: wire.StatusOK, Epoch: e, NextLSN: next, SnapshotNeeded: trimmed}
	payload := 0
	for _, r := range recs {
		resp.Records = append(resp.Records, wire.ReplRecord{LSN: r.LSN, Key: []byte(r.Key), TS: r.TS, Value: r.Value})
		payload += len(r.Key) + len(r.Value)
	}
	s.replCtr.CatchupBytes(payload)
	return resp
}

// applyReplRecord installs one pulled record locally. Key and Value are
// borrowed views of the pull frame, so both are copied out. Installs are
// idempotent (ErrExists tolerated) — the snapshot/tail overlap and chunk
// resends replay records freely. Tail records (LSN ≠ 0) also land in the
// standby's own log at the head's LSN, so a promoted standby can serve
// catch-up itself; a reported gap makes the pull loop re-sync.
func (s *Server) applyReplRecord(r *wire.ReplRecord) error {
	key := string(r.Key)
	val := bytes.Clone(r.Value)
	ks := s.key(key)
	if err := ks.versions.Install(r.TS, val); err != nil && !errors.Is(err, version.ErrExists) {
		s.logf("server %s: repl install %q at %v: %v", s.cfg.Addr, key, r.TS, err)
	}
	if r.LSN != 0 {
		return s.replLog.AppendAt(r.LSN, key, r.TS, val)
	}
	return nil
}

// pullCall performs one catch-up RPC to the standby's upstream. A dead
// client is replaced in place so the next attempt redials — the upstream
// may have crash-restarted on the same address.
func (s *Server) pullCall(rc **rpc.Client, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	ctx, cancel := s.timers.WithTimeout(context.Background(), s.cfg.PeerCallTimeout)
	defer cancel()
	f, err := (*rc).Call(ctx, 0, t, m)
	if err != nil && (errors.Is(err, rpc.ErrClosed) || errors.Is(err, transport.ErrClosed) || errors.Is(err, transport.ErrTimeout)) {
		_ = (*rc).Close()
		*rc = rpc.NewClientTimers(s.cfg.Network, s.cfg.Repl.Upstream, 1, s.timers)
	}
	return f, err
}

// pullSnapshot streams the upstream's full state chunk by chunk and
// returns the first chunk's log watermark; the tail pull resumes at
// watermark+1. The standby's own log is reset first: the records between
// its old tail and the new watermark were never pulled, and the log must
// stay contiguous to serve From after a promotion.
func (s *Server) pullSnapshot(rc **rpc.Client) (watermark uint64, ok bool) {
	s.replLog.Reset()
	var cursor uint64
	first := true
	for {
		f, err := s.pullCall(rc, wire.TSnapshotChunkReq, wire.SnapshotChunkReq{Cursor: cursor})
		if err != nil {
			return 0, false
		}
		chunk, err := wire.DecodeSnapshotChunkResp(f.Body())
		if err != nil || chunk.Status != wire.StatusOK {
			f.Release()
			return 0, false
		}
		if first {
			watermark = chunk.LSN
			first = false
		}
		s.adoptEpoch(chunk.Epoch)
		for i := range chunk.Records {
			_ = s.applyReplRecord(&chunk.Records[i]) // LSN 0: never errors
		}
		f.Release()
		if chunk.NextCursor == 0 {
			s.appliedLSN.Store(watermark)
			return watermark, true
		}
		cursor = chunk.NextCursor
	}
}

// pullLoop is the standby's catch-up driver: snapshot once, then tail
// the upstream's log — immediately again while records flow, backing off
// to PullInterval when drained. It exits on Close or promotion.
func (s *Server) pullLoop() {
	defer s.wg.Done()
	r := s.cfg.Repl
	interval := r.PullInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	rc := rpc.NewClientTimers(s.cfg.Network, r.Upstream, 1, s.timers)
	defer func() { _ = rc.Close() }()
	var from uint64
	needSnapshot := true
	var tail wire.LogTailResp
	for {
		select {
		case <-s.pullStop:
			return
		case <-s.stop:
			return
		default:
		}
		if needSnapshot {
			w, ok := s.pullSnapshot(&rc)
			if !ok {
				s.sleepPull(interval)
				continue
			}
			from = w + 1
			needSnapshot = false
		}
		f, err := s.pullCall(&rc, wire.TLogTailReq, wire.LogTailReq{From: from, MaxRecords: 512})
		if err != nil {
			s.sleepPull(interval)
			continue
		}
		if derr := tail.DecodeInto(f.Body()); derr != nil || tail.Status != wire.StatusOK {
			f.Release()
			s.sleepPull(interval)
			continue
		}
		s.adoptEpoch(tail.Epoch)
		if tail.SnapshotNeeded {
			f.Release()
			needSnapshot = true
			continue
		}
		// Records borrow the frame; apply before releasing it.
		for i := range tail.Records {
			if aerr := s.applyReplRecord(&tail.Records[i]); aerr != nil {
				s.logf("server %s: %v", s.cfg.Addr, aerr)
				needSnapshot = true
				break
			}
			s.appliedLSN.Store(tail.Records[i].LSN)
			from = tail.Records[i].LSN + 1
		}
		f.Release()
		if needSnapshot {
			continue
		}
		s.replLag.Store(int64(tail.NextLSN - from))
		if len(tail.Records) == 0 {
			s.sleepPull(interval)
		}
	}
}

// sleepPull waits one pull interval, returning early on stop or
// promotion (Close routes through stopPull, so pullStop covers both).
func (s *Server) sleepPull(d time.Duration) {
	s.timers.SleepStop(d, s.pullStop)
}

// adoptEpoch moves a standby's epoch forward to the upstream's serving
// epoch (never backward), so stats report current membership. Harmless
// for fencing: a standby rejects mutating traffic at any epoch.
func (s *Server) adoptEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Promote makes this server the partition head at epoch e: the standby
// pull loop stops and the fence starts admitting traffic stamped e. The
// caller (the cluster's director) must have stopped or demoted the old
// head first — two servers heading the same partition would diverge.
func (s *Server) Promote(e uint64) {
	s.stopPull()
	s.epoch.Store(e)
	s.head.Store(true)
	s.replLag.Store(0)
	s.replCtr.Promotion()
	s.logf("server %s: promoted to head at epoch %d", s.cfg.Addr, e)
}

// Demote strips the head role at epoch e (a planned handover): the
// server keeps serving catch-up from its log but turns mutating traffic
// away with StatusWrongEpoch. Demotions are not counted as promotions.
func (s *Server) Demote(e uint64) {
	s.epoch.Store(e)
	s.head.Store(false)
	s.logf("server %s: demoted at epoch %d", s.cfg.Addr, e)
}

// ReplLag returns the standby's last observed distance behind its
// upstream in log records: 0 on heads, unreplicated servers and drained
// standbys, -1 on a standby that has not completed a pull yet.
func (s *Server) ReplLag() int64 { return s.replLag.Load() }

// AppliedLSN returns the highest upstream log record this standby has
// applied (0 before the first completed snapshot). Meaningless on heads.
func (s *Server) AppliedLSN() uint64 { return s.appliedLSN.Load() }

// LogWatermark returns the last LSN this server has assigned to a
// committed install — the point a fully caught-up standby has applied
// up to. Zero on unreplicated servers and empty logs.
func (s *Server) LogWatermark() uint64 {
	if s.replLog == nil {
		return 0
	}
	return s.replLog.NextLSN() - 1
}

// IsHead reports whether this server currently serves its partition.
func (s *Server) IsHead() bool { return s.head.Load() }

// LiveTxns counts the transaction-state records currently held (pending
// writes or unreleased write-lock bookkeeping). The failover harness
// polls it on a just-demoted head: stably zero means every in-flight
// commit has frozen (and logged its installs) or released, and since
// new write locks are fenced, the replication log's watermark is fixed
// from that point on.
func (s *Server) LiveTxns() int64 {
	var n int64
	for i := range s.txnStripes {
		st := &s.txnStripes[i]
		st.mu.Lock()
		n += int64(len(st.txns))
		st.mu.Unlock()
	}
	return n
}

// stopPull ends the standby pull loop; safe to call repeatedly and on
// servers that never pulled.
func (s *Server) stopPull() {
	if s.pullStop == nil {
		return
	}
	s.pullOnce.Do(func() { close(s.pullStop) })
}
