// Package server implements the MVTL storage server of the distributed
// algorithm (§7/§H, Algorithm 13). A server owns a partition of the key
// space and holds, per key, the freezable interval lock table and the
// version history. Coordinators (package client) drive it through the
// wire protocol: read-lock, write-lock, freeze, release, decide, purge.
//
// Fault tolerance follows §H.1: each update transaction names a decision
// server hosting its commitment object. If a coordinator disappears
// leaving unfrozen write locks behind, the holding server times out and
// proposes "abort" to the decision server; whatever is decided is then
// applied locally (Lemma 4), so no transaction blocks forever on a dead
// coordinator (Theorem 9).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/commitment"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/version"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Config parameterizes a server.
type Config struct {
	// Addr is the listen address (and the server's identity).
	Addr string
	// Network provides the transport.
	Network transport.Network
	// LockWaitTimeout caps how long a blocking lock request may wait
	// before reporting a conflict (deadlock resolution). Default 1s.
	LockWaitTimeout time.Duration
	// WriteLockTimeout is how long unfrozen write locks may sit before
	// the server suspects the coordinator and proposes abort (§H).
	// Default 3s.
	WriteLockTimeout time.Duration
	// ScanInterval is the suspicion scanner period. Default 250ms.
	ScanInterval time.Duration
	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.LockWaitTimeout == 0 {
		c.LockWaitTimeout = time.Second
	}
	if c.WriteLockTimeout == 0 {
		c.WriteLockTimeout = 3 * time.Second
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = 250 * time.Millisecond
	}
	return c
}

// keyState is the per-key server state.
type keyState struct {
	locks    *lock.Table
	versions *version.List
}

// txnState tracks what this server knows about one transaction.
type txnState struct {
	decisionSrv string
	// pending holds buffered write values per key (Alg. 13 line 3).
	pending map[string][]byte
	// writeKeys are keys where the txn holds (possibly unfrozen) write
	// locks.
	writeKeys map[string]bool
	// readKeys are keys where the txn holds read locks.
	readKeys map[string]bool
	// firstWriteLock is when the txn first write-locked here.
	firstWriteLock time.Time
	// finished marks that a decision was applied locally.
	finished bool
}

// Server is one storage server.
type Server struct {
	cfg      Config
	listener transport.Listener
	registry *commitment.Registry
	// waits detects wait-for cycles among transactions blocked on this
	// server's locks; cross-server cycles are resolved by the lock-wait
	// timeout instead.
	waits *lock.WaitGraph

	mu    sync.Mutex
	keys  map[string]*keyState
	txns  map[uint64]*txnState
	peers map[string]transport.Conn

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a server listening at cfg.Addr.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		listener: l,
		registry: commitment.NewRegistry(),
		waits:    lock.NewWaitGraph(),
		keys:     make(map[string]*keyState),
		txns:     make(map[uint64]*txnState),
		peers:    make(map[string]transport.Conn),
		stop:     make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.suspectLoop()
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	close(s.stop)
	err := s.listener.Close()
	s.mu.Lock()
	for _, c := range s.peers {
		_ = c.Close()
	}
	s.peers = map[string]transport.Conn{}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) key(k string) *keyState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks, ok := s.keys[k]
	if !ok {
		ks = &keyState{locks: lock.NewTableDetected(s.waits), versions: version.NewList()}
		s.keys[k] = ks
	}
	return ks
}

func (s *Server) txn(id uint64) *txnState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txnLocked(id)
}

func (s *Server) txnLocked(id uint64) *txnState {
	t, ok := s.txns[id]
	if !ok {
		t = &txnState{pending: map[string][]byte{}, writeKeys: map[string]bool{}, readKeys: map[string]bool{}}
		s.txns[id] = t
	}
	return t
}

// --- connection handling ----------------------------------------------------

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn demultiplexes one coordinator connection: every request runs
// in its own goroutine (lock requests may block), and responses are
// written back tagged with the request id.
func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
	}()
	var sendMu sync.Mutex
	reply := func(id uint64, t wire.MsgType, body []byte) {
		sendMu.Lock()
		defer sendMu.Unlock()
		if err := conn.Send(wire.Frame{ID: id, Type: t, Body: body}); err != nil {
			s.logf("server %s: send: %v", s.cfg.Addr, err)
		}
	}
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		// Lock acquisitions may block on conflicts and therefore run in
		// their own goroutines. Everything else (freeze, release,
		// decide, purge, stats) is non-blocking and handled inline, in
		// arrival order — this preserves the FIFO semantics that
		// coordinators rely on when they fire-and-forget a freeze and
		// then issue the next request on the same connection.
		switch f.Type {
		case wire.TReadLockReq, wire.TWriteLockReq:
			handlers.Add(1)
			go func(f wire.Frame) {
				defer handlers.Done()
				s.dispatch(f, reply)
			}(f)
		default:
			s.dispatch(f, reply)
		}
	}
}

func (s *Server) dispatch(f wire.Frame, reply func(uint64, wire.MsgType, []byte)) {
	switch f.Type {
	case wire.TReadLockReq:
		req, err := wire.DecodeReadLockReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TReadLockResp, wire.ReadLockResp{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TReadLockResp, s.handleReadLock(req).Encode())
	case wire.TWriteLockReq:
		req, err := wire.DecodeWriteLockReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TWriteLockResp, wire.WriteLockResp{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TWriteLockResp, s.handleWriteLock(req).Encode())
	case wire.TFreezeWriteReq:
		req, err := wire.DecodeFreezeWriteReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TFreezeWriteResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TFreezeWriteResp, s.handleFreezeWrite(req).Encode())
	case wire.TFreezeReadReq:
		req, err := wire.DecodeFreezeReadReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TFreezeReadResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		s.key(req.Key).locks.FreezeReadIn(lock.Owner(req.Txn), timestamp.Span(req.Lo, req.Hi))
		reply(f.ID, wire.TFreezeReadResp, wire.Ack{Status: wire.StatusOK}.Encode())
	case wire.TReleaseReq:
		req, err := wire.DecodeReleaseReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TReleaseResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TReleaseResp, s.handleRelease(req).Encode())
	case wire.TDecideReq:
		req, err := wire.DecodeDecideReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TDecideResp, wire.DecideResp{Kind: wire.DecideAbort}.Encode())
			return
		}
		d := s.handleDecide(req)
		reply(f.ID, wire.TDecideResp, wire.DecideResp{Kind: d.Kind, TS: d.TS}.Encode())
	case wire.TPurgeReq:
		req, err := wire.DecodePurgeReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TPurgeResp, wire.PurgeResp{}.Encode())
			return
		}
		v, l := s.purgeBelow(req.Bound)
		reply(f.ID, wire.TPurgeResp, wire.PurgeResp{Versions: int64(v), Locks: int64(l)}.Encode())
	case wire.TStatsReq:
		reply(f.ID, wire.TStatsResp, s.stats().Encode())
	default:
		s.logf("server %s: unknown message type %d", s.cfg.Addr, f.Type)
	}
}

// --- handlers ----------------------------------------------------------------

// handleReadLock runs the server-side read step: pick the latest version
// below Upper, read-lock the interval above it (waiting on unfrozen
// write locks when requested), retrying while newer frozen versions
// appear.
func (s *Server) handleReadLock(req wire.ReadLockReq) wire.ReadLockResp {
	ks := s.key(req.Key)
	owner := lock.Owner(req.Txn)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.LockWaitTimeout)
	defer cancel()
	for {
		if ctx.Err() != nil {
			return wire.ReadLockResp{Status: wire.StatusConflict, Err: "lock wait timeout"}
		}
		v, err := ks.versions.LatestBefore(req.Upper)
		if err != nil {
			return wire.ReadLockResp{Status: wire.StatusPurged, Err: err.Error()}
		}
		span := timestamp.Span(v.TS.Next(), req.Upper)
		if span.IsEmpty() {
			s.trackRead(req.Txn, req.Key)
			return wire.ReadLockResp{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: timestamp.Empty}
		}
		res, err := ks.locks.AcquireRead(ctx, owner, span, lock.Options{Wait: req.Wait, Partial: true})
		if err != nil {
			return wire.ReadLockResp{Status: wire.StatusConflict, Err: err.Error()}
		}
		switch {
		case res.FrozenAt == nil:
			s.trackRead(req.Txn, req.Key)
			return wire.ReadLockResp{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: res.Got}
		case !res.FrozenAt.Lo.Before(req.Upper), !req.Wait && !res.Got.IsEmpty():
			// Frozen at the top of the request, or no-wait with a
			// usable prefix: settle.
			s.trackRead(req.Txn, req.Key)
			return wire.ReadLockResp{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: res.Got}
		default:
			if !res.Got.IsEmpty() {
				ks.locks.ReleaseReadIn(owner, res.Got)
			}
		}
	}
}

func (s *Server) trackRead(txn uint64, key string) {
	s.mu.Lock()
	s.txnLocked(txn).readKeys[key] = true
	s.mu.Unlock()
}

// handleWriteLock acquires write locks and buffers the pending value.
func (s *Server) handleWriteLock(req wire.WriteLockReq) wire.WriteLockResp {
	t := s.txn(req.Txn)
	s.mu.Lock()
	if t.finished {
		s.mu.Unlock()
		return wire.WriteLockResp{Status: wire.StatusAborted, Err: "transaction already decided"}
	}
	if req.DecisionSrv != "" {
		t.decisionSrv = req.DecisionSrv
	}
	s.mu.Unlock()

	ks := s.key(req.Key)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.LockWaitTimeout)
	defer cancel()
	res, err := ks.locks.AcquireWrite(ctx, lock.Owner(req.Txn), req.Set, lock.Options{Wait: req.Wait, Partial: true})
	if err != nil {
		status := wire.StatusConflict
		if errors.Is(err, lock.ErrFrozen) {
			status = wire.StatusFrozen
		}
		return wire.WriteLockResp{Status: status, Err: err.Error(), Denied: res.Denied}
	}
	if !res.Got.IsEmpty() {
		s.mu.Lock()
		t.pending[req.Key] = req.Value
		t.writeKeys[req.Key] = true
		if t.firstWriteLock.IsZero() {
			t.firstWriteLock = time.Now()
		}
		s.mu.Unlock()
	}
	return wire.WriteLockResp{Status: wire.StatusOK, Got: res.Got, Denied: res.Denied}
}

// handleFreezeWrite applies a commit at req.TS for one key: install the
// pending value, then freeze the write lock (install-before-freeze keeps
// the frozen-implies-present invariant readers rely on).
func (s *Server) handleFreezeWrite(req wire.FreezeWriteReq) wire.Ack {
	s.mu.Lock()
	t := s.txnLocked(req.Txn)
	val, ok := t.pending[req.Key]
	s.mu.Unlock()
	if !ok {
		return wire.Ack{Status: wire.StatusError, Err: "no pending value (timed out and aborted?)"}
	}
	ks := s.key(req.Key)
	if err := ks.versions.Install(req.TS, val); err != nil && !errors.Is(err, version.ErrExists) {
		return wire.Ack{Status: wire.StatusError, Err: err.Error()}
	}
	if !ks.locks.FreezeWriteAt(lock.Owner(req.Txn), req.TS) {
		return wire.Ack{Status: wire.StatusError, Err: "write lock not held at commit timestamp"}
	}
	s.mu.Lock()
	delete(t.pending, req.Key)
	if len(t.pending) == 0 {
		// every buffered write on this server is exposed; stop
		// suspecting the coordinator
		t.finished = true
	}
	s.mu.Unlock()
	return wire.Ack{Status: wire.StatusOK}
}

// handleRelease drops the transaction's unfrozen locks on a key.
func (s *Server) handleRelease(req wire.ReleaseReq) wire.Ack {
	ks := s.key(req.Key)
	owner := lock.Owner(req.Txn)
	if req.WritesOnly {
		ks.locks.ReleaseWrites(owner)
	} else {
		ks.locks.ReleaseUnfrozen(owner)
	}
	s.mu.Lock()
	t := s.txnLocked(req.Txn)
	delete(t.pending, req.Key)
	delete(t.writeKeys, req.Key)
	if !req.WritesOnly {
		delete(t.readKeys, req.Key)
	}
	if len(t.writeKeys) == 0 {
		t.firstWriteLock = time.Time{}
	}
	s.mu.Unlock()
	return wire.Ack{Status: wire.StatusOK}
}

// handleDecide runs the commitment object hosted on this server and
// applies the decision to local state.
func (s *Server) handleDecide(req wire.DecideReq) commitment.Decision {
	d := s.registry.Object(req.Txn).Decide(commitment.Decision{Kind: req.Proposal, TS: req.TS})
	s.applyDecision(req.Txn, d)
	return d
}

// applyDecision finalizes a transaction locally: on abort, release its
// locks and drop pending values; on commit, freeze-and-install any
// pending writes at the decided timestamp (the write-lock-timeout path
// of Alg. 13 reaches this with a commit decision when the coordinator
// managed to decide before crashing).
func (s *Server) applyDecision(txn uint64, d commitment.Decision) {
	s.mu.Lock()
	t := s.txnLocked(txn)
	if t.finished {
		s.mu.Unlock()
		return
	}
	t.finished = true
	writeKeys := make([]string, 0, len(t.writeKeys))
	for k := range t.writeKeys {
		writeKeys = append(writeKeys, k)
	}
	pending := make(map[string][]byte, len(t.pending))
	for k, v := range t.pending {
		pending[k] = v
	}
	s.mu.Unlock()

	owner := lock.Owner(txn)
	if d.Kind == wire.DecideAbort {
		for _, k := range writeKeys {
			s.key(k).locks.ReleaseWrites(owner)
		}
		s.mu.Lock()
		t.pending = map[string][]byte{}
		t.writeKeys = map[string]bool{}
		s.mu.Unlock()
		return
	}
	for k, val := range pending {
		ks := s.key(k)
		if err := ks.versions.Install(d.TS, val); err != nil && !errors.Is(err, version.ErrExists) {
			s.logf("server %s: install %q at %v: %v", s.cfg.Addr, k, d.TS, err)
			continue
		}
		ks.locks.FreezeWriteAt(owner, d.TS)
	}
}

// --- suspicion scanner --------------------------------------------------------

// suspectLoop periodically looks for transactions whose unfrozen write
// locks have been held too long, suspects their coordinator and proposes
// abort to the decision server (write-lock-timeout, Alg. 13).
func (s *Server) suspectLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.scanOnce()
		}
	}
}

func (s *Server) scanOnce() {
	type suspect struct {
		txn         uint64
		decisionSrv string
	}
	var suspects []suspect
	now := time.Now()
	s.mu.Lock()
	for id, t := range s.txns {
		if t.finished || t.firstWriteLock.IsZero() {
			continue
		}
		if now.Sub(t.firstWriteLock) >= s.cfg.WriteLockTimeout {
			suspects = append(suspects, suspect{txn: id, decisionSrv: t.decisionSrv})
		}
	}
	s.mu.Unlock()
	for _, sp := range suspects {
		d, ok := s.proposeAbort(sp.txn, sp.decisionSrv)
		if !ok {
			continue // decision server unreachable; retry next scan
		}
		s.logf("server %s: suspected txn %d, decision %v", s.cfg.Addr, sp.txn, d.Kind)
		s.applyDecision(sp.txn, d)
	}
}

// proposeAbort reaches the transaction's commitment object — locally if
// this server is the decision point, over the network otherwise — and
// proposes abort.
func (s *Server) proposeAbort(txn uint64, decisionSrv string) (commitment.Decision, bool) {
	proposal := commitment.Decision{Kind: wire.DecideAbort}
	if decisionSrv == "" || decisionSrv == s.cfg.Addr {
		return s.registry.Object(txn).Decide(proposal), true
	}
	resp, err := s.callPeer(decisionSrv, wire.TDecideReq,
		wire.DecideReq{Txn: txn, Proposal: wire.DecideAbort}.Encode())
	if err != nil {
		// Cannot reach the decision server: do not act unilaterally;
		// the scanner retries later.
		s.logf("server %s: decide via %s: %v", s.cfg.Addr, decisionSrv, err)
		return commitment.Decision{}, false
	}
	d, err := wire.DecodeDecideResp(resp)
	if err != nil {
		return commitment.Decision{}, false
	}
	return commitment.Decision{Kind: d.Kind, TS: d.TS}, true
}

// callPeer performs one synchronous RPC to another server.
func (s *Server) callPeer(addr string, t wire.MsgType, body []byte) ([]byte, error) {
	s.mu.Lock()
	conn, ok := s.peers[addr]
	s.mu.Unlock()
	if !ok {
		c, err := s.cfg.Network.Dial(addr)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		if existing, exists := s.peers[addr]; exists {
			s.mu.Unlock()
			_ = c.Close()
			conn = existing
		} else {
			s.peers[addr] = c
			s.mu.Unlock()
			conn = c
		}
	}
	// Peer RPCs are rare (suspicion only); serialize them per peer.
	if err := conn.Send(wire.Frame{ID: 1, Type: t, Body: body}); err != nil {
		return nil, err
	}
	f, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	return f.Body, nil
}

// --- maintenance ---------------------------------------------------------------

func (s *Server) purgeBelow(bound timestamp.Timestamp) (versions, locks int) {
	s.mu.Lock()
	states := make([]*keyState, 0, len(s.keys))
	for _, ks := range s.keys {
		states = append(states, ks)
	}
	s.mu.Unlock()
	for _, ks := range states {
		versions += ks.versions.PurgeBelow(bound)
		locks += ks.locks.PurgeFrozenBelow(bound)
	}
	return versions, locks
}

func (s *Server) stats() wire.StatsResp {
	s.mu.Lock()
	states := make([]*keyState, 0, len(s.keys))
	for _, ks := range s.keys {
		states = append(states, ks)
	}
	s.mu.Unlock()
	var st wire.StatsResp
	for _, ks := range states {
		st.Keys++
		ls := ks.locks.Stats()
		st.LockEntries += int64(ls.Entries)
		st.FrozenLocks += int64(ls.Frozen)
		st.Versions += int64(ks.versions.Count())
	}
	return st
}
