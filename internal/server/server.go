// Package server implements the MVTL storage server of the distributed
// algorithm (§7/§H, Algorithm 13). A server owns a partition of the key
// space and holds, per key, the freezable interval lock table and the
// version history. Coordinators (package client) drive it through the
// wire protocol: read-lock, write-lock, freeze, release, decide, purge —
// either key-at-a-time or, preferably, as per-server footprint batches
// (wire.WriteLockBatchReq and friends) that make one pass over the
// transaction's keys per request.
//
// Shared state is striped: the key map and the transaction map are both
// split over a fixed power-of-two number of shards, each behind its own
// mutex, so concurrent coordinators touch disjoint stripes instead of
// funnelling through one server-wide lock.
//
// Fault tolerance follows §H.1: each update transaction names a decision
// server hosting its commitment object. If a coordinator disappears
// leaving unfrozen write locks behind, the holding server times out and
// proposes "abort" to the decision server; whatever is decided is then
// applied locally (Lemma 4), so no transaction blocks forever on a dead
// coordinator (Theorem 9).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/commitment"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/version"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Config parameterizes a server.
type Config struct {
	// Addr is the listen address (and the server's identity).
	Addr string
	// Network provides the transport.
	Network transport.Network
	// LockWaitTimeout caps how long a blocking lock request may wait
	// before reporting a conflict (deadlock resolution). Default 1s.
	LockWaitTimeout time.Duration
	// WriteLockTimeout is how long unfrozen write locks may sit before
	// the server suspects the coordinator and proposes abort (§H).
	// Default 3s.
	WriteLockTimeout time.Duration
	// ScanInterval is the suspicion scanner period. Default 250ms.
	ScanInterval time.Duration
	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.LockWaitTimeout == 0 {
		c.LockWaitTimeout = time.Second
	}
	if c.WriteLockTimeout == 0 {
		c.WriteLockTimeout = 3 * time.Second
	}
	if c.ScanInterval == 0 {
		c.ScanInterval = 250 * time.Millisecond
	}
	return c
}

// stripeCount is the number of key-map and txn-map stripes; a power of
// two so stripe selection is a mask.
const stripeCount = 32

// keyState is the per-key server state.
type keyState struct {
	locks    *lock.Table
	versions *version.List
}

// keyStripe is one shard of the key map.
type keyStripe struct {
	mu   sync.RWMutex
	keys map[string]*keyState
}

// txnState tracks what this server knows about one transaction. Its
// fields are guarded by the owning txnStripe's mutex.
type txnState struct {
	decisionSrv string
	// pending holds buffered write values per key (Alg. 13 line 3).
	pending map[string][]byte
	// writeKeys are keys where the txn holds (possibly unfrozen) write
	// locks.
	writeKeys map[string]bool
	// readKeys are keys where the txn holds read locks.
	readKeys map[string]bool
	// firstWriteLock is when the txn first write-locked here.
	firstWriteLock time.Time
	// finished marks that a decision was applied locally.
	finished bool
}

// txnStripe is one shard of the transaction map.
type txnStripe struct {
	mu   sync.Mutex
	txns map[uint64]*txnState
}

// Server is one storage server.
type Server struct {
	cfg      Config
	listener transport.Listener
	registry *commitment.Registry
	// waits detects wait-for cycles among transactions blocked on this
	// server's locks; cross-server cycles are resolved by the lock-wait
	// timeout instead.
	waits *lock.WaitGraph

	keyStripes [stripeCount]keyStripe
	txnStripes [stripeCount]txnStripe

	peersMu sync.Mutex
	peers   map[string]transport.Conn

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a server listening at cfg.Addr.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		listener: l,
		registry: commitment.NewRegistry(),
		waits:    lock.NewWaitGraph(),
		peers:    make(map[string]transport.Conn),
		stop:     make(chan struct{}),
	}
	for i := range s.keyStripes {
		s.keyStripes[i].keys = make(map[string]*keyState)
	}
	for i := range s.txnStripes {
		s.txnStripes[i].txns = make(map[uint64]*txnState)
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.suspectLoop()
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	close(s.stop)
	err := s.listener.Close()
	s.peersMu.Lock()
	for _, c := range s.peers {
		_ = c.Close()
	}
	s.peers = map[string]transport.Conn{}
	s.peersMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// key returns the state for k, creating it if needed. Only the owning
// stripe is locked, and only for the map access — per-key lock tables
// and version lists synchronize themselves.
func (s *Server) key(k string) *keyState {
	st := &s.keyStripes[strhash.FNV1a(k)&(stripeCount-1)]
	st.mu.RLock()
	ks, ok := st.keys[k]
	st.mu.RUnlock()
	if ok {
		return ks
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ks, ok = st.keys[k]; ok {
		return ks
	}
	ks = &keyState{locks: lock.NewTableDetected(s.waits), versions: version.NewList()}
	st.keys[k] = ks
	return ks
}

// txnStripeFor selects the stripe owning transaction id. The id layout
// is clientID<<32|seq, so both halves are mixed into the stripe index.
func (s *Server) txnStripeFor(id uint64) *txnStripe {
	return &s.txnStripes[uint32(id^(id>>32))&(stripeCount-1)]
}

// withTxn runs fn with the transaction's state (created if absent) under
// its stripe mutex. fn must not block or call back into the server.
func (s *Server) withTxn(id uint64, fn func(*txnState)) {
	st := s.txnStripeFor(id)
	st.mu.Lock()
	t, ok := st.txns[id]
	if !ok {
		t = &txnState{pending: map[string][]byte{}, writeKeys: map[string]bool{}, readKeys: map[string]bool{}}
		st.txns[id] = t
	}
	fn(t)
	st.mu.Unlock()
}

// --- connection handling ----------------------------------------------------

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn demultiplexes one coordinator connection: every request runs
// in its own goroutine (lock requests may block), and responses are
// written back tagged with the request id.
func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
	}()
	var sendMu sync.Mutex
	reply := func(id uint64, t wire.MsgType, body []byte) {
		sendMu.Lock()
		defer sendMu.Unlock()
		if err := conn.Send(wire.Frame{ID: id, Type: t, Body: body}); err != nil {
			s.logf("server %s: send: %v", s.cfg.Addr, err)
		}
	}
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		// Lock acquisitions may block on conflicts and therefore run in
		// their own goroutines. Everything else (freeze, release,
		// decide, purge, stats) is non-blocking and handled inline, in
		// arrival order — this preserves the FIFO semantics that
		// coordinators rely on when they fire-and-forget a freeze and
		// then issue the next request on the same connection.
		switch f.Type {
		case wire.TReadLockReq, wire.TWriteLockReq, wire.TWriteLockBatchReq:
			handlers.Add(1)
			go func(f wire.Frame) {
				defer handlers.Done()
				s.dispatch(f, reply)
			}(f)
		default:
			s.dispatch(f, reply)
		}
	}
}

func (s *Server) dispatch(f wire.Frame, reply func(uint64, wire.MsgType, []byte)) {
	switch f.Type {
	case wire.TReadLockReq:
		req, err := wire.DecodeReadLockReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TReadLockResp, wire.ReadLockResp{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TReadLockResp, s.handleReadLock(req).Encode())
	case wire.TWriteLockReq:
		req, err := wire.DecodeWriteLockReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TWriteLockResp, wire.WriteLockResp{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TWriteLockResp, s.handleWriteLock(req).Encode())
	case wire.TWriteLockBatchReq:
		req, err := wire.DecodeWriteLockBatchReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TWriteLockBatchResp, wire.WriteLockBatchResp{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TWriteLockBatchResp, s.handleWriteLockBatch(req).Encode())
	case wire.TFreezeWriteReq:
		req, err := wire.DecodeFreezeWriteReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TFreezeWriteResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TFreezeWriteResp, s.handleFreezeWrite(req).Encode())
	case wire.TFreezeReadReq:
		req, err := wire.DecodeFreezeReadReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TFreezeReadResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		s.key(req.Key).locks.FreezeReadIn(lock.Owner(req.Txn), timestamp.Span(req.Lo, req.Hi))
		reply(f.ID, wire.TFreezeReadResp, wire.Ack{Status: wire.StatusOK}.Encode())
	case wire.TFreezeBatchReq:
		req, err := wire.DecodeFreezeBatchReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TFreezeBatchResp, wire.FreezeBatchResp{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TFreezeBatchResp, s.handleFreezeBatch(req).Encode())
	case wire.TReleaseReq:
		req, err := wire.DecodeReleaseReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TReleaseResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TReleaseResp, s.handleRelease(req).Encode())
	case wire.TReleaseBatchReq:
		req, err := wire.DecodeReleaseBatchReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TReleaseBatchResp, wire.Ack{Status: wire.StatusError, Err: err.Error()}.Encode())
			return
		}
		reply(f.ID, wire.TReleaseBatchResp, s.handleReleaseBatch(req).Encode())
	case wire.TDecideReq:
		req, err := wire.DecodeDecideReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TDecideResp, wire.DecideResp{Kind: wire.DecideAbort}.Encode())
			return
		}
		d := s.handleDecide(req)
		reply(f.ID, wire.TDecideResp, wire.DecideResp{Kind: d.Kind, TS: d.TS}.Encode())
	case wire.TPurgeReq:
		req, err := wire.DecodePurgeReq(f.Body)
		if err != nil {
			reply(f.ID, wire.TPurgeResp, wire.PurgeResp{}.Encode())
			return
		}
		v, l := s.purgeBelow(req.Bound)
		reply(f.ID, wire.TPurgeResp, wire.PurgeResp{Versions: int64(v), Locks: int64(l)}.Encode())
	case wire.TStatsReq:
		reply(f.ID, wire.TStatsResp, s.stats().Encode())
	default:
		s.logf("server %s: unknown message type %d", s.cfg.Addr, f.Type)
	}
}

// --- handlers ----------------------------------------------------------------

// handleReadLock runs the server-side read step: pick the latest version
// below Upper, read-lock the interval above it (waiting on unfrozen
// write locks when requested), retrying while newer frozen versions
// appear.
func (s *Server) handleReadLock(req wire.ReadLockReq) wire.ReadLockResp {
	ks := s.key(req.Key)
	owner := lock.Owner(req.Txn)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.LockWaitTimeout)
	defer cancel()
	for {
		if ctx.Err() != nil {
			return wire.ReadLockResp{Status: wire.StatusConflict, Err: "lock wait timeout"}
		}
		v, err := ks.versions.LatestBefore(req.Upper)
		if err != nil {
			return wire.ReadLockResp{Status: wire.StatusPurged, Err: err.Error()}
		}
		span := timestamp.Span(v.TS.Next(), req.Upper)
		if span.IsEmpty() {
			s.trackRead(req.Txn, req.Key)
			return wire.ReadLockResp{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: timestamp.Empty}
		}
		res, err := ks.locks.AcquireRead(ctx, owner, span, lock.Options{Wait: req.Wait, Partial: true})
		if err != nil {
			return wire.ReadLockResp{Status: wire.StatusConflict, Err: err.Error()}
		}
		switch {
		case res.FrozenAt == nil:
			s.trackRead(req.Txn, req.Key)
			return wire.ReadLockResp{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: res.Got}
		case !res.FrozenAt.Lo.Before(req.Upper), !req.Wait && !res.Got.IsEmpty():
			// Frozen at the top of the request, or no-wait with a
			// usable prefix: settle.
			s.trackRead(req.Txn, req.Key)
			return wire.ReadLockResp{Status: wire.StatusOK, VersionTS: v.TS, Value: v.Value, Got: res.Got}
		default:
			if !res.Got.IsEmpty() {
				ks.locks.ReleaseReadIn(owner, res.Got)
			}
		}
	}
}

func (s *Server) trackRead(txn uint64, key string) {
	s.withTxn(txn, func(t *txnState) { t.readKeys[key] = true })
}

// handleWriteLock acquires write locks and buffers the pending value.
func (s *Server) handleWriteLock(req wire.WriteLockReq) wire.WriteLockResp {
	batch := s.handleWriteLockBatch(wire.WriteLockBatchReq{
		Txn:         req.Txn,
		DecisionSrv: req.DecisionSrv,
		Wait:        req.Wait,
		Items:       []wire.WriteLockItem{{Key: req.Key, Set: req.Set, Value: req.Value}},
	})
	if batch.Status != wire.StatusOK {
		return wire.WriteLockResp{Status: batch.Status, Err: batch.Err}
	}
	r := batch.Results[0]
	return wire.WriteLockResp{Status: r.Status, Err: r.Err, Got: r.Got, Denied: r.Denied}
}

// handleWriteLockBatch acquires write locks and buffers pending values
// for a transaction's whole share of the footprint: per-key lock
// acquisition, then a single pass over the transaction state to record
// everything acquired (Alg. 13, receive-write-lock-message, batched).
func (s *Server) handleWriteLockBatch(req wire.WriteLockBatchReq) wire.WriteLockBatchResp {
	finished := false
	s.withTxn(req.Txn, func(t *txnState) {
		if t.finished {
			finished = true
			return
		}
		if req.DecisionSrv != "" {
			t.decisionSrv = req.DecisionSrv
		}
	})
	if finished {
		return wire.WriteLockBatchResp{Status: wire.StatusAborted, Err: "transaction already decided"}
	}

	owner := lock.Owner(req.Txn)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.LockWaitTimeout)
	defer cancel()
	results := make([]wire.WriteLockResult, len(req.Items))
	acquired := make([]bool, len(req.Items))
	any := false
	for i, it := range req.Items {
		ks := s.key(it.Key)
		res, err := ks.locks.AcquireWrite(ctx, owner, it.Set, lock.Options{Wait: req.Wait, Partial: true})
		if err != nil {
			status := wire.StatusConflict
			if errors.Is(err, lock.ErrFrozen) {
				status = wire.StatusFrozen
			}
			results[i] = wire.WriteLockResult{Status: status, Err: err.Error(), Denied: res.Denied}
			continue
		}
		results[i] = wire.WriteLockResult{Status: wire.StatusOK, Got: res.Got, Denied: res.Denied}
		if !res.Got.IsEmpty() {
			acquired[i] = true
			any = true
		}
	}
	if any {
		finishedLate := false
		s.withTxn(req.Txn, func(t *txnState) {
			// Re-check: the suspicion scanner may have decided the
			// transaction while this batch was acquiring locks;
			// recording pending writes on a finished transaction would
			// leak unfrozen write locks the scanner never revisits.
			if t.finished {
				finishedLate = true
				return
			}
			for i, it := range req.Items {
				if !acquired[i] {
					continue
				}
				t.pending[it.Key] = it.Value
				t.writeKeys[it.Key] = true
			}
			if t.firstWriteLock.IsZero() {
				t.firstWriteLock = time.Now()
			}
		})
		if finishedLate {
			for i, it := range req.Items {
				if acquired[i] {
					s.key(it.Key).locks.ReleaseWrites(owner)
				}
			}
			return wire.WriteLockBatchResp{Status: wire.StatusAborted, Err: "transaction already decided"}
		}
	}
	return wire.WriteLockBatchResp{Status: wire.StatusOK, Results: results}
}

// handleFreezeWrite applies a commit at req.TS for one key: install the
// pending value, then freeze the write lock (install-before-freeze keeps
// the frozen-implies-present invariant readers rely on).
func (s *Server) handleFreezeWrite(req wire.FreezeWriteReq) wire.Ack {
	resp := s.handleFreezeBatch(wire.FreezeBatchReq{Txn: req.Txn, TS: req.TS, WriteKeys: []string{req.Key}})
	if resp.Status != wire.StatusOK {
		return wire.Ack{Status: resp.Status, Err: resp.Err}
	}
	return resp.WriteAcks[0]
}

// handleFreezeBatch applies a commit at req.TS across the transaction's
// keys on this server: install every pending value and freeze its write
// lock (install-before-freeze keeps the frozen-implies-present invariant
// readers rely on), then freeze the requested read-lock ranges (garbage
// collection, Alg. 11 line 33).
func (s *Server) handleFreezeBatch(req wire.FreezeBatchReq) wire.FreezeBatchResp {
	owner := lock.Owner(req.Txn)
	resp := wire.FreezeBatchResp{Status: wire.StatusOK}
	if len(req.WriteKeys) > 0 {
		resp.WriteAcks = make([]wire.Ack, len(req.WriteKeys))
		vals := make([][]byte, len(req.WriteKeys))
		has := make([]bool, len(req.WriteKeys))
		s.withTxn(req.Txn, func(t *txnState) {
			for i, k := range req.WriteKeys {
				vals[i], has[i] = t.pending[k]
			}
		})
		frozen := make([]bool, len(req.WriteKeys))
		anyFrozen := false
		for i, k := range req.WriteKeys {
			if !has[i] {
				resp.WriteAcks[i] = wire.Ack{Status: wire.StatusError, Err: "no pending value (timed out and aborted?)"}
				continue
			}
			ks := s.key(k)
			if err := ks.versions.Install(req.TS, vals[i]); err != nil && !errors.Is(err, version.ErrExists) {
				resp.WriteAcks[i] = wire.Ack{Status: wire.StatusError, Err: err.Error()}
				continue
			}
			if !ks.locks.FreezeWriteAt(owner, req.TS) {
				resp.WriteAcks[i] = wire.Ack{Status: wire.StatusError, Err: "write lock not held at commit timestamp"}
				continue
			}
			resp.WriteAcks[i] = wire.Ack{Status: wire.StatusOK}
			frozen[i] = true
			anyFrozen = true
		}
		if anyFrozen {
			s.withTxn(req.Txn, func(t *txnState) {
				for i, k := range req.WriteKeys {
					if frozen[i] {
						delete(t.pending, k)
					}
				}
				if len(t.pending) == 0 {
					// every buffered write on this server is exposed;
					// stop suspecting the coordinator
					t.finished = true
				}
			})
		}
	}
	for _, r := range req.Reads {
		s.key(r.Key).locks.FreezeReadIn(owner, timestamp.Span(r.Lo, r.Hi))
	}
	return resp
}

// handleRelease drops the transaction's unfrozen locks on a key.
func (s *Server) handleRelease(req wire.ReleaseReq) wire.Ack {
	return s.handleReleaseBatch(wire.ReleaseBatchReq{Txn: req.Txn, WritesOnly: req.WritesOnly, Keys: []string{req.Key}})
}

// handleReleaseBatch drops the transaction's unfrozen locks on every
// listed key, then updates the transaction state in one pass.
func (s *Server) handleReleaseBatch(req wire.ReleaseBatchReq) wire.Ack {
	owner := lock.Owner(req.Txn)
	for _, k := range req.Keys {
		ks := s.key(k)
		if req.WritesOnly {
			ks.locks.ReleaseWrites(owner)
		} else {
			ks.locks.ReleaseUnfrozen(owner)
		}
	}
	s.withTxn(req.Txn, func(t *txnState) {
		for _, k := range req.Keys {
			delete(t.pending, k)
			delete(t.writeKeys, k)
			if !req.WritesOnly {
				delete(t.readKeys, k)
			}
		}
		if len(t.writeKeys) == 0 {
			t.firstWriteLock = time.Time{}
		}
	})
	return wire.Ack{Status: wire.StatusOK}
}

// handleDecide runs the commitment object hosted on this server and
// applies the decision to local state.
func (s *Server) handleDecide(req wire.DecideReq) commitment.Decision {
	d := s.registry.Object(req.Txn).Decide(commitment.Decision{Kind: req.Proposal, TS: req.TS})
	s.applyDecision(req.Txn, d)
	return d
}

// applyDecision finalizes a transaction locally: on abort, release its
// locks and drop pending values; on commit, freeze-and-install any
// pending writes at the decided timestamp (the write-lock-timeout path
// of Alg. 13 reaches this with a commit decision when the coordinator
// managed to decide before crashing).
func (s *Server) applyDecision(txn uint64, d commitment.Decision) {
	var writeKeys []string
	var pending map[string][]byte
	alreadyDone := false
	s.withTxn(txn, func(t *txnState) {
		if t.finished {
			alreadyDone = true
			return
		}
		t.finished = true
		writeKeys = make([]string, 0, len(t.writeKeys))
		for k := range t.writeKeys {
			writeKeys = append(writeKeys, k)
		}
		pending = make(map[string][]byte, len(t.pending))
		for k, v := range t.pending {
			pending[k] = v
		}
	})
	if alreadyDone {
		return
	}

	owner := lock.Owner(txn)
	if d.Kind == wire.DecideAbort {
		for _, k := range writeKeys {
			s.key(k).locks.ReleaseWrites(owner)
		}
		s.withTxn(txn, func(t *txnState) {
			t.pending = map[string][]byte{}
			t.writeKeys = map[string]bool{}
		})
		return
	}
	for k, val := range pending {
		ks := s.key(k)
		if err := ks.versions.Install(d.TS, val); err != nil && !errors.Is(err, version.ErrExists) {
			s.logf("server %s: install %q at %v: %v", s.cfg.Addr, k, d.TS, err)
			continue
		}
		ks.locks.FreezeWriteAt(owner, d.TS)
	}
}

// --- suspicion scanner --------------------------------------------------------

// suspectLoop periodically looks for transactions whose unfrozen write
// locks have been held too long, suspects their coordinator and proposes
// abort to the decision server (write-lock-timeout, Alg. 13).
func (s *Server) suspectLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.scanOnce()
		}
	}
}

func (s *Server) scanOnce() {
	type suspect struct {
		txn         uint64
		decisionSrv string
	}
	var suspects []suspect
	now := time.Now()
	for i := range s.txnStripes {
		st := &s.txnStripes[i]
		st.mu.Lock()
		for id, t := range st.txns {
			if t.finished || t.firstWriteLock.IsZero() {
				continue
			}
			if now.Sub(t.firstWriteLock) >= s.cfg.WriteLockTimeout {
				suspects = append(suspects, suspect{txn: id, decisionSrv: t.decisionSrv})
			}
		}
		st.mu.Unlock()
	}
	for _, sp := range suspects {
		d, ok := s.proposeAbort(sp.txn, sp.decisionSrv)
		if !ok {
			continue // decision server unreachable; retry next scan
		}
		s.logf("server %s: suspected txn %d, decision %v", s.cfg.Addr, sp.txn, d.Kind)
		s.applyDecision(sp.txn, d)
	}
}

// proposeAbort reaches the transaction's commitment object — locally if
// this server is the decision point, over the network otherwise — and
// proposes abort.
func (s *Server) proposeAbort(txn uint64, decisionSrv string) (commitment.Decision, bool) {
	proposal := commitment.Decision{Kind: wire.DecideAbort}
	if decisionSrv == "" || decisionSrv == s.cfg.Addr {
		return s.registry.Object(txn).Decide(proposal), true
	}
	resp, err := s.callPeer(decisionSrv, wire.TDecideReq,
		wire.DecideReq{Txn: txn, Proposal: wire.DecideAbort}.Encode())
	if err != nil {
		// Cannot reach the decision server: do not act unilaterally;
		// the scanner retries later.
		s.logf("server %s: decide via %s: %v", s.cfg.Addr, decisionSrv, err)
		return commitment.Decision{}, false
	}
	d, err := wire.DecodeDecideResp(resp)
	if err != nil {
		return commitment.Decision{}, false
	}
	return commitment.Decision{Kind: d.Kind, TS: d.TS}, true
}

// callPeer performs one synchronous RPC to another server.
func (s *Server) callPeer(addr string, t wire.MsgType, body []byte) ([]byte, error) {
	s.peersMu.Lock()
	conn, ok := s.peers[addr]
	s.peersMu.Unlock()
	if !ok {
		c, err := s.cfg.Network.Dial(addr)
		if err != nil {
			return nil, err
		}
		s.peersMu.Lock()
		if existing, exists := s.peers[addr]; exists {
			s.peersMu.Unlock()
			_ = c.Close()
			conn = existing
		} else {
			s.peers[addr] = c
			s.peersMu.Unlock()
			conn = c
		}
	}
	// Peer RPCs are rare (suspicion only); serialize them per peer.
	if err := conn.Send(wire.Frame{ID: 1, Type: t, Body: body}); err != nil {
		return nil, err
	}
	f, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	return f.Body, nil
}

// --- maintenance ---------------------------------------------------------------

// forEachKeyState calls fn on every key's state. Key pointers are
// snapshotted per stripe before fn runs, so no stripe lock is held while
// per-key locks are taken.
func (s *Server) forEachKeyState(fn func(*keyState)) {
	var states []*keyState
	for i := range s.keyStripes {
		st := &s.keyStripes[i]
		st.mu.RLock()
		states = states[:0]
		for _, ks := range st.keys {
			states = append(states, ks)
		}
		st.mu.RUnlock()
		for _, ks := range states {
			fn(ks)
		}
	}
}

func (s *Server) purgeBelow(bound timestamp.Timestamp) (versions, locks int) {
	s.forEachKeyState(func(ks *keyState) {
		versions += ks.versions.PurgeBelow(bound)
		locks += ks.locks.PurgeFrozenBelow(bound)
	})
	return versions, locks
}

func (s *Server) stats() wire.StatsResp {
	var st wire.StatsResp
	s.forEachKeyState(func(ks *keyState) {
		st.Keys++
		ls := ks.locks.Stats()
		st.LockEntries += int64(ls.Entries)
		st.FrozenLocks += int64(ls.Frozen)
		st.Versions += int64(ks.versions.Count())
	})
	return st
}
