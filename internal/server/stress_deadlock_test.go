package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// keyOnServer generates a fresh key that hashes to server index want of
// nservers (the client partitions keys by FNV1a hash).
func keyOnServer(prefix string, want, nservers, salt int) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s-%d-%d", prefix, salt, i)
		if int(strhash.FNV1a(k)%uint32(nservers)) == want {
			return k
		}
	}
}

// startDeadlockBed brings up two servers and two pessimistic (2PL)
// coordinators; pessimistic writes block on conflicts, which is what
// makes cross-server AB-BA cycles possible.
func startDeadlockBed(t testing.TB, lockWait time.Duration, poll time.Duration, rec *history.Recorder) (addrs []string, cls []*client.Client) {
	t.Helper()
	n := transport.NewMem(transport.LatencyModel{})
	addrs = []string{"srv-0", "srv-1"}
	for _, a := range addrs {
		srv, err := server.New(server.Config{Addr: a, Network: n, LockWaitTimeout: lockWait})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	for id := int32(1); id <= 2; id++ {
		cl, err := client.New(client.Config{
			ID: id, Servers: addrs, Network: n, Mode: client.ModePessimistic,
			DeadlockPoll: poll, Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cl.Close() })
		cls = append(cls, cl)
	}
	return addrs, cls
}

// TestCrossServerDeadlockVictimAbort builds the canonical cross-server
// AB-BA cycle: transaction 1 write-locks key A on server 0 and then key
// B on server 1; transaction 2 locks B first and then A. Neither
// server's local wait-for graph sees a cycle, so before global
// detection this stalled both transactions for the full LockWaitTimeout
// (2s here). With the coordinator detectors polling, the cycle must
// resolve via a victim abort well under that: the victim is
// deterministically the lower transaction id (transaction 1), its error
// carries kv.ErrDeadlock, and the survivor commits.
func TestCrossServerDeadlockVictimAbort(t *testing.T) {
	const lockWait = 2 * time.Second
	_, cls := startDeadlockBed(t, lockWait, 5*time.Millisecond, nil)
	ctx := context.Background()

	const rounds = 7
	elapsed := make([]time.Duration, 0, rounds)
	for round := 0; round < rounds; round++ {
		kA := keyOnServer("dlA", 0, 2, round)
		kB := keyOnServer("dlB", 1, 2, round)

		tx1, err := cls[0].Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		tx2, err := cls[1].Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx1.Write(ctx, kA, []byte("t1")); err != nil {
			t.Fatalf("round %d: tx1 first write: %v", round, err)
		}
		if err := tx2.Write(ctx, kB, []byte("t2")); err != nil {
			t.Fatalf("round %d: tx2 first write: %v", round, err)
		}

		start := time.Now()
		var err1, err2 error
		var race sync.WaitGroup
		race.Add(2)
		go func() { defer race.Done(); err1 = tx1.Write(ctx, kB, []byte("t1")) }()
		go func() { defer race.Done(); err2 = tx2.Write(ctx, kA, []byte("t2")) }()
		race.Wait()
		took := time.Since(start)

		// Exactly one write failed, and tx1 (the lower id) is the
		// deterministic victim.
		var vErr error
		switch {
		case err1 != nil && err2 == nil:
			vErr = err1
		case err1 == nil && err2 != nil:
			vErr = err2
		default:
			t.Fatalf("round %d: want exactly one victim, got err1=%v err2=%v", round, err1, err2)
		}
		if !errors.Is(vErr, kv.ErrAborted) || !errors.Is(vErr, kv.ErrDeadlock) {
			t.Fatalf("round %d: victim error must wrap ErrAborted and ErrDeadlock: %v", round, vErr)
		}
		if err1 == nil {
			t.Fatalf("round %d: victim must be the lowest txn id (tx1), but tx2 died: %v", round, err2)
		}
		if err := tx2.Commit(ctx); err != nil {
			t.Fatalf("round %d: survivor must commit: %v", round, err)
		}
		if took >= lockWait {
			t.Fatalf("round %d: cycle took %v, no better than the %v timeout", round, took, lockWait)
		}
		elapsed = append(elapsed, took)
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	median := elapsed[len(elapsed)/2]
	t.Logf("cycle resolution: median %v, min %v, max %v (timeout %v)",
		median, elapsed[0], elapsed[len(elapsed)-1], lockWait)
	if median > 500*time.Millisecond {
		t.Fatalf("median resolution %v; want well under the %v timeout", median, lockWait)
	}
}

// TestCrossServerDeadlockDisabledFallsBackToTimeout pins the "before"
// behaviour the detector replaces: with polling disabled, the same
// AB-BA cycle is only broken by the lock-wait timeout, so resolution
// takes at least that long. (This is the baseline recorded in
// BENCH_deadlock.json.)
func TestCrossServerDeadlockDisabledFallsBackToTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out a full lock-wait timeout")
	}
	const lockWait = 300 * time.Millisecond
	_, cls := startDeadlockBed(t, lockWait, -1, nil)
	ctx := context.Background()
	kA := keyOnServer("toA", 0, 2, 0)
	kB := keyOnServer("toB", 1, 2, 0)

	tx1, _ := cls[0].Begin(ctx)
	tx2, _ := cls[1].Begin(ctx)
	if err := tx1.Write(ctx, kA, []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(ctx, kB, []byte("t2")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var err1, err2 error
	var race sync.WaitGroup
	race.Add(2)
	go func() { defer race.Done(); err1 = tx1.Write(ctx, kB, []byte("t1")) }()
	go func() { defer race.Done(); err2 = tx2.Write(ctx, kA, []byte("t2")) }()
	race.Wait()
	took := time.Since(start)
	if err1 == nil && err2 == nil {
		t.Fatal("undetected cycle cannot resolve without an abort")
	}
	if took < lockWait {
		t.Fatalf("without detection the cycle resolved in %v < timeout %v — who aborted?", took, lockWait)
	}
	if errors.Is(err1, kv.ErrDeadlock) || errors.Is(err2, kv.ErrDeadlock) {
		t.Fatalf("timeout aborts must not claim to be deadlock victims: %v / %v", err1, err2)
	}
}

// TestCrossServerDeadlockStress drives four pessimistic coordinators
// over a tiny hot key set spanning both servers, writing keys in random
// order — the classic deadlock generator. Every transaction must finish
// (commit, or abort as a victim/timeout) and the recorded history must
// stay serializable. Run with -race this also exercises the detector
// goroutines against the lock tables' external-abort path.
func TestCrossServerDeadlockStress(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	addrs := []string{"srv-0", "srv-1"}
	for _, a := range addrs {
		srv, err := server.New(server.Config{Addr: a, Network: n, LockWaitTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	var rec history.Recorder
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("hot-%d", i)
	}

	const (
		coordinators = 4
		txnsPerCoord = 30
	)
	var wg sync.WaitGroup
	var deadlockAborts, commits, otherAborts int
	var statMu sync.Mutex
	for c := 0; c < coordinators; c++ {
		cl, err := client.New(client.Config{
			ID: int32(10 + c), Servers: addrs, Network: n,
			Mode: client.ModePessimistic, DeadlockPoll: 5 * time.Millisecond, Recorder: &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cl.Close() })
		wg.Add(1)
		go func(cl *client.Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < txnsPerCoord; i++ {
				tx, err := cl.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				perm := rng.Perm(len(keys))[:3]
				var failed error
				for _, ki := range perm {
					if err := tx.Write(ctx, keys[ki], []byte(fmt.Sprintf("v%d-%d", seed, i))); err != nil {
						failed = err
						break
					}
				}
				if failed == nil {
					failed = tx.Commit(ctx)
				}
				statMu.Lock()
				switch {
				case failed == nil:
					commits++
				case errors.Is(failed, kv.ErrDeadlock):
					deadlockAborts++
				case errors.Is(failed, kv.ErrAborted):
					otherAborts++
				default:
					statMu.Unlock()
					t.Errorf("unexpected error: %v", failed)
					return
				}
				statMu.Unlock()
			}
		}(cl, int64(c+1))
	}
	wg.Wait()
	t.Logf("commits=%d deadlockAborts=%d otherAborts=%d", commits, deadlockAborts, otherAborts)
	if commits == 0 {
		t.Fatal("nothing committed under contention")
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

// BenchmarkCycleResolution measures end-to-end resolution of one
// cross-server AB-BA cycle: from closing the cycle to the victim
// aborted and the survivor committed. The detector sub-benchmark is the
// global-detection path; timeout is the pre-detector baseline, where
// only the 1s lock-wait timeout breaks the cycle (both recorded in
// BENCH_deadlock.json). Not part of the CI bench smoke — the timeout
// arm costs a full second per iteration.
func BenchmarkCycleResolution(b *testing.B) {
	for _, cfg := range []struct {
		name string
		poll time.Duration
	}{
		{"detector", 5 * time.Millisecond},
		{"timeout", -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			_, cls := startDeadlockBed(b, time.Second, cfg.poll, nil)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kA := keyOnServer("b"+cfg.name+"A", 0, 2, i)
				kB := keyOnServer("b"+cfg.name+"B", 1, 2, i)
				tx1, _ := cls[0].Begin(ctx)
				tx2, _ := cls[1].Begin(ctx)
				if err := tx1.Write(ctx, kA, []byte("t1")); err != nil {
					b.Fatal(err)
				}
				if err := tx2.Write(ctx, kB, []byte("t2")); err != nil {
					b.Fatal(err)
				}
				var err1, err2 error
				var race sync.WaitGroup
				race.Add(2)
				go func() { defer race.Done(); err1 = tx1.Write(ctx, kB, []byte("t1")) }()
				go func() { defer race.Done(); err2 = tx2.Write(ctx, kA, []byte("t2")) }()
				race.Wait()
				if err1 == nil && err2 == nil {
					b.Fatal("cycle resolved with no abort")
				}
				if err1 == nil {
					err1 = tx1.Commit(ctx)
				} else {
					err2 = tx2.Commit(ctx)
				}
				if err1 != nil && err2 != nil {
					b.Fatalf("no survivor: %v / %v", err1, err2)
				}
			}
		})
	}
}

// TestTxnStateGCSoak is the bounded-memory soak of the acceptance
// criteria: >= 100k transactions through two servers, after which the
// live transaction-record count must be zero. Opt-in via MVTL_SOAK=1 —
// it takes tens of seconds (numbers recorded in BENCH_deadlock.json).
func TestTxnStateGCSoak(t *testing.T) {
	if os.Getenv("MVTL_SOAK") == "" {
		t.Skip("set MVTL_SOAK=1 to run the 100k-transaction soak")
	}
	n := transport.NewMem(transport.LatencyModel{})
	addrs := []string{"srv-0", "srv-1"}
	for _, a := range addrs {
		srv, err := server.New(server.Config{Addr: a, Network: n})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	const (
		coordinators = 8
		txnsPerCoord = 12_500
	)
	var committed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < coordinators; c++ {
		cl, err := client.New(client.Config{ID: int32(1 + c), Servers: addrs, Network: n, Mode: client.ModeTO})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cl.Close() })
		wg.Add(1)
		go func(cl *client.Client, seed int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < txnsPerCoord; i++ {
				tx, err := cl.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				k := fmt.Sprintf("k-%d", (seed*31+i)%512)
				if _, err := tx.Read(ctx, k); err != nil {
					continue
				}
				if err := tx.Write(ctx, k, []byte("v")); err != nil {
					continue
				}
				if err := tx.Commit(ctx); err == nil {
					committed.Add(1)
				}
			}
		}(cl, c)
	}
	wg.Wait()
	cl, err := client.New(client.Config{ID: 99, Servers: addrs, Network: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	var live, purged int64
	for _, a := range addrs {
		st, err := cl.ServerStats(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		live += st.LiveTxns
		purged += st.PurgedTxns
	}
	t.Logf("%d/%d committed; live txn records=%d purged=%d", committed.Load(), coordinators*txnsPerCoord, live, purged)
	if live != 0 {
		t.Fatalf("%d transaction records survived the soak", live)
	}
	if purged < committed.Load() {
		t.Fatalf("purge counter %d < %d commits", purged, committed.Load())
	}
}

// TestTxnStateGC checks the transaction-state garbage collector: after
// a full write→decide→freeze→release round trip the server must retain
// no record, count the purge, and still tolerate late-arriving release
// and decide retries without resurrecting state.
func TestTxnStateGC(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")

	stats := func() wire.StatsResp {
		f := c.call(wire.TStatsReq, nil)
		st, err := wire.DecodeStatsResp(f.Body())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	const txns = 5
	for i := 1; i <= txns; i++ {
		txn := uint64(i)
		set := timestamp.NewSet(timestamp.Span(ts(int64(10*i)), ts(int64(10*i+5))))
		c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: txn, Key: "x", DecisionSrv: "srv", Set: set, Value: []byte{byte(i)}})
		c.call(wire.TDecideReq, wire.DecideReq{Txn: txn, Proposal: wire.DecideCommit, TS: ts(int64(10 * i))})
		c.call(wire.TFreezeWriteReq, wire.FreezeWriteReq{Txn: txn, Key: "x", TS: ts(int64(10 * i))})
		c.call(wire.TReleaseReq, wire.ReleaseReq{Txn: txn, Key: "x"})
	}
	st := stats()
	if st.LiveTxns != 0 {
		t.Fatalf("finished transactions not purged: %d live", st.LiveTxns)
	}
	if st.PurgedTxns < txns {
		t.Fatalf("purge counter %d, want >= %d", st.PurgedTxns, txns)
	}

	// Late-arriving messages for a purged transaction must not break or
	// resurrect anything.
	f := c.call(wire.TReleaseBatchReq, wire.ReleaseBatchReq{Txn: 1, Keys: []string{"x"}})
	if ack, err := wire.DecodeAck(f.Body()); err != nil || ack.Status != wire.StatusOK {
		t.Fatalf("late release after GC: %+v %v", ack, err)
	}
	f = c.call(wire.TDecideReq, wire.DecideReq{Txn: 1, Proposal: wire.DecideCommit, TS: ts(10)})
	dresp, err := wire.DecodeDecideResp(f.Body())
	if err != nil || dresp.Status != wire.StatusOK || dresp.Kind != wire.DecideCommit {
		t.Fatalf("late decide after GC: %+v %v", dresp, err)
	}
	// A late redundant freeze (the decide already installed the value)
	// must ack OK, not "no pending value".
	f = c.call(wire.TFreezeWriteReq, wire.FreezeWriteReq{Txn: 1, Key: "x", TS: ts(10)})
	if ack, err := wire.DecodeAck(f.Body()); err != nil || ack.Status != wire.StatusOK {
		t.Fatalf("late freeze after GC: %+v %v", ack, err)
	}
	if st := stats(); st.LiveTxns != 0 {
		t.Fatalf("late messages resurrected %d records", st.LiveTxns)
	}

	// Reads alone must not create transaction state either (a read
	// racing a decide used to resurrect finished records).
	c.call(wire.TReadLockReq, wire.ReadLockReq{Txn: 99, Key: "x", Upper: ts(1000)})
	if st := stats(); st.LiveTxns != 0 {
		t.Fatalf("a read created transaction state: %d live", st.LiveTxns)
	}
}

// TestTxnStateGCAfterClientAbort covers the participant-server leak: a
// client-side abort sends its decide only to the decision server and a
// release batch to everyone else, so the release path must finish (and
// GC) the participant's record — otherwise every aborted multi-server
// transaction leaks one record on each non-decision server.
func TestTxnStateGCAfterClientAbort(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	addrs := []string{"srv-0", "srv-1"}
	for _, a := range addrs {
		srv, err := server.New(server.Config{Addr: a, Network: n})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	cl, err := client.New(client.Config{ID: 1, Servers: addrs, Network: n, Mode: client.ModePessimistic})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	ctx := context.Background()
	const aborts = 5
	for i := 0; i < aborts; i++ {
		tx, err := cl.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(ctx, keyOnServer("abA", 0, 2, i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(ctx, keyOnServer("abB", 1, 2, i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Abort(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range addrs {
		st, err := cl.ServerStats(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		if st.LiveTxns != 0 {
			t.Fatalf("%s: %d records leaked by %d client aborts (purged %d)", a, st.LiveTxns, aborts, st.PurgedTxns)
		}
	}
}

// TestTxnStateGCBoundedUnderLoad runs a few hundred committing
// transactions through a coordinator and checks that the server's
// transaction-record count stays at zero afterwards while the purge
// counter grows — the bounded-memory property the GC exists for.
func TestTxnStateGCBoundedUnderLoad(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	srv, err := server.New(server.Config{Addr: "srv", Network: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cl, err := client.New(client.Config{ID: 1, Servers: []string{"srv"}, Network: n, Mode: client.ModeTO})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	ctx := context.Background()
	const txns = 300
	committed := 0
	for i := 0; i < txns; i++ {
		tx, err := cl.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		k := fmt.Sprintf("k-%d", i%17)
		if _, err := tx.Read(ctx, k); err != nil {
			continue
		}
		if err := tx.Write(ctx, k, []byte("v")); err != nil {
			continue
		}
		if err := tx.Commit(ctx); err == nil {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	st, err := cl.ServerStats(ctx, "srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d committed; live=%d purged=%d", committed, st.LiveTxns, st.PurgedTxns)
	if st.LiveTxns != 0 {
		t.Fatalf("%d transaction records survived %d transactions", st.LiveTxns, txns)
	}
	if st.PurgedTxns < int64(committed) {
		t.Fatalf("purge counter %d < %d commits", st.PurgedTxns, committed)
	}
}
