package server_test

import (
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// rawClient drives a server with hand-built frames, testing the handler
// layer beneath the coordinator abstraction.
type rawClient struct {
	t    *testing.T
	conn transport.Conn
	next uint64
}

func dialRaw(t *testing.T, n transport.Network, addr string) *rawClient {
	t.Helper()
	conn, err := n.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &rawClient{t: t, conn: conn, next: 1}
}

// call sends m as one frame and returns the response frame. Response
// buffers are deliberately never released back to the pool here, so
// decoded views in the tests stay valid for the test's lifetime.
func (c *rawClient) call(mt wire.MsgType, m wire.Message) *wire.FrameBuf {
	c.t.Helper()
	id := c.next
	c.next++
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(id, mt, m); err != nil {
		c.t.Fatal(err)
	}
	if err := c.conn.Send(fb); err != nil {
		c.t.Fatal(err)
	}
	f, err := c.conn.Recv()
	if err != nil {
		c.t.Fatal(err)
	}
	if f.ID() != id {
		c.t.Fatalf("response id %d for request %d", f.ID(), id)
	}
	return f
}

func startServer(t *testing.T, wlTimeout time.Duration) (*server.Server, *transport.Mem) {
	t.Helper()
	n := transport.NewMem(transport.LatencyModel{})
	srv, err := server.New(server.Config{
		Addr:             "srv",
		Network:          n,
		LockWaitTimeout:  200 * time.Millisecond,
		WriteLockTimeout: wlTimeout,
		ScanInterval:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, n
}

func ts(v int64) timestamp.Timestamp { return timestamp.New(v, 0) }

func TestServerReadFreshKey(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	f := c.call(wire.TReadLockReq, wire.ReadLockReq{Txn: 1, Key: "x", Upper: ts(100), Wait: false})
	resp, err := wire.DecodeReadLockResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Value != nil || resp.VersionTS != timestamp.Zero {
		t.Fatalf("%+v", resp)
	}
	if resp.Got.IsEmpty() {
		t.Fatal("read should have locked an interval")
	}
}

func TestServerWriteLockFreezeReadBack(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")

	set := timestamp.NewSet(timestamp.Span(ts(10), ts(20)))
	f := c.call(wire.TWriteLockReq, wire.WriteLockReq{
		Txn: 1, Key: "x", DecisionSrv: "srv", Set: set, Value: []byte("v1"),
	})
	wresp, err := wire.DecodeWriteLockResp(f.Body())
	if err != nil || wresp.Status != wire.StatusOK || !wresp.Got.Equal(set) {
		t.Fatalf("%+v %v", wresp, err)
	}

	// Commit at 15: decide, then freeze.
	f = c.call(wire.TDecideReq, wire.DecideReq{Txn: 1, Proposal: wire.DecideCommit, TS: ts(15)})
	dresp, err := wire.DecodeDecideResp(f.Body())
	if err != nil || dresp.Kind != wire.DecideCommit {
		t.Fatalf("%+v %v", dresp, err)
	}
	f = c.call(wire.TFreezeWriteReq, wire.FreezeWriteReq{Txn: 1, Key: "x", TS: ts(15)})
	if ack, err := wire.DecodeAck(f.Body()); err != nil || ack.Status != wire.StatusOK {
		t.Fatalf("%+v %v", ack, err)
	}
	// Release leftover locks.
	c.call(wire.TReleaseReq, wire.ReleaseReq{Txn: 1, Key: "x"})

	// A later reader sees the committed value.
	f = c.call(wire.TReadLockReq, wire.ReadLockReq{Txn: 2, Key: "x", Upper: ts(100)})
	rresp, err := wire.DecodeReadLockResp(f.Body())
	if err != nil || rresp.Status != wire.StatusOK {
		t.Fatalf("%+v %v", rresp, err)
	}
	if string(rresp.Value) != "v1" || rresp.VersionTS != ts(15) {
		t.Fatalf("value %q at %v", rresp.Value, rresp.VersionTS)
	}
}

func TestServerFreezeWithoutPendingFails(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	f := c.call(wire.TFreezeWriteReq, wire.FreezeWriteReq{Txn: 9, Key: "x", TS: ts(5)})
	ack, err := wire.DecodeAck(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status == wire.StatusOK {
		t.Fatal("freeze without a pending write must fail")
	}
}

func TestServerWriteConflictStatus(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	set := timestamp.NewSet(timestamp.Point(ts(5)))
	c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: 1, Key: "x", Set: set, Value: []byte("a")})
	// Exact conflicting request from another txn, no wait, no partial
	// fallback server-side: server always acquires partially, so Got is
	// empty and Denied covers the point.
	f := c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: 2, Key: "x", Set: set, Value: []byte("b")})
	resp, err := wire.DecodeWriteLockResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Got.IsEmpty() || !resp.Denied.Contains(ts(5)) {
		t.Fatalf("%+v", resp)
	}
}

func TestServerSuspectsDeadCoordinator(t *testing.T) {
	_, n := startServer(t, 150*time.Millisecond)
	c := dialRaw(t, n, "srv")
	set := timestamp.NewSet(timestamp.Span(ts(10), ts(20)))
	c.call(wire.TWriteLockReq, wire.WriteLockReq{
		Txn: 7, Key: "x", DecisionSrv: "srv", Set: set, Value: []byte("doomed"),
	})
	// Coordinator goes silent. The suspicion scanner must abort txn 7
	// and release its locks.
	deadline := time.Now().Add(3 * time.Second)
	other := dialRaw(t, n, "srv")
	for {
		f := other.call(wire.TWriteLockReq, wire.WriteLockReq{
			Txn: 8, Key: "x", DecisionSrv: "srv", Set: set, Value: []byte("winner"),
		})
		resp, err := wire.DecodeWriteLockResp(f.Body())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == wire.StatusOK && resp.Got.Equal(set) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned write locks never released")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The commitment object must have decided abort for txn 7; a late
	// commit proposal from the "dead" coordinator is refused.
	f := c.call(wire.TDecideReq, wire.DecideReq{Txn: 7, Proposal: wire.DecideCommit, TS: ts(15)})
	dresp, err := wire.DecodeDecideResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if dresp.Kind != wire.DecideAbort {
		t.Fatalf("agreement violated: late coordinator saw %v", dresp.Kind)
	}
}

func TestServerPurgeAndStats(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	// Install three versions.
	for i, v := range []int64{10, 20, 30} {
		txn := uint64(i + 1)
		set := timestamp.NewSet(timestamp.Point(ts(v)))
		c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: txn, Key: "x", DecisionSrv: "srv", Set: set, Value: []byte{byte(v)}})
		c.call(wire.TDecideReq, wire.DecideReq{Txn: txn, Proposal: wire.DecideCommit, TS: ts(v)})
		c.call(wire.TFreezeWriteReq, wire.FreezeWriteReq{Txn: txn, Key: "x", TS: ts(v)})
	}
	f := c.call(wire.TStatsReq, nil)
	st, err := wire.DecodeStatsResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 1 || st.Versions != 4 { // 3 writes + ⊥
		t.Fatalf("stats = %+v", st)
	}
	f = c.call(wire.TPurgeReq, wire.PurgeReq{Bound: ts(25)})
	presp, err := wire.DecodePurgeResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if presp.Versions != 2 { // ⊥ and v10 dropped; v20 kept as boundary
		t.Fatalf("purged %d versions", presp.Versions)
	}
}

func TestServerMalformedFrame(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	f := c.call(wire.TReadLockReq, wire.Raw{1, 2, 3})
	resp, err := wire.DecodeReadLockResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusError {
		t.Fatalf("malformed request must yield StatusError, got %+v", resp)
	}
}

func TestServerConcurrentRequestsOneConn(t *testing.T) {
	_, n := startServer(t, time.Minute)
	conn, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// Issue 20 interleaved reads without waiting for responses, then
	// collect: the per-request goroutines must answer all of them.
	for i := uint64(1); i <= 20; i++ {
		req := wire.ReadLockReq{Txn: i, Key: "k", Upper: ts(int64(100 + i))}
		fb := wire.GetFrameBuf()
		if err := fb.SetFrame(i, wire.TReadLockReq, req); err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(fb); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		f, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seen[f.ID()] = true
		f.Release()
	}
	if len(seen) != 20 {
		t.Fatalf("got %d distinct responses", len(seen))
	}
}

// TestServerCommittedReleaseInstallsLostFreeze covers the lost-freeze
// hole: freezes and releases are both fire-and-forget casts, so a
// dropped freeze followed by a delivered release used to discard the
// still-unfrozen write lock — and with it the pending value of a
// durably committed write. A release carrying the commit decision must
// install the pending write at the commit timestamp instead.
func TestServerCommittedReleaseInstallsLostFreeze(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")

	set := timestamp.NewSet(timestamp.Span(ts(10), ts(20)))
	f := c.call(wire.TWriteLockReq, wire.WriteLockReq{
		Txn: 1, Key: "x", DecisionSrv: "srv", Set: set, Value: []byte("v1"),
	})
	wresp, err := wire.DecodeWriteLockResp(f.Body())
	if err != nil || wresp.Status != wire.StatusOK {
		t.Fatalf("%+v %v", wresp, err)
	}
	f = c.call(wire.TDecideReq, wire.DecideReq{Txn: 1, Proposal: wire.DecideCommit, TS: ts(15)})
	if dresp, err := wire.DecodeDecideResp(f.Body()); err != nil || dresp.Kind != wire.DecideCommit {
		t.Fatalf("%+v %v", dresp, err)
	}
	// The freeze cast is "lost": the coordinator's release batch arrives
	// first, carrying the commit decision.
	f = c.call(wire.TReleaseBatchReq, wire.ReleaseBatchReq{
		Txn: 1, Committed: true, TS: ts(15), Keys: []string{"x"},
	})
	if ack, err := wire.DecodeAck(f.Body()); err != nil || ack.Status != wire.StatusOK {
		t.Fatalf("%+v %v", ack, err)
	}
	// The committed value must be readable, not dropped.
	f = c.call(wire.TReadLockReq, wire.ReadLockReq{Txn: 2, Key: "x", Upper: ts(100)})
	rresp, err := wire.DecodeReadLockResp(f.Body())
	if err != nil || rresp.Status != wire.StatusOK {
		t.Fatalf("%+v %v", rresp, err)
	}
	if string(rresp.Value) != "v1" || rresp.VersionTS != ts(15) {
		t.Fatalf("committed write lost: value %q at %v, want \"v1\" at %v", rresp.Value, rresp.VersionTS, ts(15))
	}
	// An uncommitted release (the abort path) still drops pending writes.
	set2 := timestamp.NewSet(timestamp.Span(ts(30), ts(40)))
	c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: 3, Key: "y", DecisionSrv: "srv", Set: set2, Value: []byte("v2")})
	c.call(wire.TReleaseBatchReq, wire.ReleaseBatchReq{Txn: 3, Keys: []string{"y"}})
	f = c.call(wire.TReadLockReq, wire.ReadLockReq{Txn: 4, Key: "y", Upper: ts(100)})
	rresp, err = wire.DecodeReadLockResp(f.Body())
	if err != nil || rresp.Status != wire.StatusOK {
		t.Fatalf("%+v %v", rresp, err)
	}
	if len(rresp.Value) != 0 || rresp.VersionTS != timestamp.Zero {
		t.Fatalf("aborted write leaked: value %q at %v", rresp.Value, rresp.VersionTS)
	}
}
