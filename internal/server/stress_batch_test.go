package server_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// TestBatchedCommitAgainstSingleKeyRequests hammers the same small key
// space from two coordinator populations at once: timestamp-ordering
// clients whose commits travel as per-server write-lock/freeze/release
// batches, and MVTIL clients whose write path issues single-key
// requests. Run with -race this exercises the striped key/txn shards
// and both protocol generations against each other; the recorded
// history must stay serializable.
func TestBatchedCommitAgainstSingleKeyRequests(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	const servers = 3
	addrs := make([]string, servers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("srv-%d", i)
		srv, err := server.New(server.Config{
			Addr:            addrs[i],
			Network:         n,
			LockWaitTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}

	var rec history.Recorder
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("hot-%d", i)
	}
	newClient := func(id int32, mode client.Mode) *client.Client {
		cl, err := client.New(client.Config{
			ID: id, Servers: addrs, Network: n, Mode: mode, Recorder: &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cl.Close() })
		return cl
	}

	const (
		coordinators = 4 // per population
		txnsPerCoord = 40
	)
	run := func(cl *client.Client, seed int) {
		ctx := context.Background()
		for i := 0; i < txnsPerCoord; i++ {
			tx, err := cl.Begin(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			// Touch an overlapping window of the hot keys: read two,
			// write three, spanning all servers.
			base := (seed + i) % len(keys)
			aborted := false
			for _, off := range []int{0, 3} {
				if _, err := tx.Read(ctx, keys[(base+off)%len(keys)]); err != nil {
					aborted = true
					break
				}
			}
			if !aborted {
				for _, off := range []int{1, 4, 6} {
					k := keys[(base+off)%len(keys)]
					if err := tx.Write(ctx, k, []byte(fmt.Sprintf("v%d-%d", seed, i))); err != nil {
						aborted = true
						break
					}
				}
			}
			if aborted {
				continue // Read/Write failures already aborted the txn
			}
			if err := tx.Commit(ctx); err != nil && !errors.Is(err, kv.ErrAborted) {
				t.Errorf("unexpected commit error: %v", err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < coordinators; c++ {
		batched := newClient(int32(100+c), client.ModeTO)
		single := newClient(int32(200+c), client.ModeTILEarly)
		wg.Add(2)
		go func(c int) { defer wg.Done(); run(batched, c) }(c)
		go func(c int) { defer wg.Done(); run(single, c+1) }(c)
	}
	wg.Wait()

	if rec.Len() == 0 {
		t.Fatal("no transaction committed under contention")
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

// TestServerWriteLockBatch drives the batch handler directly: one frame
// locks three keys, a conflicting key reports its denial in the per-key
// sub-result without failing the siblings.
func TestServerWriteLockBatch(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")

	// Txn 1 pre-locks key "b" at 5 so the batch below partially fails.
	pre := timestamp.NewSet(timestamp.Point(ts(5)))
	c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: 1, Key: "b", Set: pre, Value: []byte("pre")})

	set := timestamp.NewSet(timestamp.Span(ts(1), ts(10)))
	f := c.call(wire.TWriteLockBatchReq, wire.WriteLockBatchReq{
		Txn:         2,
		DecisionSrv: "srv",
		Items: []wire.WriteLockItem{
			{Key: "a", Set: set, Value: []byte("va")},
			{Key: "b", Set: set, Value: []byte("vb")},
			{Key: "c", Set: set, Value: []byte("vc")},
		},
	})
	resp, err := wire.DecodeWriteLockBatchResp(f.Body())
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("%+v %v", resp, err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if !resp.Results[0].Got.Equal(set) || !resp.Results[2].Got.Equal(set) {
		t.Fatalf("full acquisitions mangled: %+v", resp.Results)
	}
	if resp.Results[1].Got.Contains(ts(5)) || !resp.Results[1].Denied.Contains(ts(5)) {
		t.Fatalf("conflicting key result wrong: %+v", resp.Results[1])
	}

	// Freeze batch commits txn 2 at 7 on all three keys.
	f = c.call(wire.TFreezeBatchReq, wire.FreezeBatchReq{
		Txn: 2, TS: ts(7), WriteKeys: []string{"a", "b", "c"},
	})
	fresp, err := wire.DecodeFreezeBatchResp(f.Body())
	if err != nil || fresp.Status != wire.StatusOK || len(fresp.WriteAcks) != 3 {
		t.Fatalf("%+v %v", fresp, err)
	}
	for i, ack := range fresp.WriteAcks {
		if ack.Status != wire.StatusOK {
			t.Fatalf("freeze of key %d failed: %+v", i, ack)
		}
	}
	// Release batch drops the leftovers.
	f = c.call(wire.TReleaseBatchReq, wire.ReleaseBatchReq{Txn: 2, Keys: []string{"a", "b", "c"}})
	if ack, err := wire.DecodeAck(f.Body()); err != nil || ack.Status != wire.StatusOK {
		t.Fatalf("%+v %v", ack, err)
	}

	// A later reader observes the batched commit on every key.
	for _, k := range []string{"a", "c"} {
		f = c.call(wire.TReadLockReq, wire.ReadLockReq{Txn: 9, Key: k, Upper: ts(100)})
		rresp, err := wire.DecodeReadLockResp(f.Body())
		if err != nil || rresp.Status != wire.StatusOK {
			t.Fatalf("%+v %v", rresp, err)
		}
		if rresp.VersionTS != ts(7) || string(rresp.Value) != "v"+k {
			t.Fatalf("read %q: value %q at %v", k, rresp.Value, rresp.VersionTS)
		}
	}
}

// TestServerFreezeBatchWithoutPendingFails mirrors the single-key freeze
// misuse test for the batched handler.
func TestServerFreezeBatchWithoutPendingFails(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	f := c.call(wire.TFreezeBatchReq, wire.FreezeBatchReq{Txn: 42, TS: ts(5), WriteKeys: []string{"x"}})
	resp, err := wire.DecodeFreezeBatchResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.WriteAcks) != 1 || resp.WriteAcks[0].Status == wire.StatusOK {
		t.Fatalf("freeze without a pending write must fail per key: %+v", resp)
	}
}

// TestServerBatchOfOneMatchesSingleKey checks the degenerate batch: a
// batch of size one behaves exactly like the legacy single-key message.
func TestServerBatchOfOneMatchesSingleKey(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")
	set := timestamp.NewSet(timestamp.Span(ts(10), ts(20)))

	f := c.call(wire.TWriteLockBatchReq, wire.WriteLockBatchReq{
		Txn: 1, DecisionSrv: "srv",
		Items: []wire.WriteLockItem{{Key: "x", Set: set, Value: []byte("v1")}},
	})
	bresp, err := wire.DecodeWriteLockBatchResp(f.Body())
	if err != nil || bresp.Status != wire.StatusOK || len(bresp.Results) != 1 || !bresp.Results[0].Got.Equal(set) {
		t.Fatalf("%+v %v", bresp, err)
	}

	f = c.call(wire.TWriteLockReq, wire.WriteLockReq{Txn: 2, Key: "x", Set: set, Value: []byte("v2")})
	sresp, err := wire.DecodeWriteLockResp(f.Body())
	if err != nil {
		t.Fatal(err)
	}
	if !sresp.Got.IsEmpty() || !sresp.Denied.Equal(set) {
		t.Fatalf("single-key request against batch-held locks: %+v", sresp)
	}
}

// TestServerReadLockBatch drives the batched read handler directly: one
// frame fetches several keys, each with its own version/value/interval
// sub-result, fresh keys come back as ⊥ at timestamp zero, and one
// blocked key fails its sub-result without poisoning the others.
func TestServerReadLockBatch(t *testing.T) {
	_, n := startServer(t, time.Minute)
	c := dialRaw(t, n, "srv")

	// Seed: txn 1 commits a and b at 5 via the batched write path.
	set := timestamp.NewSet(timestamp.Span(ts(1), ts(10)))
	c.call(wire.TWriteLockBatchReq, wire.WriteLockBatchReq{
		Txn: 1, DecisionSrv: "srv",
		Items: []wire.WriteLockItem{
			{Key: "a", Set: set, Value: []byte("va")},
			{Key: "b", Set: set, Value: []byte("vb")},
		},
	})
	c.call(wire.TFreezeBatchReq, wire.FreezeBatchReq{Txn: 1, TS: ts(5), WriteKeys: []string{"a", "b"}})
	c.call(wire.TReleaseBatchReq, wire.ReleaseBatchReq{Txn: 1, Keys: []string{"a", "b"}})

	f := c.call(wire.TReadLockBatchReq, wire.ReadLockBatchReq{
		Txn: 9, Upper: ts(100), Keys: []string{"a", "fresh", "b"},
	})
	resp, err := wire.DecodeReadLockBatchResp(f.Body())
	if err != nil || resp.Status != wire.StatusOK || len(resp.Results) != 3 {
		t.Fatalf("%+v %v", resp, err)
	}
	for i, want := range []struct {
		ts    timestamp.Timestamp
		value string
	}{{ts(5), "va"}, {timestamp.Zero, ""}, {ts(5), "vb"}} {
		r := resp.Results[i]
		if r.Status != wire.StatusOK || r.VersionTS != want.ts || string(r.Value) != want.value {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if resp.Results[1].Value != nil {
		t.Fatalf("fresh key must read ⊥ (nil), got %v", resp.Results[1].Value)
	}

	// Txn 2 holds an unfrozen write lock on "hot": a waiting batch
	// containing it times out on that key only; the other key settles.
	c.call(wire.TWriteLockReq, wire.WriteLockReq{
		Txn: 2, Key: "hot", DecisionSrv: "srv", Set: set, Value: []byte("wip"),
	})
	f = c.call(wire.TReadLockBatchReq, wire.ReadLockBatchReq{
		Txn: 9, Upper: ts(8), Wait: true, Keys: []string{"hot", "a"},
	})
	resp, err = wire.DecodeReadLockBatchResp(f.Body())
	if err != nil || resp.Status != wire.StatusOK || len(resp.Results) != 2 {
		t.Fatalf("%+v %v", resp, err)
	}
	if resp.Results[0].Status == wire.StatusOK {
		t.Fatalf("read under an unfrozen write lock must not settle: %+v", resp.Results[0])
	}
	if resp.Results[1].Status != wire.StatusOK || string(resp.Results[1].Value) != "va" {
		t.Fatalf("healthy key poisoned by blocked sibling: %+v", resp.Results[1])
	}
}
