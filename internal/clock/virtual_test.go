package clock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSkewedAdvanceTo covers the Advancer passthrough: a Skewed over an
// advanceable base must forward AdvanceTo (offset-compensated), and a
// Skewed over a plain source must no-op.
func TestSkewedAdvanceTo(t *testing.T) {
	m := &Manual{}
	s := NewSkewed(m, -5)
	s.AdvanceTo(100)
	if got := s.Now(); got != 100 {
		t.Fatalf("after AdvanceTo(100): Now() = %d, want 100", got)
	}
	if got := m.Now(); got != 105 {
		t.Fatalf("base not advanced with offset compensation: base.Now() = %d, want 105", got)
	}
	// Advancing backwards never moves the clock back.
	s.AdvanceTo(50)
	if got := s.Now(); got != 100 {
		t.Fatalf("backwards AdvanceTo moved the clock: Now() = %d, want 100", got)
	}
	// Through Process (the §8.1 path that used to drop the advance).
	p := NewProcess(NewSkewed(&Manual{}, 3), 1)
	p.AdvanceTo(200)
	if ts := p.Now(); ts.Time <= 200 {
		t.Fatalf("Process over Skewed over Manual did not advance: Now().Time = %d, want > 200", ts.Time)
	}
	// Non-advanceable base: no panic, monotonic floor still raised.
	fixed := NewSkewed(System{}, 0)
	fixed.AdvanceTo(0)
}

// TestVirtualSleepJumps checks that sleeping on an otherwise-quiescent
// timeline costs (almost) no wall clock and moves virtual now exactly.
func TestVirtualSleepJumps(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer v.Unregister()
	start := v.Now()
	wall := time.Now()
	v.Sleep(10 * time.Second)
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Fatalf("virtual sleep took %v of wall clock", elapsed)
	}
	if got := v.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("virtual now advanced by %v, want 10s", got)
	}
}

// TestVirtualFiringOrder checks the (deadline, insertion) total order:
// three sleepers with distinct deadlines wake in deadline order even
// though they were started in reverse.
func TestVirtualFiringOrder(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer v.Unregister()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for _, d := range []int{3, 2, 1} {
		wg.Add(1)
		d := d
		v.Go(func() {
			defer wg.Done()
			v.Sleep(time.Duration(d) * time.Second)
			mu.Lock()
			order = append(order, d)
			mu.Unlock()
		})
	}
	v.Idle(wg.Wait)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order %v, want [1 2 3]", order)
	}
}

// TestVirtualWaiterCredit checks that a Wake delivered while parked
// unblocks without advancing time, and a Wake delivered while running
// is buffered and absorbed by the next Park.
func TestVirtualWaiterCredit(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer v.Unregister()
	w := v.NewWaiter()
	start := v.Now()
	done := make(chan struct{})
	v.Go(func() {
		w.Park()
		close(done)
	})
	// Give the child a chance to park, then wake it; time must not move
	// (the parent stays active throughout, so no advance can happen).
	time.Sleep(time.Millisecond)
	w.Wake()
	<-done
	if !v.Now().Equal(start) {
		t.Fatalf("waiter handoff advanced virtual time by %v", v.Now().Sub(start))
	}
	// Buffered wake: Wake before Park returns immediately.
	w.Wake()
	w.Park()
	// Drain discards a buffered wake.
	w.Wake()
	w.Drain()
}

// TestVirtualContextDeadline checks that a virtual timeout context
// expires by timeline jump when all actors are parked on it, and that
// cancel cuts the timer.
func TestVirtualContextDeadline(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer v.Unregister()
	ctx, cancel := v.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if d, ok := ctx.Deadline(); !ok || d.Sub(v.Now()) != 30*time.Second {
		t.Fatalf("deadline %v not 30s from now", d)
	}
	w := v.NewWaiter()
	start := v.Now()
	wall := time.Now()
	var err error
	doneCh := make(chan struct{})
	v.Go(func() {
		err = w.ParkCtx(ctx)
		close(doneCh)
	})
	// Parent goes idle so the only way forward is the ctx deadline.
	v.Idle(func() { <-doneCh })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ParkCtx returned %v, want DeadlineExceeded", err)
	}
	if got := v.Now().Sub(start); got != 30*time.Second {
		t.Fatalf("timeline advanced %v, want 30s", got)
	}
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Fatalf("virtual timeout took %v of wall clock", elapsed)
	}
	if errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}

	// A canceled context stops occupying the heap: sleeping past its
	// former deadline must not fire it.
	ctx2, cancel2 := v.WithTimeout(context.Background(), time.Second)
	cancel2()
	if !errors.Is(ctx2.Err(), context.Canceled) {
		t.Fatalf("ctx2.Err() = %v, want Canceled", ctx2.Err())
	}
	v.Sleep(2 * time.Second)

	// Wake beats deadline: ParkCtx returns nil and the deadline timer
	// is detached from the waiter.
	ctx3, cancel3 := v.WithTimeout(context.Background(), time.Hour)
	defer cancel3()
	w3 := v.NewWaiter()
	got := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	v.Go(func() {
		defer wg.Done()
		got <- w3.ParkCtx(ctx3)
	})
	time.Sleep(time.Millisecond)
	w3.Wake()
	v.Idle(wg.Wait)
	if err := <-got; err != nil {
		t.Fatalf("ParkCtx after Wake = %v, want nil", err)
	}
}

// TestVirtualSleepStop checks both outcomes: the stop channel closing
// first (canceled, true) and the deadline arriving first (false).
func TestVirtualSleepStop(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer v.Unregister()
	// Deadline first: nothing stops it, returns false after a jump.
	stop := make(chan struct{})
	if v.SleepStop(time.Second, stop) {
		t.Fatal("SleepStop returned true with an open stop channel")
	}
	// Stop first: the parent closes stop while the child sleeps.
	var stopped bool
	var wg sync.WaitGroup
	wg.Add(1)
	v.Go(func() {
		defer wg.Done()
		stopped = v.SleepStop(time.Hour, stop)
	})
	time.Sleep(time.Millisecond)
	close(stop)
	// Plain (active) wait, not Idle: the closer staying runnable pins
	// the timeline, so the sleeper must observe the stop, not a fire.
	wg.Wait()
	if !stopped {
		t.Fatal("SleepStop did not observe the stop close")
	}
	if got := v.Now(); got.Sub(v.epoch) >= time.Hour {
		t.Fatalf("stopped sleep still advanced the timeline to %v", got)
	}
}

// TestVirtualAfterFunc checks deferred functions run at their deadline
// on a registered goroutine.
func TestVirtualAfterFunc(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer v.Unregister()
	fired := make(chan time.Time, 1)
	v.AfterFunc(5*time.Second, func() { fired <- v.Now() })
	start := v.Now()
	v.Sleep(10 * time.Second)
	at := <-fired
	if got := at.Sub(start); got != 5*time.Second {
		t.Fatalf("AfterFunc fired at +%v, want +5s", got)
	}
}

// TestVirtualDeadlockPanics checks the diagnostic: a registered actor
// parking with no pending timers and no peer to wake it is a protocol
// violation and must panic, not hang.
func TestVirtualDeadlockPanics(t *testing.T) {
	v := NewVirtual()
	v.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected a virtual-time deadlock panic")
		}
		// The panicking goroutine never unparked; rebalance so the
		// deferred Unregister does not fire a second advance.
		v.mu.Lock()
		v.active++
		v.parked--
		v.mu.Unlock()
		v.Unregister()
	}()
	v.NewWaiter().Park()
}
