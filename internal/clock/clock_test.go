package clock

import (
	"sync"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func TestLogicalMonotonic(t *testing.T) {
	var l Logical
	prev := l.Now()
	for i := 0; i < 100; i++ {
		cur := l.Now()
		if cur <= prev {
			t.Fatalf("logical clock went backwards: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestLogicalConcurrentUnique(t *testing.T) {
	var l Logical
	const goroutines, per = 8, 500
	seen := make(chan int64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen <- l.Now()
			}
		}()
	}
	wg.Wait()
	close(seen)
	dup := make(map[int64]bool, goroutines*per)
	for v := range seen {
		if dup[v] {
			t.Fatalf("duplicate logical tick %d", v)
		}
		dup[v] = true
	}
}

func TestLogicalAdvanceTo(t *testing.T) {
	var l Logical
	l.AdvanceTo(1000)
	if got := l.Now(); got <= 1000 {
		t.Fatalf("Now after AdvanceTo(1000) = %d", got)
	}
	l.AdvanceTo(50) // must not go backwards
	if got := l.Now(); got <= 1000 {
		t.Fatalf("AdvanceTo must not rewind, Now = %d", got)
	}
}

func TestManual(t *testing.T) {
	var m Manual
	if m.Now() != 0 {
		t.Fatal("zero Manual should read 0")
	}
	m.Set(42)
	if m.Now() != 42 {
		t.Fatal("Set not observed")
	}
	if m.Advance(8) != 50 || m.Now() != 50 {
		t.Fatal("Advance wrong")
	}
	m.AdvanceTo(10) // backwards: no-op
	if m.Now() != 50 {
		t.Fatal("AdvanceTo must not rewind")
	}
	m.Set(10) // Set may rewind (models bad clocks)
	if m.Now() != 10 {
		t.Fatal("Set must be able to rewind")
	}
}

func TestSkewed(t *testing.T) {
	var m Manual
	m.Set(100)
	fast := NewSkewed(&m, +7)
	slow := NewSkewed(&m, -7)
	if fast.Now() != 107 || slow.Now() != 93 {
		t.Fatalf("skew wrong: %d %d", fast.Now(), slow.Now())
	}
}

func TestProcessMonotonicAndTagged(t *testing.T) {
	var m Manual
	m.Set(5)
	p := NewProcess(&m, 3)
	a := p.Now()
	if a != timestamp.New(5, 3) {
		t.Fatalf("first Now = %v", a)
	}
	// source stalls: Process must still move forward
	b := p.Now()
	if !b.After(a) {
		t.Fatalf("stalled source must still yield increasing timestamps: %v then %v", a, b)
	}
	if b.Proc != 3 {
		t.Fatalf("proc id lost: %v", b)
	}
	// source rewinds: still monotone
	m.Set(1)
	c := p.Now()
	if !c.After(b) {
		t.Fatalf("rewound source must not rewind Process: %v then %v", b, c)
	}
}

func TestProcessAdvanceTo(t *testing.T) {
	var l Logical
	p := NewProcess(&l, 1)
	p.AdvanceTo(500)
	if got := p.Now(); got.Time <= 500 {
		t.Fatalf("Now after AdvanceTo = %v", got)
	}
}

func TestProcessID(t *testing.T) {
	p := NewProcess(System{}, 9)
	if p.ID() != 9 {
		t.Fatal("ID mismatch")
	}
	if got := p.Now(); got.Proc != 9 {
		t.Fatalf("timestamp proc = %d", got.Proc)
	}
}
