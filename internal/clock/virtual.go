package clock

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic virtual-time scheduler implementing
// Timers. Registered actors (goroutines spawned through Go or
// bracketed by Register/Unregister) declare themselves blocked by
// sleeping or parking on a Waiter; when every actor is quiescent, the
// timeline jumps straight to the earliest pending deadline and fires
// it. A one-second lock-wait timeout or a 500ms partition window thus
// resolves in microseconds of wall clock, in the same event order on
// every run.
//
// The invariant that keeps transcripts identical to wall-clock runs is
// credited wakeups: every transition that makes a goroutine runnable
// again — a timer firing, a Waiter.Wake, a context expiring —
// increments the active count under the scheduler lock before the
// goroutine is signaled. Time therefore never advances while any
// woken goroutine has protocol work left to do, so a pending timeout
// can never fire ahead of the delivery that would have satisfied it.
// Blocking on anything the scheduler cannot see (a bare channel, a
// sync.WaitGroup) leaves the goroutine counted as runnable, which can
// only delay advancement, never reorder it; Idle exists to bracket
// such waits when the awaited goroutines themselves need the timeline
// to move.
type Virtual struct {
	epoch time.Time

	mu sync.Mutex
	// now is the virtual timeline, in nanoseconds since epoch.
	now int64
	// registered counts live actors; active counts the runnable ones.
	registered, active int
	// parked counts waiters currently parked (for deadlock reporting).
	parked int
	// idlers counts goroutines inside Idle: their fn may return without
	// any timeline event (an empty WaitGroup, an already-closed
	// channel), so quiescence with an idler in flight is not a deadlock.
	idlers int
	timers vtimerHeap
	seq    uint64
}

// NewVirtual returns a fresh virtual timeline. The epoch is a fixed
// instant so that two runs read identical times.
func NewVirtual() *Virtual {
	return &Virtual{epoch: time.Unix(1_000_000_000, 0).UTC()}
}

var _ Timers = (*Virtual)(nil)

// Register adds the calling goroutine to the actor registry. Every
// goroutine that sleeps, parks, or wakes others on this timeline must
// be registered (Go-spawned goroutines are registered automatically).
func (v *Virtual) Register() {
	v.mu.Lock()
	v.registered++
	v.active++
	v.mu.Unlock()
}

// Unregister removes the calling goroutine from the registry, letting
// the timeline advance without it.
func (v *Virtual) Unregister() {
	v.mu.Lock()
	v.registered--
	v.active--
	v.tryAdvanceLocked()
	v.mu.Unlock()
}

// Now implements Timers.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	n := v.now
	v.mu.Unlock()
	return v.epoch.Add(time.Duration(n))
}

// Sleep implements Timers: the virtual sleep costs no wall clock once
// every other actor is quiescent.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{}, 1)
	v.mu.Lock()
	v.pushLocked(d, func() {
		v.active++
		ch <- struct{}{}
	})
	v.active--
	v.tryAdvanceLocked()
	v.mu.Unlock()
	<-ch
}

// SleepStop implements Timers.
func (v *Virtual) SleepStop(d time.Duration, stop <-chan struct{}) bool {
	if stop == nil {
		v.Sleep(d)
		return false
	}
	if d <= 0 {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	ch := make(chan struct{}, 1)
	v.mu.Lock()
	t := v.pushLocked(d, func() {
		v.active++
		ch <- struct{}{}
	})
	v.active--
	v.tryAdvanceLocked()
	v.mu.Unlock()
	select {
	case <-ch:
		// If stop closed concurrently, prefer reporting it: a closer
		// that went idle right after closing can let the timer fire
		// first, and callers use the result to decide shutdown.
		select {
		case <-stop:
			return true
		default:
			return false
		}
	case <-stop:
		v.mu.Lock()
		if t.idx >= 0 {
			// Not fired yet: cancel the timer and credit ourselves —
			// the closer of stop was an active goroutine, so no
			// advance can have slipped in between.
			v.removeLocked(t)
			v.active++
			v.mu.Unlock()
			return true
		}
		v.mu.Unlock()
		// The timer fired concurrently and already credited us;
		// consume its signal so the accounting balances.
		<-ch
		return false
	}
}

// AfterFunc implements Timers: fn runs on a registered goroutine when
// the timeline reaches now+d.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) {
	v.mu.Lock()
	v.pushLocked(d, func() { v.goLocked(fn) })
	v.mu.Unlock()
}

// Go implements Timers.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.goLocked(fn)
	v.mu.Unlock()
}

// goLocked spawns fn registered. The credit happens before the
// goroutine exists, so the parent can park immediately without the
// timeline advancing past the child's first action.
func (v *Virtual) goLocked(fn func()) {
	v.registered++
	v.active++
	go func() {
		defer v.Unregister()
		fn()
	}()
}

// Idle implements Timers: the caller stops counting as runnable while
// fn blocks on other registered goroutines.
func (v *Virtual) Idle(fn func()) {
	v.mu.Lock()
	v.idlers++
	v.active--
	v.tryAdvanceLocked()
	v.mu.Unlock()
	defer func() {
		v.mu.Lock()
		v.idlers--
		v.active++
		v.mu.Unlock()
	}()
	fn()
}

// NewWaiter implements Timers.
func (v *Virtual) NewWaiter() Waiter {
	return &vWaiter{v: v, ch: make(chan struct{}, 1)}
}

// WithTimeout implements Timers. The deadline lives on the virtual
// timeline: it expires when virtual now reaches it, which costs no
// wall clock once the system is otherwise quiescent. Parent
// cancellation is propagated only for parents with a Done channel
// (none of the bed's contexts have one — they derive from
// context.Background).
func (v *Virtual) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	c := &vctx{parent: parent, v: v, done: make(chan struct{})}
	v.mu.Lock()
	if d <= 0 {
		c.deadline = v.epoch.Add(time.Duration(v.now))
		c.finishLocked(context.DeadlineExceeded)
		v.mu.Unlock()
		return c, func() {}
	}
	c.deadline = v.epoch.Add(time.Duration(v.now) + d)
	c.timer = v.pushLocked(d, func() { c.finishLocked(context.DeadlineExceeded) })
	v.mu.Unlock()
	if pd := parent.Done(); pd != nil {
		// Off-bed parents may be cancelable; watch them from an
		// unregistered goroutine (a registered one would block
		// advancement forever while watching).
		go func() {
			select {
			case <-pd:
				c.cancel(context.Cause(parent))
			case <-c.done:
			}
		}()
	}
	return c, func() { c.cancel(context.Canceled) }
}

// vtimer is one pending deadline. fire runs with v.mu held, exactly
// once; idx is the heap position, -1 once fired or removed.
type vtimer struct {
	at   int64
	seq  uint64
	idx  int
	fire func()
}

// pushLocked schedules fire at now+d and returns the entry.
func (v *Virtual) pushLocked(d time.Duration, fire func()) *vtimer {
	if d < 0 {
		d = 0
	}
	t := &vtimer{at: v.now + int64(d), seq: v.seq, fire: fire}
	v.seq++
	heap.Push(&v.timers, t)
	return t
}

func (v *Virtual) removeLocked(t *vtimer) {
	if t.idx >= 0 {
		heap.Remove(&v.timers, t.idx)
		t.idx = -1
	}
}

// tryAdvanceLocked is the heart of the scheduler: while no registered
// actor is runnable, jump the timeline to the earliest pending
// deadline and fire it. Entries that share an instant fire in
// insertion order. A quiescent system with parked waiters and no
// pending timers can never make progress again, so that state panics
// with a diagnostic rather than hanging the run.
func (v *Virtual) tryAdvanceLocked() {
	for v.active == 0 {
		if len(v.timers) == 0 {
			if v.parked > 0 && v.registered > 0 && v.idlers == 0 {
				msg := fmt.Sprintf(
					"clock: virtual time deadlock at %v: %d registered actors all blocked, %d parked waiters, no pending timers",
					time.Duration(v.now), v.registered, v.parked)
				// Unlock before panicking: the panic unwinds through a
				// caller that still holds the scheduler lock, and a
				// recovering test must be able to inspect the state.
				v.mu.Unlock()
				panic(msg)
			}
			return
		}
		t := v.timers[0]
		heap.Pop(&v.timers)
		t.idx = -1
		if t.at > v.now {
			v.now = t.at
		}
		t.fire()
	}
}

// vtimerHeap orders by (deadline, insertion sequence).
type vtimerHeap []*vtimer

func (h vtimerHeap) Len() int { return len(h) }
func (h vtimerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h vtimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *vtimerHeap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *vtimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// vWaiter is the virtual Waiter. All state transitions happen under
// the scheduler lock so that wake credits are exact: a Wake on a
// parked waiter marks it runnable before signaling it, and a Wake on
// a running waiter is buffered (level-triggered, capacity one), just
// like the system implementation's non-blocking channel send.
type vWaiter struct {
	v  *Virtual
	ch chan struct{}
	// armed is true while a goroutine is parked on this waiter;
	// signaled buffers a wake delivered while unparked; expired marks
	// a wake caused by the parked-on context finishing.
	armed, signaled, expired bool
	// ctx is the vctx being parked on, if any, so the context's
	// expiry can find and wake this waiter.
	ctx *vctx
}

func (w *vWaiter) Wake() {
	v := w.v
	v.mu.Lock()
	if w.armed {
		w.wakeLocked(false)
	} else {
		w.signaled = true
	}
	v.mu.Unlock()
}

// wakeLocked unparks the waiter: credit first, then signal.
func (w *vWaiter) wakeLocked(expired bool) {
	w.armed = false
	w.expired = expired
	if w.ctx != nil {
		w.ctx.detachLocked(w)
		w.ctx = nil
	}
	w.v.parked--
	w.v.active++
	w.ch <- struct{}{}
}

func (w *vWaiter) Park() {
	v := w.v
	v.mu.Lock()
	if w.signaled {
		w.signaled = false
		v.mu.Unlock()
		return
	}
	w.armed = true
	v.parked++
	v.active--
	v.tryAdvanceLocked()
	v.mu.Unlock()
	<-w.ch
}

func (w *vWaiter) ParkCtx(ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		w.Park()
		return nil
	}
	v := w.v
	if c, ok := ctx.(*vctx); ok && c.v == v {
		v.mu.Lock()
		if c.err != nil {
			err := c.err
			v.mu.Unlock()
			return err
		}
		if w.signaled {
			w.signaled = false
			v.mu.Unlock()
			return nil
		}
		w.armed = true
		w.ctx = c
		c.waiters = append(c.waiters, w)
		v.parked++
		v.active--
		v.tryAdvanceLocked()
		v.mu.Unlock()
		<-w.ch
		v.mu.Lock()
		defer v.mu.Unlock()
		if w.expired {
			w.expired = false
			return c.err
		}
		return nil
	}
	// Foreign cancelable context on a virtual timeline: park as usual
	// and additionally watch the context. The context's firing is
	// outside the scheduler's control, so this path is not part of the
	// deterministic bed — it exists so off-bed callers stay correct.
	v.mu.Lock()
	if w.signaled {
		w.signaled = false
		v.mu.Unlock()
		return nil
	}
	w.armed = true
	v.parked++
	v.active--
	v.tryAdvanceLocked()
	v.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		v.mu.Lock()
		if w.armed {
			w.armed = false
			v.parked--
			v.active++
			v.mu.Unlock()
			return ctx.Err()
		}
		v.mu.Unlock()
		// A Wake raced the cancellation and already credited us.
		<-w.ch
		return nil
	}
}

func (w *vWaiter) Drain() {
	w.v.mu.Lock()
	w.signaled = false
	w.v.mu.Unlock()
}

// vctx is a context whose deadline lives on the virtual timeline.
type vctx struct {
	parent context.Context
	v      *Virtual
	done   chan struct{}

	// Guarded by v.mu.
	deadline time.Time
	err      error
	timer    *vtimer
	waiters  []*vWaiter
}

func (c *vctx) Deadline() (time.Time, bool) { return c.deadline, true }
func (c *vctx) Done() <-chan struct{}       { return c.done }
func (c *vctx) Value(key any) any           { return c.parent.Value(key) }

func (c *vctx) Err() error {
	c.v.mu.Lock()
	err := c.err
	c.v.mu.Unlock()
	return err
}

func (c *vctx) cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	c.v.mu.Lock()
	if c.err == nil {
		c.v.removeLocked(c.timer)
		c.finishLocked(cause)
	}
	c.v.mu.Unlock()
}

// finishLocked settles the context and wakes (with credit) every
// waiter parked on it.
func (c *vctx) finishLocked(err error) {
	c.err = err
	close(c.done)
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.ctx = nil
		w.wakeLocked(true)
	}
}

func (c *vctx) detachLocked(w *vWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}
