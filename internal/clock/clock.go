// Package clock provides the clock substrate for MVTL.
//
// The paper's model (§2) allows processes to have synchronized clocks,
// ε-synchronized clocks (within a known bound ε of global time), or no
// synchronization at all. Different MVTL policies need different clock
// guarantees: MVTL-ε-clock assumes ε-synchronization (§5.3), MVTIL assumes
// nothing (§8), and the serial-abort phenomenon is triggered precisely by
// non-monotonic cross-process clocks. This package provides real, skewed,
// logical and manual clock sources so each regime can be constructed and
// tested deterministically.
package clock

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Source supplies the time component of timestamps, in abstract ticks
// (the real-time sources use microseconds).
type Source interface {
	// Now returns the current time component. Implementations must be
	// safe for concurrent use.
	Now() int64
}

// Advancer is implemented by sources whose notion of time can be pushed
// forward, as done by the timestamp service (§8.1): clients advance their
// local clocks to the broadcast time T so that slow clocks do not start
// transactions that need purged versions.
type Advancer interface {
	// AdvanceTo moves the clock forward to at least t. It never moves
	// the clock backwards.
	AdvanceTo(t int64)
}

// System is a real-time source in microseconds since the Unix epoch.
type System struct{}

// Now implements Source.
func (System) Now() int64 { return time.Now().UnixMicro() }

var _ Source = System{}

// Logical is a strictly monotonic logical clock: every call returns a
// larger value than every prior call, across all goroutines.
type Logical struct {
	last atomic.Int64
}

// Now implements Source.
func (l *Logical) Now() int64 { return l.last.Add(1) }

// AdvanceTo implements Advancer.
func (l *Logical) AdvanceTo(t int64) {
	for {
		cur := l.last.Load()
		if cur >= t || l.last.CompareAndSwap(cur, t) {
			return
		}
	}
}

var (
	_ Source   = (*Logical)(nil)
	_ Advancer = (*Logical)(nil)
)

// Manual is a settable source for deterministic tests. The zero value
// reads 0 until set.
type Manual struct {
	mu  sync.Mutex
	now int64
}

// Now implements Source.
func (m *Manual) Now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Set moves the clock to exactly t (backwards moves are allowed: Manual
// models arbitrary clock behaviour, including the non-monotonic clocks
// behind serial aborts).
func (m *Manual) Set(t int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = t
}

// Advance moves the clock forward by d ticks and returns the new value.
func (m *Manual) Advance(d int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += d
	return m.now
}

// AdvanceTo implements Advancer.
func (m *Manual) AdvanceTo(t int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t > m.now {
		m.now = t
	}
}

var (
	_ Source   = (*Manual)(nil)
	_ Advancer = (*Manual)(nil)
)

// Skewed wraps a base source and adds a constant per-process offset. A set
// of Skewed clocks over the same base with offsets in [-ε, +ε] models the
// ε-synchronized clocks of §5.3.
type Skewed struct {
	base   Source
	offset int64
}

// NewSkewed returns a source reading base.Now()+offset.
func NewSkewed(base Source, offset int64) *Skewed {
	return &Skewed{base: base, offset: offset}
}

// Now implements Source.
func (s *Skewed) Now() int64 { return s.base.Now() + s.offset }

// AdvanceTo implements Advancer by forwarding to the base when it is
// advanceable, compensating for the offset so that Now() reads at
// least t afterwards. Without the passthrough a Skewed over a Manual
// or Logical source silently dropped the §8.1 timestamp-service
// advance (Process.AdvanceTo type-asserts its source). A
// non-advanceable base makes this a no-op, matching Process.
func (s *Skewed) AdvanceTo(t int64) {
	if adv, ok := s.base.(Advancer); ok {
		adv.AdvanceTo(t - s.offset)
	}
}

var (
	_ Source   = (*Skewed)(nil)
	_ Advancer = (*Skewed)(nil)
)

// Process binds a Source to a process id and produces full Timestamps.
// It additionally guarantees per-process monotonicity: successive calls to
// Now return strictly increasing timestamps even if the underlying source
// stalls, so a single process never reuses a timestamp (§4.1 requires
// distinct timestamps per transaction).
type Process struct {
	src  Source
	proc int32

	mu   sync.Mutex
	last int64
}

// NewProcess returns a timestamp generator for process id proc.
func NewProcess(src Source, proc int32) *Process {
	return &Process{src: src, proc: proc}
}

// ID returns the process id embedded into generated timestamps.
func (p *Process) ID() int32 { return p.proc }

// Now returns a fresh timestamp (time, proc), strictly larger than any
// timestamp previously returned by this Process.
func (p *Process) Now() timestamp.Timestamp {
	t := p.src.Now()
	p.mu.Lock()
	if t <= p.last {
		t = p.last + 1
	}
	p.last = t
	p.mu.Unlock()
	return timestamp.New(t, p.proc)
}

// AdvanceTo pushes the process clock forward to at least t, if the
// underlying source supports it; the per-process monotonic floor is
// always raised.
func (p *Process) AdvanceTo(t int64) {
	if adv, ok := p.src.(Advancer); ok {
		adv.AdvanceTo(t)
	}
	p.mu.Lock()
	if t > p.last {
		p.last = t
	}
	p.mu.Unlock()
}
