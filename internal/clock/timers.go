package clock

import (
	"context"
	"sync/atomic"
	"time"
)

// Timers abstracts every wall-clock surface the fault bed touches:
// sleeping, timeout contexts, deferred functions, goroutine spawning
// and parking. Production code runs on SystemTimers, which delegates
// straight to the time and context packages; the fault bed can swap in
// a *Virtual so that modeled delays (network latency, lock-wait
// timeouts, scanner periods, settle polls) cost no wall clock and
// resolve in a deterministic order.
//
// The Go, NewWaiter and Idle members exist because a virtual timeline
// can only advance when every participating goroutine is quiescent: the
// scheduler has to know how many runnable actors exist (Go registers
// spawned goroutines), where they park for non-timer wakeups (Waiter),
// and when a registered goroutine is merely waiting for other
// registered goroutines to finish (Idle). On SystemTimers all three
// are pass-throughs with zero bookkeeping.
type Timers interface {
	// Now returns the current time on this timeline.
	Now() time.Time
	// Sleep pauses the calling goroutine for d on this timeline.
	Sleep(d time.Duration)
	// SleepStop sleeps d, returning early with true if stop closes
	// first. A nil stop is a plain Sleep.
	SleepStop(d time.Duration, stop <-chan struct{}) bool
	// WithTimeout derives a context that expires after d on this
	// timeline. The returned cancel must be called, as with
	// context.WithTimeout.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
	// AfterFunc runs fn on its own goroutine after d.
	AfterFunc(d time.Duration, fn func())
	// Go runs fn on a new goroutine registered with this timeline.
	// Every goroutine that may sleep, park on a Waiter, or wake one
	// must be spawned through Go (or bracketed by Virtual
	// Register/Unregister) so quiescence detection stays exact.
	Go(fn func())
	// NewWaiter returns a parkable wake slot bound to this timeline.
	NewWaiter() Waiter
	// Idle brackets fn as a wait for other registered goroutines: the
	// caller does not count as runnable while fn blocks (e.g. on a
	// sync.WaitGroup or channel receive), so the timeline may advance
	// to let those goroutines finish.
	Idle(fn func())
}

// Waiter is a level-triggered, capacity-one wake slot — the Timers
// counterpart of the `make(chan struct{}, 1)` + non-blocking-send
// idiom. A Wake delivered while nobody is parked is remembered and
// absorbed by the next Park; at most one wake is buffered.
type Waiter interface {
	// Wake unparks the parked goroutine, or buffers one wake if none
	// is parked. It never blocks.
	Wake()
	// Park blocks until a Wake, consuming one buffered wake if present.
	Park()
	// ParkCtx is Park bounded by ctx: it returns nil on Wake, or
	// ctx.Err() once ctx is done.
	ParkCtx(ctx context.Context) error
	// Drain discards a buffered wake, if any, without blocking.
	Drain()
}

// OrSystem returns t, or SystemTimers when t is nil — the idiom for
// optional Timers fields in configs.
func OrSystem(t Timers) Timers {
	if t == nil {
		return SystemTimers{}
	}
	return t
}

// SystemTimers is the production Timers: real time, real sleeps, plain
// goroutines, no registry.
type SystemTimers struct{}

// Now implements Timers.
func (SystemTimers) Now() time.Time { return time.Now() }

// Sleep implements Timers.
func (SystemTimers) Sleep(d time.Duration) { time.Sleep(d) }

// SleepStop implements Timers.
func (SystemTimers) SleepStop(d time.Duration, stop <-chan struct{}) bool {
	if stop == nil {
		time.Sleep(d)
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		select {
		case <-stop:
			return true
		default:
			return false
		}
	case <-stop:
		return true
	}
}

// WithTimeout implements Timers.
func (SystemTimers) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

// AfterFunc implements Timers.
func (SystemTimers) AfterFunc(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// Go implements Timers.
func (SystemTimers) Go(fn func()) { go fn() }

// NewWaiter implements Timers.
func (SystemTimers) NewWaiter() Waiter { return &sysWaiter{ch: make(chan struct{}, 1)} }

// Idle implements Timers.
func (SystemTimers) Idle(fn func()) { fn() }

var _ Timers = SystemTimers{}

// sysWaiter is the classic buffered-channel wake slot.
type sysWaiter struct {
	ch chan struct{}
}

func (w *sysWaiter) Wake() {
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

func (w *sysWaiter) Park() { <-w.ch }

func (w *sysWaiter) ParkCtx(ctx context.Context) error {
	done := ctx.Done()
	if done == nil {
		<-w.ch
		return nil
	}
	select {
	case <-w.ch:
		return nil
	case <-done:
		return ctx.Err()
	}
}

func (w *sysWaiter) Drain() {
	select {
	case <-w.ch:
	default:
	}
}

// Join is a credited fan-in barrier: the Timers counterpart of a
// sync.WaitGroup join. Children spawned through Timers.Go call Done
// while they are still registered actors, so on a virtual timeline the
// wake that unblocks Wait carries a runnability credit — the timeline
// cannot advance in the instant between the last child finishing and
// the waiter resuming. An Idle-bracketed WaitGroup.Wait cannot give
// that guarantee (the WaitGroup's internal wake is invisible to the
// scheduler), which makes it a nondeterministic free-running-advance
// window: every join on a path that produces observable output must
// use Join instead.
type Join struct {
	n atomic.Int64
	w Waiter
}

// NewJoin returns a Join expecting n completions on t's timeline.
func NewJoin(t Timers, n int) *Join {
	j := &Join{w: t.NewWaiter()}
	j.n.Store(int64(n))
	return j
}

// Add registers k more expected completions. As with sync.WaitGroup,
// Add must happen-before the Wait it should block.
func (j *Join) Add(k int) { j.n.Add(int64(k)) }

// Done marks one completion. The zero-crossing Done wakes the waiter;
// on a virtual timeline the caller must still be a registered actor
// (call Done from the body of a Timers.Go goroutine, not after it).
func (j *Join) Done() {
	if j.n.Add(-1) == 0 {
		j.w.Wake()
	}
}

// Wait blocks until the completion count reaches zero. The recheck
// loop makes the park level-triggered, so a stale buffered wake from
// an earlier zero-crossing (count went to zero, then Add raised it
// again) is absorbed harmlessly.
func (j *Join) Wait() {
	for j.n.Load() > 0 {
		j.w.Park()
	}
}

// TimersSource adapts a Timers to the Source interface (microsecond
// ticks), so coordinators can stamp transactions from the same timeline
// their waits run on. Over SystemTimers it is equivalent to System;
// over a *Virtual it makes timestamp spacing follow virtual time, which
// is what keeps TIL interval overlap behavior identical between wall
// and virtual runs of the fault bed.
type TimersSource struct {
	T Timers
}

// Now implements Source.
func (s TimersSource) Now() int64 { return s.T.Now().UnixMicro() }

var _ Source = TimersSource{}
