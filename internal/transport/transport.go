// Package transport abstracts the network between coordinators and
// storage servers, with two implementations:
//
//   - Mem: an in-process network with a configurable latency/jitter
//     model, used to reproduce the paper's two test beds (§8.2) on one
//     machine — the "local" bed with a fast predictable network and the
//     "cloud" bed with slow, jittery links;
//   - TCP: real sockets, for running servers and clients as separate
//     processes.
//
// Both carry the framed binary protocol of package wire, so the codec is
// exercised identically in either mode, and both are driven through the
// multiplexed RPC layer of package rpc — coordinators pipeline many
// in-flight requests per connection over Mem and TCP alike, so the two
// beds differ only in where the latency and per-frame cost come from
// (a model here, real syscalls there).
//
// # Buffer ownership
//
// Frames travel in pooled wire.FrameBuf buffers. Send takes ownership
// of the buffer it is passed, success or failure: TCP writes the bytes
// (header and body as one vectored write) and releases the buffer; the
// in-memory transport delivers the very same buffer to the peer,
// copy-free — its latency model accounts the frame's size without ever
// touching the bytes. Recv returns an owned buffer that the receiver
// must Release once done with the frame and everything borrowed from
// its body (see package wire).
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// ErrClosed reports use of a closed connection, listener or network.
var ErrClosed = errors.New("transport: closed")

// ErrUnavailable reports a dial to an address with no listener — the
// peer is down (crashed, not yet started, or partitioned away). It is
// returned wrapped with the address; test with errors.Is. Retryable:
// the peer may come back.
var ErrUnavailable = errors.New("transport: peer unavailable")

// ErrTimeout reports an I/O deadline expiring on a connection with
// configured timeouts. It is returned wrapped; test with errors.Is.
// Retryable: the peer may just be slow or partitioned.
var ErrTimeout = errors.New("transport: i/o timeout")

// Conn is a bidirectional frame stream. Send and Recv are each safe for
// one concurrent caller; use external locking for more.
type Conn interface {
	// Send transmits one frame, taking ownership of fb (even on error):
	// the transport releases it, or hands it to the receiving end. The
	// caller must not touch fb afterwards.
	Send(fb *wire.FrameBuf) error
	// SendBatch transmits every frame in fbs back to back, in order,
	// taking ownership of all of them — even on a partial error, every
	// frame is consumed (released or delivered) and the entries of fbs
	// are left nil, so the caller may recycle the slice but must not
	// touch the frames. The bytes on the wire are identical to len(fbs)
	// sequential Sends; what batching changes is the cost: TCP hands
	// the whole batch to the kernel as one vectored write (one writev
	// for N frames), and Mem charges the PerFrame occupancy once per
	// batch. An empty batch is a no-op.
	SendBatch(fbs []*wire.FrameBuf) error
	// Recv blocks for the next frame. The caller owns the result and
	// must Release it.
	Recv() (*wire.FrameBuf, error)
	// Close tears the connection down, unblocking Recv on both ends.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
	// Addr returns the listen address.
	Addr() string
}

// Network dials and listens.
type Network interface {
	// Dial connects to addr.
	Dial(addr string) (Conn, error)
	// Listen starts accepting at addr.
	Listen(addr string) (Listener, error)
}

// --- in-memory network ------------------------------------------------------

// LatencyModel produces one-way frame delays.
type LatencyModel struct {
	// Base is the fixed one-way latency.
	Base time.Duration
	// Jitter adds a uniform random extra in [0, Jitter).
	Jitter time.Duration
	// PerFrame is the sender-side occupancy per flush: the connection
	// transmits at most one frame — or one coalesced batch — per
	// PerFrame, and Send/SendBatch block the sender until the link is
	// free of earlier flushes (the flush just queued transmits
	// asynchronously — a one-frame device queue, like a socket buffer
	// backpressuring a writer). It is what makes connection pooling and
	// frame coalescing measurable on the in-memory bed — one connection
	// caps at 1/PerFrame flushes per second, so single frames queue
	// behind a busy connection while a batch of n moves n frames in one
	// charge, and an idle connection still sends with zero sender
	// latency. Zero (the default, and both paper beds) models infinite
	// per-connection bandwidth: only Base and Jitter matter.
	PerFrame time.Duration
	// PerByte is additional sender-side occupancy per wire byte
	// (header plus body), i.e. the inverse link bandwidth: a frame
	// occupies its connection for PerFrame + WireLen·PerByte. It is
	// accounted from the frame's length alone — the model never copies
	// or inspects the bytes — and makes value-size sweeps interact
	// with the network model the way they do with a real NIC. Zero
	// (the default) models infinite bandwidth.
	PerByte time.Duration
}

// delay samples one propagation delay.
func (m LatencyModel) delay(rng *rand.Rand) time.Duration {
	d := m.Base
	if m.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(m.Jitter)))
	}
	return d
}

// occupancy is how long a frame of n wire bytes holds the sender busy.
func (m LatencyModel) occupancy(n int) time.Duration {
	return m.PerFrame + time.Duration(n)*m.PerByte
}

// Mem is an in-process Network. The zero value is not usable; call
// NewMem or NewMemSeeded.
//
// Randomness is partitioned per link: the jitter streams of a
// connection are seeded from (network seed, dialed address, per-address
// dial counter), never from a shared generator, so dialing one link
// cannot perturb the delays of another and a fixed seed yields the same
// delay schedule run after run regardless of goroutine interleaving.
type Mem struct {
	model  LatencyModel
	seed   uint64
	timers clock.Timers

	mu        sync.Mutex
	dials     map[string]uint64
	listeners map[string]*memListener
}

var _ Network = (*Mem)(nil)

// NewMem returns an in-memory network with the given latency model and
// the default seed.
func NewMem(model LatencyModel) *Mem { return NewMemSeeded(model, 1) }

// NewMemSeeded returns an in-memory network whose per-link jitter
// streams all derive from seed.
func NewMemSeeded(model LatencyModel, seed int64) *Mem {
	return NewMemSeededTimers(model, seed, nil)
}

// NewMemSeededTimers is NewMemSeeded on an explicit timeline: every
// pacing decision of the latency model — propagation sleeps, sender
// occupancy, backpressure — reads and sleeps on t instead of the wall
// clock, so the fault bed can run the whole network in virtual time.
// A nil t means SystemTimers.
func NewMemSeededTimers(model LatencyModel, seed int64, t clock.Timers) *Mem {
	return &Mem{
		model:     model,
		seed:      uint64(seed),
		timers:    clock.OrSystem(t),
		dials:     make(map[string]uint64),
		listeners: make(map[string]*memListener),
	}
}

// pipeSeed derives the jitter seed for one direction of the n-th
// connection dialed to addr.
func (m *Mem) pipeSeed(addr string, dial uint64, dir uint64) int64 {
	return int64(strhash.Mix64(m.seed ^ strhash.FNV1a64(addr) ^ dial<<1 ^ dir))
}

// Listen implements Network.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &memListener{addr: addr, network: m, backlog: make(chan *memConn, 64), closed: make(chan struct{}), w: m.timers.NewWaiter()}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Network. A full listener backlog blocks the dial (a
// reconnect storm queues instead of failing spuriously); closing the
// listener unblocks it with ErrClosed. Dialing an address with no
// listener fails with ErrUnavailable.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	dial := m.dials[addr]
	m.dials[addr] = dial + 1
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: dial %q: %w", addr, ErrUnavailable)
	}
	a2b := newMemPipe(m.model, m.pipeSeed(addr, dial, 0), m.timers)
	b2a := newMemPipe(m.model, m.pipeSeed(addr, dial, 1), m.timers)
	client := &memConn{send: a2b, recv: b2a}
	server := &memConn{send: b2a, recv: a2b}
	select {
	case l.backlog <- server:
		l.w.Wake()
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("transport: dial %q: %w", addr, ErrClosed)
	}
}

// unregister removes a closed listener.
func (m *Mem) unregister(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	addr    string
	network *Mem
	backlog chan *memConn
	// w parks the accepting goroutine so the fault bed's virtual
	// timeline knows it is quiescent; dials and Close wake it.
	w clock.Waiter

	closeOnce sync.Once
	closed    chan struct{}
}

func (l *memListener) Accept() (Conn, error) {
	for {
		select {
		case c := <-l.backlog:
			return c, nil
		default:
		}
		select {
		case <-l.closed:
			return nil, ErrClosed
		default:
		}
		l.w.Park()
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.network.unregister(l.addr)
		l.w.Wake()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memPipe is one direction of a connection: frame buffers with delivery
// times. The buffer a sender passes in is the buffer the receiver gets
// out — the pipe never copies frame bytes, it only schedules them.
type memPipe struct {
	model  LatencyModel
	timers clock.Timers

	mu  sync.Mutex
	rng *rand.Rand
	// queue[head:] holds the undelivered frames; popping advances head
	// and the array is rewound once it drains, so the steady state
	// appends into the same backing array instead of reallocating every
	// few frames (queue = queue[1:] would strand the popped prefix).
	queue []timedFrame
	head  int
	// busyUntil is when the sender finishes transmitting the queued
	// frames (the PerFrame/PerByte occupancy); nextAt keeps delivery
	// FIFO.
	busyUntil time.Time
	nextAt    time.Time
	// w parks the receiver when the queue is empty; senders and close
	// wake it (level-triggered, capacity one).
	w      clock.Waiter
	closed bool
}

type timedFrame struct {
	fb        *wire.FrameBuf
	deliverAt time.Time
}

func newMemPipe(model LatencyModel, seed int64, t clock.Timers) *memPipe {
	return &memPipe{model: model, timers: t, rng: rand.New(rand.NewSource(seed)), w: t.NewWaiter()}
}

func (p *memPipe) send(fb *wire.FrameBuf) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fb.Release()
		return ErrClosed
	}
	// The frame first occupies the sender for its occupancy (queueing
	// behind earlier frames still transmitting — larger frames hold the
	// link longer), then propagates for the sampled delay.
	now := p.timers.Now()
	free := p.busyUntil
	start := p.occupancyStart(now, p.model.occupancy(fb.WireLen()))
	p.busyUntil = start
	// Propagation cannot begin before the send call itself.
	base := start
	if base.Before(now) {
		base = now
	}
	at := base.Add(p.model.delay(p.rng))
	// FIFO: delivery times are monotone within the pipe.
	if at.Before(p.nextAt) {
		at = p.nextAt
	}
	p.nextAt = at
	p.queue = append(p.queue, timedFrame{fb: fb, deliverAt: at})
	p.mu.Unlock()
	p.w.Wake()
	p.backpressure(free)
	return nil
}

// senderWakeGrace bounds how far into the past a flush may backdate its
// occupancy. time.Sleep on a loaded machine overshoots by roughly the
// timer granularity (~1ms), so a parked flusher reliably wakes a little
// after the link frees; anything within the grace is treated as
// back-to-back demand rather than idle link time.
const senderWakeGrace = 2 * time.Millisecond

// occupancyStart returns when the flush being queued finishes
// transmitting, charging its occupancy from the link-free instant when
// the link is still busy — or freed within senderWakeGrace, so a
// flusher that parked in backpressure and woke with sleep overshoot
// transmits back-to-back instead of turning every overshoot into
// phantom idle bandwidth. A genuinely idle link (or a pure-delay model
// with no occupancy, where nobody ever parks) restarts the clock at
// now. Caller holds p.mu.
func (p *memPipe) occupancyStart(now time.Time, occ time.Duration) time.Time {
	start := p.busyUntil
	if start.Before(now) && (occ == 0 || start.Before(now.Add(-senderWakeGrace))) {
		start = now
	}
	return start.Add(occ)
}

// backpressure blocks the sender until the link is free of every
// earlier flush; the flush just queued then transmits asynchronously —
// a one-frame device queue, the way a writer can hand the kernel one
// buffered write and only blocks on the next when the socket buffer is
// still draining. An idle connection therefore sends with zero sender
// latency, while a caller racing a busy one parks — which is what lets
// opportunistic coalescing accumulate frames behind an in-flight flush
// on the in-memory bed. A no-op (free in the past, and always for pure
// Base/Jitter models).
func (p *memPipe) backpressure(free time.Time) {
	if wait := free.Sub(p.timers.Now()); wait > 0 {
		p.timers.Sleep(wait)
	}
}

// sendBatch queues a coalesced flush: the sender occupancy is charged
// once for the whole batch (PerFrame once — the per-flush cost that
// coalescing amortizes — plus PerByte over the batch's total bytes),
// but each frame still samples its own propagation delay from the
// pipe's rng, in order, so the jitter stream consumption is exactly
// what len(fbs) unbatched sends would be — batching never perturbs the
// deterministic delay schedule of later frames.
func (p *memPipe) sendBatch(fbs []*wire.FrameBuf) error {
	if len(fbs) == 0 {
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		wire.ReleaseAll(fbs)
		return ErrClosed
	}
	total := 0
	for _, fb := range fbs {
		total += fb.WireLen()
	}
	now := p.timers.Now()
	free := p.busyUntil
	start := p.occupancyStart(now, p.model.occupancy(total))
	p.busyUntil = start
	// Propagation cannot begin before the send call itself.
	base := start
	if base.Before(now) {
		base = now
	}
	for i, fb := range fbs {
		at := base.Add(p.model.delay(p.rng))
		if at.Before(p.nextAt) {
			at = p.nextAt
		}
		p.nextAt = at
		p.queue = append(p.queue, timedFrame{fb: fb, deliverAt: at})
		fbs[i] = nil
	}
	p.mu.Unlock()
	p.w.Wake()
	p.backpressure(free)
	return nil
}

func (p *memPipe) recv() (*wire.FrameBuf, error) {
	for {
		p.mu.Lock()
		if p.head < len(p.queue) {
			tf := p.queue[p.head]
			if wait := tf.deliverAt.Sub(p.timers.Now()); wait > 0 {
				p.mu.Unlock()
				p.timers.Sleep(wait)
				continue
			}
			p.queue[p.head] = timedFrame{}
			p.head++
			if p.head == len(p.queue) {
				p.queue = p.queue[:0]
				p.head = 0
			}
			p.mu.Unlock()
			return tf.fb, nil
		}
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		p.mu.Unlock()
		p.w.Park()
	}
}

// close marks the pipe closed and releases undelivered frames; it is
// idempotent (both conns sharing the pipe close it).
func (p *memPipe) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for i := p.head; i < len(p.queue); i++ {
			p.queue[i].fb.Release()
			p.queue[i] = timedFrame{}
		}
		p.queue, p.head = nil, 0
	}
	p.mu.Unlock()
	p.w.Wake()
}

type memConn struct {
	send *memPipe
	recv *memPipe
}

var _ Conn = (*memConn)(nil)

func (c *memConn) Send(fb *wire.FrameBuf) error { return c.send.send(fb) }

func (c *memConn) SendBatch(fbs []*wire.FrameBuf) error { return c.send.sendBatch(fbs) }

func (c *memConn) Recv() (*wire.FrameBuf, error) { return c.recv.recv() }

func (c *memConn) Close() error {
	c.send.close()
	c.recv.close()
	return nil
}

// --- TCP network -------------------------------------------------------------

// TCP is a Network over real sockets. The zero value uses no I/O
// deadlines (a dead peer hangs Recv until the kernel gives up);
// non-zero timeouts bound each frame read/write and surface expiry as
// ErrTimeout, which the RPC layer classifies as retryable. ReadTimeout
// is a maximum silence, not a liveness probe: set it well above the
// connection's expected idle time, or pair it with eviction-and-redial
// in the caller (as internal/client does), because an idle healthy
// connection will be torn down when it expires.
type TCP struct {
	// ReadTimeout bounds how long Recv waits for the next frame.
	// Zero means no deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds one frame write. Zero means no deadline.
	WriteTimeout time.Duration
}

var _ Network = TCP{}

// Dial implements Network.
func (t TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", addr, err)
	}
	return &tcpConn{c: nc, readTimeout: t.ReadTimeout, writeTimeout: t.WriteTimeout}, nil
}

// Listen implements Network.
func (t TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	return &tcpListener{l: nl, readTimeout: t.ReadTimeout, writeTimeout: t.WriteTimeout}, nil
}

type tcpListener struct {
	l            net.Listener
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: nc, readTimeout: l.readTimeout, writeTimeout: l.writeTimeout}, nil
}

func (l *tcpListener) Close() error { return l.l.Close() }

func (l *tcpListener) Addr() string { return l.l.Addr().String() }

type tcpConn struct {
	c            net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
	wm           sync.Mutex
	rm           sync.Mutex
	// vec is the reusable iovec backing for SendBatch, guarded by wm.
	vec net.Buffers
}

var _ Conn = (*tcpConn)(nil)

// wrapTimeout maps a net deadline expiry to the ErrTimeout sentinel so
// callers can classify it without string matching.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

func (c *tcpConn) Send(fb *wire.FrameBuf) error {
	c.wm.Lock()
	if c.writeTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	err := wire.WriteFrame(c.c, fb) // one writev: header + body, no coalescing
	c.wm.Unlock()
	fb.Release()
	if err != nil {
		return fmt.Errorf("transport: send: %w", wrapTimeout(err))
	}
	return nil
}

func (c *tcpConn) SendBatch(fbs []*wire.FrameBuf) error {
	if len(fbs) == 0 {
		return nil
	}
	c.wm.Lock()
	if c.writeTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	var err error
	c.vec, err = wire.WriteFrames(c.c, fbs, c.vec) // one writev for the whole batch
	c.wm.Unlock()
	wire.ReleaseAll(fbs)
	if err != nil {
		return fmt.Errorf("transport: send: %w", wrapTimeout(err))
	}
	return nil
}

func (c *tcpConn) Recv() (*wire.FrameBuf, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	if c.readTimeout > 0 {
		_ = c.c.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
	fb := wire.GetFrameBuf()
	if err := wire.ReadFrame(c.c, fb); err != nil {
		fb.Release()
		return nil, wrapTimeout(err)
	}
	return fb, nil
}

func (c *tcpConn) Close() error { return c.c.Close() }
