package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/wire"
)

// sendFrame encodes body into a pooled frame and sends it (the
// transport consumes the buffer).
func sendFrame(tb testing.TB, c Conn, id uint64, t wire.MsgType, body []byte) {
	tb.Helper()
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(id, t, wire.Raw(body)); err != nil {
		fb.Release()
		tb.Fatal(err)
	}
	if err := c.Send(fb); err != nil {
		tb.Fatal(err)
	}
}

func testNetworkRoundTrip(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		for {
			f, err := conn.Recv()
			if err != nil {
				done <- nil
				return
			}
			// Re-encode in place: the request's body is copied into the
			// reply before the same buffer is handed back to Send.
			body := append([]byte("echo:"), f.Body()...)
			if err := f.SetFrame(f.ID(), f.Type(), wire.Raw(body)); err != nil {
				done <- err
				return
			}
			if err := conn.Send(f); err != nil {
				done <- err
				return
			}
		}
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("ping-%d", i)
		sendFrame(t, c, uint64(i), 1, []byte(msg))
		f, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.ID() != uint64(i) || string(f.Body()) != "echo:"+msg {
			t.Fatalf("frame %d: id=%d body=%q", i, f.ID(), f.Body())
		}
		f.Release()
	}
	_ = c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server goroutine did not exit")
	}
}

func TestMemRoundTrip(t *testing.T) {
	testNetworkRoundTrip(t, NewMem(LatencyModel{}), "srv")
}

func TestMemWithLatency(t *testing.T) {
	n := NewMem(LatencyModel{Base: 2 * time.Millisecond, Jitter: time.Millisecond})
	start := time.Now()
	testNetworkRoundTrip(t, n, "srv")
	// 10 round trips at >=4ms RTT each
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency model not applied: took %v", elapsed)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	testNetworkRoundTrip(t, TCP{}, "127.0.0.1:0")
}

func TestMemDialUnknownAddr(t *testing.T) {
	n := NewMem(LatencyModel{})
	if _, err := n.Dial("nowhere"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

// TestMemDialBlocksOnFullBacklog checks that a dial burst beyond the
// backlog queues instead of failing, drains once the listener accepts,
// and that closing the listener unblocks a stuck dial with ErrClosed.
func TestMemDialBlocksOnFullBacklog(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 64
	for i := 0; i < backlog; i++ {
		if _, err := n.Dial("srv"); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	extra := make(chan error, 1)
	go func() {
		_, err := n.Dial("srv")
		extra <- err
	}()
	select {
	case err := <-extra:
		t.Fatalf("dial past backlog should block, returned %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Accepting one connection makes room for the blocked dial.
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-extra:
		if err != nil {
			t.Fatalf("blocked dial after accept: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked dial did not complete after accept")
	}
	// The unblocked dial refilled the accepted slot, so the backlog is
	// full again; the next dial must be unblocked by Close.
	go func() {
		_, err := n.Dial("srv")
		extra <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = l.Close()
	select {
	case err := <-extra:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed from dial unblocked by close, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked dial did not unblock on listener close")
	}
}

// TestMemSeededDeterminism checks the per-link seed discipline: the
// delay schedule of a link depends only on (network seed, address, dial
// index), so interleaving dials to other addresses does not perturb it.
func TestMemSeededDeterminism(t *testing.T) {
	// sample dials "target" and returns the inter-arrival schedule of
	// one 20-frame burst; extraDials dials unrelated addresses first.
	sample := func(seed int64, extraDials int) []time.Duration {
		n := NewMemSeeded(LatencyModel{Base: time.Millisecond, Jitter: 30 * time.Millisecond}, seed)
		for _, addr := range []string{"other-a", "other-b"} {
			l, err := n.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				for {
					if _, err := l.Accept(); err != nil {
						return
					}
				}
			}()
		}
		for i := 0; i < extraDials; i++ {
			if _, err := n.Dial([]string{"other-a", "other-b"}[i%2]); err != nil {
				t.Fatal(err)
			}
		}
		l, err := n.Listen("target")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		c, err := n.Dial("target")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		const frames = 20
		start := time.Now()
		for i := 0; i < frames; i++ {
			sendFrame(t, c, uint64(i+1), 1, nil)
		}
		var at []time.Duration
		for i := 0; i < frames; i++ {
			f, err := srv.Recv()
			if err != nil {
				t.Fatal(err)
			}
			f.Release()
			at = append(at, time.Since(start))
		}
		_ = c.Close()
		return at
	}

	base := sample(7, 0)
	perturbed := sample(7, 5)
	// Delivery times are wall-clock so exact equality is not testable;
	// but the sampled jitter sequence is, via the FIFO delivery floor:
	// compare coarse schedules with a generous tolerance.
	for i := range base {
		d := base[i] - perturbed[i]
		if d < 0 {
			d = -d
		}
		if d > 10*time.Millisecond {
			t.Fatalf("frame %d: schedule diverged (%v vs %v) — dial order perturbs the link's jitter stream", i, base[i], perturbed[i])
		}
	}
	other := sample(8, 0)
	var diverged bool
	for i := range base {
		d := base[i] - other[i]
		if d < 0 {
			d = -d
		}
		if d > 10*time.Millisecond {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced the same schedule; seeding is inert")
	}
}

// TestTCPReadTimeout checks that a silent peer trips the configured
// read deadline as ErrTimeout instead of hanging Recv forever.
func TestTCPReadTimeout(t *testing.T) {
	n := TCP{ReadTimeout: 50 * time.Millisecond}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Never send: the dialer's Recv must time out.
		_, _ = c.Recv()
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Recv()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v; deadline not applied", elapsed)
	}
}

func TestMemAddressReuseAfterClose(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen should fail")
	}
	_ = l.Close()
	l2, err := n.Listen("a")
	if err != nil {
		t.Fatalf("address should be reusable after close: %v", err)
	}
	_ = l2.Close()
}

func TestMemFIFOOrder(t *testing.T) {
	n := NewMem(LatencyModel{Base: time.Millisecond, Jitter: 3 * time.Millisecond})
	l, _ := n.Listen("srv")
	defer func() { _ = l.Close() }()

	received := make(chan uint64, 100)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			f, err := conn.Recv()
			if err != nil {
				close(received)
				return
			}
			received <- f.ID()
			f.Release()
		}
	}()

	c, _ := n.Dial("srv")
	const frames = 50
	for i := 0; i < frames; i++ {
		sendFrame(t, c, uint64(i), 1, nil)
	}
	for i := 0; i < frames; i++ {
		got := <-received
		if got != uint64(i) {
			t.Fatalf("out of order: got %d want %d (jitter must not reorder)", got, i)
		}
	}
	_ = c.Close()
}

func TestMemRecvUnblocksOnClose(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, _ := n.Listen("srv")
	defer func() { _ = l.Close() }()
	go func() {
		conn, _ := l.Accept()
		_ = conn
	}()
	c, _ := n.Dial("srv")
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		_, recvErr = c.Recv()
	}()
	time.Sleep(5 * time.Millisecond)
	_ = c.Close()
	wg.Wait()
	if !errors.Is(recvErr, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", recvErr)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, _ := n.Listen("srv")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	_ = l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock")
	}
}

// TestMemPerFramePacing checks the sender-occupancy model: with a
// PerFrame cost, k frames sent back to back cannot all arrive before
// k×PerFrame has elapsed, no matter how fast the propagation is.
func TestMemPerFramePacing(t *testing.T) {
	n := NewMem(LatencyModel{PerFrame: 2 * time.Millisecond})
	l, err := n.Listen("paced")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("paced")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5
	start := time.Now()
	for i := 0; i < frames; i++ {
		sendFrame(t, conn, uint64(i+1), 1, nil)
	}
	for i := 0; i < frames; i++ {
		f, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if elapsed := time.Since(start); elapsed < frames*2*time.Millisecond {
		t.Fatalf("%d frames at 2ms occupancy arrived in %v; the per-frame cost is not being charged", frames, elapsed)
	}
}

// TestMemPerBytePacing checks the bandwidth model: with a PerByte cost,
// k frames of n bytes each cannot all arrive before roughly k×n×PerByte
// has elapsed — the occupancy is charged from the frame length alone,
// without the pipe ever copying the bytes.
func TestMemPerBytePacing(t *testing.T) {
	n := NewMem(LatencyModel{PerByte: 10 * time.Microsecond})
	l, err := n.Listen("bw")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("bw")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5
	body := make([]byte, 1000) // ~1KB => >=10ms occupancy per frame
	start := time.Now()
	for i := 0; i < frames; i++ {
		sendFrame(t, conn, uint64(i+1), 1, body)
	}
	for i := 0; i < frames; i++ {
		f, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if elapsed := time.Since(start); elapsed < frames*10*time.Millisecond {
		t.Fatalf("%d 1KB frames at 10µs/B occupancy arrived in %v; bytes are not being accounted", frames, elapsed)
	}
}

// makeBatch builds n pooled frames with ids 1..n and the given body.
func makeBatch(tb testing.TB, n int, body []byte) []*wire.FrameBuf {
	tb.Helper()
	fbs := make([]*wire.FrameBuf, n)
	for i := range fbs {
		fb := wire.GetFrameBuf()
		if err := fb.SetFrame(uint64(i+1), 1, wire.Raw(body)); err != nil {
			fb.Release()
			tb.Fatal(err)
		}
		fbs[i] = fb
	}
	return fbs
}

// TestMemBatchAmortizesPerFrame pins the coalescing model: a batch of k
// frames is one flush, charged PerFrame once — where k sequential Sends
// pay it k times (TestMemPerFramePacing). All k frames must land well
// before k×PerFrame.
func TestMemBatchAmortizesPerFrame(t *testing.T) {
	const perFrame = 20 * time.Millisecond
	n := NewMem(LatencyModel{PerFrame: perFrame})
	l, err := n.Listen("batched")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("batched")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5
	start := time.Now()
	if err := conn.SendBatch(makeBatch(t, frames, nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		f, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := f.ID(); got != uint64(i+1) {
			t.Fatalf("batch broke FIFO: frame %d has id %d", i, got)
		}
		f.Release()
	}
	if elapsed := time.Since(start); elapsed >= frames*perFrame {
		t.Fatalf("batch of %d took %v, >= the %v unbatched floor: PerFrame is not amortized per flush", frames, elapsed, frames*perFrame)
	}
}

// TestTCPSendBatchRoundTrip checks the vectored write path end to end:
// one SendBatch, n frames back to back on the wire, each received
// intact and in order.
func TestTCPSendBatchRoundTrip(t *testing.T) {
	n := TCP{}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	conn, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv := <-acc
	defer srv.Close()

	const frames = 7
	body := []byte("batched-over-tcp")
	if err := conn.SendBatch(makeBatch(t, frames, body)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		f, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.ID() != uint64(i+1) || string(f.Body()) != string(body) {
			t.Fatalf("frame %d corrupted: id=%d body=%q", i, f.ID(), f.Body())
		}
		f.Release()
	}
}

// TestMemSendBatchClosedConsumesFrames pins the SendBatch ownership
// rule: even when the connection is already closed, the batch is
// consumed — every entry released and nilled — and the send fails with
// ErrClosed.
func TestMemSendBatchClosedConsumesFrames(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, err := n.Listen("gone")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("gone")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	fbs := makeBatch(t, 3, nil)
	if err := conn.SendBatch(fbs); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	for i, fb := range fbs {
		if fb != nil {
			t.Fatalf("entry %d not consumed on error", i)
		}
	}
}
