package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/wire"
)

func testNetworkRoundTrip(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		for {
			f, err := conn.Recv()
			if err != nil {
				done <- nil
				return
			}
			f.Body = append([]byte("echo:"), f.Body...)
			if err := conn.Send(f); err != nil {
				done <- err
				return
			}
		}
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("ping-%d", i)
		if err := c.Send(wire.Frame{ID: uint64(i), Type: 1, Body: []byte(msg)}); err != nil {
			t.Fatal(err)
		}
		f, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.ID != uint64(i) || string(f.Body) != "echo:"+msg {
			t.Fatalf("frame %d: %+v", i, f)
		}
	}
	_ = c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server goroutine did not exit")
	}
}

func TestMemRoundTrip(t *testing.T) {
	testNetworkRoundTrip(t, NewMem(LatencyModel{}), "srv")
}

func TestMemWithLatency(t *testing.T) {
	n := NewMem(LatencyModel{Base: 2 * time.Millisecond, Jitter: time.Millisecond})
	start := time.Now()
	testNetworkRoundTrip(t, n, "srv")
	// 10 round trips at >=4ms RTT each
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency model not applied: took %v", elapsed)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	testNetworkRoundTrip(t, TCP{}, "127.0.0.1:0")
}

func TestMemDialUnknownAddr(t *testing.T) {
	n := NewMem(LatencyModel{})
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestMemAddressReuseAfterClose(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen should fail")
	}
	_ = l.Close()
	l2, err := n.Listen("a")
	if err != nil {
		t.Fatalf("address should be reusable after close: %v", err)
	}
	_ = l2.Close()
}

func TestMemFIFOOrder(t *testing.T) {
	n := NewMem(LatencyModel{Base: time.Millisecond, Jitter: 3 * time.Millisecond})
	l, _ := n.Listen("srv")
	defer func() { _ = l.Close() }()

	received := make(chan uint64, 100)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			f, err := conn.Recv()
			if err != nil {
				close(received)
				return
			}
			received <- f.ID
		}
	}()

	c, _ := n.Dial("srv")
	const frames = 50
	for i := 0; i < frames; i++ {
		if err := c.Send(wire.Frame{ID: uint64(i), Type: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		got := <-received
		if got != uint64(i) {
			t.Fatalf("out of order: got %d want %d (jitter must not reorder)", got, i)
		}
	}
	_ = c.Close()
}

func TestMemRecvUnblocksOnClose(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, _ := n.Listen("srv")
	defer func() { _ = l.Close() }()
	go func() {
		conn, _ := l.Accept()
		_ = conn
	}()
	c, _ := n.Dial("srv")
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		_, recvErr = c.Recv()
	}()
	time.Sleep(5 * time.Millisecond)
	_ = c.Close()
	wg.Wait()
	if !errors.Is(recvErr, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", recvErr)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMem(LatencyModel{})
	l, _ := n.Listen("srv")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	_ = l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock")
	}
}

// TestMemPerFramePacing checks the sender-occupancy model: with a
// PerFrame cost, k frames sent back to back cannot all arrive before
// k×PerFrame has elapsed, no matter how fast the propagation is.
func TestMemPerFramePacing(t *testing.T) {
	n := NewMem(LatencyModel{PerFrame: 2 * time.Millisecond})
	l, err := n.Listen("paced")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := n.Dial("paced")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5
	start := time.Now()
	for i := 0; i < frames; i++ {
		if err := conn.Send(wire.Frame{ID: uint64(i + 1), Type: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		if _, err := srv.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < frames*2*time.Millisecond {
		t.Fatalf("%d frames at 2ms occupancy arrived in %v; the per-frame cost is not being charged", frames, elapsed)
	}
}
