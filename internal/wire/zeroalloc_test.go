package wire

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// TestFramePathZeroAlloc is the deterministic alloc-regression gate
// behind the FramePath benchmarks: the steady-state frame paths —
// append-encode into a pooled buffer + vectored write, and framed read
// + in-place decode — must not allocate at all. It runs on every plain
// `go test`, so a regression fails CI even before the benchmark step.
func TestFramePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	resp := benchReadResp(1024)
	single := ReadLockResp{
		Status:    StatusOK,
		VersionTS: timestamp.New(100, 1),
		Value:     make([]byte, 1024),
		Got:       timestamp.Span(timestamp.New(101, 1), timestamp.New(5000, 0)),
	}

	fb := GetFrameBuf()
	defer fb.Release()
	w := &nullWriter{}
	if n := testing.AllocsPerRun(200, func() {
		if err := fb.SetFrame(9, TReadLockBatchResp, &resp); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(w, fb); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("encode+write: %v allocs/op, want 0", n)
	}

	r := &loopReader{data: encodeRawFrame(t, TReadLockBatchResp, &resp)}
	var out ReadLockBatchResp
	if n := testing.AllocsPerRun(200, func() {
		if err := ReadFrame(r, fb); err != nil {
			t.Fatal(err)
		}
		if err := out.DecodeInto(fb.Body()); err != nil || len(out.Results) != 16 {
			t.Fatalf("%v %d", err, len(out.Results))
		}
	}); n != 0 {
		t.Errorf("read+decode (batch): %v allocs/op, want 0", n)
	}

	r2 := &loopReader{data: encodeRawFrame(t, TReadLockResp, single)}
	if n := testing.AllocsPerRun(200, func() {
		if err := ReadFrame(r2, fb); err != nil {
			t.Fatal(err)
		}
		m, err := DecodeReadLockResp(fb.Body())
		if err != nil || len(m.Value) != 1024 {
			t.Fatalf("%v %d", err, len(m.Value))
		}
	}); n != 0 {
		t.Errorf("read+decode (single): %v allocs/op, want 0", n)
	}

	// The replica catch-up stream rides the same path: encode a log-tail
	// frame from a pooled buffer and decode it in place with record
	// reuse. Both directions must stay allocation-free.
	tail := benchLogTailResp(1024)
	if n := testing.AllocsPerRun(200, func() {
		if err := fb.SetFrame(11, TLogTailResp, &tail); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(w, fb); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("encode+write (log tail): %v allocs/op, want 0", n)
	}
	r3 := &loopReader{data: encodeRawFrame(t, TLogTailResp, &tail)}
	var tailOut LogTailResp
	if n := testing.AllocsPerRun(200, func() {
		if err := ReadFrame(r3, fb); err != nil {
			t.Fatal(err)
		}
		if err := tailOut.DecodeInto(fb.Body()); err != nil || len(tailOut.Records) != 32 {
			t.Fatalf("%v %d", err, len(tailOut.Records))
		}
	}); n != 0 {
		t.Errorf("read+decode (log tail): %v allocs/op, want 0", n)
	}
}

// encodeRawFrame renders one frame to raw bytes.
func encodeRawFrame(tb testing.TB, t MsgType, m Message) []byte {
	tb.Helper()
	fb := GetFrameBuf()
	defer fb.Release()
	if err := fb.SetFrame(7, t, m); err != nil {
		tb.Fatal(err)
	}
	var w sliceWriter
	if err := WriteFrame(&w, fb); err != nil {
		tb.Fatal(err)
	}
	return w.b
}
