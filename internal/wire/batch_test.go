package wire

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// --- random payload generators ----------------------------------------------

func randTS(r *rand.Rand) timestamp.Timestamp {
	return timestamp.New(r.Int63n(1_000_000), int32(r.Intn(64)-32))
}

func randIv(r *rand.Rand) timestamp.Interval {
	lo := r.Int63n(1000)
	return timestamp.Span(timestamp.New(lo, 0), timestamp.New(lo+r.Int63n(50), 0))
}

func randTSSet(r *rand.Rand) timestamp.Set {
	var s timestamp.Set
	for i, n := 0, r.Intn(5); i < n; i++ {
		s.AddInPlace(randIv(r))
	}
	return s
}

func randWord(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randBlob(r *rand.Rand) []byte {
	if r.Intn(4) == 0 {
		return nil
	}
	b := make([]byte, r.Intn(20))
	r.Read(b)
	return b
}

func randStatus(r *rand.Rand) Status { return Status(1 + r.Intn(8)) }

func randAck(r *rand.Rand) Ack { return Ack{Status: randStatus(r), Err: randWord(r)} }

func randEdges(r *rand.Rand) []WaitEdge {
	var out []WaitEdge
	for i, n := 0, r.Intn(5); i < n; i++ {
		out = append(out, WaitEdge{Waiter: r.Uint64(), Holder: r.Uint64(), Key: randWord(r)})
	}
	return out
}

// --- generic round-trip / truncation harness ---------------------------------

// codecCase generates one random message instance: enc is its encoding,
// recheck decodes a buffer and reports whether it equals the instance.
type codecCase struct {
	enc     []byte
	recheck func([]byte) (bool, error)
}

var codecCases = map[string]func(r *rand.Rand) codecCase{
	"ReadLockReq": func(r *rand.Rand) codecCase {
		in := ReadLockReq{Txn: r.Uint64(), Key: randWord(r), Upper: randTS(r), Wait: r.Intn(2) == 0}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeReadLockReq(b)
			return out == in, err
		}}
	},
	"ReadLockResp": func(r *rand.Rand) codecCase {
		in := ReadLockResp{Status: randStatus(r), Err: randWord(r), VersionTS: randTS(r), Value: randBlob(r), Got: randIv(r), Edges: randEdges(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeReadLockResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && out.VersionTS == in.VersionTS &&
				bytes.Equal(out.Value, in.Value) && (out.Value == nil) == (in.Value == nil) && out.Got == in.Got &&
				slices.Equal(out.Edges, in.Edges)
			return ok, err
		}}
	},
	"WriteLockReq": func(r *rand.Rand) codecCase {
		in := WriteLockReq{Txn: r.Uint64(), Epoch: r.Uint64(), Key: randWord(r), DecisionSrv: randWord(r), Set: randTSSet(r), Wait: r.Intn(2) == 0, Value: randBlob(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeWriteLockReq(b)
			ok := out.Txn == in.Txn && out.Epoch == in.Epoch && out.Key == in.Key && out.DecisionSrv == in.DecisionSrv &&
				out.Set.Equal(in.Set) && out.Wait == in.Wait && bytes.Equal(out.Value, in.Value)
			return ok, err
		}}
	},
	"WriteLockResp": func(r *rand.Rand) codecCase {
		in := WriteLockResp{Status: randStatus(r), Err: randWord(r), Got: randTSSet(r), Denied: randTSSet(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeWriteLockResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && out.Got.Equal(in.Got) && out.Denied.Equal(in.Denied)
			return ok, err
		}}
	},
	"FreezeWriteReq": func(r *rand.Rand) codecCase {
		in := FreezeWriteReq{Txn: r.Uint64(), Key: randWord(r), TS: randTS(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeFreezeWriteReq(b)
			return out == in, err
		}}
	},
	"FreezeReadReq": func(r *rand.Rand) codecCase {
		in := FreezeReadReq{Txn: r.Uint64(), Key: randWord(r), Lo: randTS(r), Hi: randTS(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeFreezeReadReq(b)
			return out == in, err
		}}
	},
	"ReleaseReq": func(r *rand.Rand) codecCase {
		in := ReleaseReq{Txn: r.Uint64(), Key: randWord(r), WritesOnly: r.Intn(2) == 0}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeReleaseReq(b)
			return out == in, err
		}}
	},
	"Ack": func(r *rand.Rand) codecCase {
		in := randAck(r)
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeAck(b)
			return out == in, err
		}}
	},
	"DecideReq": func(r *rand.Rand) codecCase {
		in := DecideReq{Txn: r.Uint64(), Epoch: r.Uint64(), Proposal: DecisionKind(1 + r.Intn(2)), TS: randTS(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeDecideReq(b)
			return out == in, err
		}}
	},
	"DecideResp": func(r *rand.Rand) codecCase {
		in := DecideResp{Status: randStatus(r), Err: randWord(r), Kind: DecisionKind(1 + r.Intn(2)), TS: randTS(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeDecideResp(b)
			return out == in, err
		}}
	},
	"PurgeReq": func(r *rand.Rand) codecCase {
		in := PurgeReq{Bound: randTS(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodePurgeReq(b)
			return out == in, err
		}}
	},
	"PurgeResp": func(r *rand.Rand) codecCase {
		in := PurgeResp{Status: randStatus(r), Err: randWord(r), Versions: r.Int63(), Locks: r.Int63()}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodePurgeResp(b)
			return out == in, err
		}}
	},
	"StatsResp": func(r *rand.Rand) codecCase {
		in := StatsResp{
			Keys: r.Int63(), LockEntries: r.Int63(), FrozenLocks: r.Int63(), Versions: r.Int63(),
			LiveTxns: r.Int63(), PurgedTxns: r.Int63(),
			ReplEpoch: r.Int63(), ReplLag: r.Int63(), ReplPromotions: r.Int63(),
			ReplWrongEpoch: r.Int63(), ReplCatchupBytes: r.Int63(),
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeStatsResp(b)
			return out == in, err
		}}
	},
	"WaitGraphResp": func(r *rand.Rand) codecCase {
		in := WaitGraphResp{Edges: randEdges(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeWaitGraphResp(b)
			return slices.Equal(out.Edges, in.Edges), err
		}}
	},
	"VictimAbortReq": func(r *rand.Rand) codecCase {
		in := VictimAbortReq{Txn: r.Uint64(), Key: randWord(r)}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeVictimAbortReq(b)
			return out == in, err
		}}
	},
	"WriteLockBatchReq": func(r *rand.Rand) codecCase {
		in := WriteLockBatchReq{Txn: r.Uint64(), Epoch: r.Uint64(), DecisionSrv: randWord(r), Wait: r.Intn(2) == 0}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.Items = append(in.Items, WriteLockItem{Key: randWord(r), Set: randTSSet(r), Value: randBlob(r)})
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeWriteLockBatchReq(b)
			ok := out.Txn == in.Txn && out.Epoch == in.Epoch && out.DecisionSrv == in.DecisionSrv && out.Wait == in.Wait &&
				len(out.Items) == len(in.Items)
			if ok {
				for i := range in.Items {
					ok = ok && out.Items[i].Key == in.Items[i].Key &&
						out.Items[i].Set.Equal(in.Items[i].Set) &&
						bytes.Equal(out.Items[i].Value, in.Items[i].Value)
				}
			}
			return ok, err
		}}
	},
	"WriteLockBatchResp": func(r *rand.Rand) codecCase {
		in := WriteLockBatchResp{Status: randStatus(r), Err: randWord(r), Edges: randEdges(r)}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.Results = append(in.Results, WriteLockResult{Status: randStatus(r), Err: randWord(r), Got: randTSSet(r), Denied: randTSSet(r)})
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeWriteLockBatchResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && len(out.Results) == len(in.Results) &&
				slices.Equal(out.Edges, in.Edges)
			if ok {
				for i := range in.Results {
					ok = ok && out.Results[i].Status == in.Results[i].Status &&
						out.Results[i].Err == in.Results[i].Err &&
						out.Results[i].Got.Equal(in.Results[i].Got) &&
						out.Results[i].Denied.Equal(in.Results[i].Denied)
				}
			}
			return ok, err
		}}
	},
	"FreezeBatchReq": func(r *rand.Rand) codecCase {
		in := FreezeBatchReq{Txn: r.Uint64(), Epoch: r.Uint64(), TS: randTS(r)}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.WriteKeys = append(in.WriteKeys, randWord(r))
		}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.Reads = append(in.Reads, FreezeReadItem{Key: randWord(r), Lo: randTS(r), Hi: randTS(r)})
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeFreezeBatchReq(b)
			ok := out.Txn == in.Txn && out.Epoch == in.Epoch && out.TS == in.TS &&
				slices.Equal(out.WriteKeys, in.WriteKeys) && slices.Equal(out.Reads, in.Reads)
			return ok, err
		}}
	},
	"FreezeBatchResp": func(r *rand.Rand) codecCase {
		in := FreezeBatchResp{Status: randStatus(r), Err: randWord(r)}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.WriteAcks = append(in.WriteAcks, randAck(r))
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeFreezeBatchResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && slices.Equal(out.WriteAcks, in.WriteAcks)
			return ok, err
		}}
	},
	"ReadLockBatchReq": func(r *rand.Rand) codecCase {
		in := ReadLockBatchReq{Txn: r.Uint64(), Epoch: r.Uint64(), Upper: randTS(r), Wait: r.Intn(2) == 0}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.Keys = append(in.Keys, randWord(r))
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeReadLockBatchReq(b)
			ok := out.Txn == in.Txn && out.Epoch == in.Epoch && out.Upper == in.Upper && out.Wait == in.Wait &&
				slices.Equal(out.Keys, in.Keys)
			return ok, err
		}}
	},
	"ReadLockBatchResp": func(r *rand.Rand) codecCase {
		in := ReadLockBatchResp{Status: randStatus(r), Err: randWord(r), Edges: randEdges(r)}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.Results = append(in.Results, ReadLockResult{
				Status: randStatus(r), Err: randWord(r), VersionTS: randTS(r), Value: randBlob(r), Got: randIv(r),
			})
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeReadLockBatchResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && len(out.Results) == len(in.Results) &&
				slices.Equal(out.Edges, in.Edges)
			if ok {
				for i := range in.Results {
					ok = ok && out.Results[i].Status == in.Results[i].Status &&
						out.Results[i].Err == in.Results[i].Err &&
						out.Results[i].VersionTS == in.Results[i].VersionTS &&
						bytes.Equal(out.Results[i].Value, in.Results[i].Value) &&
						(out.Results[i].Value == nil) == (in.Results[i].Value == nil) &&
						out.Results[i].Got == in.Results[i].Got
				}
			}
			return ok, err
		}}
	},
	"ReleaseBatchReq": func(r *rand.Rand) codecCase {
		in := ReleaseBatchReq{Txn: r.Uint64(), Epoch: r.Uint64(), WritesOnly: r.Intn(2) == 0, Committed: r.Intn(2) == 0, TS: randTS(r)}
		for i, n := 0, r.Intn(6); i < n; i++ {
			in.Keys = append(in.Keys, randWord(r))
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeReleaseBatchReq(b)
			ok := out.Txn == in.Txn && out.Epoch == in.Epoch && out.WritesOnly == in.WritesOnly &&
				out.Committed == in.Committed && out.TS == in.TS && slices.Equal(out.Keys, in.Keys)
			return ok, err
		}}
	},
	"SnapshotChunkReq": func(r *rand.Rand) codecCase {
		in := SnapshotChunkReq{Epoch: r.Uint64(), Cursor: r.Uint64(), MaxKeys: uint32(r.Intn(1 << 16))}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeSnapshotChunkReq(b)
			return out == in, err
		}}
	},
	"SnapshotChunkResp": func(r *rand.Rand) codecCase {
		in := SnapshotChunkResp{
			Status: randStatus(r), Err: randWord(r), Epoch: r.Uint64(),
			NextCursor: r.Uint64(), LSN: r.Uint64(), Records: randReplRecords(r),
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeSnapshotChunkResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && out.Epoch == in.Epoch &&
				out.NextCursor == in.NextCursor && out.LSN == in.LSN &&
				replRecordsEqual(out.Records, in.Records)
			return ok, err
		}}
	},
	"LogTailReq": func(r *rand.Rand) codecCase {
		in := LogTailReq{Epoch: r.Uint64(), From: r.Uint64(), MaxRecords: uint32(r.Intn(1 << 16))}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeLogTailReq(b)
			return out == in, err
		}}
	},
	"LogTailResp": func(r *rand.Rand) codecCase {
		in := LogTailResp{
			Status: randStatus(r), Err: randWord(r), Epoch: r.Uint64(),
			NextLSN: r.Uint64(), SnapshotNeeded: r.Intn(2) == 0, Records: randReplRecords(r),
		}
		return codecCase{in.AppendTo(nil), func(b []byte) (bool, error) {
			out, err := DecodeLogTailResp(b)
			ok := out.Status == in.Status && out.Err == in.Err && out.Epoch == in.Epoch &&
				out.NextLSN == in.NextLSN && out.SnapshotNeeded == in.SnapshotNeeded &&
				replRecordsEqual(out.Records, in.Records)
			return ok, err
		}}
	},
}

func randReplRecords(r *rand.Rand) []ReplRecord {
	var out []ReplRecord
	for i, n := 0, r.Intn(5); i < n; i++ {
		out = append(out, ReplRecord{LSN: r.Uint64(), Key: []byte(randWord(r)), TS: randTS(r), Value: randBlob(r)})
	}
	return out
}

func replRecordsEqual(a, b []ReplRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LSN != b[i].LSN || !bytes.Equal(a[i].Key, b[i].Key) || a[i].TS != b[i].TS ||
			!bytes.Equal(a[i].Value, b[i].Value) || (a[i].Value == nil) != (b[i].Value == nil) {
			return false
		}
	}
	return true
}

// TestAllMessagesRoundTripRandom drives every message codec with random
// payloads: the decode of an encode must reproduce the message exactly.
func TestAllMessagesRoundTripRandom(t *testing.T) {
	for name, gen := range codecCases {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(0xbadc + int64(len(name))))
			for i := 0; i < 300; i++ {
				c := gen(r)
				ok, err := c.recheck(c.enc)
				if err != nil {
					t.Fatalf("iteration %d: decode: %v", i, err)
				}
				if !ok {
					t.Fatalf("iteration %d: round trip mismatch", i)
				}
			}
		})
	}
}

// TestAllMessagesRejectTruncation checks that decoding any strict prefix
// of a valid encoding reports an error instead of fabricating fields.
func TestAllMessagesRejectTruncation(t *testing.T) {
	for name, gen := range codecCases {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 50; i++ {
				c := gen(r)
				for cut := 0; cut < len(c.enc); cut++ {
					if _, err := c.recheck(c.enc[:cut]); err == nil {
						t.Fatalf("iteration %d: truncation at %d/%d not detected", i, cut, len(c.enc))
					}
				}
			}
		})
	}
}

// TestBatchDecodersRejectHugeCounts checks the item-count guards: a
// small buffer claiming an enormous batch must fail fast, not allocate.
func TestBatchDecodersRejectHugeCounts(t *testing.T) {
	var e Encoder
	e.U64(1)       // txn
	e.U64(0)       // epoch
	e.Str("")      // decision server
	e.Bool(false)  // wait
	e.I32(1 << 30) // absurd item count
	if _, err := DecodeWriteLockBatchReq(e.Bytes()); err == nil {
		t.Fatal("huge item count not rejected")
	}
	var e2 Encoder
	e2.U64(1)
	e2.U64(0)
	e2.Bool(false)
	e2.I32(-1)
	if _, err := DecodeReleaseBatchReq(e2.Bytes()); err == nil {
		t.Fatal("negative key count not rejected")
	}
	var e3 Encoder
	e3.status(StatusOK)
	e3.Str("")     // err
	e3.U64(1)      // epoch
	e3.U64(1)      // next lsn
	e3.Bool(false) // snapshot needed
	e3.I32(1 << 30)
	if _, err := DecodeLogTailResp(e3.Bytes()); err == nil {
		t.Fatal("huge record count not rejected")
	}
}
