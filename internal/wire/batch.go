package wire

import (
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Batch messages carry a transaction's whole per-server footprint in one
// frame, so that a commit or abort costs O(servers) round trips instead
// of O(keys) (§7: the coordinator groups Alg. 11's per-key messages by
// the server owning each key). Servers answer with per-key sub-results;
// a batch of size one is exactly equivalent to the corresponding
// single-key message, which remains supported.

// WriteLockItem is one key of a WriteLockBatchReq: the requested lock
// set and the pending value to buffer.
type WriteLockItem struct {
	Key   string
	Set   timestamp.Set
	Value []byte
}

// WriteLockBatchReq asks the server to write-lock every listed key for
// the transaction in one pass (the batched form of WriteLockReq).
// DecisionSrv names the server hosting the transaction's commitment
// object, as in WriteLockReq; Epoch is the coordinator's cached
// membership epoch (0 on unreplicated clusters).
type WriteLockBatchReq struct {
	Txn         uint64
	Epoch       uint64
	DecisionSrv string
	Wait        bool
	Items       []WriteLockItem
}

// AppendTo implements Message.
func (m WriteLockBatchReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.U64(m.Epoch)
	e.Str(m.DecisionSrv)
	e.Bool(m.Wait)
	e.I32(int32(len(m.Items)))
	for _, it := range m.Items {
		e.Str(it.Key)
		e.Set(it.Set)
		e.Blob(it.Value)
	}
	return e.buf
}

// DecodeWriteLockBatchReq deserializes a WriteLockBatchReq.
func DecodeWriteLockBatchReq(b []byte) (WriteLockBatchReq, error) {
	d := NewDecoder(b)
	m := WriteLockBatchReq{Txn: d.U64(), Epoch: d.U64(), DecisionSrv: d.Str(), Wait: d.Bool()}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		m.Items = append(m.Items, WriteLockItem{Key: d.Str(), Set: d.Set(), Value: d.Blob()})
	}
	return m, d.Err()
}

// WriteLockResult is the per-key outcome of a batch write-lock, with the
// same fields as WriteLockResp.
type WriteLockResult struct {
	Status Status
	Err    string
	Got    timestamp.Set
	Denied timestamp.Set
}

// WriteLockBatchResp answers a WriteLockBatchReq. Results is parallel to
// the request's Items; Status reports request-level failures (malformed
// frame, transaction already decided) in which case Results may be nil.
// Edges piggybacks the server's local wait-for edges when any sub-result
// was denied, feeding the coordinator's cross-server deadlock detector
// without an extra round trip.
type WriteLockBatchResp struct {
	Status  Status
	Err     string
	Results []WriteLockResult
	Edges   []WaitEdge
}

// AppendTo implements Message.
func (m WriteLockBatchResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.I32(int32(len(m.Results)))
	for _, r := range m.Results {
		e.status(r.Status)
		e.Str(r.Err)
		e.Set(r.Got)
		e.Set(r.Denied)
	}
	e.Edges(m.Edges)
	return e.buf
}

// DecodeWriteLockBatchResp deserializes a WriteLockBatchResp.
func DecodeWriteLockBatchResp(b []byte) (WriteLockBatchResp, error) {
	d := NewDecoder(b)
	m := WriteLockBatchResp{Status: d.status(), Err: d.Str()}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		m.Results = append(m.Results, WriteLockResult{
			Status: d.status(), Err: d.Str(), Got: d.Set(), Denied: d.Set(),
		})
	}
	m.Edges = d.Edges()
	return m, d.Err()
}

// FreezeReadItem is one read-lock range to freeze, as in FreezeReadReq.
type FreezeReadItem struct {
	Key    string
	Lo, Hi timestamp.Timestamp
}

// FreezeBatchReq applies a commit decision to this server's share of the
// footprint in one pass: freeze the write locks of WriteKeys at TS
// (installing the pending values first), and freeze the read-lock ranges
// of Reads (the batched form of FreezeWriteReq plus FreezeReadReq).
type FreezeBatchReq struct {
	Txn       uint64
	Epoch     uint64
	TS        timestamp.Timestamp
	WriteKeys []string
	Reads     []FreezeReadItem
}

// AppendTo implements Message.
func (m FreezeBatchReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.U64(m.Epoch)
	e.TS(m.TS)
	e.StrSlice(m.WriteKeys)
	e.I32(int32(len(m.Reads)))
	for _, r := range m.Reads {
		e.Str(r.Key)
		e.TS(r.Lo)
		e.TS(r.Hi)
	}
	return e.buf
}

// DecodeFreezeBatchReq deserializes a FreezeBatchReq.
func DecodeFreezeBatchReq(b []byte) (FreezeBatchReq, error) {
	d := NewDecoder(b)
	m := FreezeBatchReq{Txn: d.U64(), Epoch: d.U64(), TS: d.TS(), WriteKeys: d.StrSlice()}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		m.Reads = append(m.Reads, FreezeReadItem{Key: d.Str(), Lo: d.TS(), Hi: d.TS()})
	}
	return m, d.Err()
}

// FreezeBatchResp answers a FreezeBatchReq with one ack per write key
// (read freezes cannot fail). Coordinators fire-and-forget freezes, but
// the acks make the handler testable and keep the protocol symmetric.
type FreezeBatchResp struct {
	Status Status
	Err    string
	// WriteAcks is parallel to the request's WriteKeys.
	WriteAcks []Ack
}

// AppendTo implements Message.
func (m FreezeBatchResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.I32(int32(len(m.WriteAcks)))
	for _, a := range m.WriteAcks {
		e.status(a.Status)
		e.Str(a.Err)
	}
	return e.buf
}

// DecodeFreezeBatchResp deserializes a FreezeBatchResp.
func DecodeFreezeBatchResp(b []byte) (FreezeBatchResp, error) {
	d := NewDecoder(b)
	m := FreezeBatchResp{Status: d.status(), Err: d.Str()}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		m.WriteAcks = append(m.WriteAcks, Ack{Status: d.status(), Err: d.Str()})
	}
	return m, d.Err()
}

// ReleaseBatchReq releases the transaction's unfrozen locks on every
// listed key in one pass (the batched form of ReleaseReq). When
// Committed is set, the sender is a coordinator whose transaction
// decided commit at TS: freezes and releases are both casts, so a
// dropped freeze followed by a delivered release would otherwise make
// the handler discard a still-unfrozen write lock — and with it the
// pending value of a durably committed write. A committed release
// therefore subsumes the freeze: the handler installs any write key
// still pending at TS before dropping the remaining unfrozen locks.
type ReleaseBatchReq struct {
	Txn        uint64
	Epoch      uint64
	WritesOnly bool
	// Committed marks the sender's transaction as decided-commit at TS;
	// leftover pending writes among Keys are installed, not dropped.
	Committed bool
	TS        timestamp.Timestamp
	Keys      []string
}

// AppendTo implements Message.
func (m ReleaseBatchReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.U64(m.Epoch)
	e.Bool(m.WritesOnly)
	e.Bool(m.Committed)
	e.TS(m.TS)
	e.StrSlice(m.Keys)
	return e.buf
}

// DecodeReleaseBatchReq deserializes a ReleaseBatchReq.
func DecodeReleaseBatchReq(b []byte) (ReleaseBatchReq, error) {
	d := NewDecoder(b)
	m := ReleaseBatchReq{Txn: d.U64(), Epoch: d.U64(), WritesOnly: d.Bool(), Committed: d.Bool(), TS: d.TS(), Keys: d.StrSlice()}
	return m, d.Err()
}

// ReadLockBatchReq asks the server to perform the read step for every
// listed key in one pass (the batched form of ReadLockReq): per key,
// pick the latest committed version below Upper, read-lock from just
// above it toward Upper (waiting on unfrozen write locks if Wait), and
// return the version and the locked interval. Upper and Wait are shared
// by the whole batch — a coordinator issues one batch per server for a
// static read set, all under the transaction's current interval bound.
type ReadLockBatchReq struct {
	Txn   uint64
	Epoch uint64
	Upper timestamp.Timestamp
	Wait  bool
	Keys  []string
}

// AppendTo implements Message.
func (m ReadLockBatchReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.U64(m.Epoch)
	e.TS(m.Upper)
	e.Bool(m.Wait)
	e.StrSlice(m.Keys)
	return e.buf
}

// DecodeReadLockBatchReq deserializes a ReadLockBatchReq.
func DecodeReadLockBatchReq(b []byte) (ReadLockBatchReq, error) {
	d := NewDecoder(b)
	m := ReadLockBatchReq{Txn: d.U64(), Epoch: d.U64(), Upper: d.TS(), Wait: d.Bool(), Keys: d.StrSlice()}
	return m, d.Err()
}

// ReadLockResult is the per-key outcome of a batch read, with the same
// fields as ReadLockResp (minus the piggybacked edges, which are
// batch-level).
type ReadLockResult struct {
	Status    Status
	Err       string
	VersionTS timestamp.Timestamp
	Value     []byte
	Got       timestamp.Interval
}

// ReadLockBatchResp answers a ReadLockBatchReq. Results is parallel to
// the request's Keys; Status reports request-level failures (malformed
// frame) in which case Results may be nil. Edges piggybacks the
// server's local wait-for edges when any waiting sub-read conflicted,
// feeding the coordinator's cross-server deadlock detector without an
// extra round trip.
type ReadLockBatchResp struct {
	Status  Status
	Err     string
	Results []ReadLockResult
	Edges   []WaitEdge
}

// AppendTo implements Message.
func (m ReadLockBatchResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.I32(int32(len(m.Results)))
	for _, r := range m.Results {
		e.status(r.Status)
		e.Str(r.Err)
		e.TS(r.VersionTS)
		e.Blob(r.Value)
		e.Interval(r.Got)
	}
	e.Edges(m.Edges)
	return e.buf
}

// DecodeInto deserializes into m, reusing m.Results' capacity — the
// steady-state decode of the hot read path allocates nothing (values
// are borrowed views into b, see Decoder.Blob). All fields are
// overwritten.
func (m *ReadLockBatchResp) DecodeInto(b []byte) error {
	d := NewDecoder(b)
	m.Status = d.status()
	m.Err = d.Str()
	n := d.count()
	m.Results = m.Results[:0]
	for i := 0; i < n && d.err == nil; i++ {
		m.Results = append(m.Results, ReadLockResult{
			Status: d.status(), Err: d.Str(), VersionTS: d.TS(), Value: d.Blob(), Got: d.Interval(),
		})
	}
	m.Edges = d.Edges()
	return d.Err()
}

// DecodeReadLockBatchResp deserializes a ReadLockBatchResp.
func DecodeReadLockBatchResp(b []byte) (ReadLockBatchResp, error) {
	var m ReadLockBatchResp
	err := m.DecodeInto(b)
	return m, err
}

// count consumes a batch item count, validating its range: every item
// encodes to at least one byte, so a valid count can never exceed the
// remaining buffer — a corrupt prefix fails here instead of driving a
// huge allocation or a long loop over an already-errored decoder.
func (d *Decoder) count() int {
	n := d.I32()
	if d.err != nil {
		return 0
	}
	if n < 0 || int(n) > len(d.buf) {
		d.err = fmt.Errorf("wire: batch count %d invalid", n)
		return 0
	}
	return int(n)
}
