package wire

import (
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Status codes carried by responses.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	// StatusConflict reports an unfrozen conflicting lock (retry may
	// succeed).
	StatusConflict
	// StatusFrozen reports a frozen conflicting lock (permanent).
	StatusFrozen
	// StatusPurged reports that the needed version was purged.
	StatusPurged
	// StatusAborted reports the transaction was decided aborted.
	StatusAborted
	// StatusError carries a generic error message.
	StatusError
	// StatusDeadlock reports the request's transaction was chosen as a
	// deadlock victim (locally by the server's wait-for graph, or
	// remotely via a VictimAbortReq). Unlike StatusConflict it calls
	// for an immediate retry with a fresh transaction — the conflicting
	// work was aborted on purpose, not still running.
	StatusDeadlock
	// StatusWrongEpoch reports that the request's membership epoch does
	// not match the server's, or that the server is not the partition
	// head: the coordinator's route is stale (the partition failed over).
	// Retryable — the coordinator refreshes its route from the membership
	// authority and restarts the transaction against the new head.
	StatusWrongEpoch
)

// ReadLockReq asks the server to perform the read step for a key: pick
// the latest committed version below Upper, read-lock from just above it
// toward Upper (waiting on unfrozen write locks if Wait), and return the
// version and the locked interval (Alg. 13, receive-read-lock-message).
type ReadLockReq struct {
	Txn   uint64
	Key   string
	Upper timestamp.Timestamp
	Wait  bool
}

// AppendTo implements Message.
func (m ReadLockReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.Str(m.Key)
	e.TS(m.Upper)
	e.Bool(m.Wait)
	return e.buf
}

// DecodeReadLockReq deserializes a ReadLockReq.
func DecodeReadLockReq(b []byte) (ReadLockReq, error) {
	d := NewDecoder(b)
	m := ReadLockReq{Txn: d.U64(), Key: d.Str(), Upper: d.TS(), Wait: d.Bool()}
	return m, d.Err()
}

// ReadLockResp answers a ReadLockReq.
type ReadLockResp struct {
	Status    Status
	Err       string
	VersionTS timestamp.Timestamp
	Value     []byte
	// Got is the read-locked interval [VersionTS+1, ...]; may be empty.
	Got timestamp.Interval
	// Edges piggybacks the server's local wait-for edges on blocked or
	// conflicted reads, feeding the coordinator's cross-server deadlock
	// detector without an extra round trip.
	Edges []WaitEdge
}

// AppendTo implements Message.
func (m ReadLockResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.buf = append(e.buf, byte(m.Status))
	e.Str(m.Err)
	e.TS(m.VersionTS)
	e.Blob(m.Value)
	e.Interval(m.Got)
	e.Edges(m.Edges)
	return e.buf
}

// DecodeReadLockResp deserializes a ReadLockResp.
func DecodeReadLockResp(b []byte) (ReadLockResp, error) {
	d := NewDecoder(b)
	var m ReadLockResp
	st := d.take(1)
	if st != nil {
		m.Status = Status(st[0])
	}
	m.Err = d.Str()
	m.VersionTS = d.TS()
	m.Value = d.Blob()
	m.Got = d.Interval()
	m.Edges = d.Edges()
	return m, d.Err()
}

// WriteLockReq asks the server to write-lock a subset of Set for the
// transaction and buffer Value as the pending write (Alg. 13,
// receive-write-lock-message). DecisionSrv names the server hosting the
// transaction's commitment object, so that a timeout on this server can
// reach consensus on aborting (§H.1). Epoch is the coordinator's cached
// membership epoch for the partition (0 on unreplicated clusters); a
// mismatch is answered with StatusWrongEpoch.
type WriteLockReq struct {
	Txn         uint64
	Epoch       uint64
	Key         string
	DecisionSrv string
	Set         timestamp.Set
	Wait        bool
	Value       []byte
}

// AppendTo implements Message.
func (m WriteLockReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.U64(m.Epoch)
	e.Str(m.Key)
	e.Str(m.DecisionSrv)
	e.Set(m.Set)
	e.Bool(m.Wait)
	e.Blob(m.Value)
	return e.buf
}

// DecodeWriteLockReq deserializes a WriteLockReq.
func DecodeWriteLockReq(b []byte) (WriteLockReq, error) {
	d := NewDecoder(b)
	m := WriteLockReq{
		Txn:         d.U64(),
		Epoch:       d.U64(),
		Key:         d.Str(),
		DecisionSrv: d.Str(),
		Set:         d.Set(),
		Wait:        d.Bool(),
		Value:       d.Blob(),
	}
	return m, d.Err()
}

// WriteLockResp answers a WriteLockReq with the acquired and denied
// subsets.
type WriteLockResp struct {
	Status Status
	Err    string
	Got    timestamp.Set
	Denied timestamp.Set
}

// AppendTo implements Message.
func (m WriteLockResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.buf = append(e.buf, byte(m.Status))
	e.Str(m.Err)
	e.Set(m.Got)
	e.Set(m.Denied)
	return e.buf
}

// DecodeWriteLockResp deserializes a WriteLockResp.
func DecodeWriteLockResp(b []byte) (WriteLockResp, error) {
	d := NewDecoder(b)
	var m WriteLockResp
	st := d.take(1)
	if st != nil {
		m.Status = Status(st[0])
	}
	m.Err = d.Str()
	m.Got = d.Set()
	m.Denied = d.Set()
	return m, d.Err()
}

// FreezeWriteReq tells the server the transaction committed at TS: the
// server freezes the write lock there and exposes the pending value
// (Alg. 13, receive-freeze-write-lock-message).
type FreezeWriteReq struct {
	Txn uint64
	Key string
	TS  timestamp.Timestamp
}

// AppendTo implements Message.
func (m FreezeWriteReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.Str(m.Key)
	e.TS(m.TS)
	return e.buf
}

// DecodeFreezeWriteReq deserializes a FreezeWriteReq.
func DecodeFreezeWriteReq(b []byte) (FreezeWriteReq, error) {
	d := NewDecoder(b)
	m := FreezeWriteReq{Txn: d.U64(), Key: d.Str(), TS: d.TS()}
	return m, d.Err()
}

// FreezeReadReq freezes the transaction's read locks on [Lo, Hi]
// (garbage collection, Alg. 11 line 33).
type FreezeReadReq struct {
	Txn uint64
	Key string
	Lo  timestamp.Timestamp
	Hi  timestamp.Timestamp
}

// AppendTo implements Message.
func (m FreezeReadReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.Str(m.Key)
	e.TS(m.Lo)
	e.TS(m.Hi)
	return e.buf
}

// DecodeFreezeReadReq deserializes a FreezeReadReq.
func DecodeFreezeReadReq(b []byte) (FreezeReadReq, error) {
	d := NewDecoder(b)
	m := FreezeReadReq{Txn: d.U64(), Key: d.Str(), Lo: d.TS(), Hi: d.TS()}
	return m, d.Err()
}

// ReleaseReq releases the transaction's unfrozen locks on Key (all of
// them, or only write locks).
type ReleaseReq struct {
	Txn        uint64
	Key        string
	WritesOnly bool
}

// AppendTo implements Message.
func (m ReleaseReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.Str(m.Key)
	e.Bool(m.WritesOnly)
	return e.buf
}

// DecodeReleaseReq deserializes a ReleaseReq.
func DecodeReleaseReq(b []byte) (ReleaseReq, error) {
	d := NewDecoder(b)
	m := ReleaseReq{Txn: d.U64(), Key: d.Str(), WritesOnly: d.Bool()}
	return m, d.Err()
}

// Ack is the generic status-only response.
type Ack struct {
	Status Status
	Err    string
}

// AppendTo implements Message.
func (m Ack) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.buf = append(e.buf, byte(m.Status))
	e.Str(m.Err)
	return e.buf
}

// DecodeAck deserializes an Ack.
func DecodeAck(b []byte) (Ack, error) {
	d := NewDecoder(b)
	var m Ack
	st := d.take(1)
	if st != nil {
		m.Status = Status(st[0])
	}
	m.Err = d.Str()
	return m, d.Err()
}

// DecisionKind is a commitment-object outcome (§H).
type DecisionKind uint8

// Decision kinds.
const (
	DecideCommit DecisionKind = iota + 1
	DecideAbort
)

// String renders the kind.
func (k DecisionKind) String() string {
	switch k {
	case DecideCommit:
		return "commit"
	case DecideAbort:
		return "abort"
	default:
		return fmt.Sprintf("decision(%d)", uint8(k))
	}
}

// DecideReq proposes an outcome for a transaction to its commitment
// object (hosted at the decision server). The reply carries the agreed
// decision, which may differ from the proposal. Epoch is the
// coordinator's cached membership epoch for the decision server's
// partition; 0 bypasses the epoch fence — server-to-server abort
// proposals (the suspicion scanner) do not track coordinator epochs,
// and accepting them anywhere is safe because abort is the default
// outcome.
type DecideReq struct {
	Txn      uint64
	Epoch    uint64
	Proposal DecisionKind
	TS       timestamp.Timestamp
}

// AppendTo implements Message.
func (m DecideReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.U64(m.Epoch)
	e.buf = append(e.buf, byte(m.Proposal))
	e.TS(m.TS)
	return e.buf
}

// DecodeDecideReq deserializes a DecideReq.
func DecodeDecideReq(b []byte) (DecideReq, error) {
	d := NewDecoder(b)
	m := DecideReq{Txn: d.U64(), Epoch: d.U64()}
	k := d.take(1)
	if k != nil {
		m.Proposal = DecisionKind(k[0])
	}
	m.TS = d.TS()
	return m, d.Err()
}

// DecideResp carries the agreed outcome. Status distinguishes a real
// decision (StatusOK) from a request-level failure such as a malformed
// frame (StatusError) — previously a decode failure was reported as a
// zero-valued "abort" decision, indistinguishable from the commitment
// object actually deciding abort.
type DecideResp struct {
	Status Status
	Err    string
	Kind   DecisionKind
	TS     timestamp.Timestamp
}

// AppendTo implements Message.
func (m DecideResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.buf = append(e.buf, byte(m.Kind))
	e.TS(m.TS)
	return e.buf
}

// DecodeDecideResp deserializes a DecideResp.
func DecodeDecideResp(b []byte) (DecideResp, error) {
	d := NewDecoder(b)
	var m DecideResp
	m.Status = d.status()
	m.Err = d.Str()
	k := d.take(1)
	if k != nil {
		m.Kind = DecisionKind(k[0])
	}
	m.TS = d.TS()
	return m, d.Err()
}

// PurgeReq tells the server to discard versions and frozen lock state
// below Bound (issued by the timestamp service, §8.1).
type PurgeReq struct {
	Bound timestamp.Timestamp
}

// AppendTo implements Message.
func (m PurgeReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.TS(m.Bound)
	return e.buf
}

// DecodePurgeReq deserializes a PurgeReq.
func DecodePurgeReq(b []byte) (PurgeReq, error) {
	d := NewDecoder(b)
	m := PurgeReq{Bound: d.TS()}
	return m, d.Err()
}

// PurgeResp reports how much state was discarded. Status distinguishes
// a successful purge from a request-level failure — previously a decode
// failure was reported as a zero-valued success ("purged 0, OK").
type PurgeResp struct {
	Status   Status
	Err      string
	Versions int64
	Locks    int64
}

// AppendTo implements Message.
func (m PurgeResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.I64(m.Versions)
	e.I64(m.Locks)
	return e.buf
}

// DecodePurgeResp deserializes a PurgeResp.
func DecodePurgeResp(b []byte) (PurgeResp, error) {
	d := NewDecoder(b)
	m := PurgeResp{Status: d.status(), Err: d.Str(), Versions: d.I64(), Locks: d.I64()}
	return m, d.Err()
}

// StatsResp reports the server's state size (Figure 6). The request has
// an empty body.
type StatsResp struct {
	Keys        int64
	LockEntries int64
	FrozenLocks int64
	Versions    int64
	// LiveTxns is the number of transaction-state records currently
	// retained; PurgedTxns counts records garbage-collected since the
	// server started. Together they verify that finished-transaction GC
	// keeps memory bounded under sustained load.
	LiveTxns   int64
	PurgedTxns int64
	// Replication state (zero on unreplicated servers): the server's
	// membership epoch, its lag behind the upstream head in log records
	// (0 on heads), and the metrics.ReplCounters totals — promotions
	// served, wrong-epoch frames rejected, catch-up bytes streamed.
	ReplEpoch        int64
	ReplLag          int64
	ReplPromotions   int64
	ReplWrongEpoch   int64
	ReplCatchupBytes int64
}

// AppendTo implements Message.
func (m StatsResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.I64(m.Keys)
	e.I64(m.LockEntries)
	e.I64(m.FrozenLocks)
	e.I64(m.Versions)
	e.I64(m.LiveTxns)
	e.I64(m.PurgedTxns)
	e.I64(m.ReplEpoch)
	e.I64(m.ReplLag)
	e.I64(m.ReplPromotions)
	e.I64(m.ReplWrongEpoch)
	e.I64(m.ReplCatchupBytes)
	return e.buf
}

// DecodeStatsResp deserializes a StatsResp.
func DecodeStatsResp(b []byte) (StatsResp, error) {
	d := NewDecoder(b)
	m := StatsResp{
		Keys: d.I64(), LockEntries: d.I64(), FrozenLocks: d.I64(), Versions: d.I64(),
		LiveTxns: d.I64(), PurgedTxns: d.I64(),
		ReplEpoch: d.I64(), ReplLag: d.I64(), ReplPromotions: d.I64(),
		ReplWrongEpoch: d.I64(), ReplCatchupBytes: d.I64(),
	}
	return m, d.Err()
}

// WaitEdge is one wait-for edge exported by a server: transaction
// Waiter is blocked on a lock held by transaction Holder, on Key. A
// coordinator merges edges from several servers into the global
// wait-for graph; Key names the server where the waiter is parked, so a
// victim abort can be routed there.
type WaitEdge struct {
	Waiter uint64
	Holder uint64
	Key    string
}

// Edges appends a length-prefixed sequence of wait-for edges.
func (e *Encoder) Edges(v []WaitEdge) {
	e.I32(int32(len(v)))
	for _, x := range v {
		e.U64(x.Waiter)
		e.U64(x.Holder)
		e.Str(x.Key)
	}
}

// Edges consumes a length-prefixed sequence of wait-for edges.
func (d *Decoder) Edges() []WaitEdge {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]WaitEdge, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, WaitEdge{Waiter: d.U64(), Holder: d.U64(), Key: d.Str()})
	}
	if d.err != nil {
		return nil
	}
	return out
}

// WaitGraphResp answers a TWaitGraphReq (whose body is empty) with a
// snapshot of the server's local wait-for edges. Coordinators poll it
// while one of their lock requests is blocked and assemble the
// cross-server wait-for graph.
type WaitGraphResp struct {
	Edges []WaitEdge
}

// AppendTo implements Message.
func (m WaitGraphResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.Edges(m.Edges)
	return e.buf
}

// DecodeWaitGraphResp deserializes a WaitGraphResp.
func DecodeWaitGraphResp(b []byte) (WaitGraphResp, error) {
	d := NewDecoder(b)
	m := WaitGraphResp{Edges: d.Edges()}
	return m, d.Err()
}

// VictimAbortReq tells the server that transaction Txn — currently
// parked there, blocked on Key — was chosen as the victim of a
// confirmed cross-server deadlock cycle (deterministically, the lowest
// transaction id in the cycle). The server proposes abort through the
// transaction's commitment object (the existing decide path) and wakes
// the parked acquisition with a deadlock error, so the victim's
// coordinator aborts and retries instead of sleeping out the lock-wait
// timeout. The reply is an Ack (TVictimAbortResp).
type VictimAbortReq struct {
	Txn uint64
	Key string
}

// AppendTo implements Message.
func (m VictimAbortReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Txn)
	e.Str(m.Key)
	return e.buf
}

// DecodeVictimAbortReq deserializes a VictimAbortReq.
func DecodeVictimAbortReq(b []byte) (VictimAbortReq, error) {
	d := NewDecoder(b)
	m := VictimAbortReq{Txn: d.U64(), Key: d.Str()}
	return m, d.Err()
}
