package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := GetFrameBuf()
	defer in.Release()
	if err := in.SetFrame(42, TReadLockReq, Raw("hello")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := GetFrameBuf()
	defer out.Release()
	if err := ReadFrame(&buf, out); err != nil {
		t.Fatal(err)
	}
	if out.ID() != 42 || out.Type() != TReadLockReq || !bytes.Equal(out.Body(), []byte("hello")) {
		t.Fatalf("round trip mismatch: %d %d %q", out.ID(), out.Type(), out.Body())
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	in := GetFrameBuf()
	defer in.Release()
	if err := in.SetFrame(1, TStatsReq, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := GetFrameBuf()
	defer out.Release()
	if err := ReadFrame(&buf, out); err != nil {
		t.Fatal(err)
	}
	if len(out.Body()) != 0 {
		t.Fatalf("body = %v", out.Body())
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	// length 3 < header size
	buf := bytes.NewBuffer([]byte{3, 0, 0, 0})
	fb := GetFrameBuf()
	defer fb.Release()
	if err := ReadFrame(buf, fb); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	in := GetFrameBuf()
	defer in.Release()
	_ = in.SetFrame(7, TReadLockReq, Raw("xyz"))
	_ = WriteFrame(&buf, in)
	b := buf.Bytes()[:buf.Len()-2]
	fb := GetFrameBuf()
	defer fb.Release()
	if err := ReadFrame(bytes.NewBuffer(b), fb); err == nil {
		t.Fatal("expected error on truncated frame")
	}
}

// TestFrameHeaderRoundTripRandom drives the correlation-id frame header
// with random payloads, in the style of the message codec property
// tests: writing a frame and reading it back must reproduce the id, the
// type and the body exactly — the id is what routes a response to the
// one call that sent it, so the header codec must never mangle it. The
// same two pooled buffers are reused throughout, which also pins the
// capacity-reuse path of SetFrame/ReadFrame.
func TestFrameHeaderRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(0xf7a3e))
	in := GetFrameBuf()
	defer in.Release()
	out := GetFrameBuf()
	defer out.Release()
	for i := 0; i < 300; i++ {
		id, typ := r.Uint64(), MsgType(1+r.Intn(30))
		var body []byte
		if r.Intn(4) > 0 {
			body = make([]byte, r.Intn(200))
			r.Read(body)
		}
		if err := in.SetFrame(id, typ, Raw(body)); err != nil {
			t.Fatalf("iteration %d: encode: %v", i, err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatalf("iteration %d: write: %v", i, err)
		}
		if err := ReadFrame(&buf, out); err != nil {
			t.Fatalf("iteration %d: read: %v", i, err)
		}
		if out.ID() != id || out.Type() != typ || !bytes.Equal(out.Body(), body) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

// TestFrameHeaderRejectTruncation checks that reading any strict prefix
// of a framed encoding reports an error instead of fabricating a frame
// (and with it, a bogus correlation id).
func TestFrameHeaderRejectTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	in := GetFrameBuf()
	defer in.Release()
	fb := GetFrameBuf()
	defer fb.Release()
	for i := 0; i < 50; i++ {
		body := make([]byte, r.Intn(40))
		r.Read(body)
		if err := in.SetFrame(r.Uint64(), MsgType(1+r.Intn(30)), Raw(body)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()
		for cut := 0; cut < len(enc); cut++ {
			if err := ReadFrame(bytes.NewReader(enc[:cut]), fb); err == nil {
				t.Fatalf("iteration %d: truncation at %d/%d not detected", i, cut, len(enc))
			}
		}
	}
}

func ts(a int64, b int32) timestamp.Timestamp { return timestamp.New(a, b) }

func TestReadLockReqRoundTrip(t *testing.T) {
	in := ReadLockReq{Txn: 9, Key: "alpha", Upper: ts(55, 3), Wait: true}
	out, err := DecodeReadLockReq(in.AppendTo(nil))
	if err != nil || out != in {
		t.Fatalf("%+v %v", out, err)
	}
}

func TestReadLockRespRoundTrip(t *testing.T) {
	in := ReadLockResp{
		Status:    StatusOK,
		VersionTS: ts(10, 1),
		Value:     []byte("val"),
		Got:       timestamp.Span(ts(11, 0), ts(20, 5)),
	}
	out, err := DecodeReadLockResp(in.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != in.Status || out.VersionTS != in.VersionTS ||
		!bytes.Equal(out.Value, in.Value) || out.Got != in.Got {
		t.Fatalf("%+v", out)
	}
}

func TestReadLockRespNilValue(t *testing.T) {
	in := ReadLockResp{Status: StatusOK, VersionTS: timestamp.Zero, Value: nil, Got: timestamp.Empty}
	out, err := DecodeReadLockResp(in.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != nil {
		t.Fatalf("⊥ must round-trip as nil, got %v", out.Value)
	}
}

func TestWriteLockReqRoundTrip(t *testing.T) {
	set := timestamp.NewSet(
		timestamp.Span(ts(1, 0), ts(5, 0)),
		timestamp.Span(ts(9, 0), ts(12, 0)),
	)
	in := WriteLockReq{Txn: 3, Key: "k", DecisionSrv: "server-2", Set: set, Wait: true, Value: []byte("v")}
	out, err := DecodeWriteLockReq(in.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Txn != in.Txn || out.Key != in.Key || out.DecisionSrv != in.DecisionSrv ||
		!out.Set.Equal(in.Set) || out.Wait != in.Wait || !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("%+v", out)
	}
}

func TestWriteLockRespRoundTrip(t *testing.T) {
	in := WriteLockResp{
		Status: StatusConflict,
		Err:    "blocked",
		Got:    timestamp.NewSet(timestamp.Span(ts(1, 0), ts(2, 0))),
		Denied: timestamp.NewSet(timestamp.Span(ts(3, 0), ts(4, 0))),
	}
	out, err := DecodeWriteLockResp(in.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != in.Status || out.Err != in.Err || !out.Got.Equal(in.Got) || !out.Denied.Equal(in.Denied) {
		t.Fatalf("%+v", out)
	}
}

func TestSmallMessagesRoundTrip(t *testing.T) {
	fw := FreezeWriteReq{Txn: 1, Key: "a", TS: ts(9, 9)}
	if out, err := DecodeFreezeWriteReq(fw.AppendTo(nil)); err != nil || out != fw {
		t.Fatalf("%+v %v", out, err)
	}
	fr := FreezeReadReq{Txn: 2, Key: "b", Lo: ts(1, 0), Hi: ts(5, 0)}
	if out, err := DecodeFreezeReadReq(fr.AppendTo(nil)); err != nil || out != fr {
		t.Fatalf("%+v %v", out, err)
	}
	rl := ReleaseReq{Txn: 3, Key: "c", WritesOnly: true}
	if out, err := DecodeReleaseReq(rl.AppendTo(nil)); err != nil || out != rl {
		t.Fatalf("%+v %v", out, err)
	}
	ack := Ack{Status: StatusAborted, Err: "gone"}
	if out, err := DecodeAck(ack.AppendTo(nil)); err != nil || out != ack {
		t.Fatalf("%+v %v", out, err)
	}
	dq := DecideReq{Txn: 4, Proposal: DecideCommit, TS: ts(77, 2)}
	if out, err := DecodeDecideReq(dq.AppendTo(nil)); err != nil || out != dq {
		t.Fatalf("%+v %v", out, err)
	}
	dr := DecideResp{Kind: DecideAbort, TS: ts(0, 0)}
	if out, err := DecodeDecideResp(dr.AppendTo(nil)); err != nil || out != dr {
		t.Fatalf("%+v %v", out, err)
	}
	pq := PurgeReq{Bound: ts(123, 0)}
	if out, err := DecodePurgeReq(pq.AppendTo(nil)); err != nil || out != pq {
		t.Fatalf("%+v %v", out, err)
	}
	pr := PurgeResp{Versions: 10, Locks: 20}
	if out, err := DecodePurgeResp(pr.AppendTo(nil)); err != nil || out != pr {
		t.Fatalf("%+v %v", out, err)
	}
	st := StatsResp{Keys: 1, LockEntries: 2, FrozenLocks: 3, Versions: 4}
	if out, err := DecodeStatsResp(st.AppendTo(nil)); err != nil || out != st {
		t.Fatalf("%+v %v", out, err)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	full := WriteLockReq{Txn: 3, Key: "key", Set: timestamp.NewSet(timestamp.Point(ts(1, 1))), Value: []byte("v")}.AppendTo(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeWriteLockReq(full[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// Property: random interval sets round-trip exactly through the codec.
func TestQuickSetRoundTrip(t *testing.T) {
	gen := func(r *rand.Rand) timestamp.Set {
		var s timestamp.Set
		for i := 0; i < r.Intn(5); i++ {
			lo := int64(r.Intn(100))
			s = s.Add(timestamp.Span(ts(lo, int32(r.Intn(3))), ts(lo+int64(r.Intn(10)), int32(r.Intn(3)))))
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := gen(r)
		var e Encoder
		e.Set(in)
		d := NewDecoder(e.Bytes())
		out := d.Set()
		return d.Err() == nil && out.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}); err != nil {
		t.Fatal(err)
	}
}

// Property: random strings and blobs round-trip through the codec.
func TestQuickPrimitivesRoundTrip(t *testing.T) {
	f := func(s string, b []byte, u uint64, i int64, p int32, flag bool) bool {
		var e Encoder
		e.Str(s)
		e.Blob(b)
		e.U64(u)
		e.I64(i)
		e.I32(p)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		gs := d.Str()
		gb := d.Blob()
		gu := d.U64()
		gi := d.I64()
		gp := d.I32()
		gf := d.Bool()
		if d.Err() != nil {
			return false
		}
		return gs == s && bytes.Equal(gb, b) && gu == u && gi == i && gp == p && gf == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
