package wire

import (
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Bulk-transfer messages stream a partition's committed state between
// replicas: a catching-up replica first drains the head's key/version
// state in chunks (SnapshotChunkReq/Resp), then follows the replication
// log (LogTailReq/Resp) — every committed version install is one
// LSN-numbered record. Both ride the pooled FrameBuf path: records
// append-encode into the reply frame, decoders hand out borrowed views,
// and replies coalesce through the server's reply flusher into
// SendBatch, so steady-state catch-up is zero-copy and allocation-free.

// ReplRecord is one replicated version install: transaction commit
// wrote Value to Key at timestamp TS, as log sequence number LSN.
// Snapshot chunks reuse the type with LSN 0 (the chunk's watermark is
// carried once, on the response). Key and Value are BORROWED views into
// the decoded frame (see Decoder.Blob); an apply path that outlives the
// frame must copy them out.
type ReplRecord struct {
	LSN   uint64
	Key   []byte
	TS    timestamp.Timestamp
	Value []byte
}

// ReplRecords appends a length-prefixed sequence of replication
// records.
func (e *Encoder) ReplRecords(v []ReplRecord) {
	e.I32(int32(len(v)))
	for _, r := range v {
		e.U64(r.LSN)
		e.Blob(r.Key)
		e.TS(r.TS)
		e.Blob(r.Value)
	}
}

// replRecordsInto consumes a length-prefixed sequence of replication
// records, reusing dst's capacity. Records borrow from the decoded
// buffer.
func (d *Decoder) replRecordsInto(dst []ReplRecord) []ReplRecord {
	n := d.count()
	dst = dst[:0]
	for i := 0; i < n && d.err == nil; i++ {
		dst = append(dst, ReplRecord{LSN: d.U64(), Key: d.Blob(), TS: d.TS(), Value: d.Blob()})
	}
	if d.err != nil {
		return nil
	}
	return dst
}

// SnapshotChunkReq asks a replica for one chunk of its committed
// key/version state. Cursor 0 starts a snapshot; subsequent requests
// pass the previous response's NextCursor. Epoch 0 accepts any serving
// epoch (a joining replica does not know one yet); a non-zero mismatch
// is answered with StatusWrongEpoch.
type SnapshotChunkReq struct {
	Epoch   uint64
	Cursor  uint64
	MaxKeys uint32
}

// AppendTo implements Message.
func (m SnapshotChunkReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Epoch)
	e.U64(m.Cursor)
	e.I32(int32(m.MaxKeys))
	return e.buf
}

// DecodeSnapshotChunkReq deserializes a SnapshotChunkReq.
func DecodeSnapshotChunkReq(b []byte) (SnapshotChunkReq, error) {
	d := NewDecoder(b)
	m := SnapshotChunkReq{Epoch: d.U64(), Cursor: d.U64(), MaxKeys: uint32(d.I32())}
	return m, d.Err()
}

// SnapshotChunkResp carries one snapshot chunk. NextCursor is the
// cursor for the next chunk, 0 when the snapshot is complete. LSN is
// the sender's log watermark when the chunk was built: every install up
// to LSN for the chunk's keys is included, and anything later reaches
// the receiver through the log tail (installs are idempotent, so the
// overlap is harmless). Epoch is the sender's membership epoch.
type SnapshotChunkResp struct {
	Status     Status
	Err        string
	Epoch      uint64
	NextCursor uint64
	LSN        uint64
	Records    []ReplRecord
}

// AppendTo implements Message.
func (m SnapshotChunkResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.U64(m.Epoch)
	e.U64(m.NextCursor)
	e.U64(m.LSN)
	e.ReplRecords(m.Records)
	return e.buf
}

// DecodeSnapshotChunkResp deserializes a SnapshotChunkResp. Record keys
// and values are borrowed views into b.
func DecodeSnapshotChunkResp(b []byte) (SnapshotChunkResp, error) {
	d := NewDecoder(b)
	m := SnapshotChunkResp{
		Status: d.status(), Err: d.Str(), Epoch: d.U64(),
		NextCursor: d.U64(), LSN: d.U64(),
	}
	m.Records = d.replRecordsInto(nil)
	return m, d.Err()
}

// LogTailReq asks a replica for its replication log from LSN From on.
// Epoch 0 accepts any serving epoch, as in SnapshotChunkReq.
type LogTailReq struct {
	Epoch      uint64
	From       uint64
	MaxRecords uint32
}

// AppendTo implements Message.
func (m LogTailReq) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.U64(m.Epoch)
	e.U64(m.From)
	e.I32(int32(m.MaxRecords))
	return e.buf
}

// DecodeLogTailReq deserializes a LogTailReq.
func DecodeLogTailReq(b []byte) (LogTailReq, error) {
	d := NewDecoder(b)
	m := LogTailReq{Epoch: d.U64(), From: d.U64(), MaxRecords: uint32(d.I32())}
	return m, d.Err()
}

// LogTailResp carries consecutive log records starting at the request's
// From. NextLSN is the sender's next unassigned LSN, so the receiver's
// lag is NextLSN - 1 - (last applied LSN). SnapshotNeeded reports that
// the log has been trimmed past From: the receiver must restart with a
// snapshot. Epoch is the sender's membership epoch.
type LogTailResp struct {
	Status         Status
	Err            string
	Epoch          uint64
	NextLSN        uint64
	SnapshotNeeded bool
	Records        []ReplRecord
}

// AppendTo implements Message.
func (m LogTailResp) AppendTo(buf []byte) []byte {
	e := Encoder{buf: buf}
	e.status(m.Status)
	e.Str(m.Err)
	e.U64(m.Epoch)
	e.U64(m.NextLSN)
	e.Bool(m.SnapshotNeeded)
	e.ReplRecords(m.Records)
	return e.buf
}

// DecodeInto deserializes into m, reusing m.Records' capacity — the
// steady-state decode of the catch-up pull loop allocates nothing
// (record keys and values are borrowed views into b, see Decoder.Blob).
// All fields are overwritten.
func (m *LogTailResp) DecodeInto(b []byte) error {
	d := NewDecoder(b)
	m.Status = d.status()
	m.Err = d.Str()
	m.Epoch = d.U64()
	m.NextLSN = d.U64()
	m.SnapshotNeeded = d.Bool()
	m.Records = d.replRecordsInto(m.Records)
	return d.Err()
}

// DecodeLogTailResp deserializes a LogTailResp. Record keys and values
// are borrowed views into b.
func DecodeLogTailResp(b []byte) (LogTailResp, error) {
	var m LogTailResp
	err := m.DecodeInto(b)
	return m, err
}
