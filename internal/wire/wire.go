// Package wire defines the message protocol between transaction
// coordinators (clients) and storage servers in the distributed MVTL
// algorithm (§7/§H, Algorithms 11-13), with a compact hand-rolled binary
// codec (the paper's implementation used Apache Thrift; we substitute a
// dependency-free framed protocol with the same request/response shapes).
//
// Every frame is length-prefixed and carries a request id so that many
// outstanding requests can share one connection: server-side handlers may
// block on locks, and responses return out of order.
//
// # Frame layout
//
// A frame is a 13-byte header followed by the message body:
//
//	offset  size  field
//	0       4     length (little endian; counts id+type+body = 9+len(body))
//	4       8     correlation id
//	12      1     message type
//	13      n     body (the message's append-encoding)
//
// # Buffer ownership
//
// The frame path is allocation-free in steady state: frames live in
// pooled FrameBuf buffers, messages append-encode directly into them
// (Message.AppendTo), and decoders parse in place over a borrowed view
// of the frame body. The ownership rules:
//
//   - GetFrameBuf hands out a pooled buffer; Release returns it. Every
//     buffer has exactly one owner at a time.
//   - transport.Conn.Send takes ownership of the buffer it is passed —
//     even on error — and releases it once the bytes are on the wire
//     (TCP) or hands it to the receiving end (the in-memory transport
//     delivers the very same buffer, copy-free).
//   - transport.Conn.Recv returns an owned buffer; the receiver must
//     Release it when done.
//   - Decoded messages BORROW the frame body: every []byte field (a
//     Decoder.Blob result) is a view into the buffer it was decoded
//     from. A decoded value that outlives the buffer — a pending write
//     recorded in server state, a read result returned to the
//     application — must be copied out (bytes.Clone) before Release.
//     Strings and timestamp sets are materialized by the decoder and
//     are always safe to keep.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// MsgType identifies the message kind of a frame.
type MsgType uint8

// Request and response message types.
const (
	TReadLockReq MsgType = iota + 1
	TReadLockResp
	TWriteLockReq
	TWriteLockResp
	TFreezeWriteReq
	TFreezeWriteResp
	TFreezeReadReq
	TFreezeReadResp
	TReleaseReq
	TReleaseResp
	TDecideReq
	TDecideResp
	TPurgeReq
	TPurgeResp
	TStatsReq
	TStatsResp
	// Batched footprint messages (see batch.go): one frame per server
	// carries a transaction's whole share of the footprint.
	TWriteLockBatchReq
	TWriteLockBatchResp
	TFreezeBatchReq
	TFreezeBatchResp
	TReleaseBatchReq
	TReleaseBatchResp
	// Cross-server deadlock detection: coordinators poll a server's
	// local wait-for edges (TWaitGraphReq has an empty body) and abort
	// the victim of a confirmed global cycle via TVictimAbortReq.
	TWaitGraphReq
	TWaitGraphResp
	TVictimAbortReq
	TVictimAbortResp
	// Batched read path (see batch.go): one frame fetches a
	// transaction's whole per-server share of a static read set, so a
	// multi-key read costs O(servers) round trips instead of O(keys).
	TReadLockBatchReq
	TReadLockBatchResp
	// Bulk-transfer family (see repl.go): chunked snapshot and
	// replication-log tail streaming, used by catching-up replicas and
	// warm standbys to mirror a partition head's committed versions.
	TSnapshotChunkReq
	TSnapshotChunkResp
	TLogTailReq
	TLogTailResp
)

// MaxFrameSize bounds a frame to keep a malformed peer from forcing a
// huge allocation.
const MaxFrameSize = 16 << 20

// headerSize is the fixed frame header: 4-byte length prefix, 8-byte
// correlation id, 1-byte message type.
const headerSize = 4 + 8 + 1

// maxPooledBody caps the body capacity a recycled buffer may retain, so
// one oversized frame does not pin its allocation in the pool forever.
const maxPooledBody = 64 << 10

// Message is anything that can append its wire encoding to a buffer —
// the codec convention of this package: encoders never allocate their
// own output, they extend the (pooled) buffer they are given.
type Message interface {
	// AppendTo appends the message's encoding to buf and returns the
	// extended buffer, like append.
	AppendTo(buf []byte) []byte
}

// Raw is a pre-encoded message body (used by tests and generic
// forwarding); AppendTo copies it verbatim.
type Raw []byte

// AppendTo implements Message.
func (m Raw) AppendTo(buf []byte) []byte { return append(buf, m...) }

// FrameBuf is a pooled buffer holding one frame: the fixed header and
// the append-encoded message body. The zero value is usable, but hot
// paths obtain buffers from GetFrameBuf and return them with Release;
// see the package comment for the ownership rules.
type FrameBuf struct {
	hdr  [headerSize]byte
	body []byte
	// vec and storage back vectored writes: header and body go to the
	// kernel as one writev, never coalescing into a third buffer.
	// net.Buffers consumes the slice it writes, so vec is rebuilt from
	// storage on every WriteTo without allocating.
	vec     net.Buffers
	storage [2][]byte
}

var framePool = sync.Pool{New: func() any { return new(FrameBuf) }}

// GetFrameBuf returns a frame buffer from the pool.
func GetFrameBuf() *FrameBuf { return framePool.Get().(*FrameBuf) }

// Release returns the buffer to the pool. It is a no-op on nil, so
// error paths can release unconditionally. The caller must not touch
// the buffer — or anything decoded from it — afterwards.
func (fb *FrameBuf) Release() {
	if fb == nil {
		return
	}
	if cap(fb.body) > maxPooledBody {
		fb.body = nil
	} else {
		fb.body = fb.body[:0]
	}
	framePool.Put(fb)
}

// ID returns the frame's correlation id.
func (fb *FrameBuf) ID() uint64 { return binary.LittleEndian.Uint64(fb.hdr[4:12]) }

// Type returns the frame's message type.
func (fb *FrameBuf) Type() MsgType { return MsgType(fb.hdr[12]) }

// Body returns the encoded message body. The view is only valid until
// the buffer is released or re-encoded.
func (fb *FrameBuf) Body() []byte { return fb.body }

// WireLen returns the frame's size on the wire (header plus body).
func (fb *FrameBuf) WireLen() int { return headerSize + len(fb.body) }

// SetFrame encodes m (nil for an empty body, e.g. TStatsReq) as the
// frame's body — reusing the buffer's capacity — and fills the header.
func (fb *FrameBuf) SetFrame(id uint64, t MsgType, m Message) error {
	fb.body = fb.body[:0]
	if m != nil {
		fb.body = m.AppendTo(fb.body)
	}
	// The length field counts id+type+body and must itself pass the
	// receiver's n <= MaxFrameSize check, so the body allowance is the
	// header's id+type share smaller — without this a sender-legal
	// frame would tear down the connection at the receiver.
	if len(fb.body) > MaxFrameSize-(headerSize-4) {
		return fmt.Errorf("wire: frame body %d exceeds limit", len(fb.body))
	}
	binary.LittleEndian.PutUint32(fb.hdr[0:4], uint32(headerSize-4+len(fb.body)))
	binary.LittleEndian.PutUint64(fb.hdr[4:12], id)
	fb.hdr[12] = byte(t)
	return nil
}

// WriteFrame writes the frame to w. Header and body are handed to the
// kernel as one vectored write on net.Conn writers (a single writev
// syscall, no coalescing copy); other writers receive two Write calls.
func WriteFrame(w io.Writer, fb *FrameBuf) error {
	fb.storage[0], fb.storage[1] = fb.hdr[:], fb.body
	fb.vec = fb.storage[:]
	_, err := fb.vec.WriteTo(w)
	fb.storage[0], fb.storage[1] = nil, nil
	return err
}

// WriteFrames writes every frame in fbs back to back as one vectored
// write: each frame contributes its header and body views, so on
// net.Conn writers a whole batch reaches the kernel as a single writev
// (the runtime splits batches beyond the iovec limit). The bytes are
// identical to len(fbs) sequential WriteFrame calls — batching is
// invisible to the receiver. scratch is the caller's reusable iovec
// backing (nil is fine); the zeroed slice is returned for the next
// call, so steady-state batch writes allocate nothing. WriteFrames does
// not release the frames; the caller (the transport) still owns them.
func WriteFrames(w io.Writer, fbs []*FrameBuf, scratch net.Buffers) (net.Buffers, error) {
	vec := scratch[:0]
	for _, fb := range fbs {
		vec = append(vec, fb.hdr[:], fb.body)
	}
	bufs := vec // WriteTo consumes bufs; vec keeps the backing array
	_, err := bufs.WriteTo(w)
	for i := range vec {
		vec[i] = nil
	}
	return vec[:0], err
}

// ReleaseAll releases every frame in fbs and nils the entries, so a
// reused batch slice cannot leak stale references to repooled buffers.
// Nil entries are skipped.
func ReleaseAll(fbs []*FrameBuf) {
	for i, fb := range fbs {
		fb.Release()
		fbs[i] = nil
	}
}

// ReadFrame reads one frame from r into fb, reusing fb's capacity. On
// error fb's contents are undefined; the caller still owns it.
func ReadFrame(r io.Reader, fb *FrameBuf) error {
	if _, err := io.ReadFull(r, fb.hdr[0:4]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(fb.hdr[0:4])
	if n < headerSize-4 || n > MaxFrameSize {
		return fmt.Errorf("wire: bad frame length %d", n)
	}
	if _, err := io.ReadFull(r, fb.hdr[4:]); err != nil {
		return noEOF(err)
	}
	body := int(n) - (headerSize - 4)
	if cap(fb.body) < body {
		fb.body = make([]byte, body)
	} else {
		fb.body = fb.body[:body]
	}
	if _, err := io.ReadFull(r, fb.body); err != nil {
		return noEOF(err)
	}
	return nil
}

// noEOF turns a clean EOF mid-frame into ErrUnexpectedEOF: once the
// length prefix has been read, running out of bytes is a truncation.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- encode/decode helpers -------------------------------------------------

// Encoder appends primitive values to a buffer. Construct it over the
// destination buffer (Encoder{buf: dst}) and read the result from buf —
// message AppendTo methods are thin sequences of Encoder appends.
type Encoder struct{ buf []byte }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// I32 appends an int32.
func (e *Encoder) I32(v int32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v)) }

// Bool appends a bool.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Blob appends a length-prefixed byte slice; nil round-trips as nil.
func (e *Encoder) Blob(v []byte) {
	if v == nil {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.MaxUint32)
		return
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(v string) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// StrSlice appends a length-prefixed sequence of strings.
func (e *Encoder) StrSlice(v []string) {
	e.I32(int32(len(v)))
	for _, s := range v {
		e.Str(s)
	}
}

// status appends a status byte.
func (e *Encoder) status(s Status) { e.buf = append(e.buf, byte(s)) }

// TS appends a timestamp.
func (e *Encoder) TS(t timestamp.Timestamp) {
	e.I64(t.Time)
	e.I32(t.Proc)
}

// Interval appends an interval.
func (e *Encoder) Interval(iv timestamp.Interval) {
	e.TS(iv.Lo)
	e.TS(iv.Hi)
}

// Set appends an interval set.
func (e *Encoder) Set(s timestamp.Set) {
	n := s.NumIntervals()
	e.I32(int32(n))
	for i := 0; i < n; i++ {
		e.Interval(s.At(i))
	}
}

// ErrTruncated reports a message shorter than its schema.
var ErrTruncated = errors.New("wire: truncated message")

// Decoder consumes primitive values from a buffer, in place: it never
// copies the buffer, and Blob results are borrowed views into it (see
// the package comment for the ownership rules).
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = ErrTruncated
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// U64 consumes a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 consumes an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// I32 consumes an int32.
func (d *Decoder) I32() int32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b))
}

// Bool consumes a bool.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// Blob consumes a length-prefixed byte slice. The result is a BORROWED
// view into the decoded buffer, valid only as long as the buffer: a
// blob that escapes the frame's lifetime must be copied out
// (bytes.Clone) by the caller.
func (d *Decoder) Blob() []byte {
	b := d.take(4)
	if b == nil {
		return nil
	}
	n := binary.LittleEndian.Uint32(b)
	if n == math.MaxUint32 {
		return nil
	}
	if n > MaxFrameSize {
		d.err = fmt.Errorf("wire: blob length %d too large", n)
		return nil
	}
	return d.take(int(n))
}

// Str consumes a length-prefixed string. Unlike Blob the result is an
// owned copy (string conversion), safe to keep.
func (d *Decoder) Str() string { return string(d.Blob()) }

// StrSlice consumes a length-prefixed sequence of strings.
func (d *Decoder) StrSlice() []string {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.Str())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// status consumes a status byte.
func (d *Decoder) status() Status {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return Status(b[0])
}

// TS consumes a timestamp.
func (d *Decoder) TS() timestamp.Timestamp {
	t := d.I64()
	p := d.I32()
	return timestamp.New(t, p)
}

// Interval consumes an interval.
func (d *Decoder) Interval() timestamp.Interval {
	lo := d.TS()
	hi := d.TS()
	return timestamp.Span(lo, hi)
}

// Set consumes an interval set. The result is owned (materialized into
// the set's own storage), safe to keep.
func (d *Decoder) Set() timestamp.Set {
	n := d.I32()
	// An encoded interval is 24 bytes, so a valid count can never
	// exceed the remaining buffer: reject early instead of spinning a
	// huge loop over an already-errored decoder.
	if n < 0 || int(n) > len(d.buf)/24 {
		if d.err == nil {
			d.err = fmt.Errorf("wire: set length %d invalid", n)
		}
		return timestamp.Set{}
	}
	var s timestamp.Set
	for i := int32(0); i < n && d.err == nil; i++ {
		s.AddInPlace(d.Interval())
	}
	return s
}
