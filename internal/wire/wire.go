// Package wire defines the message protocol between transaction
// coordinators (clients) and storage servers in the distributed MVTL
// algorithm (§7/§H, Algorithms 11-13), with a compact hand-rolled binary
// codec (the paper's implementation used Apache Thrift; we substitute a
// dependency-free framed protocol with the same request/response shapes).
//
// Every frame is length-prefixed and carries a request id so that many
// outstanding requests can share one connection: server-side handlers may
// block on locks, and responses return out of order.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// MsgType identifies the message kind of a frame.
type MsgType uint8

// Request and response message types.
const (
	TReadLockReq MsgType = iota + 1
	TReadLockResp
	TWriteLockReq
	TWriteLockResp
	TFreezeWriteReq
	TFreezeWriteResp
	TFreezeReadReq
	TFreezeReadResp
	TReleaseReq
	TReleaseResp
	TDecideReq
	TDecideResp
	TPurgeReq
	TPurgeResp
	TStatsReq
	TStatsResp
	// Batched footprint messages (see batch.go): one frame per server
	// carries a transaction's whole share of the footprint.
	TWriteLockBatchReq
	TWriteLockBatchResp
	TFreezeBatchReq
	TFreezeBatchResp
	TReleaseBatchReq
	TReleaseBatchResp
	// Cross-server deadlock detection: coordinators poll a server's
	// local wait-for edges (TWaitGraphReq has an empty body) and abort
	// the victim of a confirmed global cycle via TVictimAbortReq.
	TWaitGraphReq
	TWaitGraphResp
	TVictimAbortReq
	TVictimAbortResp
	// Batched read path (see batch.go): one frame fetches a
	// transaction's whole per-server share of a static read set, so a
	// multi-key read costs O(servers) round trips instead of O(keys).
	TReadLockBatchReq
	TReadLockBatchResp
)

// MaxFrameSize bounds a frame to keep a malformed peer from forcing a
// huge allocation.
const MaxFrameSize = 16 << 20

// Frame is the unit of transmission.
type Frame struct {
	// ID correlates a response with its request.
	ID uint64
	// Type is the message kind of Body.
	Type MsgType
	// Body is the encoded message.
	Body []byte
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Body) > MaxFrameSize {
		return fmt.Errorf("wire: frame body %d exceeds limit", len(f.Body))
	}
	hdr := make([]byte, 4+8+1, 4+8+1+len(f.Body))
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(9+len(f.Body)))
	binary.LittleEndian.PutUint64(hdr[4:12], f.ID)
	hdr[12] = byte(f.Type)
	buf := append(hdr, f.Body...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > MaxFrameSize {
		return Frame{}, fmt.Errorf("wire: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, err
	}
	return Frame{
		ID:   binary.LittleEndian.Uint64(buf[0:8]),
		Type: MsgType(buf[8]),
		Body: buf[9:],
	}, nil
}

// --- encode/decode helpers -------------------------------------------------

// Encoder appends primitive values to a buffer.
type Encoder struct{ buf []byte }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// I32 appends an int32.
func (e *Encoder) I32(v int32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v)) }

// Bool appends a bool.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes appends a length-prefixed byte slice; nil round-trips as nil.
func (e *Encoder) Blob(v []byte) {
	if v == nil {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.MaxUint32)
		return
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(v string) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// StrSlice appends a length-prefixed sequence of strings.
func (e *Encoder) StrSlice(v []string) {
	e.I32(int32(len(v)))
	for _, s := range v {
		e.Str(s)
	}
}

// status appends a status byte.
func (e *Encoder) status(s Status) { e.buf = append(e.buf, byte(s)) }

// TS appends a timestamp.
func (e *Encoder) TS(t timestamp.Timestamp) {
	e.I64(t.Time)
	e.I32(t.Proc)
}

// Interval appends an interval.
func (e *Encoder) Interval(iv timestamp.Interval) {
	e.TS(iv.Lo)
	e.TS(iv.Hi)
}

// Set appends an interval set.
func (e *Encoder) Set(s timestamp.Set) {
	n := s.NumIntervals()
	e.I32(int32(n))
	for i := 0; i < n; i++ {
		e.Interval(s.At(i))
	}
}

// ErrTruncated reports a message shorter than its schema.
var ErrTruncated = errors.New("wire: truncated message")

// Decoder consumes primitive values from a buffer.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = ErrTruncated
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// U64 consumes a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 consumes an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// I32 consumes an int32.
func (d *Decoder) I32() int32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b))
}

// Bool consumes a bool.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// Blob consumes a length-prefixed byte slice.
func (d *Decoder) Blob() []byte {
	b := d.take(4)
	if b == nil {
		return nil
	}
	n := binary.LittleEndian.Uint32(b)
	if n == math.MaxUint32 {
		return nil
	}
	if n > MaxFrameSize {
		d.err = fmt.Errorf("wire: blob length %d too large", n)
		return nil
	}
	v := d.take(int(n))
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

// Str consumes a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Blob()) }

// StrSlice consumes a length-prefixed sequence of strings.
func (d *Decoder) StrSlice() []string {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, d.Str())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// status consumes a status byte.
func (d *Decoder) status() Status {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return Status(b[0])
}

// TS consumes a timestamp.
func (d *Decoder) TS() timestamp.Timestamp {
	t := d.I64()
	p := d.I32()
	return timestamp.New(t, p)
}

// Interval consumes an interval.
func (d *Decoder) Interval() timestamp.Interval {
	lo := d.TS()
	hi := d.TS()
	return timestamp.Span(lo, hi)
}

// Set consumes an interval set.
func (d *Decoder) Set() timestamp.Set {
	n := d.I32()
	if n < 0 || int(n) > MaxFrameSize/17 {
		d.err = fmt.Errorf("wire: set length %d invalid", n)
		return timestamp.Set{}
	}
	var s timestamp.Set
	for i := int32(0); i < n; i++ {
		s.AddInPlace(d.Interval())
	}
	return s
}
