package wire

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// decoderCase names one message decoder for the fuzz dispatch: decode
// must never panic or over-read, whatever the bytes; when it succeeds,
// re-encoding the decoded message must also be safe.
type decoderCase struct {
	name   string
	decode func(b []byte) (Message, error)
}

// asMsg adapts a typed decoder to the generic shape.
func asMsg[M Message](f func([]byte) (M, error)) func([]byte) (Message, error) {
	return func(b []byte) (Message, error) { return f(b) }
}

// decoderCases lists every message decoder, in a fixed order so a fuzz
// input's selector byte keeps meaning across runs.
var decoderCases = []decoderCase{
	{"ReadLockReq", asMsg(DecodeReadLockReq)},
	{"ReadLockResp", asMsg(DecodeReadLockResp)},
	{"WriteLockReq", asMsg(DecodeWriteLockReq)},
	{"WriteLockResp", asMsg(DecodeWriteLockResp)},
	{"FreezeWriteReq", asMsg(DecodeFreezeWriteReq)},
	{"FreezeReadReq", asMsg(DecodeFreezeReadReq)},
	{"ReleaseReq", asMsg(DecodeReleaseReq)},
	{"Ack", asMsg(DecodeAck)},
	{"DecideReq", asMsg(DecodeDecideReq)},
	{"DecideResp", asMsg(DecodeDecideResp)},
	{"PurgeReq", asMsg(DecodePurgeReq)},
	{"PurgeResp", asMsg(DecodePurgeResp)},
	{"StatsResp", asMsg(DecodeStatsResp)},
	{"WaitGraphResp", asMsg(DecodeWaitGraphResp)},
	{"VictimAbortReq", asMsg(DecodeVictimAbortReq)},
	{"WriteLockBatchReq", asMsg(DecodeWriteLockBatchReq)},
	{"WriteLockBatchResp", asMsg(DecodeWriteLockBatchResp)},
	{"FreezeBatchReq", asMsg(DecodeFreezeBatchReq)},
	{"FreezeBatchResp", asMsg(DecodeFreezeBatchResp)},
	{"ReleaseBatchReq", asMsg(DecodeReleaseBatchReq)},
	{"ReadLockBatchReq", asMsg(DecodeReadLockBatchReq)},
	{"ReadLockBatchResp", asMsg(DecodeReadLockBatchResp)},
	{"SnapshotChunkReq", asMsg(DecodeSnapshotChunkReq)},
	{"SnapshotChunkResp", asMsg(DecodeSnapshotChunkResp)},
	{"LogTailReq", asMsg(DecodeLogTailReq)},
	{"LogTailResp", asMsg(DecodeLogTailResp)},
}

// exactCopy returns the input in a freshly sized allocation, so any
// decoder read past the input's bounds trips the race/ASAN bounds
// checks instead of silently reading slack capacity.
func exactCopy(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// FuzzDecodeMessages drives every message decoder with arbitrary bytes:
// truncated or corrupt bodies must return an error — never panic, hang,
// or read beyond the buffer (decoded pooled frames would leak another
// frame's bytes otherwise). Successful decodes must survive re-encoding.
// Seeds come from the codec property tests' generators, so every decoder
// starts from valid encodings and the fuzzer mutates from there.
func FuzzDecodeMessages(f *testing.F) {
	names := make([]string, 0, len(codecCases))
	for name := range codecCases {
		names = append(names, name)
	}
	sort.Strings(names)
	r := rand.New(rand.NewSource(0x5eed))
	for _, name := range names {
		gen := codecCases[name]
		for i := 0; i < 4; i++ {
			c := gen(r)
			for which := range decoderCases {
				if decoderCases[which].name == name {
					f.Add(uint8(which), c.enc)
				}
			}
		}
	}
	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		dc := decoderCases[int(which)%len(decoderCases)]
		m, err := dc.decode(exactCopy(data))
		if err != nil {
			return
		}
		// A decoded message must re-encode without panicking (nil is
		// possible only from a decoder bug — none return nil on success).
		if m == nil {
			t.Fatalf("%s: nil message with nil error", dc.name)
		}
		_ = m.AppendTo(nil)
	})
}

// FuzzReadFrame drives the frame reader with arbitrary byte streams: it
// must never panic or over-allocate, any strict truncation must error,
// and an accepted frame must re-emit to exactly the bytes consumed.
func FuzzReadFrame(f *testing.F) {
	// Seeds: valid frames of assorted sizes (including empty bodies),
	// a truncation, and a hostile length prefix.
	r := rand.New(rand.NewSource(0xf00d))
	for i := 0; i < 5; i++ {
		fb := GetFrameBuf()
		body := make([]byte, r.Intn(64))
		r.Read(body)
		if err := fb.SetFrame(r.Uint64(), MsgType(1+r.Intn(30)), Raw(body)); err != nil {
			f.Fatal(err)
		}
		var w sliceWriter
		if err := WriteFrame(&w, fb); err != nil {
			f.Fatal(err)
		}
		fb.Release()
		f.Add(w.b)
		if len(w.b) > 2 {
			f.Add(w.b[:len(w.b)-2])
		}
	}
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fb := GetFrameBuf()
		defer fb.Release()
		r := bytes.NewReader(data)
		if err := ReadFrame(r, fb); err != nil {
			return
		}
		consumed := len(data) - r.Len()
		if got := fb.WireLen(); got != consumed {
			t.Fatalf("frame claims %d wire bytes, reader consumed %d", got, consumed)
		}
		var w sliceWriter
		if err := WriteFrame(&w, fb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w.b, data[:consumed]) {
			t.Fatalf("re-emitted frame differs from consumed bytes")
		}
	})
}
