package wire

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// benchReadResp is a representative hot response: a 16-key batched read
// with 1KB values, i.e. the kind of frame that dominates a read-heavy
// workload at scale.
func benchReadResp(valueSize int) ReadLockBatchResp {
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	resp := ReadLockBatchResp{Status: StatusOK}
	for i := 0; i < 16; i++ {
		resp.Results = append(resp.Results, ReadLockResult{
			Status:    StatusOK,
			VersionTS: timestamp.New(int64(100+i), 1),
			Value:     val,
			Got:       timestamp.Span(timestamp.New(int64(101+i), 1), timestamp.New(5000, 0)),
		})
	}
	return resp
}

// nullWriter swallows writes without retaining them (io.Discard through
// an interface, so the vectored path is exercised like a socket's).
type nullWriter struct{ n int }

func (w *nullWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkFramePathEncodeWrite measures the sender half of the frame
// path: append-encode one batched read response (16 keys, 1KB values)
// into a pooled frame buffer and write it. Steady state must be 0
// allocs/op — CI fails otherwise (the old Encode-then-copy convention
// cost 13 allocs and ~98KB per frame here).
func BenchmarkFramePathEncodeWrite(b *testing.B) {
	resp := benchReadResp(1024)
	fb := GetFrameBuf()
	defer fb.Release()
	w := &nullWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// &resp: boxing the struct value into the Message interface
		// would allocate per call; the pointer is boxed for free.
		if err := fb.SetFrame(uint64(i), TReadLockBatchResp, &resp); err != nil {
			b.Fatal(err)
		}
		if err := WriteFrame(w, fb); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader replays one encoded frame forever.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// encodeBenchFrame renders one frame to raw bytes for the read benches.
func encodeBenchFrame(b *testing.B, t MsgType, m Message) []byte {
	b.Helper()
	fb := GetFrameBuf()
	defer fb.Release()
	if err := fb.SetFrame(7, t, m); err != nil {
		b.Fatal(err)
	}
	var w sliceWriter
	if err := WriteFrame(&w, fb); err != nil {
		b.Fatal(err)
	}
	return w.b
}

// BenchmarkFramePathReadDecode measures the receiver half: read one
// frame into a pooled buffer and decode the batched read response in
// place (values stay borrowed views of the frame body; the results
// slice is reused via DecodeInto). Steady state must be 0 allocs/op —
// the old one-message-one-allocation convention cost 23 allocs and
// ~38KB per frame here.
func BenchmarkFramePathReadDecode(b *testing.B) {
	resp := benchReadResp(1024)
	r := &loopReader{data: encodeBenchFrame(b, TReadLockBatchResp, resp)}
	fb := GetFrameBuf()
	defer fb.Release()
	var out ReadLockBatchResp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ReadFrame(r, fb); err != nil {
			b.Fatal(err)
		}
		if err := out.DecodeInto(fb.Body()); err != nil || len(out.Results) != 16 {
			b.Fatalf("%v %d", err, len(out.Results))
		}
	}
}

// BenchmarkFramePathReadDecodeSingle is the single-key variant: one
// ReadLockResp with a 1KB value per frame, decoded with the plain
// wrapper (no reuse struct needed — the value is a borrowed view and
// nothing else allocates). Steady state must be 0 allocs/op.
func BenchmarkFramePathReadDecodeSingle(b *testing.B) {
	val := make([]byte, 1024)
	resp := ReadLockResp{Status: StatusOK, VersionTS: timestamp.New(100, 1), Value: val, Got: timestamp.Span(timestamp.New(101, 1), timestamp.New(5000, 0))}
	r := &loopReader{data: encodeBenchFrame(b, TReadLockResp, resp)}
	fb := GetFrameBuf()
	defer fb.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ReadFrame(r, fb); err != nil {
			b.Fatal(err)
		}
		out, err := DecodeReadLockResp(fb.Body())
		if err != nil || len(out.Value) != 1024 {
			b.Fatalf("%v %d", err, len(out.Value))
		}
	}
}

// benchLogTailResp is a representative catch-up frame: 32 replicated
// version installs with 1KB values, the shape a standby drains from its
// head in steady state.
func benchLogTailResp(valueSize int) LogTailResp {
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	resp := LogTailResp{Status: StatusOK, Epoch: 3, NextLSN: 1000}
	for i := 0; i < 32; i++ {
		resp.Records = append(resp.Records, ReplRecord{
			LSN:   uint64(900 + i),
			Key:   []byte("user:0000042"),
			TS:    timestamp.New(int64(100+i), 1),
			Value: val,
		})
	}
	return resp
}

// BenchmarkFramePathReplLogTail measures the replica catch-up stream:
// read one log-tail frame (32 records, 1KB values) into a pooled buffer
// and decode it in place (keys and values stay borrowed views; the
// records slice is reused via DecodeInto). Steady state must be 0
// allocs/op — CI gates it with the other FramePath benchmarks.
func BenchmarkFramePathReplLogTail(b *testing.B) {
	resp := benchLogTailResp(1024)
	r := &loopReader{data: encodeBenchFrame(b, TLogTailResp, resp)}
	fb := GetFrameBuf()
	defer fb.Release()
	var out LogTailResp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ReadFrame(r, fb); err != nil {
			b.Fatal(err)
		}
		if err := out.DecodeInto(fb.Body()); err != nil || len(out.Records) != 32 {
			b.Fatalf("%v %d", err, len(out.Records))
		}
	}
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
