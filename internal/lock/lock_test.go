package lock

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func ts(t int64) timestamp.Timestamp              { return timestamp.New(t, 0) }
func iv(lo, hi int64) timestamp.Interval          { return timestamp.Span(ts(lo), ts(hi)) }
func set(ivs ...timestamp.Interval) timestamp.Set { return timestamp.NewSet(ivs...) }

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestReadReadNoConflict(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	r1, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{})
	if err != nil || r1.Got != iv(1, 10) {
		t.Fatalf("r1: %v %v", r1, err)
	}
	r2, err := tbl.AcquireRead(ctx, 2, iv(5, 15), Options{})
	if err != nil || r2.Got != iv(5, 15) {
		t.Fatalf("overlapping reads must both succeed: %v %v", r2, err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteConflictsWithRead(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(5, 10), Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := tbl.AcquireWrite(ctx, 2, set(iv(7, 7)), Options{})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	// outside the read range: fine
	res, err := tbl.AcquireWrite(ctx, 2, set(iv(11, 11)), Options{})
	if err != nil || !res.Got.Contains(ts(11)) {
		t.Fatalf("non-overlapping write should succeed: %v %v", res, err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(3, 6)), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AcquireWrite(ctx, 2, set(iv(6, 9)), Options{}); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
}

func TestSameOwnerNeverConflicts(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{}); err != nil {
		t.Fatal(err)
	}
	// upgrade: same owner writes inside its own read range
	res, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{})
	if err != nil || !res.Got.Contains(ts(5)) {
		t.Fatalf("upgrade failed: %v %v", res, err)
	}
	ro, wo := tbl.Owned(1)
	if !ro.ContainsInterval(iv(1, 10)) {
		t.Fatalf("readOrWrite = %v", ro)
	}
	if !wo.Contains(ts(5)) || wo.Contains(ts(6)) {
		t.Fatalf("writeOnly = %v", wo)
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AcquireRead(ctx, 2, iv(5, 5), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{}); !errors.Is(err, ErrConflict) {
		t.Fatalf("upgrade must be blocked by another reader, got %v", err)
	}
}

func TestReadPartialPrefix(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 9, set(iv(6, 8)), Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Got != timestamp.Span(ts(1), ts(6).Prev()) {
		t.Fatalf("prefix = %v, want [1,5]", res.Got)
	}
	if res.FrozenAt != nil {
		t.Fatalf("conflict was unfrozen, FrozenAt = %v", res.FrozenAt)
	}
}

func TestReadPartialEmptyPrefix(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 9, set(iv(1, 3)), Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := tbl.AcquireRead(ctx, 1, iv(2, 10), Options{Partial: true})
	if err != nil || !res.Got.IsEmpty() {
		t.Fatalf("prefix should be empty: %v %v", res, err)
	}
}

func TestReadReportsFrozenConflict(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 9, set(iv(6, 6)), Options{}); err != nil {
		t.Fatal(err)
	}
	if !tbl.FreezeWriteAt(9, ts(6)) {
		t.Fatal("freeze failed")
	}
	res, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrozenAt == nil || !res.FrozenAt.Contains(ts(6)) {
		t.Fatalf("FrozenAt = %v", res.FrozenAt)
	}
	if res.Got != timestamp.Span(ts(1), ts(6).Prev()) {
		t.Fatalf("prefix = %v", res.Got)
	}
	// all-or-nothing read across the frozen point fails permanently
	_, err = tbl.AcquireRead(ctx, 2, iv(1, 10), Options{})
	if !errors.Is(err, ErrFrozen) {
		t.Fatalf("want ErrFrozen, got %v", err)
	}
}

func TestWritePartialSkipsConflicts(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 9, iv(4, 6), Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := tbl.AcquireWrite(ctx, 1, set(iv(1, 10)), Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	want := timestamp.NewSet(
		timestamp.Span(ts(1), ts(4).Prev()),
		timestamp.Span(ts(6).Next(), ts(10)),
	)
	if !res.Got.Equal(want) {
		t.Fatalf("Got = %v want %v", res.Got, want)
	}
	if !res.Denied.Equal(set(iv(4, 6))) {
		t.Fatalf("Denied = %v", res.Denied)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteExactFrozenFailsPermanently(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 9, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	tbl.FreezeWriteAt(9, ts(5))
	_, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{Wait: true})
	if !errors.Is(err, ErrFrozen) {
		t.Fatalf("want ErrFrozen even in Wait mode, got %v", err)
	}
}

func TestWaitUnblocksOnRelease(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tbl.AcquireWrite(context.Background(), 2, set(iv(5, 5)), Options{Wait: true})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	tbl.ReleaseUnfrozen(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter should acquire after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter did not wake up")
	}
}

func TestWaitUnblocksOnFreeze(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan ReadResult, 1)
	go func() {
		// reader waits on the unfrozen write lock, then sees it frozen
		res, _ := tbl.AcquireRead(context.Background(), 2, iv(3, 9), Options{Wait: true, Partial: true})
		done <- res
	}()
	time.Sleep(10 * time.Millisecond)
	tbl.FreezeWriteAt(1, ts(5))
	select {
	case res := <-done:
		if res.FrozenAt == nil {
			t.Fatalf("reader should report frozen conflict, got %+v", res)
		}
		if res.Got != timestamp.Span(ts(3), ts(5).Prev()) {
			t.Fatalf("reader prefix = %v", res.Got)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not wake up")
	}
}

func TestWaitHonorsContext(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.AcquireWrite(context.Background(), 1, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := tbl.AcquireWrite(ctxShort(t), 2, set(iv(5, 5)), Options{Wait: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestFreezeWriteSplitsInterval(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(1, 10)), Options{}); err != nil {
		t.Fatal(err)
	}
	if !tbl.FreezeWriteAt(1, ts(5)) {
		t.Fatal("freeze failed")
	}
	tbl.ReleaseUnfrozen(1) // drops [1,4] and [6,10], keeps frozen [5,5]
	snap := tbl.Snapshot()
	if len(snap) != 1 || !snap[0].Frozen || snap[0].Interval != iv(5, 5) {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestFreezeWriteAtMissingReturnsFalse(t *testing.T) {
	tbl := NewTable()
	if tbl.FreezeWriteAt(1, ts(5)) {
		t.Fatal("freeze of unheld lock must return false")
	}
}

func TestFreezeReadIn(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{}); err != nil {
		t.Fatal(err)
	}
	tbl.FreezeReadIn(1, iv(3, 6))
	tbl.ReleaseUnfrozen(1)
	snap := tbl.Snapshot()
	if len(snap) != 1 || snap[0].Interval != iv(3, 6) || !snap[0].Frozen || snap[0].Mode != ModeRead {
		t.Fatalf("snapshot = %+v", snap)
	}
	// frozen read locks still block writers permanently
	_, err := tbl.AcquireWrite(ctx, 2, set(iv(4, 4)), Options{})
	if !errors.Is(err, ErrFrozen) {
		t.Fatalf("want ErrFrozen, got %v", err)
	}
}

func TestReleaseReadIn(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(1, 10), Options{}); err != nil {
		t.Fatal(err)
	}
	tbl.ReleaseReadIn(1, iv(4, 6))
	ro, _ := tbl.Owned(1)
	want := timestamp.NewSet(
		timestamp.Span(ts(1), ts(4).Prev()),
		timestamp.Span(ts(6).Next(), ts(10)),
	)
	if !ro.Equal(want) {
		t.Fatalf("owned = %v want %v", ro, want)
	}
	// released middle is writable by others now
	if _, err := tbl.AcquireWrite(ctx, 2, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWritesKeepsReads(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(1, 5), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(8, 9)), Options{}); err != nil {
		t.Fatal(err)
	}
	tbl.ReleaseWrites(1)
	ro, wo := tbl.Owned(1)
	if !wo.IsEmpty() {
		t.Fatalf("writes not released: %v", wo)
	}
	if !ro.Equal(set(iv(1, 5))) {
		t.Fatalf("reads lost: %v", ro)
	}
}

func TestIntervalCompression(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	// many overlapping acquisitions by the same owner collapse to one entry
	for i := int64(0); i < 50; i++ {
		if _, err := tbl.AcquireRead(ctx, 1, iv(i, i+1), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.Stats().Entries; got != 1 {
		t.Fatalf("expected interval compression to 1 entry, got %d", got)
	}
}

func TestPurgeFrozenBelow(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	for _, p := range []int64{2, 5, 9} {
		if _, err := tbl.AcquireWrite(ctx, Owner(p), set(iv(p, p)), Options{}); err != nil {
			t.Fatal(err)
		}
		tbl.FreezeWriteAt(Owner(p), ts(p))
	}
	if n := tbl.PurgeFrozenBelow(ts(6)); n != 2 {
		t.Fatalf("purged %d, want 2", n)
	}
	if s := tbl.Stats(); s.Entries != 1 || s.Frozen != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOwnedEmptyForStranger(t *testing.T) {
	tbl := NewTable()
	ro, wo := tbl.Owned(42)
	if !ro.IsEmpty() || !wo.IsEmpty() {
		t.Fatal("stranger owns nothing")
	}
}

func TestEmptyRequests(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	r, err := tbl.AcquireRead(ctx, 1, timestamp.Interval{Lo: ts(5), Hi: ts(1)}, Options{})
	if err != nil || !r.Got.IsEmpty() {
		t.Fatalf("empty read request: %v %v", r, err)
	}
	w, err := tbl.AcquireWrite(ctx, 1, timestamp.Set{}, Options{})
	if err != nil || !w.Got.IsEmpty() {
		t.Fatalf("empty write request: %v %v", w, err)
	}
	if tbl.Stats().Entries != 0 {
		t.Fatal("no entries expected")
	}
}

// TestConcurrentStress hammers one table from many goroutines and checks
// the exclusivity invariant throughout.
func TestConcurrentStress(t *testing.T) {
	tbl := NewTable()
	const goroutines = 8
	const opsPer = 300
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < opsPer; i++ {
				owner := Owner(id*opsPer + i + 1)
				lo := int64(rng.Intn(40))
				hi := lo + int64(rng.Intn(8))
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				if rng.Intn(2) == 0 {
					res, err := tbl.AcquireRead(ctx, owner, iv(lo, hi), Options{Partial: rng.Intn(2) == 0, Wait: rng.Intn(2) == 0})
					if err == nil && rng.Intn(4) == 0 && !res.Got.IsEmpty() {
						tbl.FreezeReadIn(owner, res.Got)
					}
				} else {
					res, err := tbl.AcquireWrite(ctx, owner, set(iv(lo, hi)), Options{Partial: rng.Intn(2) == 0, Wait: rng.Intn(2) == 0})
					if err == nil && rng.Intn(8) == 0 {
						if min, ok := res.Got.Min(); ok {
							tbl.FreezeWriteAt(owner, min)
						}
					}
				}
				cancel()
				if rng.Intn(2) == 0 {
					tbl.ReleaseUnfrozen(owner)
				}
				if i%50 == 0 {
					if err := tbl.Validate(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeRead.String() != "read" || ModeWrite.String() != "write" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}
