// Package lock implements freezable interval locks over the timestamp
// domain — the central data structure of MVTL.
//
// The paper (§4.2) conceptually gives every (key, timestamp) pair its own
// readers-writer lock that can additionally be *frozen*: a frozen lock is
// never released, sealing the fate of the write-once cell Values[k, t].
// A practical implementation must compress this infinite lock state; as
// suggested in §6 we keep, per key, a short list of lock *intervals*, each
// tagged with an owner, a mode and a frozen bit.
//
// Conflict rules (for locks held by different owners):
//
//   - read  vs read:  never conflict;
//   - read  vs write: conflict;
//   - write vs write: conflict.
//
// Locks held by the same owner never conflict with each other, which
// permits read→write upgrades. A frozen conflicting lock is permanent:
// waiting for it is useless, and the acquisition APIs report it
// distinctly so policies can react (for example by re-picking the version
// to read, as MVTO-style policies do).
//
// # Performance model
//
// The entries slice is kept sorted by interval start and augmented with a
// running prefix maximum of interval ends (maxHi, which is monotone, so
// it can be binary searched). Every conflict scan — first conflict,
// conflict partitioning, blocker collection, freeze and targeted release
// — narrows the slice to the candidate index window [first entry whose
// prefix-max end reaches the query, first entry starting past the query)
// in O(log n) and walks only that window: O(log n + k) per scan for k
// candidates, where the previous implementation walked all n entries.
// Structural updates (insert, remove) were already O(n) from the slice
// copy; maintaining maxHi adds a second O(n) pass, leaving their
// complexity unchanged.
//
// Blocked acquisitions park on a per-waiter channel tagged with the
// intervals the waiter is blocked on. A release, freeze or purge wakes
// only the waiters whose tagged intervals overlap the state that
// actually changed — O(w) overlap checks for w parked waiters — where
// the previous implementation closed a table-wide broadcast channel,
// waking all w waiters on every state change so that each of them
// rescanned the table (O(w·n) work and w spurious scheduler round trips
// per release).
package lock

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Owner identifies a lock holder (a transaction).
type Owner uint64

// Mode distinguishes read locks from write locks.
type Mode uint8

// Lock modes.
const (
	ModeRead Mode = iota + 1
	ModeWrite
)

// String renders the mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Sentinel errors returned by the acquisition methods.
var (
	// ErrConflict reports that an unfrozen conflicting lock blocked an
	// all-or-nothing, no-wait acquisition. Retrying later may succeed.
	ErrConflict = errors.New("lock: conflicting lock held")
	// ErrFrozen reports that a frozen conflicting lock makes the
	// requested acquisition permanently impossible.
	ErrFrozen = errors.New("lock: conflicting frozen lock")
)

// Options control how an acquisition behaves when it meets conflicts.
type Options struct {
	// Wait blocks on conflicting locks that are not frozen, resuming
	// when they are released or frozen. The context bounds the wait
	// (deadlock handling by timeout, §4.3).
	Wait bool
	// Partial accepts acquiring only part of the request: for reads,
	// the maximal contiguous prefix; for writes, every requested
	// timestamp not covered by a conflict.
	Partial bool
}

// ReadResult reports the outcome of AcquireRead.
type ReadResult struct {
	// Got is the contiguous interval of read locks acquired, starting
	// at the requested lower bound. It may be empty.
	Got timestamp.Interval
	// FrozenAt is the first conflicting frozen write interval met while
	// scanning upward, if any: it signals that a committed version
	// exists inside the requested range, so MVTO-style policies should
	// re-pick the version to read.
	FrozenAt *timestamp.Interval
}

// WriteResult reports the outcome of AcquireWrite.
type WriteResult struct {
	// Got is the set of write-locked timestamps acquired (it may have
	// holes when Partial is set). When nothing was denied it may share
	// storage with the request set, so callers must not mutate it in
	// place.
	Got timestamp.Set
	// Denied is the subset of the request that conflicts prevented,
	// intersected with the request.
	Denied timestamp.Set
}

// entry is one interval-compressed lock record.
type entry struct {
	iv     timestamp.Interval
	owner  Owner
	mode   Mode
	frozen bool
}

// waiter is one parked acquisition: spans are the intervals it is
// blocked on, and done receives one signal (exactly once, from the
// waker that also unlinks the waiter from the table) when overlapping
// lock state is released or frozen. owner and mode identify the parked
// request so that later-inserted conflicting locks can extend the
// waiter's wait-for edges. Waiters are pooled per table: done is a
// level-triggered wake slot that is drained, never torn down, so the
// whole struct (including its spans storage) is reused and the blocking
// path does not allocate once the pool is warm. On a virtual timeline
// the park marks the waiter quiescent, so lock-wait timeouts resolve by
// timeline jump instead of wall clock.
type waiter struct {
	owner Owner
	mode  Mode
	spans []timestamp.Interval
	done  clock.Waiter
	// linked is true while the waiter sits in Table.waiters (guarded by
	// the table mutex). A waiter woken by WaitGraph.Abort is signalled
	// without being unlinked, so the wake path checks this instead of
	// scanning the waiter list unconditionally.
	linked bool
}

// overlaps reports whether the waiter is interested in iv.
func (w *waiter) overlaps(iv timestamp.Interval) bool {
	for _, s := range w.spans {
		if s.Overlaps(iv) {
			return true
		}
	}
	return false
}

// Table is the freezable interval lock table for one key. The zero value
// is not ready for use; call NewTable.
type Table struct {
	mu      sync.Mutex
	entries []entry // sorted by iv.Lo
	// maxHi[i] is the maximum iv.Hi over entries[0..i]. It is monotone
	// non-decreasing, so binary search finds the first index whose
	// prefix can still overlap a query interval.
	maxHi []timestamp.Timestamp
	// waiters are the currently parked acquisitions, in no particular
	// order. waitLo/waitHi bound the union of their spans (they may
	// overshoot after waiters leave; they are tightened whenever the
	// list empties), letting releases of untouched ranges skip the
	// waiter scan entirely.
	waiters        []*waiter
	waitLo, waitHi timestamp.Timestamp
	// free is the waiter freelist (capped at maxFreeWaiters); parking
	// reuses pooled waiters instead of allocating one per block.
	free []*waiter
	// blockerScratch is reused by the blocker scans feeding the
	// wait-for graph; it is only touched with mu held, and its contents
	// are consumed before the mutex is dropped.
	blockerScratch []Owner
	// graph, when non-nil, detects wait-for cycles across the tables
	// sharing it; blocked acquisitions fail fast with ErrDeadlock
	// instead of waiting for a timeout.
	graph *WaitGraph
	// key labels this table's edges in the shared wait-for graph, so an
	// exported edge names the key its waiter blocks on (cross-server
	// detectors route victim aborts by it).
	key string
	// timers supplies the timeline waiters park on; nil means
	// SystemTimers (set lazily by getWaiterLocked).
	timers clock.Timers
}

// maxFreeWaiters caps the per-table waiter freelist; more parked
// waiters than this simply fall back to allocating.
const maxFreeWaiters = 64

// NewTable returns an empty lock table without deadlock detection
// (waits are bounded by the caller's context only).
func NewTable() *Table {
	return &Table{}
}

// NewTableDetected returns a lock table participating in the shared
// wait-for graph g.
func NewTableDetected(g *WaitGraph) *Table {
	return &Table{graph: g}
}

// NewTableKeyed returns a lock table participating in the shared
// wait-for graph g whose edges are labelled with key, so graph
// snapshots exported for cross-server deadlock detection name the key
// each waiter blocks on.
func NewTableKeyed(g *WaitGraph, key string) *Table {
	return &Table{graph: g, key: key}
}

// NewTableKeyedTimers is NewTableKeyed on an explicit timeline: parked
// waiters use the timeline's wake slots, so the fault bed can expire
// lock waits by virtual-time jump. A nil t means SystemTimers.
func NewTableKeyedTimers(g *WaitGraph, key string, t clock.Timers) *Table {
	return &Table{graph: g, key: key, timers: t}
}

// AcquireRead acquires read locks on a contiguous interval starting at
// iv.Lo, following the semantics of the paper's read-locks step (§4.3):
// the interval must begin immediately after the version being read, so a
// partial acquisition keeps the *prefix* before the first conflict.
func (t *Table) AcquireRead(ctx context.Context, owner Owner, iv timestamp.Interval, opts Options) (ReadResult, error) {
	if iv.IsEmpty() {
		return ReadResult{Got: timestamp.Empty}, nil
	}
	var spanBuf [1]timestamp.Interval
	var spans []timestamp.Interval
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		conf, ok := t.firstConflictLocked(owner, iv, ModeRead)
		if !ok {
			t.insertLocked(entry{iv: iv, owner: owner, mode: ModeRead})
			return ReadResult{Got: iv}, nil
		}
		if conf.frozen {
			frozenIv := conf.iv
			res := ReadResult{FrozenAt: &frozenIv}
			if !opts.Partial {
				return res, fmt.Errorf("read %v blocked at %v: %w", iv, conf.iv, ErrFrozen)
			}
			res.Got = prefixBefore(iv, conf.iv)
			if !res.Got.IsEmpty() {
				t.insertLocked(entry{iv: res.Got, owner: owner, mode: ModeRead})
			}
			return res, nil
		}
		// Unfrozen conflict.
		if opts.Wait {
			if spans == nil {
				spanBuf[0] = iv
				spans = spanBuf[:]
			}
			t.blockerScratch = t.blockersForReadLocked(owner, iv, t.blockerScratch[:0])
			if err := t.blockLocked(ctx, owner, ModeRead, t.blockerScratch, spans); err != nil {
				return ReadResult{}, err
			}
			continue
		}
		if opts.Partial {
			res := ReadResult{Got: prefixBefore(iv, conf.iv)}
			if !res.Got.IsEmpty() {
				t.insertLocked(entry{iv: res.Got, owner: owner, mode: ModeRead})
			}
			return res, nil
		}
		return ReadResult{}, fmt.Errorf("read %v blocked at %v: %w", iv, conf.iv, ErrConflict)
	}
}

// AcquireWrite acquires write locks on the requested set of timestamps.
// Unlike reads, writes have no contiguity requirement (§3): with Partial
// set, every requested timestamp not blocked by a conflict is acquired.
func (t *Table) AcquireWrite(ctx context.Context, owner Owner, req timestamp.Set, opts Options) (WriteResult, error) {
	if req.IsEmpty() {
		return WriteResult{}, nil
	}
	var spanBuf [4]timestamp.Interval
	var spans []timestamp.Interval
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		frozenConf, unfrozenConf := t.conflictSetsLocked(owner, req, ModeWrite)
		if !unfrozenConf.IsEmpty() && opts.Wait {
			if spans == nil {
				spans = req.AppendIntervals(spanBuf[:0])
			}
			t.blockerScratch = t.blockersForWriteLocked(owner, req, t.blockerScratch[:0])
			if err := t.blockLocked(ctx, owner, ModeWrite, t.blockerScratch, spans); err != nil {
				return WriteResult{}, err
			}
			continue
		}
		denied := frozenConf
		denied.UnionInPlace(unfrozenConf)
		if !denied.IsEmpty() && !opts.Partial {
			err := ErrConflict
			if !frozenConf.IsEmpty() {
				err = ErrFrozen
			}
			return WriteResult{Denied: denied}, fmt.Errorf("write %v blocked by %v: %w", req, denied, err)
		}
		got := req
		got.SubtractInto(denied)
		for i := 0; i < got.NumIntervals(); i++ {
			t.insertLocked(entry{iv: got.At(i), owner: owner, mode: ModeWrite})
		}
		return WriteResult{Got: got, Denied: denied}, nil
	}
}

// FreezeWriteAt freezes the owner's write lock at exactly ts, splitting
// the covering interval if needed. It reports whether a write lock of the
// owner covered ts. A commit freezes its write lock on the chosen commit
// timestamp before exposing the value (§4.3, Alg. 1 line 18).
func (t *Table) FreezeWriteAt(owner Owner, ts timestamp.Timestamp) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	point := timestamp.Point(ts)
	lo, hi := t.overlapRangeLocked(point)
	for i := lo; i < hi; i++ {
		e := t.entries[i]
		if e.owner != owner || e.mode != ModeWrite || !e.iv.Contains(ts) {
			continue
		}
		if e.frozen {
			return true
		}
		rest := e.iv.Subtract(point)
		t.removeAtLocked(i)
		t.insertLocked(entry{iv: point, owner: owner, mode: ModeWrite, frozen: true})
		for _, r := range rest {
			t.insertLocked(entry{iv: r, owner: owner, mode: ModeWrite})
		}
		// Only the frozen point changed state; waiters blocked on the
		// unfrozen remainder stay blocked.
		t.wakeOverlappingLocked(point)
		return true
	}
	return false
}

// FreezeReadIn freezes the portions of the owner's read locks inside iv,
// as done by garbage collection after commit (Alg. 1 line 25).
func (t *Table) FreezeReadIn(owner Owner, iv timestamp.Interval) {
	if iv.IsEmpty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lo, hi := t.overlapRangeLocked(iv)
	var matched []entry
	for i := hi - 1; i >= lo; i-- {
		e := t.entries[i]
		if e.owner != owner || e.mode != ModeRead || e.frozen || !e.iv.Overlaps(iv) {
			continue
		}
		matched = append(matched, e)
		t.removeAtLocked(i)
	}
	for _, e := range matched {
		frozenPart := e.iv.Intersect(iv)
		t.insertLocked(entry{iv: frozenPart, owner: owner, mode: ModeRead, frozen: true})
		for _, r := range e.iv.Subtract(frozenPart) {
			t.insertLocked(entry{iv: r, owner: owner, mode: ModeRead})
		}
		// Writers parked on the now-frozen range must observe the
		// permanent denial.
		t.wakeOverlappingLocked(frozenPart)
	}
}

// ReleaseUnfrozen releases every unfrozen lock of the owner, in any mode
// (Alg. 1 line 26).
func (t *Table) ReleaseUnfrozen(owner Owner) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.releaseWhereLocked(func(e entry) bool {
		return e.owner == owner && !e.frozen
	})
}

// ReleaseWrites releases the owner's unfrozen write locks, used when a
// candidate commit timestamp fails and the policy moves on (Alg. 3
// line 22).
func (t *Table) ReleaseWrites(owner Owner) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.releaseWhereLocked(func(e entry) bool {
		return e.owner == owner && e.mode == ModeWrite && !e.frozen
	})
}

// ReleaseReadIn releases the portions of the owner's unfrozen read locks
// inside iv, used when a read retries after meeting a frozen write lock
// ("release read-locks acquired above", Alg. 3/4/8).
func (t *Table) ReleaseReadIn(owner Owner, iv timestamp.Interval) {
	if iv.IsEmpty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lo, hi := t.overlapRangeLocked(iv)
	var matched []entry
	for i := hi - 1; i >= lo; i-- {
		e := t.entries[i]
		if e.owner != owner || e.mode != ModeRead || e.frozen || !e.iv.Overlaps(iv) {
			continue
		}
		matched = append(matched, e)
		t.removeAtLocked(i)
	}
	for _, e := range matched {
		for _, r := range e.iv.Subtract(iv) {
			t.insertLocked(entry{iv: r, owner: owner, mode: ModeRead})
		}
		t.wakeOverlappingLocked(e.iv.Intersect(iv))
	}
}

// Owned returns the timestamps the owner currently holds: all locked
// timestamps (read or write) and the write-locked subset. The generic
// commit step intersects these across keys (Alg. 1 line 13).
func (t *Table) Owned(owner Owner) (readOrWrite, writeOnly timestamp.Set) {
	t.OwnedInto(owner, &readOrWrite, &writeOnly)
	return readOrWrite, writeOnly
}

// OwnedInto is Owned rebuilding the snapshots into caller-provided
// scratch sets, which are reset first. A commit loop threading the same
// pair through every key of its footprint reuses the sets' spilled
// storage and stops allocating once they have grown.
func (t *Table) OwnedInto(owner Owner, readOrWrite, writeOnly *timestamp.Set) {
	readOrWrite.Reset()
	writeOnly.Reset()
	t.mu.Lock()
	defer t.mu.Unlock()
	// Entries are sorted by start, so the in-place adds stay on the
	// cheap append/extend path.
	for i := range t.entries {
		e := &t.entries[i]
		if e.owner != owner {
			continue
		}
		readOrWrite.AddInPlace(e.iv)
		if e.mode == ModeWrite {
			writeOnly.AddInPlace(e.iv)
		}
	}
}

// PurgeFrozenBelow drops frozen entries that lie entirely below ts,
// mirroring version purging (§6): once the versions below a bound are
// discarded, their lock state may be discarded too. It returns the number
// of entries removed.
//
// No waiters are woken: acquisitions only ever park on *unfrozen*
// conflicts, and purging removes only frozen records, so no parked
// acquisition's outcome can change.
func (t *Table) PurgeFrozenBelow(ts timestamp.Timestamp) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.entries[:0]
	removed := 0
	removedAt := -1
	for i, e := range t.entries {
		if e.frozen && e.iv.Hi.Before(ts) {
			if removedAt < 0 {
				removedAt = i
			}
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	if removedAt >= 0 {
		t.fixMaxHiFrom(removedAt)
	}
	return removed
}

// Stats summarizes the table's lock state size.
type Stats struct {
	// Entries is the number of interval-compressed lock records.
	Entries int
	// Frozen is how many of them are frozen.
	Frozen int
}

// Stats returns the current state-size statistics.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{Entries: len(t.entries)}
	for _, e := range t.entries {
		if e.frozen {
			s.Frozen++
		}
	}
	return s
}

// EntryInfo is an exported view of one lock record, for tests and
// diagnostics.
type EntryInfo struct {
	Interval timestamp.Interval
	Owner    Owner
	Mode     Mode
	Frozen   bool
}

// Snapshot returns a copy of the lock records, sorted by interval start.
func (t *Table) Snapshot() []EntryInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EntryInfo, len(t.entries))
	for i, e := range t.entries {
		out[i] = EntryInfo{Interval: e.iv, Owner: e.owner, Mode: e.mode, Frozen: e.frozen}
	}
	return out
}

// Validate checks the table's core invariants — write locks are exclusive
// against locks of other owners, entries are sorted, and the prefix-max
// index matches the entries — and returns an error describing the first
// violation. It is intended for tests.
func (t *Table) Validate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var max timestamp.Timestamp
	for i, a := range t.entries {
		if a.iv.IsEmpty() {
			return fmt.Errorf("entry %d has empty interval", i)
		}
		if i > 0 && a.iv.Lo.Before(t.entries[i-1].iv.Lo) {
			return fmt.Errorf("entry %d starts before entry %d", i, i-1)
		}
		max = timestamp.Max(max, a.iv.Hi)
		if len(t.maxHi) != len(t.entries) {
			return fmt.Errorf("maxHi length %d != entries length %d", len(t.maxHi), len(t.entries))
		}
		if t.maxHi[i] != max {
			return fmt.Errorf("maxHi[%d] = %v, want %v", i, t.maxHi[i], max)
		}
		for _, b := range t.entries[i+1:] {
			if a.owner == b.owner {
				continue
			}
			if a.mode == ModeRead && b.mode == ModeRead {
				continue
			}
			if a.iv.Overlaps(b.iv) {
				return fmt.Errorf("conflict between %v/%v(owner %d) and %v/%v(owner %d)",
					a.iv, a.mode, a.owner, b.iv, b.mode, b.owner)
			}
		}
	}
	return nil
}

// --- internals -------------------------------------------------------------

// waiterCount reports how many acquisitions are currently parked, for
// tests and benchmarks.
func (t *Table) waiterCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.waiters)
}

// wakeOverlappingLocked wakes and unlinks every parked waiter whose
// blocked-on spans overlap iv. Callers must hold t.mu. The signal send
// is non-blocking: the one-slot buffer can already be full when an
// external WaitGraph.Abort raced us, and the waiter is waking anyway —
// it rescans the whole table after any wake, so one signal covers both
// events.
func (t *Table) wakeOverlappingLocked(iv timestamp.Interval) {
	if iv.IsEmpty() || len(t.waiters) == 0 ||
		!iv.Overlaps(timestamp.Span(t.waitLo, t.waitHi)) {
		return
	}
	for i := 0; i < len(t.waiters); {
		w := t.waiters[i]
		if !w.overlaps(iv) {
			i++
			continue
		}
		w.done.Wake()
		t.unlinkWaiterAtLocked(i)
	}
}

// getWaiterLocked takes a waiter from the freelist (or allocates one)
// and stamps it with the request's identity. Callers hold t.mu.
func (t *Table) getWaiterLocked(owner Owner, mode Mode) *waiter {
	if n := len(t.free); n > 0 {
		w := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		w.owner, w.mode = owner, mode
		return w
	}
	// done buffers one wake so the waker can signal-and-unlink under
	// the table mutex without a rendezvous.
	if t.timers == nil {
		t.timers = clock.SystemTimers{}
	}
	return &waiter{owner: owner, mode: mode, done: t.timers.NewWaiter()}
}

// putWaiterLocked returns an unlinked waiter to the freelist, draining
// the wake signal a concurrent waker may have left in done (a waiter
// that timed out can be signalled between the context firing and the
// table mutex being reacquired). Callers hold t.mu.
func (t *Table) putWaiterLocked(w *waiter) {
	w.done.Drain()
	w.spans = w.spans[:0]
	if len(t.free) < maxFreeWaiters {
		t.free = append(t.free, w)
	}
}

// unlinkWaiterAtLocked removes the waiter at index i (order is not
// maintained). Callers must hold t.mu.
func (t *Table) unlinkWaiterAtLocked(i int) {
	t.waiters[i].linked = false
	last := len(t.waiters) - 1
	t.waiters[i] = t.waiters[last]
	t.waiters[last] = nil
	t.waiters = t.waiters[:last]
}

// removeWaiterLocked unlinks w if it is still parked (a concurrent wake
// may have unlinked it already). Callers must hold t.mu.
func (t *Table) removeWaiterLocked(w *waiter) {
	for i, x := range t.waiters {
		if x == w {
			t.unlinkWaiterAtLocked(i)
			return
		}
	}
}

// blockLocked registers the wait in the shared wait-for graph (failing
// fast on a cycle), parks the caller on a pooled waiter tagged with a
// copy of spans, and blocks until overlapping lock state changes, an
// external detector marks the waiter a deadlock victim, or the context
// expires. Callers hold t.mu; it is held again on return.
func (t *Table) blockLocked(ctx context.Context, owner Owner, mode Mode, holders []Owner, spans []timestamp.Interval) error {
	if t.graph != nil {
		if t.graph.consumeAbort(owner) {
			return ErrDeadlock
		}
		if err := t.graph.Wait(owner, holders, t.key); err != nil {
			return err
		}
		defer t.graph.Done(owner)
	}
	w := t.getWaiterLocked(owner, mode)
	w.spans = append(w.spans[:0], spans...)
	if len(t.waiters) == 0 {
		t.waitLo, t.waitHi = w.spans[0].Lo, w.spans[0].Hi
	}
	for _, s := range w.spans {
		t.waitLo = timestamp.Min(t.waitLo, s.Lo)
		t.waitHi = timestamp.Max(t.waitHi, s.Hi)
	}
	w.linked = true
	t.waiters = append(t.waiters, w)
	if t.graph != nil {
		t.graph.park(owner, w.done)
	}
	t.mu.Unlock()
	err := w.done.ParkCtx(ctx)
	t.mu.Lock()
	if t.graph != nil {
		t.graph.unpark(owner)
	}
	// A wake from WaitGraph.Abort does not unlink (the graph cannot
	// reach the table's waiter list); remove ourselves then. The
	// common table-waker wake already unlinked, so the O(waiters)
	// scan is skipped on the hot handoff path.
	if w.linked {
		t.removeWaiterLocked(w)
	}
	t.putWaiterLocked(w)
	if err != nil {
		return err
	}
	if t.graph != nil && t.graph.consumeAbort(owner) {
		return ErrDeadlock
	}
	return nil
}

// blockersForReadLocked appends the owners of unfrozen write locks
// conflicting with a read of iv to dst. Callers hold t.mu.
func (t *Table) blockersForReadLocked(owner Owner, iv timestamp.Interval, dst []Owner) []Owner {
	lo, hi := t.overlapRangeLocked(iv)
	for i := lo; i < hi; i++ {
		e := &t.entries[i]
		if e.owner != owner && e.mode == ModeWrite && !e.frozen && e.iv.Overlaps(iv) {
			dst = append(dst, e.owner)
		}
	}
	return dst
}

// blockersForWriteLocked appends the owners of unfrozen locks
// conflicting with a write of req to dst. Callers hold t.mu. Owners
// holding several conflicting records may appear more than once; the
// wait-for graph deduplicates.
func (t *Table) blockersForWriteLocked(owner Owner, req timestamp.Set, dst []Owner) []Owner {
	for r := 0; r < req.NumIntervals(); r++ {
		riv := req.At(r)
		lo, hi := t.overlapRangeLocked(riv)
		for i := lo; i < hi; i++ {
			e := &t.entries[i]
			if e.owner != owner && !e.frozen && e.iv.Overlaps(riv) {
				dst = append(dst, e.owner)
			}
		}
	}
	return dst
}

// firstConflictLocked returns the conflicting entry with the smallest
// start that overlaps iv, from the perspective of an acquisition in the
// given mode by the given owner. Entries are sorted by start, so the
// first overlapping entry in index order is the answer.
func (t *Table) firstConflictLocked(owner Owner, iv timestamp.Interval, mode Mode) (entry, bool) {
	lo, hi := t.overlapRangeLocked(iv)
	for i := lo; i < hi; i++ {
		e := &t.entries[i]
		if e.owner == owner || !e.iv.Overlaps(iv) {
			continue
		}
		if mode == ModeRead && e.mode == ModeRead {
			continue
		}
		return *e, true
	}
	return entry{}, false
}

// conflictSetsLocked partitions the timestamps of req that conflict with
// other owners' locks into frozen and unfrozen sets, for a write-mode
// acquisition.
func (t *Table) conflictSetsLocked(owner Owner, req timestamp.Set, mode Mode) (frozen, unfrozen timestamp.Set) {
	for r := 0; r < req.NumIntervals(); r++ {
		riv := req.At(r)
		lo, hi := t.overlapRangeLocked(riv)
		for i := lo; i < hi; i++ {
			e := &t.entries[i]
			if e.owner == owner {
				continue
			}
			if mode == ModeRead && e.mode == ModeRead {
				continue
			}
			x := riv.Intersect(e.iv)
			if x.IsEmpty() {
				continue
			}
			if e.frozen {
				frozen.AddInPlace(x)
			} else {
				unfrozen.AddInPlace(x)
			}
		}
	}
	return frozen, unfrozen
}

// prefixBefore returns the part of iv strictly before the conflicting
// interval conf (empty when conf starts at or before iv.Lo).
func prefixBefore(iv, conf timestamp.Interval) timestamp.Interval {
	if conf.Lo.AtOrBefore(iv.Lo) {
		return timestamp.Empty
	}
	return timestamp.Interval{Lo: iv.Lo, Hi: timestamp.Min(iv.Hi, conf.Lo.Prev())}
}

// overlapRangeLocked returns the half-open index window [lo, hi) of
// entries that may overlap q: entries before lo all end below q.Lo
// (their prefix max end is too small) and entries from hi on all start
// above q.Hi. Entries inside the window still need an Overlaps check.
// Callers hold t.mu.
func (t *Table) overlapRangeLocked(q timestamp.Interval) (int, int) {
	n := len(t.entries)
	if n == 0 || q.IsEmpty() {
		return 0, 0
	}
	lo := sort.Search(n, func(i int) bool { return t.maxHi[i].AtOrAfter(q.Lo) })
	hi := sort.Search(n, func(i int) bool { return t.entries[i].iv.Lo.After(q.Hi) })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// fixMaxHiFrom recomputes the prefix-max index from position pos to the
// end, resizing it to match the entries slice. Callers hold t.mu.
func (t *Table) fixMaxHiFrom(pos int) {
	n := len(t.entries)
	if cap(t.maxHi) < n {
		grown := make([]timestamp.Timestamp, n, 2*n+4)
		copy(grown, t.maxHi)
		t.maxHi = grown
	} else {
		t.maxHi = t.maxHi[:n]
	}
	if pos < 0 {
		pos = 0
	}
	for i := pos; i < n; i++ {
		h := t.entries[i].iv.Hi
		if i > 0 && t.maxHi[i-1].After(h) {
			h = t.maxHi[i-1]
		}
		t.maxHi[i] = h
	}
}

// insertLocked adds a record, merging it with the owner's adjacent or
// overlapping records of the same mode and frozen state (interval
// compression, §6). The entries slice stays sorted by interval start.
func (t *Table) insertLocked(e entry) {
	if e.iv.IsEmpty() {
		return
	}
	// Merge with compatible neighbours. The candidate window is widened
	// by one tick on each side to catch adjacency; records of the same
	// (owner, mode, frozen) class are mutually non-adjacent by this very
	// invariant, so merged growth cannot reach entries outside the
	// window.
	q := timestamp.Span(e.iv.Lo.Prev(), e.iv.Hi.Next())
	lo, hi := t.overlapRangeLocked(q)
	for i := hi - 1; i >= lo; i-- {
		o := t.entries[i]
		if o.owner == e.owner && o.mode == e.mode && o.frozen == e.frozen &&
			(o.iv.Overlaps(e.iv) || o.iv.Adjacent(e.iv)) {
			e.iv = e.iv.Merge(o.iv)
			t.removeAtLocked(i)
		}
	}
	pos := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].iv.Lo.AtOrAfter(e.iv.Lo)
	})
	t.entries = append(t.entries, entry{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = e
	t.fixMaxHiFrom(pos)
	t.extendWaiterEdgesLocked(e)
}

// extendWaiterEdgesLocked keeps deadlock detection current under
// targeted wakeups: a newly inserted lock that conflicts with a *parked*
// waiter's request adds a wait-for edge the waiter could not have
// registered when it parked (under the old broadcast scheme the waiter
// was woken by every table change and re-registered its blockers
// itself). The edge is registered on the waiter's behalf without waking
// it; if the new edge closes a cycle, the waiter is woken so it re-runs
// its blocked acquisition and observes ErrDeadlock. Frozen inserts are
// skipped — the freeze paths wake overlapping waiters anyway. Callers
// hold t.mu.
func (t *Table) extendWaiterEdgesLocked(e entry) {
	if t.graph == nil || e.frozen || len(t.waiters) == 0 ||
		!e.iv.Overlaps(timestamp.Span(t.waitLo, t.waitHi)) {
		return
	}
	holder := [1]Owner{e.owner}
	for i := 0; i < len(t.waiters); {
		w := t.waiters[i]
		if w.owner == e.owner || (e.mode == ModeRead && w.mode == ModeRead) || !w.overlaps(e.iv) {
			i++
			continue
		}
		if t.graph.Wait(w.owner, holder[:], t.key) == nil {
			i++
			continue
		}
		w.done.Wake()
		t.unlinkWaiterAtLocked(i)
	}
}

// removeAtLocked deletes the record at index i, preserving order.
func (t *Table) removeAtLocked(i int) {
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
	t.fixMaxHiFrom(i)
}

// releaseWhereLocked removes every record matching the predicate and
// wakes the waiters overlapping each removed interval.
func (t *Table) releaseWhereLocked(match func(entry) bool) {
	kept := t.entries[:0]
	removedAt := -1
	for i, e := range t.entries {
		if match(e) {
			if removedAt < 0 {
				removedAt = i
			}
			t.wakeOverlappingLocked(e.iv)
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	if removedAt >= 0 {
		t.fixMaxHiFrom(removedAt)
	}
}
