// Package lock implements freezable interval locks over the timestamp
// domain — the central data structure of MVTL.
//
// The paper (§4.2) conceptually gives every (key, timestamp) pair its own
// readers-writer lock that can additionally be *frozen*: a frozen lock is
// never released, sealing the fate of the write-once cell Values[k, t].
// A practical implementation must compress this infinite lock state; as
// suggested in §6 we keep, per key, a short list of lock *intervals*, each
// tagged with an owner, a mode and a frozen bit.
//
// Conflict rules (for locks held by different owners):
//
//   - read  vs read:  never conflict;
//   - read  vs write: conflict;
//   - write vs write: conflict.
//
// Locks held by the same owner never conflict with each other, which
// permits read→write upgrades. A frozen conflicting lock is permanent:
// waiting for it is useless, and the acquisition APIs report it
// distinctly so policies can react (for example by re-picking the version
// to read, as MVTO-style policies do).
package lock

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Owner identifies a lock holder (a transaction).
type Owner uint64

// Mode distinguishes read locks from write locks.
type Mode uint8

// Lock modes.
const (
	ModeRead Mode = iota + 1
	ModeWrite
)

// String renders the mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Sentinel errors returned by the acquisition methods.
var (
	// ErrConflict reports that an unfrozen conflicting lock blocked an
	// all-or-nothing, no-wait acquisition. Retrying later may succeed.
	ErrConflict = errors.New("lock: conflicting lock held")
	// ErrFrozen reports that a frozen conflicting lock makes the
	// requested acquisition permanently impossible.
	ErrFrozen = errors.New("lock: conflicting frozen lock")
)

// Options control how an acquisition behaves when it meets conflicts.
type Options struct {
	// Wait blocks on conflicting locks that are not frozen, resuming
	// when they are released or frozen. The context bounds the wait
	// (deadlock handling by timeout, §4.3).
	Wait bool
	// Partial accepts acquiring only part of the request: for reads,
	// the maximal contiguous prefix; for writes, every requested
	// timestamp not covered by a conflict.
	Partial bool
}

// ReadResult reports the outcome of AcquireRead.
type ReadResult struct {
	// Got is the contiguous interval of read locks acquired, starting
	// at the requested lower bound. It may be empty.
	Got timestamp.Interval
	// FrozenAt is the first conflicting frozen write interval met while
	// scanning upward, if any: it signals that a committed version
	// exists inside the requested range, so MVTO-style policies should
	// re-pick the version to read.
	FrozenAt *timestamp.Interval
}

// WriteResult reports the outcome of AcquireWrite.
type WriteResult struct {
	// Got is the set of write-locked timestamps acquired (it may have
	// holes when Partial is set).
	Got timestamp.Set
	// Denied is the subset of the request that conflicts prevented,
	// intersected with the request.
	Denied timestamp.Set
}

// entry is one interval-compressed lock record.
type entry struct {
	iv     timestamp.Interval
	owner  Owner
	mode   Mode
	frozen bool
}

// Table is the freezable interval lock table for one key. The zero value
// is not ready for use; call NewTable.
type Table struct {
	mu      sync.Mutex
	entries []entry // sorted by iv.Lo
	changed chan struct{}
	// graph, when non-nil, detects wait-for cycles across the tables
	// sharing it; blocked acquisitions fail fast with ErrDeadlock
	// instead of waiting for a timeout.
	graph *WaitGraph
}

// NewTable returns an empty lock table without deadlock detection
// (waits are bounded by the caller's context only).
func NewTable() *Table {
	return &Table{changed: make(chan struct{})}
}

// NewTableDetected returns a lock table participating in the shared
// wait-for graph g.
func NewTableDetected(g *WaitGraph) *Table {
	return &Table{changed: make(chan struct{}), graph: g}
}

// broadcastLocked wakes all waiters. Callers must hold t.mu.
func (t *Table) broadcastLocked() {
	close(t.changed)
	t.changed = make(chan struct{})
}

// AcquireRead acquires read locks on a contiguous interval starting at
// iv.Lo, following the semantics of the paper's read-locks step (§4.3):
// the interval must begin immediately after the version being read, so a
// partial acquisition keeps the *prefix* before the first conflict.
func (t *Table) AcquireRead(ctx context.Context, owner Owner, iv timestamp.Interval, opts Options) (ReadResult, error) {
	if iv.IsEmpty() {
		return ReadResult{Got: timestamp.Empty}, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		conf, ok := t.firstConflictLocked(owner, iv, ModeRead)
		if !ok {
			t.insertLocked(entry{iv: iv, owner: owner, mode: ModeRead})
			return ReadResult{Got: iv}, nil
		}
		if conf.frozen {
			frozenIv := conf.iv
			res := ReadResult{FrozenAt: &frozenIv}
			if !opts.Partial {
				return res, fmt.Errorf("read %v blocked at %v: %w", iv, conf.iv, ErrFrozen)
			}
			res.Got = prefixBefore(iv, conf.iv)
			if !res.Got.IsEmpty() {
				t.insertLocked(entry{iv: res.Got, owner: owner, mode: ModeRead})
			}
			return res, nil
		}
		// Unfrozen conflict.
		if opts.Wait {
			if err := t.blockLocked(ctx, owner, t.blockersForReadLocked(owner, iv)); err != nil {
				return ReadResult{}, err
			}
			continue
		}
		if opts.Partial {
			res := ReadResult{Got: prefixBefore(iv, conf.iv)}
			if !res.Got.IsEmpty() {
				t.insertLocked(entry{iv: res.Got, owner: owner, mode: ModeRead})
			}
			return res, nil
		}
		return ReadResult{}, fmt.Errorf("read %v blocked at %v: %w", iv, conf.iv, ErrConflict)
	}
}

// AcquireWrite acquires write locks on the requested set of timestamps.
// Unlike reads, writes have no contiguity requirement (§3): with Partial
// set, every requested timestamp not blocked by a conflict is acquired.
func (t *Table) AcquireWrite(ctx context.Context, owner Owner, req timestamp.Set, opts Options) (WriteResult, error) {
	if req.IsEmpty() {
		return WriteResult{}, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		frozenConf, unfrozenConf := t.conflictSetsLocked(owner, req, ModeWrite)
		if !unfrozenConf.IsEmpty() && opts.Wait {
			if err := t.blockLocked(ctx, owner, t.blockersForWriteLocked(owner, req)); err != nil {
				return WriteResult{}, err
			}
			continue
		}
		denied := frozenConf.Union(unfrozenConf)
		if !denied.IsEmpty() && !opts.Partial {
			err := ErrConflict
			if !frozenConf.IsEmpty() {
				err = ErrFrozen
			}
			return WriteResult{Denied: denied}, fmt.Errorf("write %v blocked by %v: %w", req, denied, err)
		}
		got := req.Subtract(denied)
		for _, giv := range got.Intervals() {
			t.insertLocked(entry{iv: giv, owner: owner, mode: ModeWrite})
		}
		return WriteResult{Got: got, Denied: denied}, nil
	}
}

// FreezeWriteAt freezes the owner's write lock at exactly ts, splitting
// the covering interval if needed. It reports whether a write lock of the
// owner covered ts. A commit freezes its write lock on the chosen commit
// timestamp before exposing the value (§4.3, Alg. 1 line 18).
func (t *Table) FreezeWriteAt(owner Owner, ts timestamp.Timestamp) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.entries {
		e := t.entries[i]
		if e.owner != owner || e.mode != ModeWrite || !e.iv.Contains(ts) {
			continue
		}
		if e.frozen {
			return true
		}
		point := timestamp.Point(ts)
		rest := e.iv.Subtract(point)
		t.removeAtLocked(i)
		t.insertLocked(entry{iv: point, owner: owner, mode: ModeWrite, frozen: true})
		for _, r := range rest {
			t.insertLocked(entry{iv: r, owner: owner, mode: ModeWrite})
		}
		t.broadcastLocked()
		return true
	}
	return false
}

// FreezeReadIn freezes the portions of the owner's read locks inside iv,
// as done by garbage collection after commit (Alg. 1 line 25).
func (t *Table) FreezeReadIn(owner Owner, iv timestamp.Interval) {
	if iv.IsEmpty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var add []entry
	for i := 0; i < len(t.entries); {
		e := t.entries[i]
		if e.owner != owner || e.mode != ModeRead || e.frozen || !e.iv.Overlaps(iv) {
			i++
			continue
		}
		frozenPart := e.iv.Intersect(iv)
		rest := e.iv.Subtract(frozenPart)
		t.removeAtLocked(i)
		add = append(add, entry{iv: frozenPart, owner: owner, mode: ModeRead, frozen: true})
		for _, r := range rest {
			add = append(add, entry{iv: r, owner: owner, mode: ModeRead})
		}
	}
	for _, e := range add {
		t.insertLocked(e)
	}
	if len(add) > 0 {
		t.broadcastLocked()
	}
}

// ReleaseUnfrozen releases every unfrozen lock of the owner, in any mode
// (Alg. 1 line 26).
func (t *Table) ReleaseUnfrozen(owner Owner) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.releaseWhereLocked(func(e entry) bool {
		return e.owner == owner && !e.frozen
	})
}

// ReleaseWrites releases the owner's unfrozen write locks, used when a
// candidate commit timestamp fails and the policy moves on (Alg. 3
// line 22).
func (t *Table) ReleaseWrites(owner Owner) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.releaseWhereLocked(func(e entry) bool {
		return e.owner == owner && e.mode == ModeWrite && !e.frozen
	})
}

// ReleaseReadIn releases the portions of the owner's unfrozen read locks
// inside iv, used when a read retries after meeting a frozen write lock
// ("release read-locks acquired above", Alg. 3/4/8).
func (t *Table) ReleaseReadIn(owner Owner, iv timestamp.Interval) {
	if iv.IsEmpty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var add []entry
	changed := false
	for i := 0; i < len(t.entries); {
		e := t.entries[i]
		if e.owner != owner || e.mode != ModeRead || e.frozen || !e.iv.Overlaps(iv) {
			i++
			continue
		}
		rest := e.iv.Subtract(iv)
		t.removeAtLocked(i)
		for _, r := range rest {
			add = append(add, entry{iv: r, owner: owner, mode: ModeRead})
		}
		changed = true
	}
	for _, e := range add {
		t.insertLocked(e)
	}
	if changed {
		t.broadcastLocked()
	}
}

// Owned returns the timestamps the owner currently holds: all locked
// timestamps (read or write) and the write-locked subset. The generic
// commit step intersects these across keys (Alg. 1 line 13).
func (t *Table) Owned(owner Owner) (readOrWrite, writeOnly timestamp.Set) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.owner != owner {
			continue
		}
		readOrWrite = readOrWrite.Add(e.iv)
		if e.mode == ModeWrite {
			writeOnly = writeOnly.Add(e.iv)
		}
	}
	return readOrWrite, writeOnly
}

// PurgeFrozenBelow drops frozen entries that lie entirely below ts,
// mirroring version purging (§6): once the versions below a bound are
// discarded, their lock state may be discarded too. It returns the number
// of entries removed.
func (t *Table) PurgeFrozenBelow(ts timestamp.Timestamp) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.frozen && e.iv.Hi.Before(ts) {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	if removed > 0 {
		t.broadcastLocked()
	}
	return removed
}

// Stats summarizes the table's lock state size.
type Stats struct {
	// Entries is the number of interval-compressed lock records.
	Entries int
	// Frozen is how many of them are frozen.
	Frozen int
}

// Stats returns the current state-size statistics.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{Entries: len(t.entries)}
	for _, e := range t.entries {
		if e.frozen {
			s.Frozen++
		}
	}
	return s
}

// EntryInfo is an exported view of one lock record, for tests and
// diagnostics.
type EntryInfo struct {
	Interval timestamp.Interval
	Owner    Owner
	Mode     Mode
	Frozen   bool
}

// Snapshot returns a copy of the lock records, sorted by interval start.
func (t *Table) Snapshot() []EntryInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EntryInfo, len(t.entries))
	for i, e := range t.entries {
		out[i] = EntryInfo{Interval: e.iv, Owner: e.owner, Mode: e.mode, Frozen: e.frozen}
	}
	return out
}

// Validate checks the table's core invariant — write locks are exclusive
// against locks of other owners — and returns an error describing the
// first violation. It is intended for tests.
func (t *Table) Validate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, a := range t.entries {
		if a.iv.IsEmpty() {
			return fmt.Errorf("entry %d has empty interval", i)
		}
		for _, b := range t.entries[i+1:] {
			if a.owner == b.owner {
				continue
			}
			if a.mode == ModeRead && b.mode == ModeRead {
				continue
			}
			if a.iv.Overlaps(b.iv) {
				return fmt.Errorf("conflict between %v/%v(owner %d) and %v/%v(owner %d)",
					a.iv, a.mode, a.owner, b.iv, b.mode, b.owner)
			}
		}
	}
	return nil
}

// --- internals -------------------------------------------------------------

// waitLocked releases the table mutex, waits for any state change or
// context cancellation, and reacquires the mutex.
func (t *Table) waitLocked(ctx context.Context) error {
	ch := t.changed
	t.mu.Unlock()
	select {
	case <-ch:
		t.mu.Lock()
		return nil
	case <-ctx.Done():
		t.mu.Lock()
		return ctx.Err()
	}
}

// blockLocked registers the wait in the shared wait-for graph (failing
// fast on a cycle) and blocks until the table changes or the context
// expires. Callers hold t.mu.
func (t *Table) blockLocked(ctx context.Context, waiter Owner, holders []Owner) error {
	if t.graph != nil {
		if err := t.graph.Wait(waiter, holders); err != nil {
			return err
		}
		defer t.graph.Done(waiter)
	}
	return t.waitLocked(ctx)
}

// blockersForReadLocked lists the owners of unfrozen write locks
// conflicting with a read of iv. Callers hold t.mu.
func (t *Table) blockersForReadLocked(owner Owner, iv timestamp.Interval) []Owner {
	var out []Owner
	for _, e := range t.entries {
		if e.owner != owner && e.mode == ModeWrite && !e.frozen && e.iv.Overlaps(iv) {
			out = append(out, e.owner)
		}
	}
	return out
}

// blockersForWriteLocked lists the owners of unfrozen locks conflicting
// with a write of req. Callers hold t.mu.
func (t *Table) blockersForWriteLocked(owner Owner, req timestamp.Set) []Owner {
	var out []Owner
	for _, e := range t.entries {
		if e.owner == owner || e.frozen {
			continue
		}
		for _, riv := range req.Intervals() {
			if e.iv.Overlaps(riv) {
				out = append(out, e.owner)
				break
			}
		}
	}
	return out
}

// firstConflictLocked returns the conflicting entry with the smallest
// start that overlaps iv, from the perspective of an acquisition in the
// given mode by the given owner.
func (t *Table) firstConflictLocked(owner Owner, iv timestamp.Interval, mode Mode) (entry, bool) {
	var best entry
	found := false
	for _, e := range t.entries {
		if e.owner == owner || !e.iv.Overlaps(iv) {
			continue
		}
		if mode == ModeRead && e.mode == ModeRead {
			continue
		}
		if !found || e.iv.Lo.Before(best.iv.Lo) {
			best, found = e, true
		}
	}
	return best, found
}

// conflictSetsLocked partitions the timestamps of req that conflict with
// other owners' locks into frozen and unfrozen sets, for a write-mode
// acquisition.
func (t *Table) conflictSetsLocked(owner Owner, req timestamp.Set, mode Mode) (frozen, unfrozen timestamp.Set) {
	for _, e := range t.entries {
		if e.owner == owner {
			continue
		}
		if mode == ModeRead && e.mode == ModeRead {
			continue
		}
		for _, riv := range req.Intervals() {
			x := riv.Intersect(e.iv)
			if x.IsEmpty() {
				continue
			}
			if e.frozen {
				frozen = frozen.Add(x)
			} else {
				unfrozen = unfrozen.Add(x)
			}
		}
	}
	return frozen, unfrozen
}

// prefixBefore returns the part of iv strictly before the conflicting
// interval conf (empty when conf starts at or before iv.Lo).
func prefixBefore(iv, conf timestamp.Interval) timestamp.Interval {
	if conf.Lo.AtOrBefore(iv.Lo) {
		return timestamp.Empty
	}
	return timestamp.Interval{Lo: iv.Lo, Hi: timestamp.Min(iv.Hi, conf.Lo.Prev())}
}

// insertLocked adds a record, merging it with the owner's adjacent or
// overlapping records of the same mode and frozen state (interval
// compression, §6). The entries slice stays sorted by interval start.
func (t *Table) insertLocked(e entry) {
	if e.iv.IsEmpty() {
		return
	}
	// Merge with compatible neighbours.
	for i := 0; i < len(t.entries); {
		o := t.entries[i]
		if o.owner == e.owner && o.mode == e.mode && o.frozen == e.frozen &&
			(o.iv.Overlaps(e.iv) || o.iv.Adjacent(e.iv)) {
			e.iv = e.iv.Merge(o.iv)
			t.removeAtLocked(i)
			continue
		}
		i++
	}
	pos := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].iv.Lo.AtOrAfter(e.iv.Lo)
	})
	t.entries = append(t.entries, entry{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = e
}

// removeAtLocked deletes the record at index i, preserving order.
func (t *Table) removeAtLocked(i int) {
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
}

// releaseWhereLocked removes every record matching the predicate and
// broadcasts if anything changed.
func (t *Table) releaseWhereLocked(match func(entry) bool) {
	kept := t.entries[:0]
	changed := false
	for _, e := range t.entries {
		if match(e) {
			changed = true
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	if changed {
		t.broadcastLocked()
	}
}
