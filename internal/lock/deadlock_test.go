package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWaitGraphDirectCycle(t *testing.T) {
	g := NewWaitGraph()
	if err := g.Wait(1, []Owner{2}, "k"); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(2, []Owner{1}, "k"); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// The failed registration left no edges; 2 can wait on others.
	if err := g.Wait(2, []Owner{3}, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGraphTransitiveCycle(t *testing.T) {
	g := NewWaitGraph()
	if err := g.Wait(1, []Owner{2}, "k"); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(2, []Owner{3}, "k"); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(3, []Owner{1}, "k"); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestWaitGraphDoneClearsEdges(t *testing.T) {
	g := NewWaitGraph()
	_ = g.Wait(1, []Owner{2}, "k")
	g.Done(1)
	if g.Waiters() != 0 {
		t.Fatalf("Waiters = %d", g.Waiters())
	}
	if err := g.Wait(2, []Owner{1}, "k"); err != nil {
		t.Fatalf("cycle should be gone: %v", err)
	}
}

func TestWaitGraphSelfEdgeIgnored(t *testing.T) {
	g := NewWaitGraph()
	if err := g.Wait(1, []Owner{1}, "k"); !errors.Is(err, ErrDeadlock) {
		// waiting for yourself is trivially a cycle
		t.Fatalf("self-wait must be a deadlock, got %v", err)
	}
}

func TestWaitGraphEmptyHoldersNoop(t *testing.T) {
	g := NewWaitGraph()
	if err := g.Wait(1, nil, "k"); err != nil {
		t.Fatal(err)
	}
	if g.Waiters() != 0 {
		t.Fatal("no edges should be registered")
	}
}

// TestTableDeadlockDetection builds the classic two-key deadlock across
// two tables sharing one graph: owner 1 holds key A and wants key B,
// owner 2 holds key B and wants key A. The second waiter must fail fast
// with ErrDeadlock, well before any timeout.
func TestTableDeadlockDetection(t *testing.T) {
	g := NewWaitGraph()
	tableA := NewTableDetected(g)
	tableB := NewTableDetected(g)
	ctx := context.Background()

	if _, err := tableA.AcquireWrite(ctx, 1, set(iv(1, 10)), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tableB.AcquireWrite(ctx, 2, set(iv(1, 10)), Options{}); err != nil {
		t.Fatal(err)
	}

	// Owner 1 blocks on B.
	waiting := make(chan error, 1)
	go func() {
		longCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		_, err := tableB.AcquireWrite(longCtx, 1, set(iv(5, 5)), Options{Wait: true})
		waiting <- err
	}()
	time.Sleep(20 * time.Millisecond) // let owner 1 register its wait

	// Owner 2 closes the cycle: must detect immediately.
	start := time.Now()
	_, err := tableA.AcquireWrite(ctx, 2, set(iv(5, 5)), Options{Wait: true})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadlock detection should not wait for timeouts")
	}

	// Victim 2 aborts: its locks release and owner 1 proceeds.
	tableB.ReleaseUnfrozen(2)
	select {
	case err := <-waiting:
		if err != nil {
			t.Fatalf("owner 1 should acquire after victim released: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("owner 1 never unblocked")
	}
}

// TestTableDeadlockReadersAndWriters covers the read-write upgrade
// deadlock: both own read locks on the same point and both try to
// upgrade.
func TestTableDeadlockReadersAndWriters(t *testing.T) {
	g := NewWaitGraph()
	tbl := NewTableDetected(g)
	ctx := context.Background()
	if _, err := tbl.AcquireRead(ctx, 1, iv(5, 5), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AcquireRead(ctx, 2, iv(5, 5), Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		longCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		_, err := tbl.AcquireWrite(longCtx, 1, set(iv(5, 5)), Options{Wait: true})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_, err := tbl.AcquireWrite(ctx, 2, set(iv(5, 5)), Options{Wait: true})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("upgrade deadlock not detected: %v", err)
	}
	tbl.ReleaseUnfrozen(2)
	if err := <-done; err != nil {
		t.Fatalf("owner 1's upgrade should succeed after victim release: %v", err)
	}
}

// TestNoFalsePositives: plain waiting without a cycle completes without
// ErrDeadlock.
func TestNoFalsePositives(t *testing.T) {
	g := NewWaitGraph()
	tbl := NewTableDetected(g)
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tbl.AcquireWrite(context.Background(), 2, set(iv(5, 5)), Options{Wait: true})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tbl.ReleaseUnfrozen(1)
	if err := <-done; err != nil {
		t.Fatalf("no cycle existed: %v", err)
	}
	if g.Waiters() != 0 {
		t.Fatalf("graph not cleaned: %d waiters", g.Waiters())
	}
}

// TestWaitGraphEdgesSnapshot: exported edges carry waiter, holder and
// the blocking key, and disappear after Done.
func TestWaitGraphEdgesSnapshot(t *testing.T) {
	g := NewWaitGraph()
	if err := g.Wait(1, []Owner{2, 3}, "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(2, []Owner{3}, "beta"); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges(nil)
	if len(edges) != 3 {
		t.Fatalf("got %d edges: %+v", len(edges), edges)
	}
	byPair := map[[2]Owner]string{}
	for _, e := range edges {
		byPair[[2]Owner{e.Waiter, e.Holder}] = e.Key
	}
	if byPair[[2]Owner{1, 2}] != "alpha" || byPair[[2]Owner{1, 3}] != "alpha" || byPair[[2]Owner{2, 3}] != "beta" {
		t.Fatalf("edges mislabelled: %+v", byPair)
	}
	g.Done(1)
	g.Done(2)
	if got := g.Edges(nil); len(got) != 0 {
		t.Fatalf("edges survived Done: %+v", got)
	}
}

// TestAbortWakesParkedWaiter: an external Abort must wake a parked
// acquisition with ErrDeadlock long before its context deadline.
func TestAbortWakesParkedWaiter(t *testing.T) {
	g := NewWaitGraph()
	tbl := NewTableKeyed(g, "x")
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		longCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		_, err := tbl.AcquireWrite(longCtx, 2, set(iv(5, 5)), Options{Wait: true})
		done <- err
	}()
	for i := 0; !g.IsWaiting(2); i++ {
		if i > 1000 {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	g.Abort(2)
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("want ErrDeadlock, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort never woke the waiter")
	}
	if time.Since(start) > time.Second {
		t.Fatal("external abort took too long")
	}
	if g.IsWaiting(2) || g.Waiters() != 0 {
		t.Fatal("graph state not cleaned after abort")
	}
}

// TestAbortBeforeParkStillFires: a victim mark set just before the
// waiter parks (the coordinator's snapshot raced the park) must still
// fail the acquisition fast instead of leaking a full timeout.
func TestAbortBeforeParkStillFires(t *testing.T) {
	g := NewWaitGraph()
	tbl := NewTableKeyed(g, "x")
	ctx := context.Background()
	if _, err := tbl.AcquireWrite(ctx, 1, set(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	g.Abort(2)
	start := time.Now()
	_, err := tbl.AcquireWrite(ctx, 2, set(iv(5, 5)), Options{Wait: true})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-park mark not consumed fast")
	}
	// The mark is one-shot: a later wait of the same owner proceeds.
	tbl.ReleaseUnfrozen(1)
	if _, err := tbl.AcquireWrite(ctx, 2, set(iv(5, 5)), Options{Wait: true}); err != nil {
		t.Fatalf("consumed mark must not poison later waits: %v", err)
	}
}

// TestWaitGraphRacingCycleAlwaysDetected closes over the sharded
// graph's publish-before-check guarantee: two waits racing to close a
// 2-cycle must never both park — at least one of them observes the
// cycle, however the stripe accesses interleave.
func TestWaitGraphRacingCycleAlwaysDetected(t *testing.T) {
	for i := 0; i < 500; i++ {
		g := NewWaitGraph()
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = g.Wait(1, []Owner{2}, "k") }()
		go func() { defer wg.Done(); errs[1] = g.Wait(2, []Owner{1}, "k") }()
		wg.Wait()
		if errs[0] == nil && errs[1] == nil {
			t.Fatalf("iteration %d: racing cycle went undetected", i)
		}
		g.Done(1)
		g.Done(2)
	}
}
