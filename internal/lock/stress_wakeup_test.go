package lock

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// TestTargetedWakeupNoLostWaiters hammers one table with mixed
// AcquireRead / AcquireWrite / Freeze / Release traffic from many
// goroutines. All waits use a background context, so the test only
// terminates if every parked waiter is eventually woken: a lost wakeup
// under the targeted-wakeup scheme shows up as a hang, caught by the
// watchdog. Deadlock cycles are broken by the shared wait-for graph
// (ErrDeadlock), exactly as the engine runs the table.
func TestTargetedWakeupNoLostWaiters(t *testing.T) {
	const (
		goroutines = 40
		iterations = 300
		span       = 256 // timestamps [1, span]
	)
	tbl := NewTableDetected(NewWaitGraph())
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < iterations; it++ {
				owner := Owner(uint64(seed)<<32 | uint64(it+1))
				lo := int64(1 + r.Intn(span))
				width := int64(1 + r.Intn(16))
				request := iv(lo, lo+width)
				switch r.Intn(3) {
				case 0: // reader: wait on unfrozen conflicts, then release
					res, err := tbl.AcquireRead(ctx, owner, request, Options{Wait: true})
					if err != nil && !errors.Is(err, ErrFrozen) && !errors.Is(err, ErrDeadlock) {
						t.Errorf("AcquireRead: %v", err)
						return
					}
					_ = res
					tbl.ReleaseUnfrozen(owner)
				case 1: // writer: wait, freeze one point sometimes, release
					res, err := tbl.AcquireWrite(ctx, owner, timestamp.NewSet(request), Options{Wait: true, Partial: true})
					if err != nil && !errors.Is(err, ErrDeadlock) {
						t.Errorf("AcquireWrite: %v", err)
						return
					}
					if err == nil && !res.Got.IsEmpty() && r.Intn(4) == 0 {
						if min, ok := res.Got.Min(); ok {
							tbl.FreezeWriteAt(owner, min)
						}
					}
					tbl.ReleaseUnfrozen(owner)
				case 2: // reader that freezes part of what it got
					res, err := tbl.AcquireRead(ctx, owner, request, Options{Wait: true, Partial: true})
					if err != nil && !errors.Is(err, ErrDeadlock) {
						t.Errorf("AcquireRead partial: %v", err)
						return
					}
					if err == nil && !res.Got.IsEmpty() && r.Intn(8) == 0 {
						tbl.FreezeReadIn(owner, timestamp.Point(res.Got.Lo))
					}
					tbl.ReleaseUnfrozen(owner)
				}
				if it%64 == 0 {
					// Keep frozen state from saturating the keyspace.
					tbl.PurgeFrozenBelow(timestamp.New(span+100, 0))
				}
			}
		}(int64(g + 1))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("stress run hung: %d waiters still parked — lost wakeup?", tbl.waiterCount())
	}
	if n := tbl.waiterCount(); n != 0 {
		t.Fatalf("%d waiters left parked after all goroutines finished", n)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("table invariant violated: %v", err)
	}
}

// TestReleaseWakesOnlyOverlappingWaiters pins the targeted-wakeup
// contract directly: two waiters park on disjoint ranges; releasing one
// range must wake exactly that waiter and leave the other parked.
func TestReleaseWakesOnlyOverlappingWaiters(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	holderA, holderB := Owner(1), Owner(2)
	if _, err := tbl.AcquireWrite(ctx, holderA, timestamp.NewSet(iv(0, 9)), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AcquireWrite(ctx, holderB, timestamp.NewSet(iv(100, 109)), Options{}); err != nil {
		t.Fatal(err)
	}

	wokeA, wokeB := make(chan error, 1), make(chan error, 1)
	go func() {
		_, err := tbl.AcquireRead(ctx, Owner(10), iv(0, 9), Options{Wait: true})
		wokeA <- err
	}()
	go func() {
		_, err := tbl.AcquireRead(ctx, Owner(11), iv(100, 109), Options{Wait: true})
		wokeB <- err
	}()
	waitForWaiters(t, tbl, 2)

	tbl.ReleaseUnfrozen(holderA)
	select {
	case err := <-wokeA:
		if err != nil {
			t.Fatalf("waiter A failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter A not woken by overlapping release")
	}
	select {
	case err := <-wokeB:
		t.Fatalf("waiter B woke on a release of a disjoint range: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	waitForWaiters(t, tbl, 1)

	tbl.ReleaseUnfrozen(holderB)
	select {
	case err := <-wokeB:
		if err != nil {
			t.Fatalf("waiter B failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter B not woken by overlapping release")
	}
}

// TestFreezeWakesBlockedWriter checks that freezing — not just releasing
// — wakes waiters, since a frozen conflict changes the outcome from
// "wait" to "permanently denied".
func TestFreezeWakesBlockedWriter(t *testing.T) {
	tbl := NewTable()
	ctx := context.Background()
	holder := Owner(1)
	if _, err := tbl.AcquireWrite(ctx, holder, timestamp.NewSet(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := tbl.AcquireWrite(ctx, Owner(2), timestamp.NewSet(iv(5, 5)), Options{Wait: true})
		res <- err
	}()
	waitForWaiters(t, tbl, 1)
	if !tbl.FreezeWriteAt(holder, ts(5)) {
		t.Fatal("freeze failed")
	}
	select {
	case err := <-res:
		if !errors.Is(err, ErrFrozen) {
			t.Fatalf("blocked writer returned %v, want ErrFrozen", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked writer not woken by freeze")
	}
}

// TestDeadlockDetectedThroughInsertedConflict pins the wait-for-graph
// upkeep under targeted wakeups: a lock inserted *after* a waiter parks
// must extend the waiter's wait-for edges, so a cycle formed through
// that new lock is detected immediately instead of after an unrelated
// wakeup.
func TestDeadlockDetectedThroughInsertedConflict(t *testing.T) {
	g := NewWaitGraph()
	k1, k2 := NewTableDetected(g), NewTableDetected(g)
	ctx := context.Background()
	w, a, c := Owner(1), Owner(2), Owner(3)

	// W holds K2@[5,5]; A holds K1@[40,60].
	if _, err := k2.AcquireWrite(ctx, w, timestamp.NewSet(iv(5, 5)), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k1.AcquireWrite(ctx, a, timestamp.NewSet(iv(40, 60)), Options{}); err != nil {
		t.Fatal(err)
	}
	// W parks reading K1@[0,100], blocked by A (edge W->A).
	wDone := make(chan error, 1)
	go func() {
		_, err := k1.AcquireRead(ctx, w, iv(0, 100), Options{Wait: true})
		wDone <- err
	}()
	waitForWaiters(t, k1, 1)

	// C write-locks K1@[70,80]: no held lock conflicts (W holds nothing
	// there yet), but the insert conflicts with W's parked request, so
	// the table must register W->C on W's behalf.
	if _, err := k1.AcquireWrite(ctx, c, timestamp.NewSet(iv(70, 80)), Options{}); err != nil {
		t.Fatal(err)
	}
	// C blocking on W at K2 now closes the cycle W->C->W and must fail
	// fast, not park until A happens to release.
	if _, err := k2.AcquireWrite(ctx, c, timestamp.NewSet(iv(5, 5)), Options{Wait: true}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cycle through inserted conflict returned %v, want ErrDeadlock", err)
	}

	// Break the cycle the way the engine would (C aborts), and let W
	// finish.
	k1.ReleaseUnfrozen(c)
	k1.ReleaseUnfrozen(a)
	select {
	case err := <-wDone:
		if err != nil {
			t.Fatalf("waiter failed after cycle broken: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken after blockers released")
	}
}

// waitForWaiters blocks until the table has exactly n parked waiters.
func waitForWaiters(t *testing.T, tbl *Table, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tbl.waiterCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("waiters = %d, want %d", tbl.waiterCount(), n)
		}
		time.Sleep(time.Millisecond)
	}
}
