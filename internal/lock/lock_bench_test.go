package lock

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// BenchmarkReadAcquireRelease measures the uncontended read-lock path:
// acquire an interval, release it.
func BenchmarkReadAcquireRelease(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	req := iv(1, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner := Owner(i + 1)
		if _, err := tbl.AcquireRead(ctx, owner, req, Options{}); err != nil {
			b.Fatal(err)
		}
		tbl.ReleaseUnfrozen(owner)
	}
}

// BenchmarkWriteAcquireFreeze measures the write path a committing
// transaction takes: lock a point, freeze it.
func BenchmarkWriteAcquireFreeze(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner := Owner(i + 1)
		point := timestamp.New(int64(i+1), 0)
		if _, err := tbl.AcquireWrite(ctx, owner, timestamp.NewSet(timestamp.Point(point)), Options{}); err != nil {
			b.Fatal(err)
		}
		tbl.FreezeWriteAt(owner, point)
		if i%1024 == 1023 {
			// keep the table from growing unboundedly
			tbl.PurgeFrozenBelow(point)
		}
	}
}

// BenchmarkOwned measures the commit-time candidate computation input.
func BenchmarkOwned(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	const owner = Owner(1)
	for i := int64(0); i < 16; i++ {
		_, _ = tbl.AcquireRead(ctx, owner, iv(i*10, i*10+5), Options{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ro, _ := tbl.Owned(owner)
		if ro.IsEmpty() {
			b.Fatal("owned must not be empty")
		}
	}
}

// BenchmarkOwnedInto measures the same computation with the snapshot
// pair threaded through, as the commit step runs it: after the scratch
// sets have grown once, rebuilding them is allocation-free.
func BenchmarkOwnedInto(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	const owner = Owner(1)
	for i := int64(0); i < 16; i++ {
		_, _ = tbl.AcquireRead(ctx, owner, iv(i*10, i*10+5), Options{})
	}
	var readOrWrite, writeOnly timestamp.Set
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.OwnedInto(owner, &readOrWrite, &writeOnly)
		if readOrWrite.IsEmpty() {
			b.Fatal("owned must not be empty")
		}
	}
}

// BenchmarkLockTableContended measures the hot-key, high-waiter-count
// shape: 64 readers are parked on a write-locked range while the
// benchmark loop acquires and releases locks on a disjoint range of the
// same table. Under a broadcast wakeup scheme every release wakes all 64
// waiters (which rescan and re-block, contending on the table mutex);
// under targeted wakeups a release of an unrelated range wakes nobody.
func BenchmarkLockTableContended(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	hot := iv(0, 99)
	if _, err := tbl.AcquireWrite(ctx, Owner(1), timestamp.NewSet(hot), Options{}); err != nil {
		b.Fatal(err)
	}
	const waiters = 64
	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(o Owner) {
			defer wg.Done()
			_, _ = tbl.AcquireRead(wctx, o, hot, Options{Wait: true})
		}(Owner(1_000_000 + i))
	}
	// Let the waiters park before timing starts.
	for deadline := time.Now().Add(2 * time.Second); tbl.waiterCount() < waiters; {
		if time.Now().After(deadline) {
			b.Fatal("waiters failed to park")
		}
		time.Sleep(time.Millisecond)
	}
	cold := timestamp.NewSet(iv(1000, 1010))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Owner ids start above the waiter block so no iteration shares
		// an identity (and hence conflict exemption) with a parked reader.
		o := Owner(2_000_000 + i)
		if _, err := tbl.AcquireWrite(ctx, o, cold, Options{}); err != nil {
			b.Fatal(err)
		}
		tbl.ReleaseWrites(o)
	}
	b.StopTimer()
	cancel()
	tbl.ReleaseUnfrozen(Owner(1))
	wg.Wait()
}

// BenchmarkBlockingHandoff measures the blocking path itself: every
// iteration parks one writer on a held point and wakes it with the
// holder's release, so the waiter park/wake machinery runs once per op.
func BenchmarkBlockingHandoff(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	hot := timestamp.NewSet(iv(5, 5))
	start := make(chan struct{})
	finished := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range start {
			if _, err := tbl.AcquireWrite(ctx, Owner(2), hot, Options{Wait: true}); err != nil {
				b.Error(err)
				return
			}
			tbl.ReleaseWrites(Owner(2))
			finished <- struct{}{}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.AcquireWrite(ctx, Owner(1), hot, Options{Wait: true}); err != nil {
			b.Fatal(err)
		}
		start <- struct{}{}
		// The peer conflicts with the held lock; wait for it to park.
		for tbl.waiterCount() == 0 {
			runtime.Gosched()
		}
		tbl.ReleaseWrites(Owner(1))
		<-finished
	}
	b.StopTimer()
	close(start)
	wg.Wait()
}

// BenchmarkContendedPartialWrite measures partial write acquisition
// against standing read locks.
func BenchmarkContendedPartialWrite(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	for i := int64(0); i < 8; i++ {
		_, _ = tbl.AcquireRead(ctx, Owner(1000+i), iv(i*20, i*20+9), Options{})
	}
	req := timestamp.NewSet(iv(0, 200))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := Owner(i + 1)
		res, err := tbl.AcquireWrite(ctx, owner, req, Options{Partial: true})
		if err != nil || res.Got.IsEmpty() {
			b.Fatalf("%v %v", res, err)
		}
		tbl.ReleaseUnfrozen(owner)
	}
}
