package lock

import (
	"context"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// BenchmarkReadAcquireRelease measures the uncontended read-lock path:
// acquire an interval, release it.
func BenchmarkReadAcquireRelease(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	req := iv(1, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner := Owner(i + 1)
		if _, err := tbl.AcquireRead(ctx, owner, req, Options{}); err != nil {
			b.Fatal(err)
		}
		tbl.ReleaseUnfrozen(owner)
	}
}

// BenchmarkWriteAcquireFreeze measures the write path a committing
// transaction takes: lock a point, freeze it.
func BenchmarkWriteAcquireFreeze(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner := Owner(i + 1)
		point := timestamp.New(int64(i+1), 0)
		if _, err := tbl.AcquireWrite(ctx, owner, timestamp.NewSet(timestamp.Point(point)), Options{}); err != nil {
			b.Fatal(err)
		}
		tbl.FreezeWriteAt(owner, point)
		if i%1024 == 1023 {
			// keep the table from growing unboundedly
			tbl.PurgeFrozenBelow(point)
		}
	}
}

// BenchmarkOwned measures the commit-time candidate computation input.
func BenchmarkOwned(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	const owner = Owner(1)
	for i := int64(0); i < 16; i++ {
		_, _ = tbl.AcquireRead(ctx, owner, iv(i*10, i*10+5), Options{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ro, _ := tbl.Owned(owner)
		if ro.IsEmpty() {
			b.Fatal("owned must not be empty")
		}
	}
}

// BenchmarkContendedPartialWrite measures partial write acquisition
// against standing read locks.
func BenchmarkContendedPartialWrite(b *testing.B) {
	tbl := NewTable()
	ctx := context.Background()
	for i := int64(0); i < 8; i++ {
		_, _ = tbl.AcquireRead(ctx, Owner(1000+i), iv(i*20, i*20+9), Options{})
	}
	req := timestamp.NewSet(iv(0, 200))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := Owner(i + 1)
		res, err := tbl.AcquireWrite(ctx, owner, req, Options{Partial: true})
		if err != nil || res.Got.IsEmpty() {
			b.Fatalf("%v %v", res, err)
		}
		tbl.ReleaseUnfrozen(owner)
	}
}
