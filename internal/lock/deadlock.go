package lock

import (
	"sync"

	"github.com/lpd-epfl/mvtl/internal/clock"
)

// ErrDeadlock reports that blocking on a lock would close a cycle in the
// wait-for graph, or that an external deadlock detector chose this
// waiter as the victim of a cross-server cycle; the requester should
// abort its transaction instead of waiting (§4.3: "standard techniques
// for deadlock detection can be used to abort the required transactions
// (e.g., cycle detection in the wait-for graph, timeout)"). Timeouts
// remain the backstop for waits nothing else sees.
var ErrDeadlock = deadlockError{}

// deadlockError is a distinct sentinel type so errors.Is works on values.
type deadlockError struct{}

func (deadlockError) Error() string { return "lock: deadlock detected" }

// WaitEdge is one exported wait-for edge: Waiter blocks on a lock held
// by Holder, on the table labelled Key. Coordinators merge the edges of
// several servers into a global graph (cross-server deadlock detection);
// Key routes a victim abort back to the server where the victim parks.
type WaitEdge struct {
	Waiter, Holder Owner
	Key            string
}

// waitStripes is the number of edge-map stripes; a power of two so
// stripe selection is a mask.
const waitStripes = 16

// waitStripe is one shard of the wait-for edge map, holding the outgoing
// edges of the waiters it owns plus the waiters' external-abort state.
type waitStripe struct {
	mu sync.Mutex
	// edges[w][h] is the key label of the table where w waits for h.
	edges map[Owner]map[Owner]string
	// parked[w] is the wake slot of w's currently parked acquisition,
	// registered by Table.blockLocked so Abort can wake it.
	parked map[Owner]clock.Waiter
	// aborted marks waiters chosen as deadlock victims from outside;
	// the mark is consumed by the victim's own pre-park or post-wake
	// check in blockLocked.
	aborted map[Owner]struct{}
}

// WaitGraph is a wait-for graph over lock owners, shared by all lock
// tables of one store. Edges are sharded by waiter id so that
// registering and clearing waits touches only one stripe, and blocked
// acquisitions on different tables stop serializing on a single
// graph-wide mutex. The zero value is not ready; use NewWaitGraph.
//
// Cycle detection publishes before it checks: Wait first inserts the
// waiter's edges under the waiter's stripe lock, then runs an
// optimistic traversal that hops stripe locks one node at a time.
// Publish-before-check keeps detection deterministic under races: each
// stripe's mutex totally orders accesses to it, so of two (or k) waits
// racing to close a cycle, the last to publish must observe every
// earlier edge when its traversal runs — some participant always sees
// the cycle. A cycle seen optimistically may still be assembled from
// per-stripe snapshots of different moments, so before aborting anyone
// it is confirmed on a consistent view under all stripe locks, acquired
// in ascending stripe order (deterministic, so concurrent confirmations
// cannot deadlock with each other); on confirmation the just-published
// edges are retracted and ErrDeadlock returned. Racing participants can
// at worst both abort (the pre-sharding global-mutex graph aborted
// exactly one); they can never both park on an undetected cycle.
//
// Local detection cannot see cycles spanning several servers, so the
// graph additionally supports an external detector: Edges snapshots the
// current wait-for edges (each labelled with the key of the blocking
// table) for export over the wire, and Abort marks a waiter as a
// deadlock victim from outside, waking its parked acquisition so it
// returns ErrDeadlock instead of sleeping out the lock-wait timeout.
type WaitGraph struct {
	stripes [waitStripes]waitStripe
}

// NewWaitGraph returns an empty graph.
func NewWaitGraph() *WaitGraph {
	g := &WaitGraph{}
	for i := range g.stripes {
		g.stripes[i].edges = make(map[Owner]map[Owner]string)
		g.stripes[i].parked = make(map[Owner]clock.Waiter)
		g.stripes[i].aborted = make(map[Owner]struct{})
	}
	return g
}

// stripeOf returns the stripe owning o's outgoing edges.
func (g *WaitGraph) stripeOf(o Owner) *waitStripe {
	return &g.stripes[uint64(o)&(waitStripes-1)]
}

// Wait registers that waiter blocks on holders (on the table labelled
// key) and reports ErrDeadlock if doing so closes a cycle; in that case
// nothing is registered and the waiter should abort. Successful
// registrations must be cleared with Done after the wait (the caller
// re-registers on each wait round, since the blocking set changes).
// External victim marks are not consulted here — Wait also runs on
// behalf of third parties (the extend-parked path), which must not
// consume a mark destined for the waiter itself; blockLocked checks the
// mark before and after its park instead.
func (g *WaitGraph) Wait(waiter Owner, holders []Owner, key string) error {
	if len(holders) == 0 {
		return nil
	}
	for _, h := range holders {
		if h == waiter {
			// Waiting for yourself is trivially a cycle.
			return ErrDeadlock
		}
	}
	// Publish first (see the type comment: this is what makes racing
	// cycle formation always observable to at least one participant).
	st := g.stripeOf(waiter)
	st.mu.Lock()
	insertEdges(st, waiter, holders, key)
	st.mu.Unlock()
	if !g.reaches(holders, waiter) {
		return nil
	}
	// The optimistic traversal saw a cycle assembled from per-stripe
	// snapshots taken at different moments; confirm it on a consistent
	// view before aborting anyone.
	g.lockAll()
	defer g.unlockAll()
	if g.reachesLocked(holders, waiter) {
		// Retract the edges just published: on ErrDeadlock nothing
		// stays registered. Removing all waiter→holder edges is safe
		// even for a waiter that had earlier edges (the extend-parked
		// case): its waker observes the error, wakes it, and the
		// waiter's own Done clears the rest.
		removeEdges(st, waiter, holders)
		return ErrDeadlock
	}
	return nil
}

// removeEdges deletes the waiter→holder edges from waiter's stripe.
// Callers hold st.mu (directly or via lockAll).
func removeEdges(st *waitStripe, waiter Owner, holders []Owner) {
	set, ok := st.edges[waiter]
	if !ok {
		return
	}
	for _, h := range holders {
		delete(set, h)
	}
	if len(set) == 0 {
		delete(st.edges, waiter)
	}
}

// insertEdges adds waiter→holder edges labelled with key to waiter's
// stripe. Callers hold st.mu (at least); holders does not contain
// waiter.
func insertEdges(st *waitStripe, waiter Owner, holders []Owner, key string) {
	set, ok := st.edges[waiter]
	if !ok {
		set = make(map[Owner]string, len(holders))
		st.edges[waiter] = set
	}
	for _, h := range holders {
		set[h] = key
	}
}

// Done clears every edge out of waiter. Only the waiter's stripe is
// touched.
func (g *WaitGraph) Done(waiter Owner) {
	st := g.stripeOf(waiter)
	st.mu.Lock()
	delete(st.edges, waiter)
	st.mu.Unlock()
}

// Waiters returns the number of owners currently blocked, for
// monitoring.
func (g *WaitGraph) Waiters() int {
	n := 0
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		n += len(st.edges)
		st.mu.Unlock()
	}
	return n
}

// Edges appends a snapshot of the current wait-for edges to dst and
// returns it. Stripes are snapshotted one at a time, so the result may
// mix moments — external detectors must confirm a cycle (e.g. by
// re-polling) before acting, exactly as the local traversal confirms
// under lockAll.
func (g *WaitGraph) Edges(dst []WaitEdge) []WaitEdge {
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		for w, hs := range st.edges {
			for h, key := range hs {
				dst = append(dst, WaitEdge{Waiter: w, Holder: h, Key: key})
			}
		}
		st.mu.Unlock()
	}
	return dst
}

// IsWaiting reports whether o currently has outgoing wait-for edges or a
// parked acquisition, used to validate external victim aborts against a
// possibly stale remote snapshot.
func (g *WaitGraph) IsWaiting(o Owner) bool {
	st := g.stripeOf(o)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, parked := st.parked[o]
	_, waiting := st.edges[o]
	return parked || waiting
}

// Abort marks o as an externally chosen deadlock victim and wakes its
// parked acquisition, if any: the waiter's pre-park or post-wake check
// in blockLocked consumes the mark and returns ErrDeadlock. The
// signal send never blocks — if the table waker raced us the waiter is
// waking anyway and observes the mark. A mark for an owner that never
// waits again lingers until ClearAbort (the server's transaction-state
// GC clears it when the victim's record is purged).
func (g *WaitGraph) Abort(o Owner) {
	st := g.stripeOf(o)
	st.mu.Lock()
	st.aborted[o] = struct{}{}
	if w, ok := st.parked[o]; ok {
		w.Wake()
	}
	st.mu.Unlock()
}

// ClearAbort drops any unconsumed victim mark for o.
func (g *WaitGraph) ClearAbort(o Owner) {
	st := g.stripeOf(o)
	st.mu.Lock()
	delete(st.aborted, o)
	st.mu.Unlock()
}

// consumeAbort reports and clears o's victim mark.
func (g *WaitGraph) consumeAbort(o Owner) bool {
	st := g.stripeOf(o)
	st.mu.Lock()
	_, ok := st.aborted[o]
	if ok {
		delete(st.aborted, o)
	}
	st.mu.Unlock()
	return ok
}

// park registers o's parked signal channel so Abort can wake it;
// unpark removes the registration. Tables call these with the table
// mutex held; the stripe mutex nests inside it, same as Wait. If a
// victim mark arrived between the caller's pre-park check and the
// registration, park self-signals so the waiter wakes immediately and
// consumes the mark instead of sleeping out the timeout.
func (g *WaitGraph) park(o Owner, w clock.Waiter) {
	st := g.stripeOf(o)
	st.mu.Lock()
	st.parked[o] = w
	if _, ok := st.aborted[o]; ok {
		w.Wake()
	}
	st.mu.Unlock()
}

func (g *WaitGraph) unpark(o Owner) {
	st := g.stripeOf(o)
	st.mu.Lock()
	delete(st.parked, o)
	st.mu.Unlock()
}

// lockAll acquires every stripe in ascending index order; unlockAll
// releases them. The fixed order keeps concurrent full acquisitions
// deadlock-free.
func (g *WaitGraph) lockAll() {
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
	}
}

func (g *WaitGraph) unlockAll() {
	for i := range g.stripes {
		g.stripes[i].mu.Unlock()
	}
}

// outEdges appends the owners cur currently waits for to dst, locking
// only cur's stripe.
func (g *WaitGraph) outEdges(cur Owner, dst []Owner) []Owner {
	st := g.stripeOf(cur)
	st.mu.Lock()
	for next := range st.edges[cur] {
		dst = append(dst, next)
	}
	st.mu.Unlock()
	return dst
}

// reaches reports whether target is reachable from any of from,
// traversing stripe by stripe without a global lock. The common case —
// every holder is running, not waiting, so it has no outgoing edges —
// terminates without allocating.
func (g *WaitGraph) reaches(from []Owner, target Owner) bool {
	var stack []Owner
	for _, h := range from {
		stack = g.outEdges(h, stack)
	}
	var seen map[Owner]bool
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen == nil {
			seen = make(map[Owner]bool)
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = g.outEdges(cur, stack)
	}
	return false
}

// reachesLocked reports whether target is reachable from any of from via
// the wait-for edges. Callers hold every stripe lock.
func (g *WaitGraph) reachesLocked(from []Owner, target Owner) bool {
	seen := make(map[Owner]bool)
	stack := append([]Owner(nil), from...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range g.stripeOf(cur).edges[cur] {
			stack = append(stack, next)
		}
	}
	return false
}
