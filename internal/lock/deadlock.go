package lock

import "sync"

// ErrDeadlock reports that blocking on a lock would close a cycle in the
// wait-for graph; the requester should abort its transaction instead of
// waiting (§4.3: "standard techniques for deadlock detection can be used
// to abort the required transactions (e.g., cycle detection in the
// wait-for graph, timeout)"). Timeouts remain the backstop for waits the
// graph cannot see (e.g., across storage servers).
var ErrDeadlock = deadlockError{}

// deadlockError is a distinct sentinel type so errors.Is works on values.
type deadlockError struct{}

func (deadlockError) Error() string { return "lock: deadlock detected" }

// WaitGraph is a wait-for graph over lock owners, shared by all lock
// tables of one store. The zero value is not ready; use NewWaitGraph.
type WaitGraph struct {
	mu sync.Mutex
	// edges[w] is the set of owners w currently waits for.
	edges map[Owner]map[Owner]struct{}
}

// NewWaitGraph returns an empty graph.
func NewWaitGraph() *WaitGraph {
	return &WaitGraph{edges: make(map[Owner]map[Owner]struct{})}
}

// Wait registers that waiter blocks on holders and reports ErrDeadlock
// if doing so closes a cycle; in that case nothing is registered and the
// waiter should abort. Successful registrations must be cleared with
// Done after the wait (the caller re-registers on each wait round, since
// the blocking set changes).
func (g *WaitGraph) Wait(waiter Owner, holders []Owner) error {
	if len(holders) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// A cycle through waiter exists iff waiter is reachable from any of
	// the new holders.
	if g.reachesLocked(holders, waiter) {
		return ErrDeadlock
	}
	set, ok := g.edges[waiter]
	if !ok {
		set = make(map[Owner]struct{}, len(holders))
		g.edges[waiter] = set
	}
	for _, h := range holders {
		if h != waiter {
			set[h] = struct{}{}
		}
	}
	return nil
}

// Done clears every edge out of waiter.
func (g *WaitGraph) Done(waiter Owner) {
	g.mu.Lock()
	delete(g.edges, waiter)
	g.mu.Unlock()
}

// Waiters returns the number of owners currently blocked, for
// monitoring.
func (g *WaitGraph) Waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.edges)
}

// reachesLocked reports whether target is reachable from any of from via
// the wait-for edges. Callers hold g.mu.
func (g *WaitGraph) reachesLocked(from []Owner, target Owner) bool {
	seen := make(map[Owner]bool)
	stack := append([]Owner(nil), from...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range g.edges[cur] {
			stack = append(stack, next)
		}
	}
	return false
}
