package lock

import "sync"

// ErrDeadlock reports that blocking on a lock would close a cycle in the
// wait-for graph; the requester should abort its transaction instead of
// waiting (§4.3: "standard techniques for deadlock detection can be used
// to abort the required transactions (e.g., cycle detection in the
// wait-for graph, timeout)"). Timeouts remain the backstop for waits the
// graph cannot see (e.g., across storage servers).
var ErrDeadlock = deadlockError{}

// deadlockError is a distinct sentinel type so errors.Is works on values.
type deadlockError struct{}

func (deadlockError) Error() string { return "lock: deadlock detected" }

// waitStripes is the number of edge-map stripes; a power of two so
// stripe selection is a mask.
const waitStripes = 16

// waitStripe is one shard of the wait-for edge map, holding the outgoing
// edges of the waiters it owns.
type waitStripe struct {
	mu sync.Mutex
	// edges[w] is the set of owners w currently waits for.
	edges map[Owner]map[Owner]struct{}
}

// WaitGraph is a wait-for graph over lock owners, shared by all lock
// tables of one store. Edges are sharded by waiter id so that
// registering and clearing waits touches only one stripe, and blocked
// acquisitions on different tables stop serializing on a single
// graph-wide mutex. The zero value is not ready; use NewWaitGraph.
//
// Cycle detection publishes before it checks: Wait first inserts the
// waiter's edges under the waiter's stripe lock, then runs an
// optimistic traversal that hops stripe locks one node at a time.
// Publish-before-check keeps detection deterministic under races: each
// stripe's mutex totally orders accesses to it, so of two (or k) waits
// racing to close a cycle, the last to publish must observe every
// earlier edge when its traversal runs — some participant always sees
// the cycle. A cycle seen optimistically may still be assembled from
// per-stripe snapshots of different moments, so before aborting anyone
// it is confirmed on a consistent view under all stripe locks, acquired
// in ascending stripe order (deterministic, so concurrent confirmations
// cannot deadlock with each other); on confirmation the just-published
// edges are retracted and ErrDeadlock returned. Racing participants can
// at worst both abort (the pre-sharding global-mutex graph aborted
// exactly one); they can never both park on an undetected cycle.
type WaitGraph struct {
	stripes [waitStripes]waitStripe
}

// NewWaitGraph returns an empty graph.
func NewWaitGraph() *WaitGraph {
	g := &WaitGraph{}
	for i := range g.stripes {
		g.stripes[i].edges = make(map[Owner]map[Owner]struct{})
	}
	return g
}

// stripeOf returns the stripe owning o's outgoing edges.
func (g *WaitGraph) stripeOf(o Owner) *waitStripe {
	return &g.stripes[uint64(o)&(waitStripes-1)]
}

// Wait registers that waiter blocks on holders and reports ErrDeadlock
// if doing so closes a cycle; in that case nothing is registered and the
// waiter should abort. Successful registrations must be cleared with
// Done after the wait (the caller re-registers on each wait round, since
// the blocking set changes).
func (g *WaitGraph) Wait(waiter Owner, holders []Owner) error {
	if len(holders) == 0 {
		return nil
	}
	for _, h := range holders {
		if h == waiter {
			// Waiting for yourself is trivially a cycle.
			return ErrDeadlock
		}
	}
	// Publish first (see the type comment: this is what makes racing
	// cycle formation always observable to at least one participant).
	st := g.stripeOf(waiter)
	st.mu.Lock()
	insertEdges(st, waiter, holders)
	st.mu.Unlock()
	if !g.reaches(holders, waiter) {
		return nil
	}
	// The optimistic traversal saw a cycle assembled from per-stripe
	// snapshots taken at different moments; confirm it on a consistent
	// view before aborting anyone.
	g.lockAll()
	defer g.unlockAll()
	if g.reachesLocked(holders, waiter) {
		// Retract the edges just published: on ErrDeadlock nothing
		// stays registered. Removing all waiter→holder edges is safe
		// even for a waiter that had earlier edges (the extend-parked
		// case): its waker observes the error, wakes it, and the
		// waiter's own Done clears the rest.
		removeEdges(st, waiter, holders)
		return ErrDeadlock
	}
	return nil
}

// removeEdges deletes the waiter→holder edges from waiter's stripe.
// Callers hold st.mu (directly or via lockAll).
func removeEdges(st *waitStripe, waiter Owner, holders []Owner) {
	set, ok := st.edges[waiter]
	if !ok {
		return
	}
	for _, h := range holders {
		delete(set, h)
	}
	if len(set) == 0 {
		delete(st.edges, waiter)
	}
}

// insertEdges adds waiter→holder edges to waiter's stripe. Callers hold
// st.mu (at least); holders does not contain waiter.
func insertEdges(st *waitStripe, waiter Owner, holders []Owner) {
	set, ok := st.edges[waiter]
	if !ok {
		set = make(map[Owner]struct{}, len(holders))
		st.edges[waiter] = set
	}
	for _, h := range holders {
		set[h] = struct{}{}
	}
}

// Done clears every edge out of waiter. Only the waiter's stripe is
// touched.
func (g *WaitGraph) Done(waiter Owner) {
	st := g.stripeOf(waiter)
	st.mu.Lock()
	delete(st.edges, waiter)
	st.mu.Unlock()
}

// Waiters returns the number of owners currently blocked, for
// monitoring.
func (g *WaitGraph) Waiters() int {
	n := 0
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		n += len(st.edges)
		st.mu.Unlock()
	}
	return n
}

// lockAll acquires every stripe in ascending index order; unlockAll
// releases them. The fixed order keeps concurrent full acquisitions
// deadlock-free.
func (g *WaitGraph) lockAll() {
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
	}
}

func (g *WaitGraph) unlockAll() {
	for i := range g.stripes {
		g.stripes[i].mu.Unlock()
	}
}

// outEdges appends the owners cur currently waits for to dst, locking
// only cur's stripe.
func (g *WaitGraph) outEdges(cur Owner, dst []Owner) []Owner {
	st := g.stripeOf(cur)
	st.mu.Lock()
	for next := range st.edges[cur] {
		dst = append(dst, next)
	}
	st.mu.Unlock()
	return dst
}

// reaches reports whether target is reachable from any of from,
// traversing stripe by stripe without a global lock. The common case —
// every holder is running, not waiting, so it has no outgoing edges —
// terminates without allocating.
func (g *WaitGraph) reaches(from []Owner, target Owner) bool {
	var stack []Owner
	for _, h := range from {
		stack = g.outEdges(h, stack)
	}
	var seen map[Owner]bool
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen == nil {
			seen = make(map[Owner]bool)
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = g.outEdges(cur, stack)
	}
	return false
}

// reachesLocked reports whether target is reachable from any of from via
// the wait-for edges. Callers hold every stripe lock.
func (g *WaitGraph) reachesLocked(from []Owner, target Owner) bool {
	seen := make(map[Owner]bool)
	stack := append([]Owner(nil), from...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := range g.stripeOf(cur).edges[cur] {
			stack = append(stack, next)
		}
	}
	return false
}
