package version

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func ts(t int64) timestamp.Timestamp { return timestamp.New(t, 0) }

func TestNewListHasBottom(t *testing.T) {
	l := NewList()
	v, err := l.LatestBefore(ts(100))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsBottom() || v.TS != timestamp.Zero {
		t.Fatalf("initial version = %+v", v)
	}
	if l.Count() != 1 {
		t.Fatalf("Count = %d", l.Count())
	}
}

func TestInstallAndLookup(t *testing.T) {
	l := NewList()
	for _, p := range []int64{9, 2, 4} { // out of order install
		if err := l.Install(ts(p), []byte(fmt.Sprintf("v%d", p))); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		at   int64
		want string
	}{
		{3, "v2"},
		{4, "v2"}, // strictly before
		{5, "v4"},
		{10, "v9"},
	}
	for _, c := range cases {
		v, err := l.LatestBefore(ts(c.at))
		if err != nil {
			t.Fatal(err)
		}
		if string(v.Value) != c.want {
			t.Errorf("LatestBefore(%d) = %q want %q", c.at, v.Value, c.want)
		}
	}
	if v, err := l.LatestBefore(ts(1)); err != nil || !v.IsBottom() {
		t.Fatalf("LatestBefore(1) = %+v, %v", v, err)
	}
}

func TestLatestBeforeZero(t *testing.T) {
	l := NewList()
	if _, err := l.LatestBefore(timestamp.Zero); !errors.Is(err, ErrPurged) {
		t.Fatalf("nothing precedes Zero, got %v", err)
	}
}

func TestInstallWriteOnce(t *testing.T) {
	l := NewList()
	if err := l.Install(ts(5), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(ts(5), []byte("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestAt(t *testing.T) {
	l := NewList()
	if err := l.Install(ts(5), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if v, ok := l.At(ts(5)); !ok || string(v.Value) != "a" {
		t.Fatalf("At(5) = %+v %v", v, ok)
	}
	if _, ok := l.At(ts(6)); ok {
		t.Fatal("At(6) should miss")
	}
}

func TestLatest(t *testing.T) {
	l := NewList()
	if !l.Latest().IsBottom() {
		t.Fatal("latest of fresh list is bottom")
	}
	_ = l.Install(ts(3), []byte("x"))
	_ = l.Install(ts(9), []byte("y"))
	_ = l.Install(ts(6), []byte("z"))
	if got := l.Latest(); string(got.Value) != "y" {
		t.Fatalf("Latest = %+v", got)
	}
}

func TestPurgeBelowKeepsBoundary(t *testing.T) {
	l := NewList()
	for _, p := range []int64{2, 4, 6, 8} {
		_ = l.Install(ts(p), []byte(fmt.Sprintf("v%d", p)))
	}
	// history: ⊥@0, 2, 4, 6, 8
	removed := l.PurgeBelow(ts(7))
	if removed != 3 { // ⊥@0, 2, 4 removed; 6 kept as boundary
		t.Fatalf("removed %d, want 3", removed)
	}
	if l.Count() != 2 {
		t.Fatalf("Count = %d", l.Count())
	}
	// reads above the boundary still work
	if v, err := l.LatestBefore(ts(7)); err != nil || string(v.Value) != "v6" {
		t.Fatalf("LatestBefore(7) = %+v %v", v, err)
	}
	// reads at or below the boundary abort
	if _, err := l.LatestBefore(ts(6)); !errors.Is(err, ErrPurged) {
		t.Fatalf("want ErrPurged, got %v", err)
	}
	if _, err := l.LatestBefore(ts(3)); !errors.Is(err, ErrPurged) {
		t.Fatalf("want ErrPurged, got %v", err)
	}
}

func TestPurgeBelowNoop(t *testing.T) {
	l := NewList()
	_ = l.Install(ts(5), []byte("a"))
	if removed := l.PurgeBelow(ts(2)); removed != 0 {
		t.Fatalf("removed %d", removed)
	}
	if removed := l.PurgeBelow(timestamp.Zero); removed != 0 {
		t.Fatalf("removed %d", removed)
	}
}

func TestInstallBelowFloorFails(t *testing.T) {
	l := NewList()
	_ = l.Install(ts(4), []byte("a"))
	_ = l.Install(ts(8), []byte("b"))
	l.PurgeBelow(ts(8)) // floor becomes 4
	if err := l.Install(ts(3), []byte("late")); !errors.Is(err, ErrPurged) {
		t.Fatalf("want ErrPurged, got %v", err)
	}
	if err := l.Install(ts(9), []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	l := NewList()
	_ = l.Install(ts(1), []byte("a"))
	snap := l.Snapshot()
	snap[0] = Version{TS: ts(99)}
	if l.Snapshot()[0].TS == ts(99) {
		t.Fatal("Snapshot must copy")
	}
}

func TestConcurrentInstallAndRead(t *testing.T) {
	l := NewList()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				t := timestamp.New(int64(i), int32(g))
				_ = l.Install(t, []byte{byte(g)})
				if _, err := l.LatestBefore(timestamp.New(int64(i), int32(g+1))); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Count() != 8*200+1 {
		t.Fatalf("Count = %d", l.Count())
	}
	// snapshot sorted
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if !snap[i-1].TS.Before(snap[i].TS) {
			t.Fatalf("snapshot not sorted at %d", i)
		}
	}
}

// Property: LatestBefore(t) over random installs matches a brute-force
// model.
func TestQuickLatestBeforeMatchesModel(t *testing.T) {
	type probe struct {
		Installs []int64
		At       int64
	}
	gen := func(r *rand.Rand, _ int) reflect.Value {
		n := r.Intn(12)
		ins := make([]int64, n)
		for i := range ins {
			ins[i] = int64(r.Intn(40) + 1)
		}
		return reflect.ValueOf(probe{Installs: ins, At: int64(r.Intn(45))})
	}
	f := func(p probe) bool {
		l := NewList()
		installed := map[int64]bool{0: true}
		for _, x := range p.Installs {
			err := l.Install(ts(x), []byte{byte(x)})
			if installed[x] {
				if !errors.Is(err, ErrExists) {
					return false
				}
			} else if err != nil {
				return false
			}
			installed[x] = true
		}
		// model answer: largest installed < At
		var best int64 = -1
		for x := range installed {
			if x < p.At && x > best {
				best = x
			}
		}
		v, err := l.LatestBefore(ts(p.At))
		if best < 0 {
			return errors.Is(err, ErrPurged)
		}
		if err != nil {
			return false
		}
		return v.TS == ts(best)
	}
	cfg := &quick.Config{MaxCount: 1500, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = gen(r, 0)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
