// Package version implements the multiversion store: for each key, an
// ordered history of committed values indexed by timestamp.
//
// The paper models the data as an array Values[k, t] of write-once cells,
// with Values[k, 0] = ⊥ for every key (§4.1). This package keeps, per key,
// the committed versions sorted by timestamp, supports the latest-before
// lookup that reads need, and implements version purging (§6): versions
// older than a bound can be discarded — keeping the newest one below the
// bound — and transactions that would need a purged version are aborted.
package version

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Sentinel errors.
var (
	// ErrExists reports an attempt to install a second version at the
	// same timestamp; cells are write-once (§4.2).
	ErrExists = errors.New("version: version already exists at timestamp")
	// ErrPurged reports that the requested version may have been purged,
	// so the lookup cannot be answered reliably; the transaction must
	// abort (§6).
	ErrPurged = errors.New("version: version purged")
)

// Version is one committed value of a key. A nil Value represents ⊥ (the
// key holds no data at this version).
type Version struct {
	TS    timestamp.Timestamp
	Value []byte
}

// IsBottom reports whether the version carries no data.
func (v Version) IsBottom() bool { return v.Value == nil }

// List is the version history of a single key. The zero value is not
// ready for use; call NewList. A new List holds the initial version ⊥ at
// timestamp Zero.
type List struct {
	mu       sync.RWMutex
	versions []Version // sorted by TS ascending; never empty
	// floor is the timestamp of the oldest version whose predecessors
	// are all intact: lookups at or below floor are unreliable after a
	// purge and return ErrPurged.
	floor timestamp.Timestamp
}

// NewList returns a history containing only the initial version ⊥.
func NewList() *List {
	return &List{versions: []Version{{TS: timestamp.Zero}}}
}

// LatestBefore returns the version with the largest timestamp strictly
// below t. It returns ErrPurged if that version may have been discarded,
// and ErrPurged also when t is Zero (nothing precedes Zero).
func (l *List) LatestBefore(t timestamp.Timestamp) (Version, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if t.AtOrBefore(l.floor) {
		return Version{}, fmt.Errorf("latest before %v: %w", t, ErrPurged)
	}
	i := sort.Search(len(l.versions), func(i int) bool {
		return l.versions[i].TS.AtOrAfter(t)
	})
	if i == 0 {
		// No version below t survived; t <= floor was already handled,
		// so this means t <= the initial version's timestamp.
		return Version{}, fmt.Errorf("latest before %v: %w", t, ErrPurged)
	}
	return l.versions[i-1], nil
}

// At returns the version committed exactly at t, if any.
func (l *List) At(t timestamp.Timestamp) (Version, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i := sort.Search(len(l.versions), func(i int) bool {
		return l.versions[i].TS.AtOrAfter(t)
	})
	if i < len(l.versions) && l.versions[i].TS == t {
		return l.versions[i], true
	}
	return Version{}, false
}

// Latest returns the newest version.
func (l *List) Latest() Version {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.versions[len(l.versions)-1]
}

// Install exposes a committed value at timestamp t (Alg. 1 line 19).
// Cells are write-once: installing twice at the same timestamp fails with
// ErrExists, and installing below the purge floor fails with ErrPurged.
func (l *List) Install(t timestamp.Timestamp, value []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t.AtOrBefore(l.floor) {
		return fmt.Errorf("install at %v: %w", t, ErrPurged)
	}
	i := sort.Search(len(l.versions), func(i int) bool {
		return l.versions[i].TS.AtOrAfter(t)
	})
	if i < len(l.versions) && l.versions[i].TS == t {
		return fmt.Errorf("install at %v: %w", t, ErrExists)
	}
	l.versions = append(l.versions, Version{})
	copy(l.versions[i+1:], l.versions[i:])
	l.versions[i] = Version{TS: t, Value: value}
	return nil
}

// PurgeBelow discards versions with timestamps below t, keeping the
// newest version below t (so that readers above t still find their
// snapshot), and returns the number of versions discarded. The purge
// floor rises to the kept boundary version's timestamp.
func (l *List) PurgeBelow(t timestamp.Timestamp) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.versions), func(i int) bool {
		return l.versions[i].TS.AtOrAfter(t)
	})
	// versions[0..i-1] are below t; keep the last of them.
	if i <= 1 {
		return 0
	}
	removed := i - 1
	l.versions = append(l.versions[:0], l.versions[removed:]...)
	if l.versions[0].TS.After(l.floor) {
		l.floor = l.versions[0].TS
	}
	return removed
}

// Count returns the number of stored versions (including the boundary
// and initial versions).
func (l *List) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.versions)
}

// Snapshot returns a copy of the history, oldest first.
func (l *List) Snapshot() []Version {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Version, len(l.versions))
	copy(out, l.versions)
	return out
}
