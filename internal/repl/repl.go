// Package repl is the replication layer for partitioned MVTL clusters:
// each partition becomes a small replica chain whose head serializes
// all lock/freeze/decide traffic and streams committed version installs
// down-chain through the wire package's bulk-transfer family (snapshot
// chunks + log tail).
//
// The membership authority is deliberately tiny — a Director holding
// one epoch-stamped View per partition. Coordinators cache views and
// stamp every mutating request with the view's epoch; servers reject
// mismatches with wire.StatusWrongEpoch, so a promotion fences every
// coordinator still routing to the old head (the epoch pattern of
// bounded-timestamp membership constructions: authority small, data
// path fat). The Director itself is not replicated — in this repo it is
// embedded in the cluster harness; a production deployment would put it
// on its own consensus group.
package repl

import (
	"fmt"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// View is one partition's membership as of an epoch: the serving head
// and the standbys behind it, in chain order.
type View struct {
	// Epoch increments on every membership change; 0 is never a valid
	// replicated epoch (coordinators use 0 for "unreplicated").
	Epoch uint64
	// Head is the address serving the partition's traffic.
	Head string
	// Standbys are the warm replicas, first in line first.
	Standbys []string
}

// Director is the membership authority: one epoch-stamped View per
// partition. All methods are safe for concurrent use.
type Director struct {
	mu    sync.Mutex
	views []View
}

// NewDirector builds a director over the initial chains: chains[p][0]
// is partition p's head, the rest its standbys. Every partition starts
// at epoch 1.
func NewDirector(chains [][]string) *Director {
	d := &Director{views: make([]View, len(chains))}
	for p, chain := range chains {
		v := View{Epoch: 1, Head: chain[0]}
		v.Standbys = append(v.Standbys, chain[1:]...)
		d.views[p] = v
	}
	return d
}

// Partitions returns the number of partitions directed.
func (d *Director) Partitions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.views)
}

// View returns partition p's current membership. The slice header is
// shared; callers must not mutate Standbys.
func (d *Director) View(p int) View {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.views[p]
}

// Promote makes partition p's first standby the head under a new epoch
// and returns the new view. The old head is dropped from the chain (its
// lock state died with it; it can rejoin as a fresh standby via
// AddStandby). Fails if the partition has no standby to promote.
func (d *Director) Promote(p int) (View, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.views[p]
	if len(v.Standbys) == 0 {
		return View{}, fmt.Errorf("repl: partition %d has no standby to promote", p)
	}
	next := View{Epoch: v.Epoch + 1, Head: v.Standbys[0]}
	next.Standbys = append(next.Standbys, v.Standbys[1:]...)
	d.views[p] = next
	return next, nil
}

// AddStandby appends addr to partition p's chain (a freshly joined,
// catching-up replica) and returns the updated view. Membership gains
// do not fence coordinators, so the epoch is unchanged.
func (d *Director) AddStandby(p int, addr string) View {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.views[p]
	next := View{Epoch: v.Epoch, Head: v.Head}
	next.Standbys = append(next.Standbys, v.Standbys...)
	next.Standbys = append(next.Standbys, addr)
	d.views[p] = next
	return next
}

// Record is one replicated version install: a transaction committed
// Value to Key at timestamp TS. LSN orders installs per partition.
type Record struct {
	LSN   uint64
	Key   string
	TS    timestamp.Timestamp
	Value []byte
}

// DefaultLogCap bounds a partition log's retained records; older
// records are trimmed and pulls from before the trim point are answered
// with "snapshot needed".
const DefaultLogCap = 1 << 16

// Log is one replica's partition log: the LSN-ordered sequence of
// committed version installs. Heads append as they install; standbys
// append the records they pull, at the head's LSNs, so a promoted
// standby can serve catch-up to the next joiner without a gap. All
// methods are safe for concurrent use.
type Log struct {
	mu sync.Mutex
	// start is recs[0]'s LSN. A fresh log starts at 1; a snapshot-joined
	// replica starts wherever its first pulled record lands.
	start uint64
	recs  []Record
	cap   int
}

// NewLog returns an empty log retaining at most capacity records
// (DefaultLogCap if capacity is 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultLogCap
	}
	return &Log{start: 1, cap: capacity}
}

// Append assigns the next LSN to a head-side install and returns it.
// Value is retained as-is; the caller must pass an owned copy.
func (l *Log) Append(key string, ts timestamp.Timestamp, value []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.start + uint64(len(l.recs))
	l.recs = append(l.recs, Record{LSN: lsn, Key: key, TS: ts, Value: value})
	l.trimLocked()
	return lsn
}

// AppendAt installs a pulled record at the head's LSN on a standby's
// log. Records at or below the current tail are duplicates of the
// snapshot/tail overlap and are dropped; a gap above the tail reports
// an error (the pull loop re-syncs via snapshot). An empty log adopts
// the record's LSN as its start, which is how a snapshot-joined replica
// anchors its log mid-stream.
func (l *Log) AppendAt(lsn uint64, key string, ts timestamp.Timestamp, value []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.start + uint64(len(l.recs))
	if len(l.recs) == 0 {
		l.start = lsn
		next = lsn
	}
	if lsn < next {
		return nil
	}
	if lsn > next {
		return fmt.Errorf("repl: log gap: have next %d, got %d", next, lsn)
	}
	l.recs = append(l.recs, Record{LSN: lsn, Key: key, TS: ts, Value: value})
	l.trimLocked()
	return nil
}

// Reset discards the log's contents; the next AppendAt re-anchors it.
// Standbys reset before (re-)snapshotting: the records between the old
// tail and the new snapshot's watermark were never pulled, and the log
// must stay contiguous to serve From.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.start = 1
	l.recs = l.recs[:0]
}

// trimLocked drops the oldest records beyond the retention cap.
func (l *Log) trimLocked() {
	if over := len(l.recs) - l.cap; over > 0 {
		l.start += uint64(over)
		l.recs = append(l.recs[:0], l.recs[over:]...)
	}
}

// NextLSN returns the next LSN this log would assign (1 + the tail's
// LSN; equal to start on an empty log).
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start + uint64(len(l.recs))
}

// From appends up to max records starting at LSN from to dst and
// returns it, plus the log's next LSN and whether from predates the
// retained window (the puller must snapshot first). The returned
// records share the log's backing; callers must not mutate them.
func (l *Log) From(dst []Record, from uint64, max int) (out []Record, next uint64, trimmed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next = l.start + uint64(len(l.recs))
	if from < l.start {
		return dst, next, true
	}
	if from >= next {
		return dst, next, false
	}
	i := int(from - l.start)
	n := len(l.recs) - i
	if max > 0 && n > max {
		n = max
	}
	return append(dst, l.recs[i:i+n]...), next, false
}
