package repl

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func TestDirectorPromote(t *testing.T) {
	d := NewDirector([][]string{{"a", "a1"}, {"b", "b1", "b2"}})
	if got := d.Partitions(); got != 2 {
		t.Fatalf("partitions = %d, want 2", got)
	}
	v := d.View(0)
	if v.Epoch != 1 || v.Head != "a" || len(v.Standbys) != 1 || v.Standbys[0] != "a1" {
		t.Fatalf("initial view = %+v", v)
	}

	v, err := d.Promote(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 2 || v.Head != "a1" || len(v.Standbys) != 0 {
		t.Fatalf("promoted view = %+v", v)
	}
	if _, err := d.Promote(0); err == nil {
		t.Fatal("promote with no standby should fail")
	}

	v = d.AddStandby(0, "a")
	if v.Epoch != 2 || v.Head != "a1" || len(v.Standbys) != 1 || v.Standbys[0] != "a" {
		t.Fatalf("rejoined view = %+v", v)
	}

	// Partition 1 is untouched.
	if v := d.View(1); v.Epoch != 1 || v.Head != "b" {
		t.Fatalf("partition 1 view = %+v", v)
	}
	v, err = d.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Head != "b1" || len(v.Standbys) != 1 || v.Standbys[0] != "b2" {
		t.Fatalf("partition 1 promoted view = %+v", v)
	}
}

func ts(n int64) timestamp.Timestamp { return timestamp.New(n, 0) }

func TestLogAppendFrom(t *testing.T) {
	l := NewLog(0)
	if got := l.NextLSN(); got != 1 {
		t.Fatalf("fresh NextLSN = %d, want 1", got)
	}
	for i := int64(1); i <= 5; i++ {
		if lsn := l.Append("k", ts(i), []byte{byte(i)}); lsn != uint64(i) {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
	recs, next, trimmed := l.From(nil, 3, 0)
	if trimmed || next != 6 || len(recs) != 3 || recs[0].LSN != 3 || recs[2].LSN != 5 {
		t.Fatalf("From(3) = %v next=%d trimmed=%v", recs, next, trimmed)
	}
	recs, next, trimmed = l.From(recs[:0], 6, 0)
	if trimmed || next != 6 || len(recs) != 0 {
		t.Fatalf("From(6) = %v next=%d trimmed=%v", recs, next, trimmed)
	}
	// max caps the batch.
	recs, _, _ = l.From(nil, 1, 2)
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("From(1, max 2) = %v", recs)
	}
}

func TestLogTrim(t *testing.T) {
	l := NewLog(3)
	for i := int64(1); i <= 10; i++ {
		l.Append("k", ts(i), nil)
	}
	if _, next, trimmed := l.From(nil, 1, 0); !trimmed || next != 11 {
		t.Fatalf("pull below trim point: trimmed=%v next=%d", trimmed, next)
	}
	recs, _, trimmed := l.From(nil, 8, 0)
	if trimmed || len(recs) != 3 || recs[0].LSN != 8 {
		t.Fatalf("From(8) = %v trimmed=%v", recs, trimmed)
	}
}

func TestLogAppendAt(t *testing.T) {
	l := NewLog(0)
	// A snapshot-joined standby anchors mid-stream.
	if err := l.AppendAt(40, "k", ts(1), nil); err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 41 {
		t.Fatalf("NextLSN after anchor = %d, want 41", got)
	}
	// Duplicates of the snapshot/tail overlap are dropped.
	if err := l.AppendAt(40, "k", ts(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAt(41, "k", ts(2), nil); err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 42 {
		t.Fatalf("NextLSN = %d, want 42", got)
	}
	// Gaps are errors.
	if err := l.AppendAt(50, "k", ts(3), nil); err == nil {
		t.Fatal("gap not detected")
	}
}
