// Package metrics provides the counters and time-series sampling used by
// the experimental evaluation (§8.3): aggregate throughput of committed
// transactions, commit rate (fraction of transaction attempts that
// commit), and periodic state-size probes.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counters accumulates workload events. All methods are safe for
// concurrent use. The zero value is ready to use.
type Counters struct {
	commits  atomic.Int64
	aborts   atomic.Int64
	restarts atomic.Int64
	reads    atomic.Int64
	writes   atomic.Int64
	// recording gates accumulation so that a warm-up phase (§8.3) can
	// run without polluting measurements.
	recording atomic.Bool
}

// SetRecording toggles whether events are accumulated.
func (c *Counters) SetRecording(on bool) { c.recording.Store(on) }

// Recording reports whether events are being accumulated.
func (c *Counters) Recording() bool { return c.recording.Load() }

// Commit records one committed transaction attempt.
func (c *Counters) Commit() {
	if c.recording.Load() {
		c.commits.Add(1)
	}
}

// Abort records one aborted transaction attempt.
func (c *Counters) Abort() {
	if c.recording.Load() {
		c.aborts.Add(1)
	}
}

// Restart records that an aborted transaction was retried.
func (c *Counters) Restart() {
	if c.recording.Load() {
		c.restarts.Add(1)
	}
}

// Ops records read and write operations executed.
func (c *Counters) Ops(reads, writes int) {
	if c.recording.Load() {
		c.reads.Add(int64(reads))
		c.writes.Add(int64(writes))
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Commits  int64
	Aborts   int64
	Restarts int64
	Reads    int64
	Writes   int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Commits:  c.commits.Load(),
		Aborts:   c.aborts.Load(),
		Restarts: c.restarts.Load(),
		Reads:    c.reads.Load(),
		Writes:   c.writes.Load(),
	}
}

// Attempts returns the total number of transaction attempts.
func (s Snapshot) Attempts() int64 { return s.Commits + s.Aborts }

// CommitRate returns the fraction of attempts that committed, in [0, 1];
// it is 0 when nothing ran.
func (s Snapshot) CommitRate() float64 {
	if a := s.Attempts(); a > 0 {
		return float64(s.Commits) / float64(a)
	}
	return 0
}

// Sub returns the event deltas s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Commits:  s.Commits - o.Commits,
		Aborts:   s.Aborts - o.Aborts,
		Restarts: s.Restarts - o.Restarts,
		Reads:    s.Reads - o.Reads,
		Writes:   s.Writes - o.Writes,
	}
}

// ReplCounters accumulates replication-layer events on one server:
// epoch fences tripped, promotions served, and catch-up bytes streamed
// to joining replicas. Unlike Counters these are not warm-up gated —
// replication events are rare and always worth counting. The zero value
// is ready to use; servers expose the totals through wire.StatsResp
// alongside LiveTxns.
type ReplCounters struct {
	promotions   atomic.Int64
	wrongEpoch   atomic.Int64
	catchupBytes atomic.Int64
}

// Promotion records this server being promoted to partition head.
func (c *ReplCounters) Promotion() { c.promotions.Add(1) }

// WrongEpoch records one frame rejected by the epoch fence.
func (c *ReplCounters) WrongEpoch() { c.wrongEpoch.Add(1) }

// CatchupBytes records n bytes of snapshot or log-tail payload streamed
// to a catching-up replica.
func (c *ReplCounters) CatchupBytes(n int) { c.catchupBytes.Add(int64(n)) }

// ReplSnapshot is a point-in-time copy of the replication counters.
type ReplSnapshot struct {
	Promotions   int64
	WrongEpoch   int64
	CatchupBytes int64
}

// Snapshot returns the current replication counter values.
func (c *ReplCounters) Snapshot() ReplSnapshot {
	return ReplSnapshot{
		Promotions:   c.promotions.Load(),
		WrongEpoch:   c.wrongEpoch.Load(),
		CatchupBytes: c.catchupBytes.Load(),
	}
}

// Point is one sample of a time series.
type Point struct {
	// Elapsed is the time since sampling started.
	Elapsed time.Duration
	// Values holds named measurements at this instant.
	Values map[string]float64
}

// Sampler periodically invokes a probe function and stores its samples;
// it backs the over-time experiments (Figures 6 and 7).
type Sampler struct {
	interval time.Duration
	probe    func() map[string]float64

	mu     sync.Mutex
	points []Point

	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler calling probe every interval once started.
func NewSampler(interval time.Duration, probe func() map[string]float64) *Sampler {
	return &Sampler{
		interval: interval,
		probe:    probe,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start begins sampling in a background goroutine; call Stop to finish.
func (s *Sampler) Start() {
	start := time.Now()
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				vals := s.probe()
				s.mu.Lock()
				s.points = append(s.points, Point{Elapsed: time.Since(start), Values: vals})
				s.mu.Unlock()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop ends sampling and waits for the sampling goroutine to exit.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}

// Points returns the collected samples in order.
func (s *Sampler) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}
