package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCountersGatedByRecording(t *testing.T) {
	var c Counters
	c.Commit()
	c.Abort()
	if s := c.Snapshot(); s.Commits != 0 || s.Aborts != 0 {
		t.Fatalf("events before recording must be dropped: %+v", s)
	}
	c.SetRecording(true)
	if !c.Recording() {
		t.Fatal("recording flag lost")
	}
	c.Commit()
	c.Commit()
	c.Abort()
	c.Restart()
	c.Ops(3, 2)
	s := c.Snapshot()
	if s.Commits != 2 || s.Aborts != 1 || s.Restarts != 1 || s.Reads != 3 || s.Writes != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	c.SetRecording(false)
	c.Commit()
	if c.Snapshot().Commits != 2 {
		t.Fatal("events after recording must be dropped")
	}
}

func TestSnapshotMath(t *testing.T) {
	s := Snapshot{Commits: 30, Aborts: 10}
	if s.Attempts() != 40 {
		t.Fatalf("Attempts = %d", s.Attempts())
	}
	if got := s.CommitRate(); got != 0.75 {
		t.Fatalf("CommitRate = %v", got)
	}
	if (Snapshot{}).CommitRate() != 0 {
		t.Fatal("empty commit rate must be 0")
	}
	d := s.Sub(Snapshot{Commits: 10, Aborts: 5})
	if d.Commits != 20 || d.Aborts != 5 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	c.SetRecording(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Commit()
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Commits; got != 8000 {
		t.Fatalf("Commits = %d", got)
	}
}

func TestSampler(t *testing.T) {
	n := 0
	s := NewSampler(5*time.Millisecond, func() map[string]float64 {
		n++
		return map[string]float64{"n": float64(n)}
	})
	s.Start()
	time.Sleep(40 * time.Millisecond)
	s.Stop()
	pts := s.Points()
	if len(pts) < 3 {
		t.Fatalf("too few samples: %d", len(pts))
	}
	for i, p := range pts {
		if p.Values["n"] != float64(i+1) {
			t.Fatalf("sample %d = %+v", i, p)
		}
		if i > 0 && p.Elapsed <= pts[i-1].Elapsed {
			t.Fatalf("elapsed not increasing at %d", i)
		}
	}
}
