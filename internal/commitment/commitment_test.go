package commitment

import (
	"sync"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

func TestFirstProposalWins(t *testing.T) {
	var o Object
	d1 := o.Decide(Decision{Kind: wire.DecideCommit, TS: timestamp.New(5, 1)})
	if d1.Kind != wire.DecideCommit {
		t.Fatalf("d1 = %+v", d1)
	}
	d2 := o.Decide(Decision{Kind: wire.DecideAbort})
	if d2.Kind != wire.DecideCommit || d2.TS != timestamp.New(5, 1) {
		t.Fatalf("later proposal must not override: %+v", d2)
	}
}

func TestDecidedBeforeAndAfter(t *testing.T) {
	var o Object
	if _, ok := o.Decided(); ok {
		t.Fatal("fresh object must be undecided")
	}
	o.Decide(Decision{Kind: wire.DecideAbort})
	d, ok := o.Decided()
	if !ok || d.Kind != wire.DecideAbort {
		t.Fatalf("%+v %v", d, ok)
	}
}

// TestAgreementUnderContention: many goroutines race proposals; all must
// observe the same decision (the Agreement property of §H.2).
func TestAgreementUnderContention(t *testing.T) {
	for round := 0; round < 50; round++ {
		var o Object
		const racers = 16
		out := make([]Decision, racers)
		var wg sync.WaitGroup
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				kind := wire.DecideCommit
				if i%2 == 0 {
					kind = wire.DecideAbort
				}
				out[i] = o.Decide(Decision{Kind: kind, TS: timestamp.New(int64(i), 0)})
			}(i)
		}
		wg.Wait()
		for i := 1; i < racers; i++ {
			if out[i] != out[0] {
				t.Fatalf("round %d: decisions diverge: %+v vs %+v", round, out[0], out[i])
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Object(1)
	b := r.Object(1)
	if a != b {
		t.Fatal("registry must return the same object per txn")
	}
	if r.Object(2) == a {
		t.Fatal("distinct txns get distinct objects")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.Forget(1)
	if r.Len() != 1 {
		t.Fatalf("Len after Forget = %d", r.Len())
	}
	if r.Object(1) == a {
		t.Fatal("forgotten object must be recreated")
	}
}
