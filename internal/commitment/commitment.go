// Package commitment implements the per-transaction commitment object of
// the distributed MVTL algorithm (§7/§H): a consensus object deciding the
// outcome of a transaction — "abort" or "commit with timestamp t" — such
// that coordinator and storage servers all agree even when the
// coordinator fails.
//
// The implementation follows §H.1's efficient scheme: each transaction
// designates one storage server (typically the first server reached by a
// write) as its decision point; proposals race on that server and the
// first to arrive wins. Since storage servers are modelled as reliable
// logical entities (replicated in practice), first-proposal-wins on a
// single process solves consensus among the participants.
package commitment

import (
	"sync"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Decision is the agreed transaction outcome.
type Decision struct {
	Kind wire.DecisionKind
	// TS is the commit timestamp when Kind is DecideCommit.
	TS timestamp.Timestamp
}

// Object decides the fate of one transaction. The zero value is ready to
// use. Decide is idempotent and first-proposal-wins, which provides the
// uniform-consensus properties of §H.2 (validity, integrity, agreement)
// within a single reliable process.
type Object struct {
	mu      sync.Mutex
	decided bool
	d       Decision
}

// Decide proposes an outcome and returns the agreed decision: the
// proposal itself if this was the first proposal, the previously agreed
// decision otherwise.
func (o *Object) Decide(proposal Decision) Decision {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.decided {
		o.d = proposal
		o.decided = true
	}
	return o.d
}

// Decided returns the decision if one was reached.
func (o *Object) Decided() (Decision, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.d, o.decided
}

// Registry holds the commitment objects of a decision server, one per
// transaction, created on demand. The zero value is not ready; use
// NewRegistry.
type Registry struct {
	mu   sync.Mutex
	objs map[uint64]*Object
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{objs: make(map[uint64]*Object)}
}

// Object returns the commitment object for txn, creating it if needed.
func (r *Registry) Object(txn uint64) *Object {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[txn]
	if !ok {
		o = &Object{}
		r.objs[txn] = o
	}
	return o
}

// Forget drops the object for txn (after its outcome has been applied
// everywhere); keeping registries bounded.
func (r *Registry) Forget(txn uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.objs, txn)
}

// Len returns the number of live objects, for monitoring.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.objs)
}
