package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/workload"
)

// probeInterval paces the availability probe. Small enough to resolve a
// millisecond-scale failover dip, large enough that the probe itself is
// a negligible fraction of the cell's load.
const probeInterval = 100 * time.Microsecond

// RunFailoverCell measures what a partition-head failover costs the
// clients. It runs the cell's workload on a replicated cluster and,
// halfway through the measurement window, fails partition 0 over with
// cluster.FailoverKill: routes flip, the old head is fenced and
// drained into its standby, the standby starts serving, the old head is
// crash-stopped. Throughout, a dedicated probe client runs read
// transactions against a partition-0 key outside the workload keyspace
// (so probe failures can only come from unavailability, never from
// lock conflicts); the gap the probe observes around the failover is
// the row's AvailabilityDipMS / RecoveryMS, and ReplicaLag is the
// standby's catch-up lag sampled under load just before the kill.
//
// The whole history — workload and probe — is recorded and
// serializability-checked; a violation fails the run. Committed
// transactions must survive the failover, not just availability.
func RunFailoverCell(ctx context.Context, cell Cell) (Row, error) {
	if cell.Replicas < 2 {
		cell.Replicas = 2
	}
	if cell.Keys == 0 {
		cell.Keys = 10000
	}
	rec := &history.Recorder{}
	c, err := cluster.Start(cluster.Config{
		Servers:  cell.Servers,
		Replicas: cell.Replicas,
		Bed:      cell.Bed,
		Recorder: rec,
		// Bound every client RPC: during the failover window calls to
		// the fenced or dying head must fail fast, not hang the probe.
		CallTimeout: 2 * time.Second,
		ServerConfig: server.Config{
			LockWaitTimeout:  500 * time.Millisecond,
			WriteLockTimeout: 2 * time.Second,
			ScanInterval:     250 * time.Millisecond,
		},
	})
	if err != nil {
		return Row{}, err
	}
	defer c.Close()

	// A partition-0 probe key outside the workload keyspace.
	probeKey := ""
	for i := cell.Keys; ; i++ {
		if strhash.FNV1a(workload.Key(i))%uint32(cell.Servers) == 0 {
			probeKey = workload.Key(i)
			break
		}
	}
	probeCl, err := c.NewClient(cell.Mode, cell.Delta, nil)
	if err != nil {
		return Row{}, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Probe bookkeeping: the last success before the first failure, the
	// first failure, and the first success after it.
	var (
		probeMu    sync.Mutex
		lastOK     time.Time
		firstFail  time.Time
		firstAfter time.Time
		probeDown  bool
	)
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for runCtx.Err() == nil {
			ok := func() bool {
				tx, err := probeCl.Begin(runCtx)
				if err != nil {
					return false
				}
				if _, err := tx.Read(runCtx, probeKey); err != nil {
					_ = tx.Abort(runCtx)
					return false
				}
				return tx.Commit(runCtx) == nil
			}()
			// A failure caused by the run winding down (cancel fails the
			// in-flight attempt) is not an observation of the partition.
			if runCtx.Err() != nil {
				return
			}
			now := time.Now()
			probeMu.Lock()
			switch {
			case ok && !probeDown:
				lastOK = now
			case ok && probeDown && firstAfter.IsZero():
				firstAfter = now
			case !ok && !probeDown:
				probeDown = true
				firstFail = now
			}
			probeMu.Unlock()
			time.Sleep(probeInterval)
		}
	}()

	// Fail partition 0 over halfway through the measurement window.
	var (
		lag     int64
		failErr error
	)
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		select {
		case <-time.After(cell.WarmUp + cell.Measure/2):
		case <-runCtx.Done():
			failErr = runCtx.Err()
			return
		}
		lag = c.ReplicaLag(0)
		_, failErr = c.FailoverKill(0)
	}()

	row, err := runOnCluster(ctx, c, cell, nil)
	if err != nil {
		return Row{}, err
	}
	<-killDone
	if failErr != nil {
		return Row{}, fmt.Errorf("bench: failover: %w", failErr)
	}

	// Give the probe a moment to observe the recovered partition, then
	// stop it. The wait must cover a couple of CallTimeouts: the probe
	// attempt straddling the kill can hang for the full 2s before it
	// fails, evicts the dead connection and retries on the new head.
	for i := 0; i < 6000; i++ {
		probeMu.Lock()
		recovered := !probeDown || !firstAfter.IsZero()
		probeMu.Unlock()
		if recovered {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	probeWG.Wait()

	probeMu.Lock()
	if probeDown {
		if firstAfter.IsZero() {
			probeMu.Unlock()
			return Row{}, fmt.Errorf("bench: probe never saw partition 0 recover after the failover")
		}
		row.AvailabilityDipMS = float64(firstAfter.Sub(lastOK)) / float64(time.Millisecond)
		row.RecoveryMS = float64(firstAfter.Sub(firstFail)) / float64(time.Millisecond)
	}
	row.ReplicaLag = lag
	probeMu.Unlock()

	if cerr := history.CheckCommits(rec.Commits()); cerr != nil {
		return Row{}, fmt.Errorf("bench: failover cell not serializable: %w", cerr)
	}
	return row, nil
}
