// Package bench is the experiment harness reproducing the paper's
// evaluation (§8): for every figure it assembles the right test bed
// (cluster of storage servers over the in-memory network model), drives
// it with closed-loop clients, and prints the same data series the paper
// reports — throughput and commit rate per protocol.
//
// Protocols compared (as in §8): MVTIL-early, MVTIL-late, MVTO+
// (distributed timestamp ordering) and 2PL (distributed pessimistic
// locking), all over the same servers and wire protocol.
//
// Absolute numbers differ from the paper (different hardware, language
// and network substitute); the reproduction target is the shape: who
// wins, where MVTO+'s commit rate collapses, how GC bounds state size.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/metrics"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/workload"
)

// Engines compared throughout §8.4, in presentation order.
var Engines = []client.Mode{
	client.ModeTO,
	client.ModePessimistic,
	client.ModeTILEarly,
	client.ModeTILLate,
}

// Cell is one experiment cell: a protocol under a workload on a bed.
type Cell struct {
	Mode    client.Mode
	Bed     cluster.Bed
	Servers int
	Clients int
	// Replicas is the per-partition replication factor for the failover
	// experiment (RunFailoverCell); 0 keeps ordinary cells unreplicated.
	Replicas int
	// TCP runs the cell over real loopback sockets instead of the
	// bed's in-memory latency model, so batching and pipelining wins
	// are measured against actual per-frame syscalls.
	TCP bool
	// Conns sizes each coordinator's RPC connection pool per server
	// (0 = the single-connection default).
	Conns int
	// Workload shape (§8.3).
	OpsPerTxn int
	WriteFrac float64
	Keys      int
	// ValueSize is the written value length in bytes (0 keeps the
	// paper's 8-byte cells); larger values expose the frame path's
	// copy costs.
	ValueSize int
	// BatchReads issues each transaction's leading reads as one
	// GetMulti (see workload.Config.BatchReads).
	BatchReads bool
	// Delta is the MVTIL interval width (µs).
	Delta int64
	// Timing.
	WarmUp  time.Duration
	Measure time.Duration
	// Retry restarts aborted transactions once (the paper's clients may
	// restart with an adjusted interval).
	Retry bool
}

// Row is the measured outcome of one cell.
type Row struct {
	Cell
	Throughput float64
	CommitRate float64
	Commits    int64
	Aborts     int64

	// Failover measurements (RunFailoverCell only; see its doc for the
	// probe that produces them).
	//
	// AvailabilityDipMS is the longest client-observed outage on the
	// failed-over partition: last successful probe before the first
	// failure to the first success after. RecoveryMS runs from the
	// first failed probe to that same first success — always within
	// the dip, and tighter by one probe interval plus the last good
	// transaction's duration.
	AvailabilityDipMS float64
	RecoveryMS        float64
	// ReplicaLag is the partition's standby lag in log records sampled
	// immediately before the failover — how far behind the warm standby
	// was running under load when it was asked to take over.
	ReplicaLag int64
}

// String renders the row as a table line.
func (r Row) String() string {
	net := ""
	if r.TCP {
		net = " tcp"
	}
	if r.Conns > 1 {
		net += fmt.Sprintf(" conns=%d", r.Conns)
	}
	if r.ValueSize > 0 {
		net += fmt.Sprintf(" val=%dB", r.ValueSize)
	}
	if r.BatchReads {
		net += " getmulti"
	}
	if r.Replicas > 1 {
		net += fmt.Sprintf(" repl=%d", r.Replicas)
	}
	line := fmt.Sprintf("%-12s srv=%d cli=%-3d ops=%-2d wr=%3.0f%% keys=%-6d%s | %8.0f txs/s  commit=%.3f",
		r.Mode, r.Servers, r.Clients, r.OpsPerTxn, r.WriteFrac*100, r.Keys, net, r.Throughput, r.CommitRate)
	if r.Replicas > 1 {
		line += fmt.Sprintf("  dip=%.2fms recover=%.2fms lag=%d", r.AvailabilityDipMS, r.RecoveryMS, r.ReplicaLag)
	}
	return line
}

// MarshalJSON renders the row flat for machine-readable output
// (mvtl-bench -json): the protocol by name, the workload shape, and the
// measured outcome — the same fields the BENCH_*.json trajectory files
// track, so future runs can be diffed against them mechanically.
// Failover rows (Replicas > 1) additionally carry the replication
// measurements — availability_dip_ms, recovery_ms and replica_lag are
// always present there (a zero lag is a statement, not an omission) and
// never on ordinary rows.
func (r Row) MarshalJSON() ([]byte, error) {
	if r.Replicas > 1 {
		return json.Marshal(struct {
			Mode              string  `json:"mode"`
			Servers           int     `json:"servers"`
			Replicas          int     `json:"replicas"`
			Clients           int     `json:"clients"`
			OpsPerTxn         int     `json:"ops_per_txn"`
			WriteFrac         float64 `json:"write_frac"`
			Keys              int     `json:"keys"`
			Throughput        float64 `json:"txs_per_sec"`
			CommitRate        float64 `json:"commit_rate"`
			Commits           int64   `json:"commits"`
			Aborts            int64   `json:"aborts"`
			AvailabilityDipMS float64 `json:"availability_dip_ms"`
			RecoveryMS        float64 `json:"recovery_ms"`
			ReplicaLag        int64   `json:"replica_lag"`
		}{
			Mode: r.Mode.String(), Servers: r.Servers, Replicas: r.Replicas,
			Clients: r.Clients, OpsPerTxn: r.OpsPerTxn, WriteFrac: r.WriteFrac,
			Keys: r.Keys, Throughput: r.Throughput, CommitRate: r.CommitRate,
			Commits: r.Commits, Aborts: r.Aborts,
			AvailabilityDipMS: r.AvailabilityDipMS, RecoveryMS: r.RecoveryMS,
			ReplicaLag: r.ReplicaLag,
		})
	}
	return json.Marshal(struct {
		Mode       string  `json:"mode"`
		Servers    int     `json:"servers"`
		Clients    int     `json:"clients"`
		TCP        bool    `json:"tcp,omitempty"`
		Conns      int     `json:"conns,omitempty"`
		OpsPerTxn  int     `json:"ops_per_txn"`
		WriteFrac  float64 `json:"write_frac"`
		Keys       int     `json:"keys"`
		ValueSize  int     `json:"value_size,omitempty"`
		BatchReads bool    `json:"getmulti,omitempty"`
		Throughput float64 `json:"txs_per_sec"`
		CommitRate float64 `json:"commit_rate"`
		Commits    int64   `json:"commits"`
		Aborts     int64   `json:"aborts"`
	}{
		Mode: r.Mode.String(), Servers: r.Servers, Clients: r.Clients,
		TCP: r.TCP, Conns: r.Conns, OpsPerTxn: r.OpsPerTxn,
		WriteFrac: r.WriteFrac, Keys: r.Keys, ValueSize: r.ValueSize,
		BatchReads: r.BatchReads, Throughput: r.Throughput,
		CommitRate: r.CommitRate, Commits: r.Commits, Aborts: r.Aborts,
	})
}

// pool round-robins Begin across several coordinator connections so that
// many client goroutines do not funnel through a single connection.
type pool struct {
	clients []*client.Client
	next    atomic.Uint64
}

var _ kv.DB = (*pool)(nil)

// Begin implements kv.DB.
func (p *pool) Begin(ctx context.Context) (kv.Txn, error) {
	i := p.next.Add(1)
	return p.clients[i%uint64(len(p.clients))].Begin(ctx)
}

// coordinatorsFor sizes the connection pool: one coordinator per ~8
// client threads, at least one.
func coordinatorsFor(clients int) int {
	n := clients / 8
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// RunCell measures one cell on a fresh cluster.
func RunCell(ctx context.Context, cell Cell) (Row, error) {
	var network transport.Network
	if cell.TCP {
		network = transport.TCP{}
	}
	c, err := cluster.Start(cluster.Config{
		Servers:        cell.Servers,
		Bed:            cell.Bed,
		Network:        network,
		ConnsPerServer: cell.Conns,
		ServerConfig: server.Config{
			LockWaitTimeout:  500 * time.Millisecond,
			WriteLockTimeout: 2 * time.Second,
			ScanInterval:     250 * time.Millisecond,
		},
	})
	if err != nil {
		return Row{}, err
	}
	defer c.Close()
	return runOnCluster(ctx, c, cell, nil)
}

// runOnCluster drives an existing cluster with the cell's workload.
func runOnCluster(ctx context.Context, c *cluster.Cluster, cell Cell, sampler *metrics.Sampler) (Row, error) {
	return runOnClusterCounted(ctx, c, cell, sampler, nil)
}

// runOnClusterCounted is runOnCluster with externally observable
// counters (for the over-time experiments).
func runOnClusterCounted(ctx context.Context, c *cluster.Cluster, cell Cell, sampler *metrics.Sampler, ctr *metrics.Counters) (Row, error) {
	p := &pool{}
	for i := 0; i < coordinatorsFor(cell.Clients); i++ {
		cl, err := c.NewClient(cell.Mode, cell.Delta, nil)
		if err != nil {
			return Row{}, err
		}
		p.clients = append(p.clients, cl)
	}
	res, err := workload.RunWithSampler(ctx, p, workload.Config{
		Clients:       cell.Clients,
		OpsPerTxn:     cell.OpsPerTxn,
		WriteFraction: cell.WriteFrac,
		Keys:          cell.Keys,
		ValueSize:     cell.ValueSize,
		BatchReads:    cell.BatchReads,
		WarmUp:        cell.WarmUp,
		Measure:       cell.Measure,
		TxnTimeout:    2 * time.Second,
		Retry:         cell.Retry,
		Counters:      ctr,
	}, sampler)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Cell:       cell,
		Throughput: res.Throughput(),
		CommitRate: res.CommitRate(),
		Commits:    res.Commits,
		Aborts:     res.Aborts,
	}, nil
}

// Sweep runs a list of cells, printing each row as it completes.
func Sweep(ctx context.Context, w io.Writer, cells []Cell) ([]Row, error) {
	rows := make([]Row, 0, len(cells))
	for _, cell := range cells {
		row, err := RunCell(ctx, cell)
		if err != nil {
			return rows, fmt.Errorf("cell %+v: %w", cell, err)
		}
		fmt.Fprintln(w, row)
		rows = append(rows, row)
	}
	return rows, nil
}

// Scale compresses the paper's client counts onto a single machine; the
// paper sweeps up to 600 clients over dozens of cores — we keep the
// shape with a smaller range.
type Scale struct {
	// ClientPoints replaces the x-axis of the concurrency sweeps.
	ClientPoints []int
	// Measure per cell.
	Measure time.Duration
	// WarmUp per cell.
	WarmUp time.Duration
}

// DefaultScale is used by the go-test benchmarks; cmd/mvtl-bench can run
// bigger sweeps.
func DefaultScale() Scale {
	return Scale{
		ClientPoints: []int{4, 8, 16, 32, 64},
		Measure:      1200 * time.Millisecond,
		WarmUp:       300 * time.Millisecond,
	}
}

// QuickScale is a fast smoke-test scale for unit tests.
func QuickScale() Scale {
	return Scale{
		ClientPoints: []int{4, 8},
		Measure:      250 * time.Millisecond,
		WarmUp:       50 * time.Millisecond,
	}
}
