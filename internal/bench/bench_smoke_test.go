package bench

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
)

// TestRunCellSmoke runs one tiny cell per engine end to end.
func TestRunCellSmoke(t *testing.T) {
	sc := QuickScale()
	for _, mode := range Engines {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			row, err := RunCell(context.Background(), Cell{
				Mode: mode, Bed: cluster.BedLocal, Servers: 2,
				Clients: 4, OpsPerTxn: 4, WriteFrac: 0.25, Keys: 200,
				Delta: 5000, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
			if err != nil {
				t.Fatal(err)
			}
			if row.Commits == 0 {
				t.Fatalf("no commits: %+v", row)
			}
			if !strings.Contains(row.String(), "txs/s") {
				t.Fatalf("row rendering: %q", row.String())
			}
		})
	}
}

// TestRunFailoverCellSmoke kills a partition head halfway through a
// small measured window and requires the cell to finish with commits, a
// serializable history (RunFailoverCell fails the run otherwise) and a
// recovery observation from the availability probe.
func TestRunFailoverCellSmoke(t *testing.T) {
	row, err := RunFailoverCell(context.Background(), Cell{
		Mode: client.ModeTILEarly, Bed: cluster.BedLocal, Servers: 2, Replicas: 2,
		Clients: 4, OpsPerTxn: 4, WriteFrac: 0.25, Keys: 200,
		Delta: 5000, WarmUp: 100 * time.Millisecond, Measure: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.Commits == 0 {
		t.Fatalf("no commits: %+v", row)
	}
	if row.RecoveryMS > row.AvailabilityDipMS {
		t.Fatalf("recovery %.3fms exceeds the dip %.3fms: the probe's last success precedes the kill",
			row.RecoveryMS, row.AvailabilityDipMS)
	}
	if !strings.Contains(row.String(), "dip=") {
		t.Fatalf("failover row rendering: %q", row.String())
	}
}

// TestFig1Smoke regenerates Figure 1 at smoke scale and checks the
// series is complete.
func TestFig1Smoke(t *testing.T) {
	rows, err := Fig1(context.Background(), io.Discard, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	want := len(Engines) * len(QuickScale().ClientPoints)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
}

// TestFig6Smoke regenerates the state-size experiment at smoke scale and
// checks the GC variant ends with less lock state than the no-GC one.
func TestFig6Smoke(t *testing.T) {
	series, err := Fig6(context.Background(), io.Discard, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	gc := series["mvtil-gc"]
	nogc := series["mvtil-early"]
	if len(gc) == 0 || len(nogc) == 0 {
		t.Fatalf("missing series: gc=%d nogc=%d", len(gc), len(nogc))
	}
	gcLast := gc[len(gc)-1]
	nogcLast := nogc[len(nogc)-1]
	if gcLast.Versions >= nogcLast.Versions {
		t.Logf("warning: gc versions %d >= nogc %d (short smoke window)", gcLast.Versions, nogcLast.Versions)
	}
}

// TestCoordinatorsFor pins the pool sizing policy.
func TestCoordinatorsFor(t *testing.T) {
	cases := map[int]int{1: 1, 7: 1, 8: 1, 16: 2, 64: 8, 400: 16}
	for clients, want := range cases {
		if got := coordinatorsFor(clients); got != want {
			t.Errorf("coordinatorsFor(%d) = %d want %d", clients, got, want)
		}
	}
}

var _ = client.ModeTILEarly // keep the import grouped with its siblings
