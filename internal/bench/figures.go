package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/metrics"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// delta is the MVTIL interval width used throughout the evaluation
// (Δ = 5ms, §8).
const delta = 5000

// Fig1 reproduces Figure 1: throughput and commit rate versus the number
// of clients on the local bed (20 ops/txn, 25% writes, 10K keys,
// 3 servers).
func Fig1(ctx context.Context, w io.Writer, sc Scale) ([]Row, error) {
	fmt.Fprintln(w, "== Figure 1: concurrency sweep, local bed (20 ops, 25% writes, 10K keys, 3 servers) ==")
	var cells []Cell
	for _, mode := range Engines {
		for _, clients := range sc.ClientPoints {
			cells = append(cells, Cell{
				Mode: mode, Bed: cluster.BedLocal, Servers: 3,
				Clients: clients, OpsPerTxn: 20, WriteFrac: 0.25, Keys: 10_000,
				Delta: delta, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
		}
	}
	return Sweep(ctx, w, cells)
}

// Fig2 reproduces Figure 2: the same sweep on the cloud bed (50K keys,
// 8 servers, slow jittery network).
func Fig2(ctx context.Context, w io.Writer, sc Scale) ([]Row, error) {
	fmt.Fprintln(w, "== Figure 2: concurrency sweep, cloud bed (20 ops, 25% writes, 50K keys, 8 servers) ==")
	var cells []Cell
	for _, mode := range Engines {
		for _, clients := range sc.ClientPoints {
			cells = append(cells, Cell{
				Mode: mode, Bed: cluster.BedCloud, Servers: 8,
				Clients: clients, OpsPerTxn: 20, WriteFrac: 0.25, Keys: 50_000,
				Delta: delta, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
		}
	}
	return Sweep(ctx, w, cells)
}

// Fig3 reproduces Figure 3: throughput and commit rate versus the write
// fraction (local bed, fixed concurrency, 20 ops, 10K keys). The paper
// uses 90 clients; the scale's largest point stands in.
func Fig3(ctx context.Context, w io.Writer, sc Scale) ([]Row, error) {
	fmt.Fprintln(w, "== Figure 3: write-fraction sweep, local bed (20 ops, 10K keys, 3 servers) ==")
	clients := sc.ClientPoints[len(sc.ClientPoints)-1]
	var cells []Cell
	for _, mode := range []client.Mode{client.ModeTO, client.ModePessimistic, client.ModeTILEarly} {
		for _, wf := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			cells = append(cells, Cell{
				Mode: mode, Bed: cluster.BedLocal, Servers: 3,
				Clients: clients, OpsPerTxn: 20, WriteFrac: wf, Keys: 10_000,
				Delta: delta, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
		}
	}
	return Sweep(ctx, w, cells)
}

// Fig4 reproduces Figure 4: small transactions (8 operations, 50%
// writes) under increasing concurrency on the local bed.
func Fig4(ctx context.Context, w io.Writer, sc Scale) ([]Row, error) {
	fmt.Fprintln(w, "== Figure 4: small transactions (8 ops, 50% writes, 10K keys, 3 servers) ==")
	var cells []Cell
	for _, mode := range Engines {
		for _, clients := range sc.ClientPoints {
			cells = append(cells, Cell{
				Mode: mode, Bed: cluster.BedLocal, Servers: 3,
				Clients: clients, OpsPerTxn: 8, WriteFrac: 0.5, Keys: 10_000,
				Delta: delta, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
		}
	}
	return Sweep(ctx, w, cells)
}

// Fig5 reproduces Figure 5: throughput versus the number of servers on
// the cloud bed, at 75% and 50% reads, fixed client count.
func Fig5(ctx context.Context, w io.Writer, sc Scale) ([]Row, error) {
	fmt.Fprintln(w, "== Figure 5: server sweep, cloud bed (20 ops, 100K keys) ==")
	clients := sc.ClientPoints[len(sc.ClientPoints)-1]
	var cells []Cell
	for _, wf := range []float64{0.25, 0.5} {
		for _, mode := range Engines {
			for _, servers := range []int{1, 2, 4, 8} {
				cells = append(cells, Cell{
					Mode: mode, Bed: cluster.BedCloud, Servers: servers,
					Clients: clients, OpsPerTxn: 20, WriteFrac: wf, Keys: 100_000,
					Delta: delta, WarmUp: sc.WarmUp, Measure: sc.Measure,
				})
			}
		}
	}
	return Sweep(ctx, w, cells)
}

// StatePoint is one sample of the state-size experiments.
type StatePoint struct {
	Elapsed  time.Duration
	Locks    int64
	Versions int64
	Commits  int64
}

// Fig6 reproduces Figure 6: the number of locks and versions over time
// with garbage collection off (MVTO+ and MVTIL-early) and on (MVTIL-GC
// with a periodic purge). It returns one series per engine.
func Fig6(ctx context.Context, w io.Writer, sc Scale) (map[string][]StatePoint, error) {
	fmt.Fprintln(w, "== Figure 6: lock and version state over time, GC on and off (20 ops, 50% writes, 8K keys) ==")
	configs := []struct {
		name  string
		mode  client.Mode
		purge bool
	}{
		{name: "mvto+", mode: client.ModeTO, purge: false},
		{name: "mvtil-early", mode: client.ModeTILEarly, purge: false},
		{name: "mvtil-gc", mode: client.ModeTILEarly, purge: true},
	}
	out := make(map[string][]StatePoint, len(configs))
	for _, cfgv := range configs {
		series, err := stateRun(ctx, cfgv.mode, cfgv.purge, sc)
		if err != nil {
			return out, err
		}
		out[cfgv.name] = series
		for _, p := range series {
			fmt.Fprintf(w, "%-12s t=%5.1fs locks=%-8d versions=%-8d\n",
				cfgv.name, p.Elapsed.Seconds(), p.Locks, p.Versions)
		}
	}
	return out, nil
}

// Fig7 reproduces Figure 7: throughput and commit rate over time with
// GC on and off; without purging, throughput decays as state accumulates.
func Fig7(ctx context.Context, w io.Writer, sc Scale) (map[string][]StatePoint, error) {
	fmt.Fprintln(w, "== Figure 7: performance over time, GC on and off ==")
	configs := []struct {
		name  string
		mode  client.Mode
		purge bool
	}{
		{name: "mvto+", mode: client.ModeTO, purge: false},
		{name: "mvtil-early", mode: client.ModeTILEarly, purge: false},
		{name: "mvtil-gc", mode: client.ModeTILEarly, purge: true},
	}
	out := make(map[string][]StatePoint, len(configs))
	for _, cfgv := range configs {
		series, err := stateRun(ctx, cfgv.mode, cfgv.purge, sc)
		if err != nil {
			return out, err
		}
		out[cfgv.name] = series
		var prev int64
		for _, p := range series {
			fmt.Fprintf(w, "%-12s t=%5.1fs commits/interval=%-8d\n",
				cfgv.name, p.Elapsed.Seconds(), p.Commits-prev)
			prev = p.Commits
		}
	}
	return out, nil
}

// stateRun drives one over-time configuration, sampling server state
// periodically; with purge enabled the timestamp service broadcasts a
// recent bound, bounding the state (§8.4.5).
func stateRun(ctx context.Context, mode client.Mode, purge bool, sc Scale) ([]StatePoint, error) {
	c, err := cluster.Start(cluster.Config{
		Servers: 3,
		Bed:     cluster.BedLocal,
		ServerConfig: server.Config{
			LockWaitTimeout:  500 * time.Millisecond,
			WriteLockTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// The measurement runs several sampling intervals long.
	measure := 6 * sc.Measure
	sampleEvery := measure / 8
	if purge {
		if err := c.StartTimestampService(sampleEvery, sampleEvery/2); err != nil {
			return nil, err
		}
	}

	statsCl, err := c.NewClient(client.ModeTILEarly, delta, nil)
	if err != nil {
		return nil, err
	}

	var ctr metrics.Counters
	var mu sync.Mutex
	var series []StatePoint
	start := time.Now()
	sampler := metrics.NewSampler(sampleEvery, func() map[string]float64 {
		var locks, versions int64
		for _, addr := range c.Addrs() {
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			st, err := statsCl.ServerStats(sctx, addr)
			cancel()
			if err == nil {
				locks += st.LockEntries
				versions += st.Versions
			}
		}
		mu.Lock()
		series = append(series, StatePoint{
			Elapsed:  time.Since(start),
			Locks:    locks,
			Versions: versions,
			Commits:  ctr.Snapshot().Commits,
		})
		mu.Unlock()
		return map[string]float64{"locks": float64(locks), "versions": float64(versions)}
	})

	cell := Cell{
		Mode: mode, Bed: cluster.BedLocal, Servers: 3,
		Clients: 16, OpsPerTxn: 20, WriteFrac: 0.5, Keys: 8_000,
		Delta: delta, WarmUp: 0, Measure: measure,
	}
	if _, err := runOnClusterCounted(ctx, c, cell, sampler, &ctr); err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]StatePoint(nil), series...), nil
}

// PurgeNow forces an immediate purge below now on all servers of a
// cluster; exposed for the ablation benchmarks.
func PurgeNow(ctx context.Context, c *cluster.Cluster) error {
	cl, err := c.NewClient(client.ModeTILEarly, delta, nil)
	if err != nil {
		return err
	}
	_, _, err = cl.PurgeServers(ctx, timestamp.New(time.Now().UnixMicro(), 0))
	return err
}
