package timestamp

import (
	"math/rand"
	"testing"
)

// randSetPair returns a random normalized set together with the raw
// intervals it was built from.
func randSet(r *rand.Rand, maxIvs int) Set {
	var s Set
	for i, n := 0, r.Intn(maxIvs+1); i < n; i++ {
		lo := int64(r.Intn(200))
		s.AddInPlace(iv(lo, lo+int64(r.Intn(20))))
	}
	return s
}

func TestAddInPlaceMatchesAdd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		s := randSet(r, 5)
		lo := int64(r.Intn(220))
		x := iv(lo, lo+int64(r.Intn(25)))
		want := s.Add(x)
		got := s
		got.AddInPlace(x)
		if !got.Equal(want) {
			t.Fatalf("AddInPlace(%v, %v) = %v, want %v", s, x, got, want)
		}
	}
}

func TestUnionInPlaceMatchesUnion(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a, b := randSet(r, 5), randSet(r, 5)
		want := a.Union(b)
		got := a
		got.UnionInPlace(b)
		if !got.Equal(want) {
			t.Fatalf("UnionInPlace(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestIntersectIntoMatchesIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		a, b := randSet(r, 5), randSet(r, 5)
		want := a.Intersect(b)
		got := a
		got.IntersectInto(b)
		if !got.Equal(want) {
			t.Fatalf("IntersectInto(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestSubtractIntoMatchesSubtract(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		a, b := randSet(r, 5), randSet(r, 5)
		want := a.Subtract(b)
		got := a
		got.SubtractInto(b)
		if !got.Equal(want) {
			t.Fatalf("SubtractInto(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestInPlaceOpsPreserveNormalization checks the Set invariant — sorted,
// disjoint, non-adjacent, non-empty intervals — after chains of in-place
// mutations.
func TestInPlaceOpsPreserveNormalization(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var s Set
	for trial := 0; trial < 5000; trial++ {
		lo := int64(r.Intn(300))
		x := iv(lo, lo+int64(r.Intn(30)))
		switch r.Intn(4) {
		case 0:
			s.AddInPlace(x)
		case 1:
			s.UnionInPlace(NewSet(x))
		case 2:
			s.IntersectInto(NewSet(x, iv(lo+40, lo+80)))
		case 3:
			s.SubtractInto(NewSet(iv(lo, lo+3)))
		}
		assertNormalized(t, s)
	}
}

func assertNormalized(t *testing.T, s Set) {
	t.Helper()
	for i := 0; i < s.NumIntervals(); i++ {
		cur := s.At(i)
		if cur.IsEmpty() {
			t.Fatalf("set %v holds empty interval at %d", s, i)
		}
		if i > 0 {
			prev := s.At(i - 1)
			if !prev.Hi.Next().Before(cur.Lo) {
				t.Fatalf("set %v not normalized at %d: %v then %v", s, i, prev, cur)
			}
		}
	}
}

// TestSubtractIntoDoesNotCorruptAliasedSource checks the documented
// safety property the lock table relies on: subtracting into a value
// copy must leave the original intact even when the set has spilled.
func TestSubtractIntoDoesNotCorruptAliasedSource(t *testing.T) {
	orig := NewSet(iv(0, 10), iv(20, 30), iv(40, 50), iv(60, 70)) // spilled
	snapshot := orig.Intervals()
	cpy := orig
	cpy.SubtractInto(NewSet(iv(5, 45)))
	for i, want := range snapshot {
		if orig.At(i) != want {
			t.Fatalf("source set corrupted: interval %d = %v, want %v", i, orig.At(i), want)
		}
	}
	want := NewSet(
		Span(New(0, 0), New(5, 0).Prev()),
		Span(New(45, 0).Next(), New(50, 0)),
		iv(60, 70))
	if !cpy.Equal(want) {
		t.Fatalf("difference = %v, want %v", cpy, want)
	}
}

// TestInlineSpillBoundary exercises the transition from inline to heap
// storage in both directions.
func TestInlineSpillBoundary(t *testing.T) {
	var s Set
	for i := int64(0); i < 6; i++ {
		s.AddInPlace(iv(i*10, i*10+4))
		if got := s.NumIntervals(); got != int(i)+1 {
			t.Fatalf("after %d adds: %d intervals (%v)", i+1, got, s)
		}
	}
	// Shrink back under the inline capacity; the set stays correct.
	s.IntersectInto(NewSet(iv(0, 14)))
	if want := NewSet(iv(0, 4), iv(10, 14)); !s.Equal(want) {
		t.Fatalf("shrunk set = %v, want %v", s, want)
	}
	s.SubtractInto(NewSet(iv(10, 14)))
	if want := NewSet(iv(0, 4)); !s.Equal(want) {
		t.Fatalf("shrunk set = %v, want %v", s, want)
	}
}

// TestAppendIntervalsReusesBuffer checks the copy-free iteration helper.
func TestAppendIntervalsReusesBuffer(t *testing.T) {
	s := NewSet(iv(1, 2), iv(9, 12))
	buf := make([]Interval, 0, 8)
	out := s.AppendIntervals(buf)
	if len(out) != 2 || out[0] != iv(1, 2) || out[1] != iv(9, 12) {
		t.Fatalf("AppendIntervals = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendIntervals did not reuse the provided buffer")
	}
}

// TestResetKeepsCapacity checks that a Reset set rebuilds into its old
// spilled storage without allocating, and still behaves as empty.
func TestResetKeepsCapacity(t *testing.T) {
	var s Set
	for i := int64(0); i < 6; i++ {
		s.AddInPlace(iv(i*10, i*10+4))
	}
	s.Reset()
	if !s.IsEmpty() || s.NumIntervals() != 0 {
		t.Fatalf("after Reset: %v", s)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		for i := int64(0); i < 6; i++ {
			s.AddInPlace(iv(i*10, i*10+4))
		}
	})
	if allocs != 0 {
		t.Fatalf("rebuild after Reset allocated %.1f times per run", allocs)
	}
	want := NewSet(iv(0, 4), iv(10, 14), iv(20, 24), iv(30, 34), iv(40, 44), iv(50, 54))
	if !s.Equal(want) {
		t.Fatalf("rebuilt set = %v, want %v", s, want)
	}
}

// TestResetOnInlineAndZeroSets checks Reset on sets that never spilled.
func TestResetOnInlineAndZeroSets(t *testing.T) {
	var zero Set
	zero.Reset()
	if !zero.IsEmpty() {
		t.Fatalf("zero set after Reset: %v", zero)
	}
	s := NewSet(iv(1, 2))
	s.Reset()
	if !s.IsEmpty() {
		t.Fatalf("inline set after Reset: %v", s)
	}
	s.AddInPlace(iv(7, 9))
	if want := NewSet(iv(7, 9)); !s.Equal(want) {
		t.Fatalf("rebuilt inline set = %v, want %v", s, want)
	}
}
