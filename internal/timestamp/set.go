package timestamp

import (
	"sort"
	"strings"
)

// smallSetIvs is the number of intervals a Set can hold inline, without
// touching the heap. Hot-path sets — a transaction's shrinking candidate
// interval, the owned portion of a lock table, a conflict set — almost
// always hold one or two intervals (one range, or a range split once
// around a frozen point), so two covers the common case.
const smallSetIvs = 2

// spilledSet marks a Set whose intervals live in the heap slice instead
// of the inline array.
const spilledSet = -1

// Set is a set of timestamps represented as a normalized sequence of
// disjoint, non-adjacent, non-empty intervals sorted by Lo. The zero value
// is the empty set.
//
// Sets represent the candidate commit timestamps a transaction still has
// available: the generic commit step (§4.3, Alg. 1 line 13) intersects the
// locked timestamps across all keys in the read and write sets, and
// policies such as ε-clock shrink their set as lock acquisition partially
// fails.
//
// Up to smallSetIvs intervals are stored inline in the struct, so small
// sets never allocate and copying a small set by value copies its storage.
// Larger sets spill to a heap slice.
//
// Two kinds of methods are provided. Value-receiver methods (Add, Union,
// Intersect, Subtract, ...) are persistent: they leave the receiver
// untouched and return a new set. Pointer-receiver methods (AddInPlace,
// UnionInPlace, IntersectInto, SubtractInto) update the receiver without
// allocating in the common case; they must only be called on a set this
// code path uniquely owns (one it built locally or received as the sole
// copy), because a spilled receiver shares its backing slice with any
// value copies made of it.
type Set struct {
	// n is the number of intervals in inline, or spilledSet when the
	// intervals live in ivs.
	n      int8
	inline [smallSetIvs]Interval
	ivs    []Interval
}

// view returns the set's intervals without copying. The result aliases
// the receiver's storage and must be treated as read-only.
func (s *Set) view() []Interval {
	if s.n >= 0 {
		return s.inline[:s.n]
	}
	return s.ivs
}

// appendIv appends iv to the set. The caller guarantees normalization:
// iv is non-empty and starts after the current last interval with a gap.
func (s *Set) appendIv(iv Interval) {
	if s.n >= 0 {
		if int(s.n) < smallSetIvs {
			s.inline[s.n] = iv
			s.n++
			return
		}
		if cap(s.ivs) >= smallSetIvs {
			// A Reset left reusable spilled capacity behind (normal
			// operations always enter the spill with ivs == nil).
			s.ivs = s.ivs[:smallSetIvs]
		} else {
			s.ivs = make([]Interval, s.n, smallSetIvs*2)
		}
		copy(s.ivs, s.inline[:s.n])
		s.n = spilledSet
	}
	s.ivs = append(s.ivs, iv)
}

// setLast replaces the last interval of a non-empty set.
func (s *Set) setLast(iv Interval) {
	if s.n >= 0 {
		s.inline[s.n-1] = iv
		return
	}
	s.ivs[len(s.ivs)-1] = iv
}

// clear empties the set, dropping any spilled storage (it may be aliased
// by the caller's input view, so it is never reused).
func (s *Set) clear() {
	s.n = 0
	s.ivs = nil
}

// Reset empties the set but keeps any spilled storage for reuse, so a
// scratch set that is repeatedly rebuilt (for example the Owned
// snapshots of the commit step) stops allocating once it has grown. The
// receiver must be uniquely owned: value copies of a spilled set share
// its backing slice, and a rebuild after Reset overwrites it.
func (s *Set) Reset() {
	s.n = 0
	s.ivs = s.ivs[:0]
}

// NewSet builds a set from the given intervals (which may overlap or be
// unsorted; empty intervals are ignored).
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s.AddInPlace(iv)
	}
	return s
}

// SetOf returns the set containing exactly the given timestamps.
func SetOf(ts ...Timestamp) Set {
	var s Set
	for _, t := range ts {
		s.AddInPlace(Point(t))
	}
	return s
}

// IsEmpty reports whether the set contains no timestamps.
func (s Set) IsEmpty() bool {
	return s.n == 0 || (s.n == spilledSet && len(s.ivs) == 0)
}

// Intervals returns a copy of the normalized intervals making up the set.
func (s Set) Intervals() []Interval {
	v := s.view()
	out := make([]Interval, len(v))
	copy(out, v)
	return out
}

// NumIntervals returns the number of maximal intervals in the set; it is a
// measure of lock-state fragmentation (§6).
func (s Set) NumIntervals() int { return len(s.view()) }

// At returns the i-th maximal interval of the set (0-based, sorted by
// Lo). Together with NumIntervals it allows iterating a set without the
// copy Intervals makes.
func (s Set) At(i int) Interval { return s.view()[i] }

// AppendIntervals appends the set's intervals to dst and returns the
// extended slice, letting callers reuse a scratch buffer.
func (s Set) AppendIntervals(dst []Interval) []Interval {
	return append(dst, s.view()...)
}

// Contains reports whether t is in the set.
func (s Set) Contains(t Timestamp) bool {
	v := s.view()
	i := sort.Search(len(v), func(i int) bool { return v[i].Hi.AtOrAfter(t) })
	return i < len(v) && v[i].Contains(t)
}

// ContainsInterval reports whether the entire interval iv is in the set.
func (s Set) ContainsInterval(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	v := s.view()
	i := sort.Search(len(v), func(i int) bool { return v[i].Hi.AtOrAfter(iv.Lo) })
	return i < len(v) && v[i].ContainsInterval(iv)
}

// Min returns the smallest timestamp in the set. The second result is
// false when the set is empty.
func (s Set) Min() (Timestamp, bool) {
	v := s.view()
	if len(v) == 0 {
		return Timestamp{}, false
	}
	return v[0].Lo, true
}

// Max returns the largest timestamp in the set. The second result is
// false when the set is empty.
func (s Set) Max() (Timestamp, bool) {
	v := s.view()
	if len(v) == 0 {
		return Timestamp{}, false
	}
	return v[len(v)-1].Hi, true
}

// AddInPlace extends the set with interval iv, coalescing overlapping and
// adjacent intervals. Appending at or merging into the top of the set —
// the common case when a set is built in ascending order — is
// allocation-free while the set fits inline.
func (s *Set) AddInPlace(iv Interval) {
	if iv.IsEmpty() {
		return
	}
	v := s.view()
	if len(v) == 0 {
		s.appendIv(iv)
		return
	}
	last := v[len(v)-1]
	if iv.Lo.After(last.Hi.Next()) {
		s.appendIv(iv)
		return
	}
	if iv.Lo.AtOrAfter(last.Lo) {
		// iv touches only the last interval: every earlier interval ends
		// with a gap before last.Lo <= iv.Lo.
		s.setLast(last.Merge(iv))
		return
	}
	// General insert somewhere in the middle: rebuild.
	*s = s.Add(iv)
}

// Add returns the set extended with interval iv, coalescing overlapping
// and adjacent intervals. The receiver is not modified.
func (s Set) Add(iv Interval) Set {
	var out Set
	if iv.IsEmpty() {
		out.copyOf(s.view())
		return out
	}
	one := [1]Interval{iv}
	unionAppend(&out, s.view(), one[:])
	return out
}

// copyOf fills the (empty) set with a copy of the given normalized
// intervals.
func (s *Set) copyOf(v []Interval) {
	if len(v) <= smallSetIvs {
		s.n = int8(copy(s.inline[:], v))
		return
	}
	s.n = spilledSet
	s.ivs = append([]Interval(nil), v...)
}

// unionAppend appends the union of the normalized sequences a and b to
// dst.
func unionAppend(dst *Set, a, b []Interval) {
	i, j := 0, 0
	var cur Interval
	have := false
	for i < len(a) || j < len(b) {
		var next Interval
		if j >= len(b) || (i < len(a) && a[i].Lo.AtOrBefore(b[j].Lo)) {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		switch {
		case !have:
			cur, have = next, true
		case next.Lo.AtOrBefore(cur.Hi.Next()):
			if next.Hi.After(cur.Hi) {
				cur.Hi = next.Hi
			}
		default:
			dst.appendIv(cur)
			cur = next
		}
	}
	if have {
		dst.appendIv(cur)
	}
}

// Union returns the union of s and o. The receiver is not modified.
func (s Set) Union(o Set) Set {
	var out Set
	unionAppend(&out, s.view(), o.view())
	return out
}

// UnionInPlace replaces s with s ∪ o.
func (s *Set) UnionInPlace(o Set) {
	if o.IsEmpty() {
		return
	}
	snap := *s // keeps the input view alive while s is rebuilt
	s.clear()
	unionAppend(s, snap.view(), o.view())
}

// intersectAppend appends the intersection of the normalized sequences a
// and b to dst.
func intersectAppend(dst *Set, a, b []Interval) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if x := a[i].Intersect(b[j]); !x.IsEmpty() {
			dst.appendIv(x)
		}
		if a[i].Hi.Before(b[j].Hi) {
			i++
		} else {
			j++
		}
	}
}

// IntersectInterval returns the subset of s inside iv.
func (s Set) IntersectInterval(iv Interval) Set {
	var out Set
	if iv.IsEmpty() {
		return out
	}
	one := [1]Interval{iv}
	intersectAppend(&out, s.view(), one[:])
	return out
}

// Intersect returns the intersection of s and o. The receiver is not
// modified.
func (s Set) Intersect(o Set) Set {
	var out Set
	intersectAppend(&out, s.view(), o.view())
	return out
}

// IntersectInto replaces s with s ∩ o. It is the allocation-free
// workhorse of the commit step (Alg. 1 line 13), which intersects the
// owned lock sets across the transaction's footprint.
func (s *Set) IntersectInto(o Set) {
	snap := *s
	s.clear()
	intersectAppend(s, snap.view(), o.view())
}

// subtractAppend appends the difference a \ b of the normalized
// sequences to dst.
func subtractAppend(dst *Set, a, b []Interval) {
	j := 0
	for i := 0; i < len(a); i++ {
		cur := a[i]
		for j < len(b) && b[j].Hi.Before(cur.Lo) {
			j++
		}
		for k := j; k < len(b) && b[k].Lo.AtOrBefore(cur.Hi); k++ {
			if cur.Lo.Before(b[k].Lo) {
				dst.appendIv(Interval{Lo: cur.Lo, Hi: b[k].Lo.Prev()})
			}
			if b[k].Hi.Before(cur.Hi) {
				cur.Lo = b[k].Hi.Next()
			} else {
				cur = Empty
				break
			}
		}
		if !cur.IsEmpty() {
			dst.appendIv(cur)
		}
	}
}

// SubtractInterval returns the subset of s outside iv.
func (s Set) SubtractInterval(iv Interval) Set {
	var out Set
	if iv.IsEmpty() {
		out.copyOf(s.view())
		return out
	}
	one := [1]Interval{iv}
	subtractAppend(&out, s.view(), one[:])
	return out
}

// Subtract returns the set difference s \ o. The receiver is not
// modified.
func (s Set) Subtract(o Set) Set {
	var out Set
	subtractAppend(&out, s.view(), o.view())
	return out
}

// SubtractInto replaces s with s \ o.
func (s *Set) SubtractInto(o Set) {
	if o.IsEmpty() {
		return
	}
	snap := *s
	s.clear()
	subtractAppend(s, snap.view(), o.view())
}

// Equal reports whether two sets contain exactly the same timestamps.
func (s Set) Equal(o Set) bool {
	a, b := s.view(), o.view()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the set as a list of intervals.
func (s Set) String() string {
	v := s.view()
	if len(v) == 0 {
		return "∅"
	}
	parts := make([]string, len(v))
	for i, iv := range v {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "∪")
}
