package timestamp

import (
	"sort"
	"strings"
)

// Set is a set of timestamps represented as a normalized sequence of
// disjoint, non-adjacent, non-empty intervals sorted by Lo. The zero value
// is the empty set.
//
// Sets represent the candidate commit timestamps a transaction still has
// available: the generic commit step (§4.3, Alg. 1 line 13) intersects the
// locked timestamps across all keys in the read and write sets, and
// policies such as ε-clock shrink their set as lock acquisition partially
// fails.
type Set struct {
	ivs []Interval
}

// NewSet builds a set from the given intervals (which may overlap or be
// unsorted; empty intervals are ignored).
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// SetOf returns the set containing exactly the given timestamps.
func SetOf(ts ...Timestamp) Set {
	var s Set
	for _, t := range ts {
		s = s.Add(Point(t))
	}
	return s
}

// IsEmpty reports whether the set contains no timestamps.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Intervals returns a copy of the normalized intervals making up the set.
func (s Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// NumIntervals returns the number of maximal intervals in the set; it is a
// measure of lock-state fragmentation (§6).
func (s Set) NumIntervals() int { return len(s.ivs) }

// Contains reports whether t is in the set.
func (s Set) Contains(t Timestamp) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi.AtOrAfter(t) })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// ContainsInterval reports whether the entire interval iv is in the set.
func (s Set) ContainsInterval(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi.AtOrAfter(iv.Lo) })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Min returns the smallest timestamp in the set. The second result is
// false when the set is empty.
func (s Set) Min() (Timestamp, bool) {
	if len(s.ivs) == 0 {
		return Timestamp{}, false
	}
	return s.ivs[0].Lo, true
}

// Max returns the largest timestamp in the set. The second result is
// false when the set is empty.
func (s Set) Max() (Timestamp, bool) {
	if len(s.ivs) == 0 {
		return Timestamp{}, false
	}
	return s.ivs[len(s.ivs)-1].Hi, true
}

// Add returns the set extended with interval iv, coalescing overlapping
// and adjacent intervals. The receiver is not modified.
func (s Set) Add(iv Interval) Set {
	if iv.IsEmpty() {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	inserted := false
	for _, cur := range s.ivs {
		switch {
		case inserted:
			if iv.Overlaps(cur) || iv.Adjacent(cur) {
				iv = iv.Merge(cur)
				out[len(out)-1] = iv
			} else {
				out = append(out, cur)
			}
		case cur.Overlaps(iv) || cur.Adjacent(iv):
			iv = iv.Merge(cur)
			out = append(out, iv)
			inserted = true
		case cur.Lo.After(iv.Hi):
			out = append(out, iv, cur)
			inserted = true
		default:
			out = append(out, cur)
		}
	}
	if !inserted {
		out = append(out, iv)
	}
	return Set{ivs: out}
}

// Union returns the union of s and o.
func (s Set) Union(o Set) Set {
	for _, iv := range o.ivs {
		s = s.Add(iv)
	}
	return s
}

// IntersectInterval returns the subset of s inside iv.
func (s Set) IntersectInterval(iv Interval) Set {
	if iv.IsEmpty() || len(s.ivs) == 0 {
		return Set{}
	}
	out := make([]Interval, 0, len(s.ivs))
	for _, cur := range s.ivs {
		x := cur.Intersect(iv)
		if !x.IsEmpty() {
			out = append(out, x)
		}
	}
	return Set{ivs: out}
}

// Intersect returns the intersection of s and o.
func (s Set) Intersect(o Set) Set {
	var out Set
	for _, iv := range o.ivs {
		part := s.IntersectInterval(iv)
		out.ivs = append(out.ivs, part.ivs...)
	}
	return out
}

// SubtractInterval returns the subset of s outside iv.
func (s Set) SubtractInterval(iv Interval) Set {
	if iv.IsEmpty() || len(s.ivs) == 0 {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	for _, cur := range s.ivs {
		out = append(out, cur.Subtract(iv)...)
	}
	return Set{ivs: out}
}

// Subtract returns the set difference s \ o.
func (s Set) Subtract(o Set) Set {
	for _, iv := range o.ivs {
		s = s.SubtractInterval(iv)
	}
	return s
}

// Equal reports whether two sets contain exactly the same timestamps.
func (s Set) Equal(o Set) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set as a list of intervals.
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "∪")
}
