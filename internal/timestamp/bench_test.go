package timestamp

import "testing"

func BenchmarkSetAdd(b *testing.B) {
	base := NewSet(iv(10, 20), iv(40, 50), iv(80, 90))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = base.Add(iv(int64(i%70), int64(i%70)+5))
	}
}

func BenchmarkSetIntersect(b *testing.B) {
	a := NewSet(iv(0, 25), iv(50, 75), iv(100, 125))
	c := NewSet(iv(10, 60), iv(70, 110))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Intersect(c)
	}
}

func BenchmarkSetContains(b *testing.B) {
	s := NewSet(iv(0, 10), iv(20, 30), iv(40, 50), iv(60, 70), iv(80, 90))
	probe := New(45, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Contains(probe) {
			b.Fatal("probe must be contained")
		}
	}
}

// BenchmarkCommitIntersection models the commit step (Alg. 1 line 13):
// start from the full timeline and intersect the per-key locked sets of
// an 8-key footprint, each holding 1-2 intervals.
func BenchmarkCommitIntersection(b *testing.B) {
	keys := make([]Set, 8)
	for i := range keys {
		keys[i] = NewSet(iv(int64(i), 100), iv(200+int64(i), 300))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cand := NewSet(Full)
		for _, ks := range keys {
			cand.IntersectInto(ks)
		}
		if cand.IsEmpty() {
			b.Fatal("candidates must not be empty")
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	x, y := New(100, 5), New(100, 6)
	for i := 0; i < b.N; i++ {
		if x.Compare(y) >= 0 {
			b.Fatal("wrong ordering")
		}
	}
}
