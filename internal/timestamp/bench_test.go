package timestamp

import "testing"

func BenchmarkSetAdd(b *testing.B) {
	base := NewSet(iv(10, 20), iv(40, 50), iv(80, 90))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = base.Add(iv(int64(i%70), int64(i%70)+5))
	}
}

func BenchmarkSetIntersect(b *testing.B) {
	a := NewSet(iv(0, 25), iv(50, 75), iv(100, 125))
	c := NewSet(iv(10, 60), iv(70, 110))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Intersect(c)
	}
}

func BenchmarkSetContains(b *testing.B) {
	s := NewSet(iv(0, 10), iv(20, 30), iv(40, 50), iv(60, 70), iv(80, 90))
	probe := New(45, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Contains(probe) {
			b.Fatal("probe must be contained")
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	x, y := New(100, 5), New(100, 6)
	for i := 0; i < b.N; i++ {
		if x.Compare(y) >= 0 {
			b.Fatal("wrong ordering")
		}
	}
}
