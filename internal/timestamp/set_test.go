package timestamp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetAddCoalesces(t *testing.T) {
	s := NewSet(iv(1, 3), iv(5, 7))
	if s.NumIntervals() != 2 {
		t.Fatalf("want 2 intervals, got %v", s)
	}
	// bridge the gap: [3+..5-] is adjacent on both sides
	s = s.Add(Span(New(3, 0).Next(), New(5, 0).Prev()))
	if s.NumIntervals() != 1 {
		t.Fatalf("want 1 interval after coalescing, got %v", s)
	}
	if min, _ := s.Min(); min != New(1, 0) {
		t.Errorf("Min = %v", min)
	}
	if max, _ := s.Max(); max != New(7, 0) {
		t.Errorf("Max = %v", max)
	}
}

func TestSetAddOverlapping(t *testing.T) {
	s := NewSet(iv(1, 5), iv(4, 9), iv(20, 30), iv(8, 12))
	want := NewSet(iv(1, 12), iv(20, 30))
	if !s.Equal(want) {
		t.Fatalf("got %v want %v", s, want)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(iv(1, 3), iv(7, 9))
	for _, tc := range []struct {
		t    Timestamp
		want bool
	}{
		{New(1, 0), true},
		{New(2, 55), true},
		{New(3, 0), true},
		{New(3, 1), false},
		{New(5, 0), false},
		{New(7, 0), true},
		{New(9, 1), false},
	} {
		if got := s.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%v)=%v want %v", tc.t, got, tc.want)
		}
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(iv(1, 5), iv(10, 20))
	b := NewSet(iv(4, 12), iv(18, 30))
	got := a.Intersect(b)
	want := NewSet(iv(4, 5), iv(10, 12), iv(18, 20))
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSetSubtract(t *testing.T) {
	a := NewSet(iv(1, 10))
	b := NewSet(iv(3, 4), iv(7, 8))
	got := a.Subtract(b)
	want := NewSet(
		Span(New(1, 0), New(3, 0).Prev()),
		Span(New(4, 0).Next(), New(7, 0).Prev()),
		Span(New(8, 0).Next(), New(10, 0)),
	)
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSetEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Fatal("zero set must be empty")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("Min on empty must be !ok")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max on empty must be !ok")
	}
	if s.Contains(New(1, 1)) {
		t.Fatal("empty contains nothing")
	}
	if s.String() != "∅" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSetContainsInterval(t *testing.T) {
	s := NewSet(iv(1, 5), iv(8, 12))
	if !s.ContainsInterval(iv(2, 4)) {
		t.Fatal("expected containment")
	}
	if s.ContainsInterval(iv(4, 9)) {
		t.Fatal("straddling interval is not contained")
	}
	if !s.ContainsInterval(iv(9, 2)) {
		t.Fatal("empty interval always contained")
	}
}

func TestSetIntervalsIsCopy(t *testing.T) {
	s := NewSet(iv(1, 5))
	got := s.Intervals()
	got[0] = iv(100, 200)
	if !s.Equal(NewSet(iv(1, 5))) {
		t.Fatal("Intervals must return a copy")
	}
}

// --- property-based tests -------------------------------------------------

// genSet produces a random small set plus a random probe point, keeping the
// value domain tight so intervals collide often.
func genSmallTS(r *rand.Rand) Timestamp {
	return New(int64(r.Intn(24)), int32(r.Intn(3)))
}

func genSmallSet(r *rand.Rand) Set {
	var s Set
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		a, b := genSmallTS(r), genSmallTS(r)
		s = s.Add(Span(Min(a, b), Max(a, b)))
	}
	return s
}

type setPair struct {
	A, B  Set
	Probe Timestamp
}

func (setPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setPair{A: genSmallSet(r), B: genSmallSet(r), Probe: genSmallTS(r)})
}

func normalized(s Set) bool {
	ivs := s.Intervals()
	for i, cur := range ivs {
		if cur.IsEmpty() {
			return false
		}
		if i > 0 {
			prev := ivs[i-1]
			// strictly increasing with a real gap (no adjacency)
			if !prev.Hi.Next().Before(cur.Lo) {
				return false
			}
		}
	}
	return true
}

func TestQuickSetUnionMembership(t *testing.T) {
	f := func(p setPair) bool {
		u := p.A.Union(p.B)
		if !normalized(u) {
			return false
		}
		return u.Contains(p.Probe) == (p.A.Contains(p.Probe) || p.B.Contains(p.Probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetIntersectMembership(t *testing.T) {
	f := func(p setPair) bool {
		x := p.A.Intersect(p.B)
		if !normalized(x) {
			return false
		}
		return x.Contains(p.Probe) == (p.A.Contains(p.Probe) && p.B.Contains(p.Probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetSubtractMembership(t *testing.T) {
	f := func(p setPair) bool {
		d := p.A.Subtract(p.B)
		if !normalized(d) {
			return false
		}
		return d.Contains(p.Probe) == (p.A.Contains(p.Probe) && !p.B.Contains(p.Probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetDeMorgan(t *testing.T) {
	// A \ (B ∪ C) == (A \ B) \ C
	type triple struct{ A, B, C Set }
	gen := func(r *rand.Rand, _ int) reflect.Value {
		return reflect.ValueOf(triple{genSmallSet(r), genSmallSet(r), genSmallSet(r)})
	}
	_ = gen
	f := func(p setPair) bool {
		c := genSmallSet(rand.New(rand.NewSource(int64(p.Probe.Time))))
		left := p.A.Subtract(p.B.Union(c))
		right := p.A.Subtract(p.B).Subtract(c)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(p setPair) bool {
		return p.A.Intersect(p.B).Equal(p.B.Intersect(p.A))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionIdempotent(t *testing.T) {
	f := func(p setPair) bool {
		return p.A.Union(p.A).Equal(p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
