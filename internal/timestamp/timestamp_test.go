package timestamp

import (
	"math"
	"testing"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want int
	}{
		{New(1, 0), New(2, 0), -1},
		{New(2, 0), New(1, 0), 1},
		{New(1, 1), New(1, 2), -1},
		{New(1, 2), New(1, 1), 1},
		{New(1, 1), New(1, 1), 0},
		{Zero, New(0, 1), -1},
		{New(5, 100), Infinity, -1},
		{Infinity, Infinity, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBeforeAfterConsistency(t *testing.T) {
	a, b := New(3, 1), New(3, 2)
	if !a.Before(b) || b.Before(a) {
		t.Fatalf("Before inconsistent for %v,%v", a, b)
	}
	if !b.After(a) || a.After(b) {
		t.Fatalf("After inconsistent for %v,%v", a, b)
	}
	if !a.AtOrBefore(a) || !a.AtOrAfter(a) {
		t.Fatalf("AtOr{Before,After} must be reflexive")
	}
}

func TestNextPrevRoundTrip(t *testing.T) {
	cases := []Timestamp{
		New(0, 0),
		New(1, 5),
		New(7, math.MaxInt32),
		New(9, math.MinInt32),
	}
	for _, ts := range cases {
		n := ts.Next()
		if !n.After(ts) {
			t.Errorf("Next(%v)=%v not after", ts, n)
		}
		if n.Prev() != ts {
			t.Errorf("Prev(Next(%v)) = %v", ts, n.Prev())
		}
	}
}

func TestNextSaturatesAtInfinity(t *testing.T) {
	if Infinity.Next() != Infinity {
		t.Fatal("Next(Infinity) must saturate")
	}
}

func TestPrevSaturatesAtZero(t *testing.T) {
	if Zero.Prev() != Zero {
		t.Fatal("Prev(Zero) must saturate")
	}
}

func TestNextCrossesTimeBoundary(t *testing.T) {
	ts := New(4, math.MaxInt32)
	want := New(5, math.MinInt32)
	if got := ts.Next(); got != want {
		t.Fatalf("Next(%v)=%v want %v", ts, got, want)
	}
	if got := want.Prev(); got != ts {
		t.Fatalf("Prev(%v)=%v want %v", want, got, ts)
	}
}

func TestMinMax(t *testing.T) {
	a, b := New(1, 2), New(1, 3)
	if Min(a, b) != a || Min(b, a) != a {
		t.Fatal("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatal("Max wrong")
	}
}

func TestZeroAndInfinityPredicates(t *testing.T) {
	if !Zero.IsZero() || Zero.IsInfinity() {
		t.Fatal("Zero predicates wrong")
	}
	if !Infinity.IsInfinity() || Infinity.IsZero() {
		t.Fatal("Infinity predicates wrong")
	}
}

func TestString(t *testing.T) {
	if Zero.String() != "0" {
		t.Errorf("Zero.String() = %q", Zero.String())
	}
	if Infinity.String() != "+inf" {
		t.Errorf("Infinity.String() = %q", Infinity.String())
	}
	if got := New(42, 7).String(); got != "42.7" {
		t.Errorf("String() = %q", got)
	}
}
