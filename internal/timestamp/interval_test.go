package timestamp

import "testing"

func iv(lo, hi int64) Interval { return Span(New(lo, 0), New(hi, 0)) }

func TestIntervalEmpty(t *testing.T) {
	if iv(3, 2).IsEmpty() == false {
		t.Fatal("inverted interval must be empty")
	}
	if iv(2, 2).IsEmpty() {
		t.Fatal("point interval must not be empty")
	}
	if Full.IsEmpty() {
		t.Fatal("Full must not be empty")
	}
}

func TestIntervalContains(t *testing.T) {
	in := iv(2, 5)
	for _, tc := range []struct {
		t    Timestamp
		want bool
	}{
		{New(2, 0), true},
		{New(5, 0), true},
		{New(3, 7), true},
		{New(1, 9), false},
		{New(5, 1), false},
	} {
		if got := in.Contains(tc.t); got != tc.want {
			t.Errorf("%v.Contains(%v)=%v want %v", in, tc.t, got, tc.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{iv(1, 3), iv(3, 5), true},
		{iv(1, 3), iv(4, 5), false},
		{iv(1, 10), iv(4, 5), true},
		{iv(4, 5), iv(1, 10), true},
		{iv(5, 4), iv(1, 10), false}, // empty never overlaps
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v)=%v want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps must be symmetric: %v %v", c.a, c.b)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	got := iv(1, 5).Intersect(iv(3, 9))
	if got != iv(3, 5) {
		t.Fatalf("Intersect = %v", got)
	}
	if !iv(1, 2).Intersect(iv(3, 4)).IsEmpty() {
		t.Fatal("disjoint intersect must be empty")
	}
}

func TestIntervalAdjacent(t *testing.T) {
	a := Span(New(1, 0), New(2, 5))
	b := Span(New(2, 5).Next(), New(3, 0))
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Fatal("expected adjacency")
	}
	c := Span(New(2, 7), New(3, 0))
	if a.Adjacent(c) {
		t.Fatal("gap means not adjacent")
	}
}

func TestIntervalSubtract(t *testing.T) {
	// carve the middle out
	parts := iv(1, 10).Subtract(iv(4, 6))
	if len(parts) != 2 {
		t.Fatalf("want 2 parts, got %v", parts)
	}
	if parts[0] != Span(New(1, 0), New(4, 0).Prev()) {
		t.Errorf("left part = %v", parts[0])
	}
	if parts[1] != Span(New(6, 0).Next(), New(10, 0)) {
		t.Errorf("right part = %v", parts[1])
	}
	// subtract everything
	if parts := iv(4, 6).Subtract(iv(1, 10)); len(parts) != 0 {
		t.Fatalf("total subtraction should be empty, got %v", parts)
	}
	// no overlap
	if parts := iv(1, 3).Subtract(iv(5, 9)); len(parts) != 1 || parts[0] != iv(1, 3) {
		t.Fatalf("disjoint subtraction should be identity, got %v", parts)
	}
}

func TestIntervalMerge(t *testing.T) {
	if got := iv(1, 3).Merge(iv(2, 9)); got != iv(1, 9) {
		t.Fatalf("Merge = %v", got)
	}
	if got := iv(1, 3).Merge(Interval{Lo: New(9, 0), Hi: New(2, 0)}); got != iv(1, 3) {
		t.Fatalf("Merge with empty = %v", got)
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	if !iv(1, 10).ContainsInterval(iv(3, 5)) {
		t.Fatal("containment expected")
	}
	if iv(3, 5).ContainsInterval(iv(1, 10)) {
		t.Fatal("containment unexpected")
	}
	if !iv(3, 5).ContainsInterval(iv(9, 2)) {
		t.Fatal("empty interval is contained everywhere")
	}
}

func TestIntervalString(t *testing.T) {
	if iv(2, 1).String() != "∅" {
		t.Errorf("empty String = %q", iv(2, 1).String())
	}
	if Point(New(1, 2)).String() != "[1.2]" {
		t.Errorf("point String = %q", Point(New(1, 2)).String())
	}
}
