// Package timestamp defines the time domain used by MVTL: discrete time
// points refined by a process id, plus intervals and interval sets over
// that domain.
//
// The paper (§4.1) models a timestamp as a pair (v, p) ordered
// lexicographically, where v is a clock value and p a process id; the
// process id guarantees that concurrent processes can always pick distinct
// timestamps. This package implements that domain together with the
// interval algebra needed for interval-compressed lock state (§6).
package timestamp

import (
	"fmt"
	"math"
)

// Timestamp is a point on the global time line. Ordering is lexicographic:
// first by Time, then by Proc. The domain is discrete: every timestamp has
// a well-defined successor (Next) and predecessor (Prev).
type Timestamp struct {
	// Time is the clock component (for example microseconds since the
	// epoch, or a logical counter).
	Time int64
	// Proc is the process-id tiebreaker that makes timestamps unique
	// across processes.
	Proc int32
}

// Zero is the smallest timestamp. Every key implicitly holds the initial
// version ⊥ at Zero (§4.1).
var Zero = Timestamp{}

// Infinity is the largest representable timestamp. It is used by the
// pessimistic and prioritizer policies, which lock "all timestamps up
// to +∞" (§5.2, §5.4).
var Infinity = Timestamp{Time: math.MaxInt64, Proc: math.MaxInt32}

// New returns the timestamp (time, proc).
func New(time int64, proc int32) Timestamp {
	return Timestamp{Time: time, Proc: proc}
}

// Compare returns -1, 0 or +1 depending on whether t is before, equal to,
// or after o in the lexicographic order.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Time < o.Time:
		return -1
	case t.Time > o.Time:
		return 1
	case t.Proc < o.Proc:
		return -1
	case t.Proc > o.Proc:
		return 1
	default:
		return 0
	}
}

// Before reports whether t < o.
func (t Timestamp) Before(o Timestamp) bool { return t.Compare(o) < 0 }

// After reports whether t > o.
func (t Timestamp) After(o Timestamp) bool { return t.Compare(o) > 0 }

// AtOrBefore reports whether t <= o.
func (t Timestamp) AtOrBefore(o Timestamp) bool { return t.Compare(o) <= 0 }

// AtOrAfter reports whether t >= o.
func (t Timestamp) AtOrAfter(o Timestamp) bool { return t.Compare(o) >= 0 }

// Equal reports whether t == o.
func (t Timestamp) Equal(o Timestamp) bool { return t == o }

// IsZero reports whether t is the smallest timestamp.
func (t Timestamp) IsZero() bool { return t == Zero }

// IsInfinity reports whether t is the largest representable timestamp.
func (t Timestamp) IsInfinity() bool { return t == Infinity }

// Next returns the smallest timestamp strictly greater than t. Next
// saturates at Infinity.
func (t Timestamp) Next() Timestamp {
	if t == Infinity {
		return Infinity
	}
	if t.Proc == math.MaxInt32 {
		return Timestamp{Time: t.Time + 1, Proc: math.MinInt32}
	}
	return Timestamp{Time: t.Time, Proc: t.Proc + 1}
}

// Prev returns the largest timestamp strictly smaller than t. Prev
// saturates at Zero; note that Zero's true predecessor does not exist, so
// Prev(Zero) == Zero.
func (t Timestamp) Prev() Timestamp {
	if t == Zero {
		return Zero
	}
	if t.Proc == math.MinInt32 {
		return Timestamp{Time: t.Time - 1, Proc: math.MaxInt32}
	}
	return Timestamp{Time: t.Time, Proc: t.Proc - 1}
}

// Min returns the smaller of t and o.
func Min(t, o Timestamp) Timestamp {
	if t.Before(o) {
		return t
	}
	return o
}

// Max returns the larger of t and o.
func Max(t, o Timestamp) Timestamp {
	if t.After(o) {
		return t
	}
	return o
}

// String renders the timestamp as "time.proc", with the special points
// rendered symbolically.
func (t Timestamp) String() string {
	switch t {
	case Zero:
		return "0"
	case Infinity:
		return "+inf"
	default:
		return fmt.Sprintf("%d.%d", t.Time, t.Proc)
	}
}
