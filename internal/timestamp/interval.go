package timestamp

import "fmt"

// Interval is a closed interval [Lo, Hi] of timestamps. An interval with
// Lo > Hi is empty. Intervals are the unit of lock acquisition in MVTL:
// reads lock contiguous intervals immediately following the version they
// return (§4.3), and interval compression keeps the lock state small (§6).
type Interval struct {
	Lo, Hi Timestamp
}

// Span returns the interval [lo, hi].
func Span(lo, hi Timestamp) Interval { return Interval{Lo: lo, Hi: hi} }

// Point returns the degenerate interval [t, t].
func Point(t Timestamp) Interval { return Interval{Lo: t, Hi: t} }

// Full is the interval covering every timestamp.
var Full = Interval{Lo: Zero, Hi: Infinity}

// Empty is a canonical empty interval. Note that the zero value of
// Interval is NOT empty — it is the point [Zero, Zero].
var Empty = Interval{Lo: Timestamp{Proc: 1}, Hi: Timestamp{}}

// IsEmpty reports whether the interval contains no timestamps.
func (iv Interval) IsEmpty() bool { return iv.Lo.After(iv.Hi) }

// Contains reports whether t lies within the interval.
func (iv Interval) Contains(t Timestamp) bool {
	return iv.Lo.AtOrBefore(t) && t.AtOrBefore(iv.Hi)
}

// ContainsInterval reports whether o lies entirely within iv. The empty
// interval is contained in every interval.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.IsEmpty() {
		return true
	}
	return iv.Lo.AtOrBefore(o.Lo) && o.Hi.AtOrBefore(iv.Hi)
}

// Overlaps reports whether the two intervals share at least one timestamp.
func (iv Interval) Overlaps(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.Lo.AtOrBefore(o.Hi) && o.Lo.AtOrBefore(iv.Hi)
}

// Intersect returns the overlap between iv and o (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: Max(iv.Lo, o.Lo), Hi: Min(iv.Hi, o.Hi)}
}

// Adjacent reports whether o starts exactly where iv ends (or vice versa)
// so that their union is a single contiguous interval.
func (iv Interval) Adjacent(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.Hi.Next() == o.Lo || o.Hi.Next() == iv.Lo
}

// Merge returns the smallest interval covering both iv and o. It is only
// meaningful when the intervals overlap or are adjacent.
func (iv Interval) Merge(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{Lo: Min(iv.Lo, o.Lo), Hi: Max(iv.Hi, o.Hi)}
}

// Subtract returns the (0, 1 or 2) sub-intervals of iv not covered by o.
func (iv Interval) Subtract(o Interval) []Interval {
	if iv.IsEmpty() {
		return nil
	}
	if !iv.Overlaps(o) {
		return []Interval{iv}
	}
	var out []Interval
	if iv.Lo.Before(o.Lo) {
		out = append(out, Interval{Lo: iv.Lo, Hi: o.Lo.Prev()})
	}
	if o.Hi.Before(iv.Hi) {
		out = append(out, Interval{Lo: o.Hi.Next(), Hi: iv.Hi})
	}
	return out
}

// String renders the interval as "[lo,hi]", or "∅" when empty.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("[%v]", iv.Lo)
	}
	return fmt.Sprintf("[%v,%v]", iv.Lo, iv.Hi)
}
