// Package ok holds correct FrameBuf ownership in every shape the repo
// actually uses; the framebuf analyzer must stay silent on all of it.
package ok

import (
	"context"

	"github.com/lpd-epfl/mvtl/internal/rpc"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// branchConsume is the tricky satellite case: sent on one branch,
// released on the other — every path consumes exactly once.
func branchConsume(conn transport.Conn, really bool) error {
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(1, wire.TReadLockReq, wire.ReadLockReq{Txn: 1, Key: "k"}); err != nil {
		fb.Release()
		return err
	}
	if really {
		return conn.Send(fb)
	}
	fb.Release()
	return nil
}

// deferRelease: a deferred Release covers every path, including uses
// after earlier returns would have fired.
func deferRelease() int {
	fb := wire.GetFrameBuf()
	defer fb.Release()
	return fb.WireLen()
}

// transferReturn hands ownership to the caller.
func transferReturn() (*wire.FrameBuf, error) {
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(2, wire.TReadLockReq, wire.ReadLockReq{Txn: 2, Key: "k"}); err != nil {
		fb.Release()
		return nil, err
	}
	return fb, nil
}

// transferChannel hands ownership to whoever drains the channel.
func transferChannel(ch chan *wire.FrameBuf) {
	fb := wire.GetFrameBuf()
	ch <- fb
}

// transferSlice parks the buffer in a batch the caller owns.
func transferSlice(batch []*wire.FrameBuf) []*wire.FrameBuf {
	fb := wire.GetFrameBuf()
	return append(batch, fb)
}

// loopSend consumes a fresh buffer every iteration, inside the loop's
// own scope.
func loopSend(conn transport.Conn, n int) {
	for i := 0; i < n; i++ {
		fb := wire.GetFrameBuf()
		if err := conn.Send(fb); err != nil {
			return
		}
	}
}

// selectConsume consumes on both select outcomes.
func selectConsume(conn transport.Conn, stop chan struct{}) {
	fb := wire.GetFrameBuf()
	select {
	case <-stop:
		fb.Release()
	default:
		_ = conn.Send(fb)
	}
}

// callReleased releases the response the client handed over; the error
// path legitimately skips it (the result is nil on error).
func callReleased(cl *rpc.Client) (wire.MsgType, error) {
	f, err := cl.Call(context.Background(), 1, wire.TReadLockReq, wire.ReadLockReq{Txn: 3, Key: "k"})
	if err != nil {
		return 0, err
	}
	t := f.Type()
	f.Release()
	return t, nil
}

// recvForwarded transfers a received buffer onward instead of releasing.
func recvForwarded(conn transport.Conn, out chan<- *wire.FrameBuf) error {
	f, err := conn.Recv()
	if err != nil {
		return err
	}
	out <- f
	return nil
}
