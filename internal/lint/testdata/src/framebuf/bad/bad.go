// Package bad holds deliberately-broken FrameBuf ownership: every
// function here violates PROTOCOL.md "Buffer ownership" in a way the
// framebuf analyzer must catch. It compiles — these are exactly the
// bugs the compiler cannot see.
package bad

import (
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// errPathLeak is the classic: the buffer escapes on success but the
// early error return forgets it.
func errPathLeak(conn transport.Conn, id uint64, m wire.Message) error {
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(id, wire.TReadLockReq, m); err != nil {
		return err // want `pooled frame buffer fb leaks`
	}
	return conn.Send(fb)
}

// neverConsumed gets a buffer and drops it on the floor.
func neverConsumed() int {
	fb := wire.GetFrameBuf()
	return fb.WireLen() // want `pooled frame buffer fb leaks`
}

// useAfterSend touches the buffer after the consuming send.
func useAfterSend(conn transport.Conn) int {
	fb := wire.GetFrameBuf()
	if err := conn.Send(fb); err != nil {
		return 0
	}
	return fb.WireLen() // want `use of pooled frame buffer fb after it was consumed by Send`
}

// useAfterRelease decodes from a frame body after handing the buffer
// back to the pool.
func useAfterRelease() []byte {
	fb := wire.GetFrameBuf()
	fb.Release()
	return fb.Body() // want `use of pooled frame buffer fb after it was consumed by Release`
}

// branchLeak releases on one branch only: the other path leaks.
func branchLeak(ok bool) {
	fb := wire.GetFrameBuf()
	if ok {
		fb.Release()
	}
} // want `pooled frame buffer fb may leak`

// reassignLeak overwrites the only reference to an owned buffer.
func reassignLeak() {
	fb := wire.GetFrameBuf()
	fb = wire.GetFrameBuf() // want `reassigned while still owned`
	fb.Release()
}

// callRespDropped never releases the response buffer rpc.Client.Call
// hands over. (The weak whole-function check catches it even though
// the error path legitimately skips Release.)
func callRespDropped(conn transport.Conn) (wire.MsgType, error) {
	f, err := conn.Recv() // want `frame buffer f returned by Recv is never released or transferred`
	if err != nil {
		return 0, err
	}
	t := f.Type()
	return t, nil
}
