package bad

// codecCases mirrors the wire package's fuzz seed corpus shape; the
// analyzer reads its keys syntactically (this file is parsed, never
// compiled — testdata packages are invisible to go test ./...).
var codecCases = map[string]func() []byte{
	"Registered": func() []byte { return Registered{C: 7}.AppendTo(nil) },
}
