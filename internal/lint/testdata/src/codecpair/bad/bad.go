// Package bad declares wire-style message types with missing codec
// legs so the codecpair analyzer proves it fires.
//
//mvtl:wire-codec
package bad

import "encoding/binary"

// NoDecode has an encoder and nothing else: its encodes would be
// undecodable, and the fuzzer never sees it.
type NoDecode struct { // want `no DecodeNoDecode function or DecodeInto method` `NoDecode missing from the codecCases`
	A uint64
}

func (m NoDecode) AppendTo(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, m.A)
}

// NotFuzzed round-trips fine but is absent from the seed corpus.
type NotFuzzed struct { // want `NotFuzzed missing from the codecCases`
	B uint64
}

func (m NotFuzzed) AppendTo(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, m.B)
}

func DecodeNotFuzzed(b []byte) (NotFuzzed, error) {
	return NotFuzzed{B: binary.LittleEndian.Uint64(b)}, nil
}

// Registered has all three legs: encoder, decoder, corpus entry.
type Registered struct {
	C uint64
}

func (m Registered) AppendTo(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, m.C)
}

func DecodeRegistered(b []byte) (Registered, error) {
	return Registered{C: binary.LittleEndian.Uint64(b)}, nil
}

// plain is not a message: no AppendTo, no obligations.
type plain struct {
	D int
}

var _ = plain{}
