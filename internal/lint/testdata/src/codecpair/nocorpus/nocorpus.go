// Package nocorpus has a complete encoder/decoder pair but no
// codecCases seed corpus at all: nothing stresses the codec.
//
//mvtl:wire-codec
package nocorpus

import "encoding/binary"

type Lone struct { // want `no codecCases fuzz seed corpus found`
	A uint64
}

func (m Lone) AppendTo(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, m.A)
}

func DecodeLone(b []byte) (Lone, error) {
	return Lone{A: binary.LittleEndian.Uint64(b)}, nil
}
