// Package directive exercises the //mvtl:ignore suppression path: a
// justified directive silences a real finding, while malformed and
// unknown-analyzer directives are themselves reported.
//
//mvtl:deterministic
package directive

import "time"

// suppressedRead would be a determinism finding, but the directive on
// the line above carries a justification, so it is silenced.
func suppressedRead() int64 {
	//mvtl:ignore determinism fixture exercises the justified-suppression path
	return time.Now().UnixNano()
}

// trailingSuppression silences via a same-line trailing directive.
func trailingSuppression() time.Duration {
	return time.Since(time.Time{}) //mvtl:ignore determinism fixture: same-line suppression
}

func malformedDirectives() {
	/*mvtl:ignore*/ // want `malformed //mvtl:ignore`
	/*mvtl:ignore determinism*/ // want `malformed //mvtl:ignore`
	/*mvtl:ignore nosuch has a justification but no such analyzer*/ // want `unknown analyzer "nosuch"`
}
