// Package bad stores borrowed frame-body views into places that
// outlive the frame — every function here is a use-after-release
// waiting for pool reuse, and the borrowedview analyzer must flag each.
package bad

import (
	"github.com/lpd-epfl/mvtl/internal/wire"
)

type cacheEntry struct {
	key []byte
	val []byte
}

var lastValue []byte

// fieldStore stashes a Decoder.Blob view into a struct field.
func fieldStore(e *cacheEntry, d *wire.Decoder) {
	e.key = d.Blob() // want `borrowed frame view stored into struct field e.key`
}

// globalStore parks a frame body in a package-level variable.
func globalStore(fb *wire.FrameBuf) {
	lastValue = fb.Body() // want `borrowed frame view stored into package-level variable lastValue`
}

// mapStore caches a borrowed view by key.
func mapStore(cache map[string][]byte, d *wire.Decoder) {
	v := d.Blob()
	cache["k"] = v // want `borrowed frame view stored into map cache`
}

// decodedFieldStore stores the Value field of a decoded message — a
// view into the response frame, not a copy.
func decodedFieldStore(e *cacheEntry, body []byte) error {
	resp, err := wire.DecodeReadLockResp(body)
	if err != nil {
		return err
	}
	e.val = resp.Value // want `borrowed frame view stored into struct field e.val`
	return nil
}

// goroutineCapture lets a borrowed view outlive the synchronous frame
// lifetime by capturing it in a goroutine.
func goroutineCapture(fb *wire.FrameBuf, sink func([]byte)) {
	b := fb.Body()
	go func() {
		sink(b) // want `borrowed frame view b captured by a goroutine closure`
	}()
	fb.Release()
}
