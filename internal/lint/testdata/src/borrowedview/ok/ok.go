// Package ok uses borrowed frame views correctly: cloned before any
// store that outlives the frame, or kept strictly local. The
// borrowedview analyzer must stay silent.
package ok

import (
	"bytes"

	"github.com/lpd-epfl/mvtl/internal/wire"
)

type cacheEntry struct {
	key []byte
	val []byte
	str string
}

var lastValue []byte

// cloneThenStore is the tricky satellite case: bytes.Clone sanitizes
// the view, so the store is fine.
func cloneThenStore(e *cacheEntry, d *wire.Decoder) {
	e.key = bytes.Clone(d.Blob())
}

// cloneViaVar re-binds the variable to a clone before the store.
func cloneViaVar(e *cacheEntry, d *wire.Decoder) {
	v := d.Blob()
	v = bytes.Clone(v)
	e.val = v
}

// stringCopy converts to string — a copying conversion.
func stringCopy(e *cacheEntry, d *wire.Decoder) {
	e.str = string(d.Blob())
}

// appendCopy copies into a fresh backing array.
func appendCopy(fb *wire.FrameBuf) {
	lastValue = append([]byte(nil), fb.Body()...)
}

// localUse reads the view synchronously and lets it die with the frame.
func localUse(d *wire.Decoder) int {
	v := d.Blob()
	n := 0
	for _, b := range v {
		n += int(b)
	}
	return n
}

// decodedClone clones a decoded message's blob field before caching it.
func decodedClone(cache map[string][]byte, body []byte) error {
	resp, err := wire.DecodeReadLockResp(body)
	if err != nil {
		return err
	}
	cache["k"] = bytes.Clone(resp.Value)
	return nil
}
