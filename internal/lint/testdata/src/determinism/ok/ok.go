// Package ok opts into the H13 determinism rules and follows them:
// seed-derived randomness, collect-then-sort map iteration, single-case
// selects. The determinism analyzer must stay silent.
//
//mvtl:deterministic
package ok

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// seededRand derives every draw from an explicit seed — the repo's
// chaos-transport pattern.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// collectThenSort is the idiom FaultLog and recoverServer use: order
// the keys before anything observes them.
func collectThenSort(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// singleSelect blocks on one channel with a default arm: only one
// communication case, nothing for the runtime to shuffle.
func singleSelect(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// timers mirrors the clock.Timers surface the repo routes every wait
// through; method calls on it are not time.* calls, so the analyzer is
// naturally silent — this is the shape the raw-timer rule pushes
// toward.
type timers interface {
	Sleep(d time.Duration)
	AfterFunc(d time.Duration, fn func())
}

// sleeping waits on the injected timeline instead of the wall clock, so
// a virtual run can advance the delay instantly.
func sleeping(t timers) {
	t.Sleep(time.Millisecond)
	t.AfterFunc(time.Millisecond, func() {})
}
