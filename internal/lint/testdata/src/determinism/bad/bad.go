// Package bad opts into the H13 determinism rules and then breaks each
// one: every same-seed run of this code could produce a different
// transcript.
//
//mvtl:deterministic
package bad

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// wallClock reads real time into what would become transcript state.
func wallClock() int64 {
	t := time.Now() // want `wall-clock read time.Now in a deterministic package`
	return t.UnixNano()
}

// elapsed is the same bug through time.Since.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since in a deterministic package`
}

// rawSleep stalls a virtual run on the wall clock: the timeline cannot
// advance a wait it does not own.
func rawSleep() {
	time.Sleep(time.Millisecond) // want `raw timer time.Sleep in a deterministic package`
}

// rawAfter is the same bug as a channel; Tick and the constructors are
// caught at the same chokepoint.
func rawAfter() <-chan time.Time {
	return time.After(time.Second) // want `raw timer time.After in a deterministic package`
}

// rawTicker builds a wall-clock ticker.
func rawTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `raw timer time.NewTicker in a deterministic package`
}

// wallDeadline derives a context expiry from the wall clock instead of
// the injected timeline.
func wallDeadline(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, time.Second) // want `wall-clock deadline context.WithTimeout in a deterministic package`
}

// globalRand uses the shared process-wide generator instead of a
// seed-derived stream.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand call Intn in a deterministic package`
}

// racySelect lets the runtime pick pseudo-randomly between two ready
// channels.
func racySelect(a, b chan int) int {
	select { // want `select with 2 communication cases in a deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// printedMapRange externalizes map iteration order directly.
func printedMapRange(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order reaches output \(call to Fprintf\)`
	}
}

// unsortedCollect appends map keys to an outer slice and never sorts
// it, so the slice's order differs run to run.
func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys which is never sorted`
	}
	return keys
}
