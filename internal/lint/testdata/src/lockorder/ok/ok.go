// Package ok takes the same locks and makes the same calls as the bad
// fixture, but never holds one across the other. The lockorder
// analyzer must stay silent — including on concrete (non-interface)
// Send methods, which serialize the wire by design.
package ok

import (
	"context"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/rpc"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

type peer struct {
	mu   sync.Mutex
	next uint64
	cl   *rpc.Client
	conn transport.Conn
}

// unlockBeforeCall snapshots shared state under the lock, then calls.
func (p *peer) unlockBeforeCall(ctx context.Context) (*wire.FrameBuf, error) {
	p.mu.Lock()
	p.next++
	flow := p.next
	p.mu.Unlock()
	return p.cl.Call(ctx, flow, wire.TReadLockReq, wire.ReadLockReq{Txn: flow, Key: "k"})
}

// balancedBranch locks and unlocks inside the branch; the call after
// the branch runs lock-free.
func (p *peer) balancedBranch(bump bool) error {
	if bump {
		p.mu.Lock()
		p.next++
		p.mu.Unlock()
	}
	fb := wire.GetFrameBuf()
	return p.conn.Send(fb)
}

// goroutineRuns: the spawned goroutine does not inherit the caller's
// lock, so its Recv is fine.
func (p *peer) goroutineRuns(done chan error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		f, err := p.conn.Recv()
		if err == nil {
			f.Release()
		}
		done <- err
	}()
	p.next++
}

// loopConn serializes its own writes with a mutex, like the TCP
// transport does; its Send is a concrete method, not the
// transport.Conn interface, and is not a blocking RPC.
type loopConn struct {
	wmu sync.Mutex
	buf []*wire.FrameBuf
}

func (l *loopConn) Send(fb *wire.FrameBuf) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.buf = append(l.buf, fb)
	return nil
}

// concreteSendUnderLock: holding a lock across a concrete, local Send
// is the transport's own business — not flagged.
func concreteSendUnderLock(l *loopConn, mu *sync.Mutex) error {
	mu.Lock()
	defer mu.Unlock()
	fb := wire.GetFrameBuf()
	return l.Send(fb)
}
