// Package bad holds mutexes across blocking network calls — the exact
// head-of-line-blocking bug class the per-peer-mutex fix in the rpc
// layer repaired, reproduced so the lockorder analyzer proves it fires.
package bad

import (
	"context"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/rpc"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

type peer struct {
	mu   sync.Mutex
	next uint64
	cl   *rpc.Client
	conn transport.Conn
}

// callUnderLock blocks every other user of p.mu for a full round trip.
func (p *peer) callUnderLock(ctx context.Context) (*wire.FrameBuf, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	return p.cl.Call(ctx, p.next, wire.TReadLockReq, wire.ReadLockReq{Txn: p.next, Key: "k"}) // want `rpc.Client.Call while holding p.mu`
}

// sendUnderLock holds the mutex across the transport write path.
func (p *peer) sendUnderLock(fb *wire.FrameBuf) error {
	p.mu.Lock()
	err := p.conn.Send(fb) // want `transport.Conn.Send while holding p.mu`
	p.mu.Unlock()
	return err
}

type registry struct {
	rw   sync.RWMutex
	conn transport.Conn
}

// recvUnderRLock: a read lock blocks writers just the same.
func (r *registry) recvUnderRLock() (*wire.FrameBuf, error) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.conn.Recv() // want `transport.Conn.Recv while holding r.rw`
}
