package lint_test

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/analysistest"
)

// TestFrameBufAnalyzer proves the ownership checker fires on every
// violation class (bad) and stays silent on the repo's real idioms
// (ok) — including the branch-send/branch-release and defer-Release
// flow cases.
func TestFrameBufAnalyzer(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lint.FrameBufAnalyzer},
		"testdata/src/framebuf/bad",
		"testdata/src/framebuf/ok",
	)
}
