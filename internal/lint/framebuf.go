package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
)

// FrameBufAnalyzer enforces the pooled-buffer ownership rules of
// PROTOCOL.md "Buffer ownership": a *wire.FrameBuf obtained from
// wire.GetFrameBuf must reach exactly one ownership sink — Release, a
// consuming send (transport.Conn.Send/SendBatch and the lowercase
// send/sendBatch enqueue helpers), or a transfer point (returned,
// stored, sent on a channel, or passed to a function that takes
// ownership per its documentation) — on EVERY control-flow path, and
// must never be touched after a consuming call. Buffers received from
// ownership-returning calls (rpc.Client.Call, transport.Conn.Recv) get
// the weaker whole-function check: some release/transfer must exist.
var FrameBufAnalyzer = &analysis.Analyzer{
	Name: "framebuf",
	Doc: "check that every wire.GetFrameBuf reaches exactly one Release/Send/transfer " +
		"on every path and is never used after being consumed",
	Run: runFrameBuf,
}

type fbState int

const (
	fbOwned    fbState = iota // definitely held, must still be consumed
	fbMaybe                   // consumed on some paths only
	fbConsumed                // definitely released/sent
	fbDone                    // transferred out of this function's view
)

type fbVar struct {
	state      fbState
	deferred   bool // a defer releases it: exempt from leak + use-after checks
	consumeVia string
}

type fbEnv map[*types.Var]*fbVar

func (e fbEnv) clone() fbEnv {
	c := make(fbEnv, len(e))
	for k, v := range e {
		cp := *v
		c[k] = &cp
	}
	return c
}

// fbEffect classifies one statement's impact on one tracked variable.
type fbEffect struct {
	use      bool // referenced at all
	consume  bool // Release or consuming send
	transfer bool // ownership left the function's view
	deferred bool // a defer will consume it
	pos      token.Pos
	via      string
}

type fbWalker struct {
	pass *analysis.Pass
}

func runFrameBuf(pass *analysis.Pass) error {
	w := &fbWalker{pass: pass}
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			env := fbEnv{}
			term := w.walkStmts(body.List, env)
			if !term {
				w.pathEnd(env, body.Rbrace)
			}
			w.checkWeak(body)
		})
	}
	return nil
}

// pathEnd reports buffers still owned when a path leaves the function.
func (w *fbWalker) pathEnd(env fbEnv, pos token.Pos) {
	for obj, v := range env {
		if v.deferred {
			continue
		}
		switch v.state {
		case fbOwned:
			w.pass.Reportf(pos, "pooled frame buffer %s leaks: this path ends without Release, a consuming send, or a transfer", obj.Name())
		case fbMaybe:
			w.pass.Reportf(pos, "pooled frame buffer %s may leak: consumed on some paths but not on the path ending here", obj.Name())
		}
		// Report once per buffer, not once per later return.
		v.state = fbDone
	}
}

// walkStmts threads env through stmts, reporting as it goes. The return
// value is true when control cannot fall off the end of the list.
func (w *fbWalker) walkStmts(stmts []ast.Stmt, env fbEnv) bool {
	for _, s := range stmts {
		if w.walkStmt(s, env) {
			return true
		}
	}
	return false
}

// walkBlock runs a nested statement list in a child scope: variables
// first tracked inside it are leak-checked when the block exits and do
// not escape into the parent env.
func (w *fbWalker) walkBlock(stmts []ast.Stmt, parent fbEnv, end token.Pos) (fbEnv, bool) {
	child := parent.clone()
	term := w.walkStmts(stmts, child)
	for obj, v := range child {
		if _, outer := parent[obj]; outer {
			continue
		}
		if !term && !v.deferred && (v.state == fbOwned || v.state == fbMaybe) {
			if v.state == fbOwned {
				w.pass.Reportf(end, "pooled frame buffer %s leaks: block ends without Release, a consuming send, or a transfer", obj.Name())
			} else {
				w.pass.Reportf(end, "pooled frame buffer %s may leak: consumed on some paths but not on the path ending here", obj.Name())
			}
		}
		delete(child, obj)
	}
	return child, term
}

func (w *fbWalker) walkStmt(s ast.Stmt, env fbEnv) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		created := w.trackCreations(st, env)
		w.applyExcluding(st, env, created)
		return false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
					for i, val := range vs.Values {
						if w.isGetFrameBuf(val) {
							if obj, ok := w.pass.TypesInfo.Defs[vs.Names[i]].(*types.Var); ok {
								env[obj] = &fbVar{state: fbOwned}
							}
						}
					}
				}
			}
		}
		w.apply(st, env)
		return false
	case *ast.ExprStmt:
		w.apply(st, env)
		return isTerminatorCall(w.pass.TypesInfo, st.X)
	case *ast.ReturnStmt:
		w.apply(st, env)
		w.pathEnd(env, st.Pos())
		return true
	case *ast.DeferStmt:
		w.applyDefer(st, env)
		return false
	case *ast.GoStmt:
		w.apply(st, env)
		return false
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, env)
		}
		w.applyExpr(st.Cond, env)
		thenEnv, thenTerm := w.walkBlock(st.Body.List, env, st.Body.Rbrace)
		elseEnv, elseTerm := env, false
		if st.Else != nil {
			elseEnv, elseTerm = w.walkBlock([]ast.Stmt{st.Else}, env, st.Else.End())
		}
		if thenTerm && elseTerm {
			return true
		}
		if thenTerm {
			copyInto(env, elseEnv)
			return false
		}
		if elseTerm {
			copyInto(env, thenEnv)
			return false
		}
		mergeInto(env, thenEnv, elseEnv)
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, env)
		}
		if st.Cond != nil {
			w.applyExpr(st.Cond, env)
		}
		if st.Post != nil {
			w.walkStmt(st.Post, env)
		}
		bodyEnv, _ := w.walkBlock(st.Body.List, env, st.Body.Rbrace)
		if st.Cond == nil && !hasBreak(st.Body) {
			// for {} without break: the loop never falls through.
			copyInto(env, bodyEnv)
			return true
		}
		mergeInto(env, env.clone(), bodyEnv) // body may run zero times
		return false
	case *ast.RangeStmt:
		w.applyExpr(st.X, env)
		bodyEnv, _ := w.walkBlock(st.Body.List, env, st.Body.Rbrace)
		mergeInto(env, env.clone(), bodyEnv)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkClauses(st, env)
	case *ast.BlockStmt:
		child, term := w.walkBlock(st.List, env, st.Rbrace)
		copyInto(env, child)
		return term
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, env)
	case *ast.BranchStmt:
		// break/continue/goto: ownership continues at the jump target;
		// treat as list-terminating so we neither miss nor double-report.
		return true
	case *ast.SendStmt, *ast.IncDecStmt:
		w.apply(st, env)
		return false
	default:
		if st != nil {
			w.apply(st, env)
		}
		return false
	}
}

// walkClauses handles switch/type-switch/select uniformly: each clause
// runs from the pre-state, and the post-state is the merge of every
// non-terminating clause (plus the pre-state when a switch has no
// default — then no clause may run at all).
func (w *fbWalker) walkClauses(s ast.Stmt, env fbEnv) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, env)
		}
		if st.Tag != nil {
			w.applyExpr(st.Tag, env)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, env)
		}
		w.apply(st.Assign, env)
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
		// A select always runs exactly one clause (without default it
		// blocks until one is ready), so the pre-state is never a
		// possible outcome on its own.
		hasDefault = true
	}
	var outs []fbEnv
	allTerm := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		var end token.Pos
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.applyExpr(e, env)
			}
			body, end = cc.Body, cc.End()
		case *ast.CommClause:
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, cc.Body...)
			} else {
				body = cc.Body
			}
			end = cc.End()
		}
		out, term := w.walkBlock(body, env, end)
		if !term {
			outs = append(outs, out)
			allTerm = false
		}
	}
	if !hasDefault || len(clauses) == 0 {
		outs = append(outs, env.clone())
		allTerm = false
	}
	if allTerm {
		return true
	}
	mergeInto(env, outs...)
	return false
}

// copyInto replaces env's entries with src's (same key set assumed for
// shared keys; keys only in src were scoped out already).
func copyInto(env, src fbEnv) {
	for obj := range env {
		if v, ok := src[obj]; ok {
			cp := *v
			env[obj] = &cp
		}
	}
}

// mergeInto joins several successor states: agreement keeps the state,
// any transfer wins (stop tracking silently), and a consumed/owned
// split degrades to fbMaybe.
func mergeInto(env fbEnv, outs ...fbEnv) {
	for obj := range env {
		var states []fbState
		deferred := false
		for _, o := range outs {
			if v, ok := o[obj]; ok {
				states = append(states, v.state)
				deferred = deferred || v.deferred
			}
		}
		if len(states) == 0 {
			continue
		}
		merged := states[0]
		for _, s := range states[1:] {
			merged = mergeState(merged, s)
		}
		env[obj] = &fbVar{state: merged, deferred: deferred}
	}
}

func mergeState(a, b fbState) fbState {
	if a == b {
		return a
	}
	if a == fbDone || b == fbDone {
		return fbDone
	}
	return fbMaybe
}

// --- creation ---------------------------------------------------------------

func (w *fbWalker) isGetFrameBuf(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isPkgCall(w.pass.TypesInfo, call, wirePath, "GetFrameBuf")
}

// trackCreations registers variables assigned from wire.GetFrameBuf and
// returns the set of objects (re)defined by this statement so their
// defining mention is not classified as a use.
func (w *fbWalker) trackCreations(st *ast.AssignStmt, env fbEnv) map[types.Object]bool {
	created := map[types.Object]bool{}
	if len(st.Lhs) == len(st.Rhs) {
		for i, rhs := range st.Rhs {
			if !w.isGetFrameBuf(rhs) {
				continue
			}
			id, ok := st.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj, _ := w.pass.TypesInfo.Defs[id].(*types.Var)
			if obj == nil {
				obj, _ = w.pass.TypesInfo.Uses[id].(*types.Var)
			}
			if obj == nil {
				continue
			}
			if old, ok := env[obj]; ok && old.state == fbOwned && !old.deferred {
				w.pass.Reportf(st.Pos(), "pooled frame buffer %s reassigned while still owned: previous buffer leaks", obj.Name())
			}
			env[obj] = &fbVar{state: fbOwned}
			created[obj] = true
		}
	}
	return created
}

// --- statement classification ------------------------------------------------

func (w *fbWalker) apply(node ast.Node, env fbEnv) {
	w.applyExcluding(node, env, nil)
}

func (w *fbWalker) applyExpr(e ast.Expr, env fbEnv) {
	if e != nil {
		w.applyExcluding(e, env, nil)
	}
}

func (w *fbWalker) applyExcluding(node ast.Node, env fbEnv, exclude map[types.Object]bool) {
	for obj, v := range env {
		if v.state == fbDone || exclude[obj] {
			continue
		}
		eff := w.classify(node, obj)
		if !eff.use {
			continue
		}
		if v.state == fbConsumed && !v.deferred {
			w.pass.Reportf(eff.pos, "use of pooled frame buffer %s after it was consumed by %s", obj.Name(), v.consumeVia)
			v.state = fbDone // one report per buffer
			continue
		}
		switch {
		case eff.consume:
			v.state = fbConsumed
			v.consumeVia = eff.via
		case eff.transfer:
			v.state = fbDone
		case eff.deferred:
			v.deferred = true
		}
	}
}

func (w *fbWalker) applyDefer(st *ast.DeferStmt, env fbEnv) {
	for obj, v := range env {
		if v.state == fbDone {
			continue
		}
		if usesIdentOf(w.pass.TypesInfo, st.Call, obj) {
			// Any defer touching the buffer is taken as a deferred
			// consume (defer fb.Release() and friends).
			v.deferred = true
		}
	}
}

// borrowMethods are *wire.FrameBuf methods that read or fill the buffer
// without moving ownership.
var fbBorrowMethods = map[string]bool{
	"Body": true, "ID": true, "Type": true, "WireLen": true, "SetFrame": true,
}

// classify computes the strongest effect node has on obj. Within one
// statement the ordering of multiple uses is not modeled; consume wins
// over transfer wins over bare use.
func (w *fbWalker) classify(node ast.Node, obj *types.Var) fbEffect {
	info := w.pass.TypesInfo
	var eff fbEffect
	record := func(e fbEffect) {
		if !eff.use {
			eff = e
			return
		}
		eff.use = true
		if e.consume {
			eff.consume, eff.transfer, eff.via, eff.pos = true, false, e.via, e.pos
		} else if e.transfer && !eff.consume {
			eff.transfer = true
		}
		eff.deferred = eff.deferred || e.deferred
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if usesIdentOf(info, x.Body, obj) {
				// Captured by a closure: ownership now depends on when
				// (and whether) the closure runs — treat as transferred.
				record(fbEffect{use: true, transfer: true, pos: x.Pos()})
			}
			return false
		case *ast.CallExpr:
			if e, handled := w.classifyCall(x, obj); handled {
				if e.use {
					record(e)
				}
				return false
			}
			return true
		case *ast.SendStmt:
			if identIs(info, x.Value, obj) {
				record(fbEffect{use: true, transfer: true, pos: x.Value.Pos()})
				visitChildren(x.Chan, visit)
				return false
			}
			return true
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if identIs(info, r, obj) {
					record(fbEffect{use: true, transfer: true, pos: r.Pos()})
				} else {
					visitChildren(r, visit)
				}
			}
			return false
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if identIs(info, r, obj) {
					// Aliased into another variable / field / slot.
					record(fbEffect{use: true, transfer: true, pos: r.Pos()})
				} else {
					visitChildren(r, visit)
				}
			}
			for _, l := range x.Lhs {
				visitChildren(l, visit)
			}
			return false
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if identIs(info, v, obj) {
					record(fbEffect{use: true, transfer: true, pos: v.Pos()})
				} else {
					visitChildren(v, visit)
				}
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND && identIs(info, x.X, obj) {
				record(fbEffect{use: true, transfer: true, pos: x.Pos()})
				return false
			}
			return true
		case *ast.Ident:
			if info.Uses[x] == obj {
				record(fbEffect{use: true, pos: x.Pos()})
			}
			return true
		}
		return true
	}
	visitChildren(node, visit)
	return eff
}

// classifyCall decides what a call does to obj when obj is its receiver
// or an argument. handled=false means the call is not about obj at the
// top level and the walker should descend normally.
func (w *fbWalker) classifyCall(call *ast.CallExpr, obj *types.Var) (fbEffect, bool) {
	info := w.pass.TypesInfo
	// Method call on the buffer itself: fb.Release() consumes,
	// fb.Body()/SetFrame(...) borrow.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && identIs(info, sel.X, obj) {
		name := sel.Sel.Name
		switch {
		case name == "Release":
			return fbEffect{use: true, consume: true, via: "Release", pos: call.Pos()}, true
		case fbBorrowMethods[name]:
			eff := fbEffect{use: true, pos: call.Pos()}
			for _, a := range call.Args {
				if identIs(info, a, obj) {
					eff.transfer = true
				}
			}
			return eff, true
		default:
			// Unknown method on the buffer: borrow, stay conservative.
			return fbEffect{use: true, pos: call.Pos()}, true
		}
	}
	// Buffer passed as an argument.
	for _, a := range call.Args {
		if !identIs(info, a, obj) {
			continue
		}
		switch {
		case isPkgCall(info, call, wirePath, "WriteFrame"), isPkgCall(info, call, wirePath, "ReadFrame"):
			// Documented borrows: the frame helpers do not release.
			return fbEffect{use: true, pos: a.Pos()}, true
		case calleeNameIs(call, "Send", "SendBatch", "send", "sendBatch"):
			// Consuming sends: transport.Conn.Send/SendBatch and the
			// rpc batcher/replyFlusher enqueue helpers, which own the
			// frame even on error (PROTOCOL.md rule 3).
			return fbEffect{use: true, consume: true, via: calleeDisplayName(call), pos: a.Pos()}, true
		default:
			// Transfer to a documented ownership-taking callee.
			return fbEffect{use: true, transfer: true, pos: a.Pos()}, true
		}
	}
	return fbEffect{}, false
}

// --- weak tracking: ownership received from Call/Recv ------------------------

// checkWeak flags response buffers (from calls returning *wire.FrameBuf
// that are not GetFrameBuf) that the function never releases nor
// transfers anywhere. Error paths are not modeled here — on error those
// results are nil — so this is a whole-function existence check.
func (w *fbWalker) checkWeak(body *ast.BlockStmt) {
	info := w.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited as its own function by funcBodies
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || w.isGetFrameBuf(st.Rhs[0]) {
			return true
		}
		tv, ok := info.Types[call]
		if !ok {
			return true
		}
		var results []types.Type
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				results = append(results, tup.At(i).Type())
			}
		} else {
			results = []types.Type{tv.Type}
		}
		if len(results) != len(st.Lhs) {
			return true
		}
		for i, t := range results {
			if !isFrameBufPtr(t) {
				continue
			}
			id, ok := st.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				w.pass.Reportf(st.Pos(), "frame buffer returned by %s is discarded without Release (the caller owns it)", calleeDisplayName(call))
				continue
			}
			obj, _ := info.Defs[id].(*types.Var)
			if obj == nil {
				continue // assignment to an existing var: assume managed elsewhere
			}
			if !w.hasOwnershipUse(body, obj) {
				w.pass.Reportf(id.Pos(), "frame buffer %s returned by %s is never released or transferred (the caller owns it)", id.Name, calleeDisplayName(call))
			}
		}
		return true
	})
}

// hasOwnershipUse reports whether obj has at least one consuming or
// transferring use anywhere in body.
func (w *fbWalker) hasOwnershipUse(body *ast.BlockStmt, obj *types.Var) bool {
	info := w.pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && identIs(info, sel.X, obj) && sel.Sel.Name == "Release" {
				found = true
				return false
			}
			for _, a := range x.Args {
				if identIs(info, a, obj) {
					found = true // transferred or consumed by the callee
					return false
				}
			}
		case *ast.SendStmt:
			if identIs(info, x.Value, obj) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if identIs(info, r, obj) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if identIs(info, r, obj) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if identIs(info, v, obj) {
					found = true
				}
			}
		case *ast.FuncLit:
			if usesIdentOf(info, x.Body, obj) {
				found = true
			}
			return false
		}
		return !found
	})
	return found
}

// --- small shared helpers -----------------------------------------------------

func identIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func calleeNameIs(call *ast.CallExpr, names ...string) bool {
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	for _, n := range names {
		if name == n {
			return true
		}
	}
	return false
}

func calleeDisplayName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return "call"
}

// isTerminatorCall reports whether e is a call that never returns:
// panic, os.Exit, log.Fatal*.
func isTerminatorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	if f := calleeFunc(info, call); f != nil && f.Pkg() != nil {
		switch {
		case f.Pkg().Path() == "os" && f.Name() == "Exit",
			f.Pkg().Path() == "log" && (f.Name() == "Fatal" || f.Name() == "Fatalf" || f.Name() == "Fatalln"):
			return true
		}
	}
	return false
}

// visitChildren runs fn over node itself (ast.Inspect semantics).
func visitChildren(node ast.Node, fn func(ast.Node) bool) {
	if node != nil {
		ast.Inspect(node, fn)
	}
}

// hasBreak coarsely reports whether body contains a break statement
// (nesting into inner loops is not modeled; over-approximating keeps
// the for{} never-falls-through special case sound).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.BREAK {
			found = true
		}
		return !found
	})
	return found
}
