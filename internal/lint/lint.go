// Package lint implements mvtl's project-specific static analyzers.
// Each analyzer mechanically enforces an invariant that PROTOCOL.md or
// TESTING.md states in prose and that the compiler cannot see:
//
//   - framebuf: pooled wire.FrameBuf ownership — every GetFrameBuf
//     reaches exactly one Release/Send/transfer on every path, and a
//     buffer is never touched after a consuming call.
//   - borrowedview: []byte views borrowed from frame bodies
//     (Decoder.Blob, FrameBuf.Body, decoded-message fields) must be
//     bytes.Clone'd before they are stored anywhere that outlives the
//     frame.
//   - determinism: in //mvtl:deterministic packages (and
//     internal/faultbed), no wall-clock reads, no global math/rand, no
//     multi-case selects, no output-feeding iteration over unsorted
//     maps — the H13 same-seed ⇒ byte-identical-transcript rule.
//   - lockorder: no mutex held across a blocking RPC or transport
//     send — the bug class PR 3's per-peer-mutex fix repaired by hand.
//   - codecpair: every wire message type has an AppendTo/decoder pair
//     and a fuzz seed corpus entry.
//
// False positives are suppressed with a justified directive on the
// flagged line or the line above:
//
//	//mvtl:ignore <analyzer> <justification>
//
// The justification is mandatory; a bare directive is itself reported.
// See TESTING.md "Mechanically enforced invariants".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/loader"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FrameBufAnalyzer,
		BorrowedViewAnalyzer,
		DeterminismAnalyzer,
		LockOrderAnalyzer,
		CodecPairAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("framebuf,lockorder").
func ByName(names string) ([]*analysis.Analyzer, error) {
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range Analyzers() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Finding is one post-suppression diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies analyzers to pkgs, filters suppressed findings through
// //mvtl:ignore directives, and returns the survivors sorted by
// position. Malformed directives (missing analyzer name or
// justification) are reported as findings of the pseudo-analyzer
// "directive" and cannot be suppressed.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				TestFiles: pkg.TestSyntax,
				PkgPath:   pkg.PkgPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// --- //mvtl:ignore directives ------------------------------------------------

// ignoreSet records, per file and line, which analyzers are silenced.
// A directive covers its own line and the next one, so both trailing
// comments and a comment line above the flagged statement work.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if lines[ln][analyzer] {
			return true
		}
	}
	return false
}

const ignorePrefix = "mvtl:ignore"

func collectIgnores(pkg *loader.Package) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	files := append(append([]*ast.File{}, pkg.Syntax...), pkg.TestSyntax...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed //mvtl:ignore: want \"//mvtl:ignore <analyzer> <justification>\"",
					})
					continue
				}
				name := fields[0]
				if _, err := ByName(name); err != nil {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("//mvtl:ignore names unknown analyzer %q", name),
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][name] = true
			}
		}
	}
	return set, bad
}

// --- shared type helpers ------------------------------------------------------

const (
	wirePath      = "github.com/lpd-epfl/mvtl/internal/wire"
	transportPath = "github.com/lpd-epfl/mvtl/internal/transport"
	rpcPath       = "github.com/lpd-epfl/mvtl/internal/rpc"
)

// namedAs reports whether t (after stripping one pointer) is the named
// type pkgPath.name.
func namedAs(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isFrameBufPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && namedAs(p.Elem(), wirePath, "FrameBuf")
}

// calleeFunc resolves a call to its *types.Func (package function or
// method), or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Fn.
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// methodOn reports whether call is a method call named name whose
// receiver (after stripping one pointer) is pkgPath.typeName.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return namedAs(s.Recv(), pkgPath, typeName)
}

// usesIdentOf reports whether node references obj anywhere beneath it.
func usesIdentOf(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcBodies yields every function/method body and every function
// literal body in the file, each exactly once, paired with a printable
// name. Function literals are visited as independent functions.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Body)
			}
		case *ast.FuncLit:
			visit("func literal", fn.Body)
		}
		return true
	})
}
