// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: an Analyzer is a named check, a Pass
// hands it one type-checked package, diagnostics are (position,
// message) pairs. The x/tools module is deliberately not a dependency
// — the repo builds offline with the standard library alone — but the
// shapes mirror the real API one-to-one so the suite can be rebased
// onto the upstream multichecker by swapping import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mvtl:ignore directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph help text: first line is a summary,
	// the rest explains the rule the analyzer enforces.
	Doc string

	// Run applies the analyzer to one package. It reports findings
	// through pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass provides one analyzer run with one package's syntax and types.
type Pass struct {
	Analyzer *Analyzer

	Fset *token.FileSet

	// Files holds the type-checked syntax trees of the package's
	// non-test sources.
	Files []*ast.File

	// TestFiles holds parsed (but NOT type-checked) in-package _test.go
	// sources. Only syntactic checks may use them — the codecpair
	// analyzer scans them for the fuzz seed corpus.
	TestFiles []*ast.File

	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
