package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
)

// CodecPairAnalyzer keeps the wire message catalog closed under its
// three registrations: every named struct type with an
// AppendTo(buf []byte) []byte method (the wire.Message encoder half)
// must have a matching decoder — a package-level Decode<Type> function
// or a DecodeInto method — and an entry in the codecCases fuzz seed
// corpus that FuzzDecodeMessages and the round-trip/truncation property
// tests iterate. A message missing any leg ships encodes nobody can
// decode, or a decoder the fuzzer never stresses.
//
// The analyzer runs on the wire package and on packages marked with a
// //mvtl:wire-codec comment (fixtures).
var CodecPairAnalyzer = &analysis.Analyzer{
	Name: "codecpair",
	Doc: "check every wire message type has an AppendTo/Decode pair and a codecCases " +
		"fuzz seed corpus entry",
	Run: runCodecPair,
}

const codecMarker = "mvtl:wire-codec"

func runCodecPair(pass *analysis.Pass) error {
	if pass.PkgPath != wirePath && !hasMarker(pass, codecMarker) {
		return nil
	}

	corpus, corpusFound := fuzzCorpusKeys(pass.TestFiles)

	scope := pass.Pkg.Scope()
	reportedMissingCorpus := false
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		if !hasAppendTo(named) {
			continue
		}
		if !hasDecoder(scope, named) {
			pass.Reportf(tn.Pos(), "wire message %s has AppendTo but no Decode%s function or DecodeInto method: encodes would be undecodable", name, name)
		}
		if !corpusFound {
			if !reportedMissingCorpus {
				pass.Reportf(tn.Pos(), "no codecCases fuzz seed corpus found in package test files: message codecs are not fuzzed")
				reportedMissingCorpus = true
			}
			continue
		}
		if !corpus[name] {
			pass.Reportf(tn.Pos(), "wire message %s missing from the codecCases fuzz seed corpus: its codec is never fuzzed or property-tested", name)
		}
	}
	return nil
}

func hasMarker(pass *analysis.Pass, marker string) bool {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, marker) {
					return true
				}
			}
		}
	}
	return false
}

// hasAppendTo reports whether *T has method AppendTo([]byte) []byte.
func hasAppendTo(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "AppendTo" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
			return false
		}
		return isByteSlice(sig.Params().At(0).Type()) && isByteSlice(sig.Results().At(0).Type())
	}
	return false
}

// hasDecoder reports a package-level Decode<T> function or a DecodeInto
// method on T.
func hasDecoder(scope *types.Scope, named *types.Named) bool {
	name := named.Obj().Name()
	if _, ok := scope.Lookup("Decode" + name).(*types.Func); ok {
		return true
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "DecodeInto" {
			return true
		}
	}
	return false
}

// fuzzCorpusKeys extracts the string keys of the codecCases map
// composite literal from the (parse-only) test files.
func fuzzCorpusKeys(testFiles []*ast.File) (map[string]bool, bool) {
	keys := map[string]bool{}
	found := false
	for _, f := range testFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			var name string
			var value ast.Expr
			switch x := n.(type) {
			case *ast.ValueSpec:
				if len(x.Names) == 1 && len(x.Values) == 1 {
					name, value = x.Names[0].Name, x.Values[0]
				}
			case *ast.AssignStmt:
				if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
					if id, ok := x.Lhs[0].(*ast.Ident); ok {
						name, value = id.Name, x.Rhs[0]
					}
				}
			}
			if name != "codecCases" || value == nil {
				return true
			}
			lit, ok := ast.Unparen(value).(*ast.CompositeLit)
			if !ok {
				return true
			}
			found = true
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if bl, ok := kv.Key.(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(bl.Value); err == nil {
						keys[s] = true
					}
				}
			}
			return true
		})
	}
	return keys, found
}
