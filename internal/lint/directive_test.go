package lint_test

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/analysistest"
)

// TestIgnoreDirectives proves a justified //mvtl:ignore silences its
// finding (same-line and line-above), while malformed and
// unknown-analyzer directives are themselves reported.
func TestIgnoreDirectives(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lint.DeterminismAnalyzer},
		"testdata/src/directive",
	)
}
