package lint_test

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/analysistest"
)

// TestBorrowedViewAnalyzer proves escaping borrowed views are flagged
// (bad) while clone-then-store and local uses pass (ok).
func TestBorrowedViewAnalyzer(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lint.BorrowedViewAnalyzer},
		"testdata/src/borrowedview/bad",
		"testdata/src/borrowedview/ok",
	)
}
