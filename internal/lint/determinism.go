package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
)

// DeterminismAnalyzer enforces the H13 same-seed ⇒ byte-identical-
// transcript rule from TESTING.md in packages that opt in: anything
// whose order or value can differ between two runs of the same seed
// must not reach transcripts, fault logs, or event logs. Concretely it
// forbids, in internal/faultbed and packages carrying a
// //mvtl:deterministic comment:
//
//   - wall-clock reads (time.Now, time.Since) — transcripts are
//     timestamp-free by construction;
//   - raw timers (time.Sleep, time.After, time.NewTimer, time.Tick,
//     time.AfterFunc) and deadline contexts (context.WithTimeout,
//     context.WithDeadline) — waits must route through clock.Timers so
//     a virtual timeline can advance them; a wall-clock wait stalls
//     the virtual run and decouples timeout order from the modeled
//     schedule;
//   - the global math/rand generators (seeded per-process, shared
//     across goroutines) — all randomness must derive from the
//     scenario seed via explicit streams or stateless hash coins;
//   - select statements with two or more communication cases — when
//     several cases are ready the runtime picks pseudo-randomly;
//   - ranging over a map when the loop body feeds output (printing,
//     Write/record/log calls, channel sends, or appends to an outer
//     slice that is never sorted afterwards) — map iteration order is
//     randomized per run.
//
// The collect-keys-then-sort idiom is recognized: appending map keys to
// a slice that a later sort.* / slices.Sort* call in the same function
// orders is allowed.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "in //mvtl:deterministic packages forbid wall-clock reads, raw timers and " +
		"deadline contexts (use clock.Timers), global math/rand, multi-case selects, " +
		"and output-feeding iteration over unsorted maps",
	Run: runDeterminism,
}

const deterministicMarker = "mvtl:deterministic"

func runDeterminism(pass *analysis.Pass) error {
	if !deterministicPackage(pass) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkMapRanges(pass, body)
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil {
					switch {
					case fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
						pass.Reportf(x.Pos(), "wall-clock read %s.%s in a deterministic package: transcripts must not depend on real time", fn.Pkg().Name(), fn.Name())
					case fn.Pkg().Path() == "time" && isRawTimer(fn.Name()):
						pass.Reportf(x.Pos(), "raw timer time.%s in a deterministic package: route the wait through clock.Timers so virtual time can advance it", fn.Name())
					case fn.Pkg().Path() == "context" && (fn.Name() == "WithTimeout" || fn.Name() == "WithDeadline"):
						pass.Reportf(x.Pos(), "wall-clock deadline context.%s in a deterministic package: derive the context from clock.Timers.WithTimeout instead", fn.Name())
					case isGlobalRand(fn):
						pass.Reportf(x.Pos(), "global math/rand call %s in a deterministic package: derive randomness from the scenario seed instead", fn.Name())
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(x.Pos(), "select with %d communication cases in a deterministic package: the runtime picks ready cases pseudo-randomly", comm)
				}
			}
			return true
		})
	}
	return nil
}

// deterministicPackage reports whether the H13 rules apply: the fault
// bed always, plus any package opting in via a //mvtl:deterministic
// comment.
func deterministicPackage(pass *analysis.Pass) bool {
	if strings.HasSuffix(pass.PkgPath, "internal/faultbed") {
		return true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, deterministicMarker) {
					return true
				}
			}
		}
	}
	return false
}

// isRawTimer matches the time-package functions that start a wait or a
// timer on the wall clock. time.Timer/Ticker values obtained elsewhere
// are not chased — the constructors are the chokepoint.
func isRawTimer(name string) bool {
	switch name {
	case "Sleep", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
		return true
	}
	return false
}

// isGlobalRand matches package-level functions of math/rand and
// math/rand/v2 (methods on an explicit *rand.Rand carry their own
// seed and are fine).
func isGlobalRand(fn *types.Func) bool {
	p := fn.Pkg().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && fn.Name() != "New" && fn.Name() != "NewSource" &&
		fn.Name() != "NewChaCha8" && fn.Name() != "NewPCG" && fn.Name() != "NewZipf"
}

// checkMapRanges flags range-over-map loops whose body feeds output.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := typeOf(info, rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if why, at := outputFeeding(pass, body, rng); why != "" {
			pass.Reportf(at.Pos(), "map iteration order reaches output (%s): sort the keys first", why)
		}
		return true
	})
}

// outputFeeding decides whether the loop body of rng lets iteration
// order become observable, returning a description and position.
func outputFeeding(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) (string, ast.Node) {
	info := pass.TypesInfo
	var why string
	var at ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			name := calleeDisplayName(x)
			if outputCallName(name) {
				why, at = "call to "+name, x
				return false
			}
		case *ast.SendStmt:
			why, at = "channel send", x
			return false
		case *ast.AssignStmt:
			// xs = append(xs, ...) into a variable declared outside
			// the loop: order-sensitive unless sorted afterwards.
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok || !isAppendCall(info, call) {
				return true
			}
			id, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := bindingVar(info, id).(*types.Var)
			if !ok || obj.Pos() >= rng.Pos() {
				return true // declared inside the loop: fresh each iteration
			}
			if sortedAfter(info, fnBody, rng, obj) {
				return true
			}
			why, at = "append to "+id.Name+" which is never sorted", x
			return false
		}
		return true
	})
	if why == "" {
		return "", nil
	}
	return why, at
}

// outputCallName matches callees that externalize data: printing,
// writers, transcript recording, logging.
func outputCallName(name string) bool {
	switch {
	case strings.HasPrefix(name, "Print"), strings.HasPrefix(name, "Fprint"):
		return true
	case name == "Write", name == "WriteString", name == "WriteByte", name == "WriteRune":
		return true
	case name == "record", name == "Record", name == "log", name == "logf", name == "Log", name == "Logf":
		return true
	}
	return false
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, after rng in the same function body, obj
// is passed to a sort.* or slices.Sort* call — the collect-then-sort
// idiom.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj *types.Var) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		p := fn.Pkg().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if identIs(info, a, obj) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
