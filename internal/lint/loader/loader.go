// Package loader type-checks Go packages for the lint suite without
// depending on golang.org/x/tools/go/packages. It shells out to
// `go list -e -export -deps -json` — which compiles dependencies (into
// the build cache) and reports the gc export-data file of every one —
// then parses the target packages from source and type-checks them
// with go/types, resolving imports from that export data via
// importer.ForCompiler's lookup hook. Everything runs offline: the
// toolchain and the standard library are the only inputs.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet

	// Syntax holds the type-checked non-test files.
	Syntax []*ast.File

	// TestSyntax holds parsed in-package _test.go files. They are NOT
	// type-checked (the test binary's extra dependencies are not
	// loaded); only syntactic passes may rely on them.
	TestSyntax []*ast.File

	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
	Error       *struct{ Err string }
}

// Load lists patterns relative to dir (module-aware), type-checks every
// matched non-dependency package from source, and returns them in
// `go list` order. All packages share one FileSet so diagnostic
// positions are comparable across the run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
			}
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q (package failed to compile?)", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("loader: %s: %v", t.ImportPath, err)
			}
			files = append(files, f)
		}
		return files, nil
	}
	syntax, err := parse(t.GoFiles)
	if err != nil {
		return nil, err
	}
	testSyntax, err := parse(t.TestGoFiles)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(t.ImportPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, errors.Join(typeErrs...))
	}
	return &Package{
		PkgPath:    t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Syntax:     syntax,
		TestSyntax: testSyntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
