package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
)

// BorrowedViewAnalyzer enforces PROTOCOL.md "Buffer ownership" rule 5:
// every []byte decoded from a frame (wire.Decoder.Blob, FrameBuf.Body,
// and the blob fields of wire.Decode*/DecodeInto results) is a borrowed
// view into the pooled frame body, valid only until the buffer is
// released. Storing such a view into a struct field, a global, or a
// map — or capturing it in a goroutine closure — without an intervening
// bytes.Clone (or a copying conversion like string(v) /
// append(dst, v...)) is a use-after-release waiting for pool reuse.
//
// The wire package itself is exempt: its decoders construct the views
// by design.
var BorrowedViewAnalyzer = &analysis.Analyzer{
	Name: "borrowedview",
	Doc: "flag borrowed frame-body []byte views (Decoder.Blob, FrameBuf.Body, decoded " +
		"message blob fields) stored into fields, globals, maps, or goroutine closures " +
		"without bytes.Clone",
	Run: runBorrowedView,
}

func runBorrowedView(pass *analysis.Pass) error {
	if pass.PkgPath == wirePath {
		return nil
	}
	// Unlike the other analyzers, function literals are NOT analyzed
	// independently here: a closure shares its enclosing function's
	// variables, so each top-level function body is walked once with
	// its literals inline.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			bv := &bvWalker{pass: pass, events: map[*types.Var][]bvEvent{}, containers: map[*types.Var]bool{}}
			bv.collect(fn.Body)
			bv.checkStores(fn.Body)
		}
	}
	return nil
}

// bvEvent records that a variable became borrowed or clean at pos.
type bvEvent struct {
	pos      token.Pos
	borrowed bool
}

type bvWalker struct {
	pass *analysis.Pass

	// events, per variable, in source order: the latest event before a
	// use decides whether the use sees a borrowed view.
	events map[*types.Var][]bvEvent

	// containers holds variables whose value is (or aggregates) a
	// decoded wire message, so their []byte-typed field selections are
	// borrowed views.
	containers map[*types.Var]bool
}

// --- phase 1: taint collection -----------------------------------------------

// collect walks body in source order, recording which variables hold
// borrowed views or decoded-message containers at which positions.
// Function literals are walked too: they share the enclosing scope.
func (bv *bvWalker) collect(body *ast.BlockStmt) {
	info := bv.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			bv.collectAssign(st)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
						for i, val := range vs.Values {
							bv.classifyBinding(vs.Names[i], val, info.Defs[vs.Names[i]])
						}
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a decoded container (e.g. resp.Results)
			// makes the value variable a container too.
			if bv.containerish(st.X) || bv.taints(st.X) {
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj, ok := info.Defs[id].(*types.Var); ok {
						bv.containers[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			// m.DecodeInto(buf) fills m with borrowed views.
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "DecodeInto" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj, ok := info.Uses[id].(*types.Var); ok {
						bv.containers[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (bv *bvWalker) collectAssign(st *ast.AssignStmt) {
	info := bv.pass.TypesInfo
	// Tuple form: v, err := wire.DecodeX(buf).
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && bv.isWireDecodeCall(call) {
			if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj, ok := bindingVar(info, id).(*types.Var); ok {
					bv.containers[obj] = true
				}
			}
		}
		return
	}
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		id, ok := st.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		bv.classifyBinding(id, rhs, bindingVar(info, id))
	}
}

// classifyBinding records the effect of `id = rhs` (or := / var).
func (bv *bvWalker) classifyBinding(id *ast.Ident, rhs ast.Expr, obj types.Object) {
	v, ok := obj.(*types.Var)
	if !ok || v == nil {
		return
	}
	if isByteSlice(v.Type()) {
		bv.events[v] = append(bv.events[v], bvEvent{pos: id.Pos(), borrowed: bv.taints(rhs)})
		return
	}
	// Non-[]byte binding: container propagation (decoded structs,
	// slices/maps of them, and copies thereof).
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && bv.isWireDecodeCall(call) {
		bv.containers[v] = true
		return
	}
	if bv.containerish(rhs) {
		bv.containers[v] = true
	}
}

// isWireDecodeCall matches wire.Decode* package functions.
func (bv *bvWalker) isWireDecodeCall(call *ast.CallExpr) bool {
	f := calleeFunc(bv.pass.TypesInfo, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == wirePath &&
		strings.HasPrefix(f.Name(), "Decode") && f.Type().(*types.Signature).Recv() == nil
}

// --- phase 2: escape checks ---------------------------------------------------

func (bv *bvWalker) checkStores(body *ast.BlockStmt) {
	info := bv.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				rhs := st.Rhs[i]
				if !isByteSlice(typeOf(info, rhs)) || !bv.taints(rhs) {
					continue
				}
				if why := bv.escapingLValue(lhs); why != "" {
					bv.pass.Reportf(st.Pos(),
						"borrowed frame view stored into %s without bytes.Clone: the bytes die when the frame buffer is released", why)
				}
			}
		case *ast.GoStmt:
			bv.checkClosureCapture(st.Call, "goroutine")
			return true
		}
		return true
	})
}

// checkClosureCapture flags borrowed views referenced inside function
// literals that escape the frame's synchronous lifetime (go statements).
func (bv *bvWalker) checkClosureCapture(call *ast.CallExpr, how string) {
	info := bv.pass.TypesInfo
	ast.Inspect(call, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || !isByteSlice(obj.Type()) {
				return true
			}
			if bv.borrowedAt(obj, id.Pos()) {
				bv.pass.Reportf(id.Pos(),
					"borrowed frame view %s captured by a %s closure without bytes.Clone: the frame buffer may be released before it runs", id.Name, how)
			}
			return true
		})
		return false
	})
}

// escapingLValue describes why storing into lhs outlives the frame, or
// returns "" when the store target is safely local.
func (bv *bvWalker) escapingLValue(lhs ast.Expr) string {
	info := bv.pass.TypesInfo
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			return "struct field " + types.ExprString(l)
		}
		if obj, ok := info.Uses[l.Sel].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
			return "package-level variable " + types.ExprString(l)
		}
	case *ast.IndexExpr:
		baseT := typeOf(info, l.X)
		if baseT == nil {
			return ""
		}
		if _, isMap := baseT.Underlying().(*types.Map); isMap {
			return "map " + types.ExprString(l.X)
		}
		// Slice element store: escaping when the slice itself lives in
		// a field or global (xs[i] = v with xs a bare local stays
		// within the frame's scope and is the caller's problem).
		if why := bv.escapingLValue(l.X); why != "" {
			return "slice in " + why
		}
		return ""
	case *ast.Ident:
		if obj, ok := info.Uses[l].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "package-level variable " + l.Name
		}
	}
	return ""
}

// --- taint predicates ---------------------------------------------------------

// borrowedAt reports whether v holds a borrowed view at pos.
func (bv *bvWalker) borrowedAt(v *types.Var, pos token.Pos) bool {
	state := false
	for _, e := range bv.events[v] {
		if e.pos > pos {
			break
		}
		state = e.borrowed
	}
	return state
}

// containerish reports whether e denotes a decoded-message aggregate:
// a container variable, or a selector/index/slice path rooted at one.
func (bv *bvWalker) containerish(e ast.Expr) bool {
	info := bv.pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok {
			return bv.containers[obj]
		}
	case *ast.SelectorExpr:
		return bv.containerish(x.X)
	case *ast.IndexExpr:
		return bv.containerish(x.X)
	case *ast.SliceExpr:
		return bv.containerish(x.X)
	case *ast.StarExpr:
		return bv.containerish(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return bv.containerish(x.X)
		}
	}
	return false
}

// taints reports whether evaluating e yields (or aliases) borrowed
// frame bytes. Sanitizers — bytes.Clone, conversion to string,
// append(clean, v...) — act as barriers.
func (bv *bvWalker) taints(e ast.Expr) bool {
	info := bv.pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if isPkgCall(info, x, "bytes", "Clone") {
			return false
		}
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			// Conversion: string(v) copies; []byte-to-[]byte style
			// conversions keep the backing array.
			if isByteSlice(tv.Type) {
				return len(x.Args) == 1 && bv.taints(x.Args[0])
			}
			return false
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				// append(dst, src...) copies src's bytes but still
				// aliases dst's array when capacity suffices.
				if len(x.Args) > 0 {
					return bv.taints(x.Args[0])
				}
				return false
			}
		}
		if methodOn(info, x, wirePath, "Decoder", "Blob") {
			return true
		}
		if methodOn(info, x, wirePath, "FrameBuf", "Body") {
			return true
		}
		return false
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok && isByteSlice(obj.Type()) {
			return bv.borrowedAt(obj, x.Pos())
		}
		return false
	case *ast.SelectorExpr:
		// A []byte field of a decoded message is a borrowed view.
		if isByteSlice(typeOf(info, x)) && bv.containerish(x.X) {
			return true
		}
		return false
	case *ast.IndexExpr:
		if isByteSlice(typeOf(info, x)) && bv.containerish(x.X) {
			return true
		}
		return bv.taints(x.X)
	case *ast.SliceExpr:
		return bv.taints(x.X)
	case *ast.BinaryExpr:
		return false // comparisons/concats produce fresh values
	}
	return false
}

func bindingVar(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
