package lint_test

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/analysistest"
)

// TestDeterminismAnalyzer proves every H13 rule fires (bad) and the
// seeded-stream / collect-then-sort idioms pass (ok).
func TestDeterminismAnalyzer(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lint.DeterminismAnalyzer},
		"testdata/src/determinism/bad",
		"testdata/src/determinism/ok",
	)
}
