package lint_test

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/analysistest"
)

// TestLockOrderAnalyzer proves locks held across blocking RPC/transport
// calls are flagged (bad) while balanced locking, goroutine hand-off,
// and concrete-transport serialization mutexes pass (ok).
func TestLockOrderAnalyzer(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lint.LockOrderAnalyzer},
		"testdata/src/lockorder/bad",
		"testdata/src/lockorder/ok",
	)
}
