package lint_test

import (
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/analysistest"
)

// TestCodecPairAnalyzer proves missing decoder / missing corpus entry /
// missing corpus are each reported, against the syntactic codecCases
// scan of (parse-only) test files.
func TestCodecPairAnalyzer(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lint.CodecPairAnalyzer},
		"testdata/src/codecpair/bad",
		"testdata/src/codecpair/nocorpus",
	)
}
