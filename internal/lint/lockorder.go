package lint

import (
	"go/ast"
	"go/types"

	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
)

// LockOrderAnalyzer flags a sync.Mutex/RWMutex held across a blocking
// network operation: rpc.Client.Call/Cast or a transport.Conn
// Send/SendBatch/Recv through the interface. Holding a lock across
// such a call head-of-line-blocks every other path needing that lock
// for a full network round trip (or forever, against a dead peer) —
// the exact bug class PR 3's per-peer-mutex fix repaired by hand.
//
// Transport implementations themselves (tcpConn's write mutex, the Mem
// pipe) are not matched: their mutexes exist to serialize the wire and
// their receivers are concrete types, not the transport.Conn interface.
var LockOrderAnalyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag sync.Mutex/RWMutex held across rpc.Client.Call/Cast or " +
		"transport.Conn.Send/SendBatch/Recv",
	Run: runLockOrder,
}

func runLockOrder(pass *analysis.Pass) error {
	w := &lockWalker{pass: pass}
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			w.walkStmts(body.List, map[string]bool{})
		})
	}
	return nil
}

type lockWalker struct {
	pass *analysis.Pass
}

// walkStmts threads the set of held mutexes (keyed by the printed
// receiver expression, e.g. "s.peersMu") through a statement list.
// Nested control flow runs on a copy: a lock balanced inside a branch
// stays inside it, a lock taken and left held propagates only through
// the straight-line suffix — an approximation that matches the
// Lock/defer-Unlock and Lock...Unlock idioms this repo uses.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, op := w.mutexOp(st.X); key != "" {
			switch op {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		w.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to function end by
		// design; the held set already reflects that. Other deferred
		// calls run after the function body — no blocking risk now.
		if key, op := w.mutexOp(st.Call); key != "" && (op == "Lock" || op == "RLock") {
			held[key] = true
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.checkExpr(r, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.checkExpr(st.Cond, held)
		w.walkStmts(st.Body.List, cloneHeld(held))
		if st.Else != nil {
			w.walkStmt(st.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		inner := cloneHeld(held)
		w.walkStmts(st.Body.List, inner)
		if st.Post != nil {
			w.walkStmt(st.Post, inner)
		}
	case *ast.RangeStmt:
		w.checkExpr(st.X, held)
		w.walkStmts(st.Body.List, cloneHeld(held))
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := cloneHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.GoStmt:
		// The goroutine runs without the caller's locks.
	case *ast.SendStmt:
		w.checkExpr(st.Value, held)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// nothing blocking
	}
}

func cloneHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

// mutexOp recognizes <expr>.Lock/Unlock/RLock/RUnlock() on a
// sync.Mutex or sync.RWMutex (directly or embedded) and returns the
// printed receiver expression as the lock's identity.
func (w *lockWalker) mutexOp(e ast.Expr) (key, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
		return "", ""
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok {
		return "", ""
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return types.ExprString(sel.X), name
}

// checkExpr reports blocking RPC/transport calls beneath e while any
// mutex is held. Function literals are skipped: they run later.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	info := w.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what := blockingCall(info, call); what != "" {
			w.pass.Reportf(call.Pos(), "%s while holding %s: a blocked peer holds the lock for a full round trip (or forever)",
				what, firstKey(held))
		}
		return true
	})
}

// blockingCall describes a call that can block on the network, or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	switch {
	case methodOn(info, call, rpcPath, "Client", "Call"):
		return "rpc.Client.Call"
	case methodOn(info, call, rpcPath, "Client", "Cast"):
		return "rpc.Client.Cast"
	case methodOn(info, call, transportPath, "Conn", "Send"):
		return "transport.Conn.Send"
	case methodOn(info, call, transportPath, "Conn", "SendBatch"):
		return "transport.Conn.SendBatch"
	case methodOn(info, call, transportPath, "Conn", "Recv"):
		return "transport.Conn.Recv"
	}
	return ""
}

func firstKey(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
