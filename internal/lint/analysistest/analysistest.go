// Package analysistest runs lint analyzers against fixture packages and
// checks their diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which is not available
// offline). Fixtures are real packages of this module, placed under
// internal/lint/testdata/src/... — the testdata path segment hides them
// from ./... wildcards, so deliberately-broken fixtures never reach
// builds, but explicit `go list` paths still resolve them, and they may
// import the real wire/transport/rpc packages.
//
// A want comment names one or more message regexps expected on its
// line:
//
//	fb := wire.GetFrameBuf() // want `leaks`
//	conn.Send(fb)            // want "after it was consumed" "second"
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/lint"
	"github.com/lpd-epfl/mvtl/internal/lint/analysis"
	"github.com/lpd-epfl/mvtl/internal/lint/loader"
)

// Run loads each fixture package directory (relative to the test's
// working directory) and checks analyzer diagnostics against the
// fixtures' want comments. Findings of the "directive" pseudo-analyzer
// (malformed //mvtl:ignore) participate, so directive fixtures work.
func Run(t *testing.T, analyzers []*analysis.Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./" + d
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, pkgs)
	for _, f := range findings {
		key := posKey{file: f.Pos.Filename, line: f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkgs []*loader.Package) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, pkg := range pkgs {
		files := append(append([]*ast.File{}, pkg.Syntax...), pkg.TestSyntax...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey{file: pos.Filename, line: pos.Line}
					for _, pat := range splitPatterns(strings.TrimPrefix(text, "want ")) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of quoted (double or back) strings.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			if u, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, u)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
