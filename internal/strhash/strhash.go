// Package strhash provides the string hash shared by every component
// that partitions keys: the coordinator's server selection, the
// in-process engine's shard selection, and the storage server's stripe
// selection. One definition keeps the three in agreement.
package strhash

// FNV1a returns the 32-bit FNV-1a hash of s.
func FNV1a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// FNV1a64 returns the 64-bit FNV-1a hash of s. The transport and fault
// layers use it to derive per-link seeds from link names, so every link
// gets an independent random stream regardless of dial order.
func FNV1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Mix64 is the splitmix64 finalizer: a cheap bijective mixer that turns
// structured inputs (seed ^ link hash ^ counter) into well-distributed
// seeds for independent random streams.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
