// Package strhash provides the string hash shared by every component
// that partitions keys: the coordinator's server selection, the
// in-process engine's shard selection, and the storage server's stripe
// selection. One definition keeps the three in agreement.
package strhash

// FNV1a returns the 32-bit FNV-1a hash of s.
func FNV1a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
