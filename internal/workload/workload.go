// Package workload generates and drives the transactional workloads of
// the paper's evaluation (§8.3): closed-loop clients repeatedly submit
// transactions of a fixed size with a given write fraction over a keyspace,
// while throughput and commit rate are measured after a warm-up phase.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/metrics"
)

// KeyDist selects the key popularity distribution.
type KeyDist uint8

// Supported key distributions.
const (
	// Uniform picks keys uniformly at random (the paper's setting).
	Uniform KeyDist = iota + 1
	// Zipf picks keys with a zipfian skew (s=1.2), modelling hot keys.
	Zipf
)

// Config describes one workload (one experiment cell of §8.3).
type Config struct {
	// Clients is the number of closed-loop client goroutines.
	Clients int
	// OpsPerTxn is the number of operations per transaction.
	OpsPerTxn int
	// WriteFraction in [0,1] is the probability an operation is a write.
	WriteFraction float64
	// Keys is the keyspace size.
	Keys int
	// Dist selects the key distribution (default Uniform).
	Dist KeyDist
	// ValueSize is the written value length (the paper uses 8 bytes).
	ValueSize int
	// WarmUp runs before measurement starts (§8.3 uses 40s; scale down).
	WarmUp time.Duration
	// Measure is the measurement window (§8.3 uses 20s; scale down).
	Measure time.Duration
	// TxnTimeout bounds one transaction attempt; it doubles as deadlock
	// resolution for blocking engines.
	TxnTimeout time.Duration
	// Retry re-submits an aborted transaction (as the paper's clients
	// may restart with an adjusted interval). A retried attempt still
	// counts one abort and one new attempt.
	Retry bool
	// BatchReads groups each transaction's leading read operations
	// into one static read set issued via kv.GetMulti — O(servers)
	// round trips on engines with a batched read path instead of one
	// per key (engines without one fall back to key-at-a-time reads).
	// The ops are pre-generated, so the leading reads are known before
	// the transaction starts; writes and trailing reads still run one
	// at a time. Off by default so figures can compare both shapes.
	BatchReads bool
	// Seed makes runs reproducible; 0 derives per-client seeds from 1.
	Seed int64
	// Counters, when non-nil, receives the run's events (recording is
	// toggled around the measurement window); callers can sample it
	// live, as the over-time experiments do. Defaults to an internal
	// counter set.
	Counters *metrics.Counters
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 20
	}
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.Dist == 0 {
		c.Dist = Uniform
	}
	if c.ValueSize == 0 {
		c.ValueSize = 8
	}
	if c.Measure == 0 {
		c.Measure = time.Second
	}
	if c.TxnTimeout == 0 {
		c.TxnTimeout = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result aggregates one workload run.
type Result struct {
	// Snapshot holds the measured event counts.
	metrics.Snapshot
	// Elapsed is the measurement window length actually used.
	Elapsed time.Duration
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%.0f txs/s, commit rate %.3f (%d commits, %d aborts)",
		r.Throughput(), r.CommitRate(), r.Commits, r.Aborts)
}

// Key renders the canonical key name for index i (8-character keys, as
// in the paper's implementation).
func Key(i int) string { return fmt.Sprintf("k%07d", i) }

// Op is one generated transaction operation.
type Op struct {
	// Key is the operation's key.
	Key string
	// Write selects a write (with the generator's value) over a read.
	Write bool
}

// Gen deterministically generates the operation stream one closed-loop
// client runs: same config and seed, same stream, independent of
// timing. The fault bed drives its scenario workloads through a Gen so
// a scenario's transaction sequence is a pure function of its seed.
// Not safe for concurrent use.
type Gen struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *rand.Zipf
	value []byte
}

// NewGen returns a generator for cfg seeded with seed. Only the key
// and operation-shape fields of cfg are used (Keys, Dist, OpsPerTxn,
// WriteFraction, ValueSize).
func NewGen(cfg Config, seed int64) *Gen {
	cfg = cfg.withDefaults()
	g := &Gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.Dist == Zipf {
		g.zipf = rand.NewZipf(g.rng, 1.2, 1, uint64(cfg.Keys-1))
	}
	g.value = make([]byte, cfg.ValueSize)
	for i := range g.value {
		g.value[i] = byte('a' + g.rng.Intn(26))
	}
	return g
}

// Value returns the value every write of this generator carries.
func (g *Gen) Value() []byte { return g.value }

// pickKey draws one key.
func (g *Gen) pickKey() string {
	if g.zipf != nil {
		return Key(int(g.zipf.Uint64()))
	}
	return Key(g.rng.Intn(g.cfg.Keys))
}

// Txn generates the next transaction's operations. Retries of an
// aborted transaction should replay the same ops, not draw new ones.
func (g *Gen) Txn() []Op {
	ops := make([]Op, g.cfg.OpsPerTxn)
	for i := range ops {
		ops[i] = Op{Key: g.pickKey(), Write: g.rng.Float64() < g.cfg.WriteFraction}
	}
	return ops
}

// Run drives db with the configured closed-loop clients and returns the
// measured result. The context cancels the whole run early.
func Run(ctx context.Context, db kv.DB, cfg Config) (Result, error) {
	return RunWithSampler(ctx, db, cfg, nil)
}

// RunWithSampler is Run with an optional sampler started right before
// the measurement window (used by the over-time experiments).
func RunWithSampler(ctx context.Context, db kv.DB, cfg Config, sampler *metrics.Sampler) (Result, error) {
	cfg = cfg.withDefaults()
	ctr := cfg.Counters
	if ctr == nil {
		ctr = &metrics.Counters{}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client(runCtx, db, cfg, seed, ctr)
		}(cfg.Seed + int64(c))
	}

	// Warm-up, then measure.
	if cfg.WarmUp > 0 {
		select {
		case <-time.After(cfg.WarmUp):
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return Result{}, ctx.Err()
		}
	}
	if sampler != nil {
		sampler.Start()
	}
	ctr.SetRecording(true)
	start := time.Now()
	select {
	case <-time.After(cfg.Measure):
	case <-ctx.Done():
	}
	ctr.SetRecording(false)
	elapsed := time.Since(start)
	if sampler != nil {
		sampler.Stop()
	}
	cancel()
	wg.Wait()

	return Result{Snapshot: ctr.Snapshot(), Elapsed: elapsed}, ctx.Err()
}

// client is one closed-loop worker: generate a transaction, run it,
// optionally retry on abort, repeat.
func client(ctx context.Context, db kv.DB, cfg Config, seed int64, ctr *metrics.Counters) {
	gen := NewGen(cfg, seed)
	value := gen.Value()

	for ctx.Err() == nil {
		// Pre-generate the transaction so retries replay the same ops.
		ops := gen.Txn()

		attempt := func() bool {
			txCtx, cancel := context.WithTimeout(ctx, cfg.TxnTimeout)
			defer cancel()
			tx, err := db.Begin(txCtx)
			if err != nil {
				return false
			}
			reads, writes := 0, 0
			rest := ops
			if cfg.BatchReads {
				// The ops are pre-generated, so the leading reads form a
				// static read set: issue them as one batched GetMulti.
				lead := 0
				for lead < len(ops) && !ops[lead].Write {
					lead++
				}
				if lead > 1 {
					keys := make([]string, lead)
					for i := range keys {
						keys[i] = ops[i].Key
					}
					if _, err := kv.GetMulti(txCtx, tx, keys); err != nil {
						return false
					}
					reads += lead
					rest = ops[lead:]
				}
			}
			for _, o := range rest {
				if o.Write {
					err = tx.Write(txCtx, o.Key, value)
					writes++
				} else {
					_, err = tx.Read(txCtx, o.Key)
					reads++
				}
				if err != nil {
					return false
				}
			}
			if err := tx.Commit(txCtx); err != nil {
				return false
			}
			ctr.Ops(reads, writes)
			return true
		}

		if attempt() {
			ctr.Commit()
			continue
		}
		ctr.Abort()
		if cfg.Retry && ctx.Err() == nil {
			ctr.Restart()
			if attempt() {
				ctr.Commit()
			} else {
				ctr.Abort()
			}
		}
	}
}
