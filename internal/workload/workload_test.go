package workload_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/metrics"
	"github.com/lpd-epfl/mvtl/internal/policy"
	"github.com/lpd-epfl/mvtl/internal/workload"
)

func newDB(rec *history.Recorder) *core.DB {
	var src clock.Logical
	return core.New(policy.NewTIL(clock.NewProcess(&src, 1), 1000, policy.CommitEarly, true), core.Options{Recorder: rec})
}

func TestRunProducesThroughput(t *testing.T) {
	var rec history.Recorder
	db := newDB(&rec)
	res, err := workload.Run(context.Background(), db.KV(), workload.Config{
		Clients:       4,
		OpsPerTxn:     5,
		WriteFraction: 0.3,
		Keys:          100,
		Measure:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatalf("no commits: %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
	if rate := res.CommitRate(); rate <= 0 || rate > 1 {
		t.Fatalf("commit rate out of range: %v", rate)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("workload produced non-serializable history: %v", err)
	}
	if !strings.Contains(res.String(), "txs/s") {
		t.Fatalf("String = %q", res.String())
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	db := newDB(nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := workload.Run(ctx, db.KV(), workload.Config{Measure: 10 * time.Second})
	if err == nil {
		t.Fatal("expected context error")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancellation not honored promptly")
	}
}

func TestRunWithSampler(t *testing.T) {
	db := newDB(nil)
	sampler := metrics.NewSampler(20*time.Millisecond, func() map[string]float64 {
		st := db.StateStats()
		return map[string]float64{"versions": float64(st.Versions)}
	})
	_, err := workload.RunWithSampler(context.Background(), db.KV(), workload.Config{
		Clients:       2,
		OpsPerTxn:     4,
		WriteFraction: 1,
		Keys:          10,
		Measure:       150 * time.Millisecond,
	}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampler.Points()) == 0 {
		t.Fatal("sampler collected nothing")
	}
}

func TestZipfDistribution(t *testing.T) {
	db := newDB(nil)
	res, err := workload.Run(context.Background(), db.KV(), workload.Config{
		Clients:       2,
		OpsPerTxn:     3,
		WriteFraction: 0.2,
		Keys:          50,
		Dist:          workload.Zipf,
		Measure:       100 * time.Millisecond,
	})
	if err != nil || res.Commits == 0 {
		t.Fatalf("%+v %v", res, err)
	}
}

func TestKeyFormat(t *testing.T) {
	if workload.Key(7) != "k0000007" {
		t.Fatalf("Key(7) = %q", workload.Key(7))
	}
	if len(workload.Key(1234567)) != 8 {
		t.Fatal("keys must be 8 characters, as in the paper")
	}
}

func TestRetryCountsRestarts(t *testing.T) {
	// High contention on one key with tiny transactions: retries happen.
	var src clock.Logical
	db := core.New(policy.NewTO(clock.NewProcess(&src, 1)), core.Options{})
	res, err := workload.Run(context.Background(), db.KV(), workload.Config{
		Clients:       8,
		OpsPerTxn:     4,
		WriteFraction: 0.5,
		Keys:          2,
		Retry:         true,
		Measure:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Skip("no contention aborts this run")
	}
	if res.Restarts == 0 {
		t.Fatal("aborted transactions should have been retried")
	}
}

// TestBatchReadsLocalFallback drives the BatchReads knob against the
// local engine, whose transactions have no GetMulti — the kv.GetMulti
// fallback reads key-at-a-time — and checks the workload still commits
// and stays serializable.
func TestBatchReadsLocalFallback(t *testing.T) {
	var rec history.Recorder
	db := newDB(&rec)
	res, err := workload.Run(context.Background(), db.KV(), workload.Config{
		Clients:       4,
		OpsPerTxn:     8,
		WriteFraction: 0.25,
		Keys:          100,
		BatchReads:    true,
		Measure:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatalf("no commits: %+v", res)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("batched-read workload produced non-serializable history: %v", err)
	}
}

// TestBatchReadsDistributed drives BatchReads against a real cluster,
// where the leading reads ride DTxn.GetMulti's one-batch-per-server
// path, and checks commits and serializability.
func TestBatchReadsDistributed(t *testing.T) {
	var rec history.Recorder
	c, err := cluster.Start(cluster.Config{Servers: 2, Recorder: &rec})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient(client.ModeTILEarly, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Run(context.Background(), cl, workload.Config{
		Clients:       4,
		OpsPerTxn:     8,
		WriteFraction: 0.25,
		Keys:          200,
		BatchReads:    true,
		Measure:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatalf("no commits: %+v", res)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("batched-read workload produced non-serializable history: %v", err)
	}
}
