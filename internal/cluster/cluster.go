// Package cluster assembles the distributed MVTL system — storage
// servers, coordinators, and the timestamp service — into the two test
// beds of the paper's evaluation (§8.2):
//
//   - the local bed: few servers on a fast, predictable network
//     (in-memory transport with ~0.1ms one-way latency);
//   - the cloud bed: more servers on a slow, jittery network
//     (~1ms ± 2ms one-way), modelling shared low-cost instances.
//
// The same harness can also run over TCP for multi-process deployments.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/tsservice"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Bed names a preconfigured network environment.
type Bed uint8

// The two test beds of §8.2.
const (
	// BedLocal models the dedicated-machine bed: 1 Gbps network,
	// predictable latency.
	BedLocal Bed = iota + 1
	// BedCloud models the EC2 t2.micro bed: slower, jittery network
	// and scarce resources.
	BedCloud
)

// LatencyFor returns the latency model of a bed.
func LatencyFor(b Bed) transport.LatencyModel {
	switch b {
	case BedCloud:
		return transport.LatencyModel{Base: 800 * time.Microsecond, Jitter: 2 * time.Millisecond}
	default:
		return transport.LatencyModel{Base: 100 * time.Microsecond, Jitter: 50 * time.Microsecond}
	}
}

// Config describes a cluster.
type Config struct {
	// Servers is the number of storage servers.
	Servers int
	// Bed picks the network model when Network is nil.
	Bed Bed
	// Network overrides the transport (for TCP deployments).
	Network transport.Network
	// ServerConfig is the base server configuration; Addr and Network
	// are filled per server.
	ServerConfig server.Config
	// Recorder, when non-nil, is handed to every client for
	// serializability checking.
	Recorder *history.Recorder
	// ConnsPerServer sizes every coordinator's RPC connection pool per
	// server (see client.Config.ConnsPerServer); zero keeps the
	// single-connection default.
	ConnsPerServer int
}

// Cluster is a running set of servers plus the plumbing to create
// coordinators against them.
type Cluster struct {
	cfg     Config
	network transport.Network
	servers []*server.Server
	addrs   []string

	mu           sync.Mutex
	clients      []*client.Client
	nextClientID int32

	ts *tsservice.Service
}

// Start launches the cluster's servers.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 3
	}
	if cfg.Bed == 0 {
		cfg.Bed = BedLocal
	}
	network := cfg.Network
	if network == nil {
		network = transport.NewMem(LatencyFor(cfg.Bed))
	}
	c := &Cluster{cfg: cfg, network: network, nextClientID: 1}
	for i := 0; i < cfg.Servers; i++ {
		scfg := cfg.ServerConfig
		scfg.Addr = fmt.Sprintf("server-%d", i)
		if _, isTCP := network.(transport.TCP); isTCP {
			// Real sockets: bind loopback ephemeral ports; the server's
			// identity is the resolved srv.Addr().
			scfg.Addr = "127.0.0.1:0"
		}
		scfg.Network = network
		srv, err := server.New(scfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start server %d: %w", i, err)
		}
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, srv.Addr())
	}
	return c, nil
}

// Addrs returns the server addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Network returns the cluster's transport.
func (c *Cluster) Network() transport.Network { return c.network }

// NewClient creates a coordinator with a fresh client id. src may be nil
// for the system clock.
func (c *Cluster) NewClient(mode client.Mode, delta int64, src clock.Source) (*client.Client, error) {
	c.mu.Lock()
	id := c.nextClientID
	c.nextClientID++
	c.mu.Unlock()
	cl, err := client.New(client.Config{
		ID:             id,
		Servers:        c.addrs,
		Network:        c.network,
		Mode:           mode,
		Delta:          delta,
		Clock:          src,
		Recorder:       c.cfg.Recorder,
		ConnsPerServer: c.cfg.ConnsPerServer,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl, nil
}

// StartTimestampService launches the §8.1 purge/advance broadcaster with
// the given period and retention. It uses the first client (creating one
// if needed) as the purge channel.
func (c *Cluster) StartTimestampService(interval, retention time.Duration) error {
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		return err
	}
	c.ts = tsservice.Start(tsservice.Config{
		Interval:  interval,
		Retention: retention,
		Broadcast: func(bound timestamp.Timestamp) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _, _ = cl.PurgeServers(ctx, bound)
			c.mu.Lock()
			clients := append([]*client.Client(nil), c.clients...)
			c.mu.Unlock()
			for _, other := range clients {
				other.AdvanceClock(bound.Time)
			}
		},
	})
	return nil
}

// Stats aggregates state-size statistics across all servers.
func (c *Cluster) Stats(ctx context.Context) (wire.StatsResp, error) {
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		return wire.StatsResp{}, err
	}
	defer func() {
		_ = cl.Close()
	}()
	var total wire.StatsResp
	for _, addr := range c.addrs {
		st, err := cl.ServerStats(ctx, addr)
		if err != nil {
			return total, err
		}
		total.Keys += st.Keys
		total.LockEntries += st.LockEntries
		total.FrozenLocks += st.FrozenLocks
		total.Versions += st.Versions
	}
	return total, nil
}

// Close stops the timestamp service, clients and servers.
func (c *Cluster) Close() {
	if c.ts != nil {
		c.ts.Stop()
		c.ts = nil
	}
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cl := range clients {
		_ = cl.Close()
	}
	for _, s := range c.servers {
		_ = s.Close()
	}
	c.servers = nil
}
