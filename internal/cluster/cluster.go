// Package cluster assembles the distributed MVTL system — storage
// servers, coordinators, and the timestamp service — into the two test
// beds of the paper's evaluation (§8.2):
//
//   - the local bed: few servers on a fast, predictable network
//     (in-memory transport with ~0.1ms one-way latency);
//   - the cloud bed: more servers on a slow, jittery network
//     (~1ms ± 2ms one-way), modelling shared low-cost instances.
//
// The same harness can also run over TCP for multi-process deployments.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/tsservice"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Bed names a preconfigured network environment.
type Bed uint8

// The two test beds of §8.2.
const (
	// BedLocal models the dedicated-machine bed: 1 Gbps network,
	// predictable latency.
	BedLocal Bed = iota + 1
	// BedCloud models the EC2 t2.micro bed: slower, jittery network
	// and scarce resources.
	BedCloud
)

// LatencyFor returns the latency model of a bed.
func LatencyFor(b Bed) transport.LatencyModel {
	switch b {
	case BedCloud:
		return transport.LatencyModel{Base: 800 * time.Microsecond, Jitter: 2 * time.Millisecond}
	default:
		return transport.LatencyModel{Base: 100 * time.Microsecond, Jitter: 50 * time.Microsecond}
	}
}

// Config describes a cluster.
type Config struct {
	// Servers is the number of storage servers.
	Servers int
	// Bed picks the network model when Network is nil.
	Bed Bed
	// Network overrides the transport (for TCP deployments).
	Network transport.Network
	// ServerConfig is the base server configuration; Addr and Network
	// are filled per server.
	ServerConfig server.Config
	// Recorder, when non-nil, is handed to every client for
	// serializability checking.
	Recorder *history.Recorder
	// ConnsPerServer sizes every coordinator's RPC connection pool per
	// server (see client.Config.ConnsPerServer); zero keeps the
	// single-connection default.
	ConnsPerServer int
	// CallTimeout bounds every coordinator RPC (see
	// client.Config.CallTimeout); zero disables per-call deadlines.
	CallTimeout time.Duration
	// DeadlockPoll is every coordinator's deadlock-detector poll
	// interval (see client.Config.DeadlockPoll).
	DeadlockPoll time.Duration
}

// endpointNetwork is implemented by transports that hand out
// per-process views of one shared network (the fault bed's
// faultbed.Net), so every frame is attributable to a (from, to) link.
// Servers get the view named by their address; client i gets
// "client-i".
type endpointNetwork interface {
	Endpoint(name string) transport.Network
}

// Cluster is a running set of servers plus the plumbing to create
// coordinators against them.
type Cluster struct {
	cfg     Config
	network transport.Network
	addrs   []string
	// serverCfgs are the resolved per-server configurations (address
	// and network view filled in), kept so RestartServer can bring a
	// crashed server back with the same identity.
	serverCfgs []server.Config

	mu           sync.Mutex
	servers      []*server.Server // nil slots are stopped servers
	clients      []*client.Client
	nextClientID int32

	ts *tsservice.Service
}

// netFor returns the network view for the named endpoint (pass-through
// unless the transport partitions by endpoint).
func (c *Cluster) netFor(name string) transport.Network {
	if en, ok := c.network.(endpointNetwork); ok {
		return en.Endpoint(name)
	}
	return c.network
}

// Start launches the cluster's servers.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 3
	}
	if cfg.Bed == 0 {
		cfg.Bed = BedLocal
	}
	network := cfg.Network
	if network == nil {
		network = transport.NewMem(LatencyFor(cfg.Bed))
	}
	c := &Cluster{cfg: cfg, network: network, nextClientID: 1}
	for i := 0; i < cfg.Servers; i++ {
		scfg := cfg.ServerConfig
		scfg.Addr = fmt.Sprintf("server-%d", i)
		if _, isTCP := network.(transport.TCP); isTCP {
			// Real sockets: bind loopback ephemeral ports; the server's
			// identity is the resolved srv.Addr().
			scfg.Addr = "127.0.0.1:0"
		} else {
			scfg.Network = c.netFor(scfg.Addr)
		}
		if scfg.Network == nil {
			scfg.Network = network
		}
		srv, err := server.New(scfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start server %d: %w", i, err)
		}
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, srv.Addr())
		// Remember the resolved identity so a restart rebinds the same
		// address (for TCP, the ephemeral port that was allocated).
		scfg.Addr = srv.Addr()
		c.serverCfgs = append(c.serverCfgs, scfg)
	}
	return c, nil
}

// StopServer crash-stops server i: its listener and connections close
// immediately and its entire state — versions, locks, commitment
// objects — is lost, as in the paper's crash failure model. In-flight
// requests against it fail; it is an error to stop a stopped server.
func (c *Cluster) StopServer(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.servers) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no server %d", i)
	}
	srv := c.servers[i]
	c.servers[i] = nil
	c.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("cluster: server %d already stopped", i)
	}
	return srv.Close()
}

// RestartServer brings a stopped server back empty on its original
// address: the identity survives the crash, the state does not.
// Coordinators reconnect on their next call (their broken connections
// are evicted and redialed).
func (c *Cluster) RestartServer(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.serverCfgs) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no server %d", i)
	}
	if c.servers[i] != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: server %d is already running", i)
	}
	scfg := c.serverCfgs[i]
	c.mu.Unlock()
	srv, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("cluster: restart server %d: %w", i, err)
	}
	c.mu.Lock()
	c.servers[i] = srv
	c.mu.Unlock()
	return nil
}

// ServerRunning reports whether server i is currently up.
func (c *Cluster) ServerRunning(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return i >= 0 && i < len(c.servers) && c.servers[i] != nil
}

// Addrs returns the server addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Network returns the cluster's transport.
func (c *Cluster) Network() transport.Network { return c.network }

// NewClient creates a coordinator with a fresh client id. src may be nil
// for the system clock.
func (c *Cluster) NewClient(mode client.Mode, delta int64, src clock.Source) (*client.Client, error) {
	c.mu.Lock()
	id := c.nextClientID
	c.nextClientID++
	c.mu.Unlock()
	cl, err := client.New(client.Config{
		ID:             id,
		Servers:        c.addrs,
		Network:        c.netFor(fmt.Sprintf("client-%d", id)),
		Mode:           mode,
		Delta:          delta,
		Clock:          src,
		Recorder:       c.cfg.Recorder,
		ConnsPerServer: c.cfg.ConnsPerServer,
		CallTimeout:    c.cfg.CallTimeout,
		DeadlockPoll:   c.cfg.DeadlockPoll,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl, nil
}

// StartTimestampService launches the §8.1 purge/advance broadcaster with
// the given period and retention. It uses the first client (creating one
// if needed) as the purge channel.
func (c *Cluster) StartTimestampService(interval, retention time.Duration) error {
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		return err
	}
	c.ts = tsservice.Start(tsservice.Config{
		Interval:  interval,
		Retention: retention,
		Broadcast: func(bound timestamp.Timestamp) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _, _ = cl.PurgeServers(ctx, bound)
			c.mu.Lock()
			clients := append([]*client.Client(nil), c.clients...)
			c.mu.Unlock()
			for _, other := range clients {
				other.AdvanceClock(bound.Time)
			}
		},
	})
	return nil
}

// Stats aggregates state-size statistics across all servers.
func (c *Cluster) Stats(ctx context.Context) (wire.StatsResp, error) {
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		return wire.StatsResp{}, err
	}
	defer func() {
		_ = cl.Close()
	}()
	var total wire.StatsResp
	for _, addr := range c.addrs {
		st, err := cl.ServerStats(ctx, addr)
		if err != nil {
			return total, err
		}
		total.Keys += st.Keys
		total.LockEntries += st.LockEntries
		total.FrozenLocks += st.FrozenLocks
		total.Versions += st.Versions
	}
	return total, nil
}

// Close stops the timestamp service, clients and servers.
func (c *Cluster) Close() {
	if c.ts != nil {
		c.ts.Stop()
		c.ts = nil
	}
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	servers := c.servers
	c.servers = nil
	c.mu.Unlock()
	for _, cl := range clients {
		_ = cl.Close()
	}
	for _, s := range servers {
		if s != nil {
			_ = s.Close()
		}
	}
}
