// Package cluster assembles the distributed MVTL system — storage
// servers, coordinators, and the timestamp service — into the two test
// beds of the paper's evaluation (§8.2):
//
//   - the local bed: few servers on a fast, predictable network
//     (in-memory transport with ~0.1ms one-way latency);
//   - the cloud bed: more servers on a slow, jittery network
//     (~1ms ± 2ms one-way), modelling shared low-cost instances.
//
// The same harness can also run over TCP for multi-process deployments.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/repl"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/tsservice"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Bed names a preconfigured network environment.
type Bed uint8

// The two test beds of §8.2.
const (
	// BedLocal models the dedicated-machine bed: 1 Gbps network,
	// predictable latency.
	BedLocal Bed = iota + 1
	// BedCloud models the EC2 t2.micro bed: slower, jittery network
	// and scarce resources.
	BedCloud
)

// LatencyFor returns the latency model of a bed.
func LatencyFor(b Bed) transport.LatencyModel {
	switch b {
	case BedCloud:
		return transport.LatencyModel{Base: 800 * time.Microsecond, Jitter: 2 * time.Millisecond}
	default:
		return transport.LatencyModel{Base: 100 * time.Microsecond, Jitter: 50 * time.Microsecond}
	}
}

// Config describes a cluster.
type Config struct {
	// Servers is the number of storage servers (= key partitions).
	Servers int
	// Replicas is the replication factor per partition: each partition
	// becomes a chain of this many servers — one head plus Replicas-1
	// warm standbys pulling the head's log — directed by an embedded
	// repl.Director that coordinators consult through an epoch-stamped
	// router. Values <= 1 keep the cluster unreplicated: no director,
	// no epochs, byte-identical legacy behavior.
	Replicas int
	// Bed picks the network model when Network is nil.
	Bed Bed
	// Network overrides the transport (for TCP deployments).
	Network transport.Network
	// ServerConfig is the base server configuration; Addr and Network
	// are filled per server.
	ServerConfig server.Config
	// Recorder, when non-nil, is handed to every client for
	// serializability checking.
	Recorder *history.Recorder
	// ConnsPerServer sizes every coordinator's RPC connection pool per
	// server (see client.Config.ConnsPerServer); zero keeps the
	// single-connection default.
	ConnsPerServer int
	// CallTimeout bounds every coordinator RPC (see
	// client.Config.CallTimeout); zero disables per-call deadlines.
	CallTimeout time.Duration
	// DeadlockPoll is every coordinator's deadlock-detector poll
	// interval (see client.Config.DeadlockPoll).
	DeadlockPoll time.Duration
	// Timers supplies timed waits for every server and coordinator the
	// cluster creates, plus the cluster's own failover barriers. Nil
	// means SystemTimers; the fault bed passes a clock.Virtual.
	Timers clock.Timers
}

// endpointNetwork is implemented by transports that hand out
// per-process views of one shared network (the fault bed's
// faultbed.Net), so every frame is attributable to a (from, to) link.
// Servers get the view named by their address; client i gets
// "client-i".
type endpointNetwork interface {
	Endpoint(name string) transport.Network
}

// Cluster is a running set of servers plus the plumbing to create
// coordinators against them.
type Cluster struct {
	cfg     Config
	network transport.Network
	timers  clock.Timers
	addrs   []string
	// serverCfgs are the resolved per-server configurations (address
	// and network view filled in), kept so RestartServer can bring a
	// crashed server back with the same identity.
	serverCfgs []server.Config

	// director is the replication membership authority (nil when
	// Replicas <= 1). It lives in the harness on purpose: the paper's
	// algorithm needs only a tiny, rarely-consulted authority, and
	// replicating it is out of scope (see package repl).
	director *repl.Director

	mu           sync.Mutex
	servers      []*server.Server // nil slots are stopped servers
	// procs maps every server address — heads and standbys — to its
	// running instance (nil when stopped). servers above stays the
	// index-addressed view of the original heads for the legacy
	// stop/restart API.
	procs        map[string]*server.Server
	clients      []*client.Client
	nextClientID int32

	ts *tsservice.Service
}

// directorRouter adapts the embedded repl.Director to client.Router.
// Route reads the live view; Refresh is a no-op because the local
// director is always current (the hook exists for remote directories
// that cache).
type directorRouter struct{ d *repl.Director }

func (r directorRouter) Route(p int) (string, uint64) {
	v := r.d.View(p)
	return v.Head, v.Epoch
}

func (r directorRouter) Refresh(int) {}

// netFor returns the network view for the named endpoint (pass-through
// unless the transport partitions by endpoint).
func (c *Cluster) netFor(name string) transport.Network {
	if en, ok := c.network.(endpointNetwork); ok {
		return en.Endpoint(name)
	}
	return c.network
}

// Start launches the cluster's servers.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 3
	}
	if cfg.Bed == 0 {
		cfg.Bed = BedLocal
	}
	network := cfg.Network
	if network == nil {
		network = transport.NewMem(LatencyFor(cfg.Bed))
	}
	if cfg.ServerConfig.Timers == nil {
		cfg.ServerConfig.Timers = cfg.Timers
	}
	c := &Cluster{cfg: cfg, network: network, timers: clock.OrSystem(cfg.Timers), nextClientID: 1, procs: make(map[string]*server.Server)}
	replicated := cfg.Replicas > 1
	var chains [][]string
	for i := 0; i < cfg.Servers; i++ {
		scfg := cfg.ServerConfig
		scfg.Addr = fmt.Sprintf("server-%d", i)
		if _, isTCP := network.(transport.TCP); isTCP {
			// Real sockets: bind loopback ephemeral ports; the server's
			// identity is the resolved srv.Addr().
			scfg.Addr = "127.0.0.1:0"
		} else {
			scfg.Network = c.netFor(scfg.Addr)
		}
		if scfg.Network == nil {
			scfg.Network = network
		}
		if replicated {
			scfg.Repl = c.replConfigFrom(cfg.ServerConfig.Repl)
		}
		srv, err := server.New(scfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start server %d: %w", i, err)
		}
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, srv.Addr())
		c.procs[srv.Addr()] = srv
		// Remember the resolved identity so a restart rebinds the same
		// address (for TCP, the ephemeral port that was allocated).
		scfg.Addr = srv.Addr()
		c.serverCfgs = append(c.serverCfgs, scfg)
		if !replicated {
			continue
		}
		chain := []string{srv.Addr()}
		for r := 1; r < cfg.Replicas; r++ {
			sscfg := cfg.ServerConfig
			sscfg.Addr = fmt.Sprintf("server-%d.%d", i, r)
			if _, isTCP := network.(transport.TCP); isTCP {
				sscfg.Addr = "127.0.0.1:0"
			} else {
				sscfg.Network = c.netFor(sscfg.Addr)
			}
			if sscfg.Network == nil {
				sscfg.Network = network
			}
			sscfg.Repl = c.replConfigFrom(cfg.ServerConfig.Repl)
			sscfg.Repl.Standby = true
			sscfg.Repl.Upstream = srv.Addr()
			ssrv, err := server.New(sscfg)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: start replica %d.%d: %w", i, r, err)
			}
			chain = append(chain, ssrv.Addr())
			c.procs[ssrv.Addr()] = ssrv
		}
		chains = append(chains, chain)
	}
	if replicated {
		c.director = repl.NewDirector(chains)
	}
	return c, nil
}

// replConfigFrom builds one replica's server.ReplConfig at epoch 1,
// inheriting tuning knobs (PullInterval, LogCap) from the base template
// when the caller set one.
func (c *Cluster) replConfigFrom(base *server.ReplConfig) *server.ReplConfig {
	r := &server.ReplConfig{Epoch: 1}
	if base != nil {
		r.PullInterval = base.PullInterval
		r.LogCap = base.LogCap
	}
	return r
}

// StopServer crash-stops server i: its listener and connections close
// immediately and its entire state — versions, locks, commitment
// objects — is lost, as in the paper's crash failure model. In-flight
// requests against it fail; it is an error to stop a stopped server.
func (c *Cluster) StopServer(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.servers) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no server %d", i)
	}
	srv := c.servers[i]
	c.servers[i] = nil
	c.procs[c.addrs[i]] = nil
	c.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("cluster: server %d already stopped", i)
	}
	return srv.Close()
}

// RestartServer brings a stopped server back empty on its original
// address: the identity survives the crash, the state does not.
// Coordinators reconnect on their next call (their broken connections
// are evicted and redialed).
func (c *Cluster) RestartServer(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.serverCfgs) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no server %d", i)
	}
	if c.servers[i] != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: server %d is already running", i)
	}
	scfg := c.serverCfgs[i]
	c.mu.Unlock()
	srv, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("cluster: restart server %d: %w", i, err)
	}
	c.mu.Lock()
	c.servers[i] = srv
	c.procs[scfg.Addr] = srv
	c.mu.Unlock()
	return nil
}

// RestartServerAsReplica brings stopped server i back on its original
// address as a catching-up standby of partition i's current head: it
// snapshots and then tails the head's log, and the director appends it
// to the chain so a later failover can promote it. This is the
// replicated counterpart of RestartServer (which restarts empty and is
// left untouched for unreplicated scenarios); it requires a replicated
// cluster.
func (c *Cluster) RestartServerAsReplica(i int) error {
	if c.director == nil {
		return fmt.Errorf("cluster: RestartServerAsReplica needs a replicated cluster (Replicas > 1)")
	}
	c.mu.Lock()
	if i < 0 || i >= len(c.serverCfgs) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no server %d", i)
	}
	if c.servers[i] != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: server %d is already running", i)
	}
	scfg := c.serverCfgs[i]
	c.mu.Unlock()
	v := c.director.View(i)
	r := c.replConfigFrom(c.cfg.ServerConfig.Repl)
	r.Epoch = v.Epoch
	r.Standby = true
	r.Upstream = v.Head
	scfg.Repl = r
	srv, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("cluster: restart server %d as replica: %w", i, err)
	}
	c.mu.Lock()
	c.servers[i] = srv
	c.procs[scfg.Addr] = srv
	c.mu.Unlock()
	c.director.AddStandby(i, scfg.Addr)
	return nil
}

// Director returns the replication membership authority (nil when the
// cluster is unreplicated).
func (c *Cluster) Director() *repl.Director { return c.director }

// ServerByAddr returns the running server at addr, or nil.
func (c *Cluster) ServerByAddr(addr string) *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.procs[addr]
}

// KillHead crash-stops partition p's current head (per the director's
// view) and returns its address. The partition is unavailable until
// PromoteReplica installs the next epoch.
func (c *Cluster) KillHead(p int) (string, error) {
	if c.director == nil {
		return "", fmt.Errorf("cluster: KillHead needs a replicated cluster (Replicas > 1)")
	}
	v := c.director.View(p)
	c.mu.Lock()
	srv := c.procs[v.Head]
	c.procs[v.Head] = nil
	// Keep the index-addressed view consistent when the head was an
	// original slot server.
	for i, a := range c.addrs {
		if a == v.Head {
			c.servers[i] = nil
		}
	}
	c.mu.Unlock()
	if srv == nil {
		return v.Head, fmt.Errorf("cluster: head %s of partition %d already stopped", v.Head, p)
	}
	return v.Head, srv.Close()
}

// PromoteReplica fails partition p over to its first standby: the
// director bumps the epoch, the standby stops pulling and becomes the
// head, and — for planned handovers where the old head is still alive —
// the old head is demoted so it fences everything that still routes to
// it. Returns the new view.
func (c *Cluster) PromoteReplica(p int) (repl.View, error) {
	if c.director == nil {
		return repl.View{}, fmt.Errorf("cluster: PromoteReplica needs a replicated cluster (Replicas > 1)")
	}
	old := c.director.View(p)
	v, err := c.director.Promote(p)
	if err != nil {
		return repl.View{}, err
	}
	c.mu.Lock()
	oldSrv := c.procs[old.Head]
	newSrv := c.procs[v.Head]
	c.mu.Unlock()
	if oldSrv != nil {
		oldSrv.Demote(v.Epoch)
	}
	if newSrv == nil {
		return v, fmt.Errorf("cluster: standby %s of partition %d is not running", v.Head, p)
	}
	newSrv.Promote(v.Epoch)
	return v, nil
}

// FailoverKill fails partition p over to its first standby under live
// load and then crash-stops the old head. Unlike KillHead +
// PromoteReplica (crash first, promote with whatever the standby had —
// which the fault bed only uses behind a settle+drain barrier), the
// sequence here is lossless under traffic: flip the routes, fence the
// old head (it finishes in-flight freezes, logging them, and bounces
// everything new with StatusWrongEpoch), drain its log tail into the
// standby, and only then let the standby serve and kill the old head.
// The unavailability window a client observes runs from the route flip
// to the standby's promotion.
func (c *Cluster) FailoverKill(p int) (repl.View, error) {
	if c.director == nil {
		return repl.View{}, fmt.Errorf("cluster: FailoverKill needs a replicated cluster (Replicas > 1)")
	}
	old := c.director.View(p)
	v, err := c.director.Promote(p)
	if err != nil {
		return repl.View{}, err
	}
	c.mu.Lock()
	oldSrv := c.procs[old.Head]
	newSrv := c.procs[v.Head]
	c.mu.Unlock()
	if newSrv == nil {
		return v, fmt.Errorf("cluster: standby %s of partition %d is not running", v.Head, p)
	}
	if oldSrv != nil {
		oldSrv.Demote(v.Epoch)
		// In-flight commits first: a coordinator that decided commit
		// before the demotion still casts its freeze batches at the old
		// head (the fence deliberately admits freeze/release — see
		// handleFreezeBatch), and those installs must reach the log
		// before the standby is drained against it. Wait for the old
		// head's transaction records to empty out; new write locks are
		// fenced (including a post-acquisition re-check), so once live
		// transactions hit zero no further install can occur and the
		// log watermark is fixed.
		stable := 0
		for i := 0; i < 5000 && stable < 2; i++ {
			if oldSrv.LiveTxns() == 0 {
				stable++
			} else {
				stable = 0
			}
			if stable < 2 {
				c.timers.Sleep(time.Millisecond)
			}
		}
		if stable < 2 {
			return v, fmt.Errorf("cluster: old head %s of partition %d never resolved its in-flight transactions", old.Head, p)
		}
		// Drain: the standby keeps pulling from the fenced old head until
		// it has applied that fixed watermark. Two consecutive caught-up
		// observations guard against a watermark read racing the last
		// in-flight freeze handler above.
		stable = 0
		for i := 0; i < 5000 && stable < 2; i++ {
			if newSrv.AppliedLSN() >= oldSrv.LogWatermark() {
				stable++
			} else {
				stable = 0
			}
			if stable < 2 {
				c.timers.Sleep(time.Millisecond)
			}
		}
		if stable < 2 {
			return v, fmt.Errorf("cluster: standby %s never drained old head %s", v.Head, old.Head)
		}
	}
	newSrv.Promote(v.Epoch)
	if oldSrv != nil {
		c.mu.Lock()
		c.procs[old.Head] = nil
		for i, a := range c.addrs {
			if a == old.Head {
				c.servers[i] = nil
			}
		}
		c.mu.Unlock()
		_ = oldSrv.Close()
	}
	return v, nil
}

// ReplicaLag returns the maximum catch-up lag among partition p's
// standbys, in log records: 0 means every standby has applied every
// install the head has logged *as of this call*; -1 means the head is
// down. The comparison is head-side (the head's current log watermark
// against each standby's applied LSN), not the standby's self-reported
// lag — that one is only as fresh as the standby's last pull and reads
// 0 in the window between a commit and the pull that fetches it, which
// is exactly when a lag barrier runs.
func (c *Cluster) ReplicaLag(p int) int64 {
	if c.director == nil {
		return 0
	}
	v := c.director.View(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.procs[v.Head]
	if head == nil {
		return -1
	}
	w := head.LogWatermark()
	var max int64
	for _, addr := range v.Standbys {
		srv := c.procs[addr]
		if srv == nil {
			continue
		}
		applied := srv.AppliedLSN()
		if lag := int64(w) - int64(applied); lag > max {
			max = lag
		}
	}
	return max
}

// LiveAddrs returns the sorted addresses of every currently running
// server — heads and standbys alike. Unlike Addrs (the fixed original
// slots), this tracks replicated-membership changes: a promoted standby
// is included, a killed head is not.
func (c *Cluster) LiveAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.procs))
	for a, srv := range c.procs {
		if srv != nil {
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// ServerRunning reports whether server i is currently up.
func (c *Cluster) ServerRunning(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return i >= 0 && i < len(c.servers) && c.servers[i] != nil
}

// Addrs returns the server addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Network returns the cluster's transport.
func (c *Cluster) Network() transport.Network { return c.network }

// NewClient creates a coordinator with a fresh client id. src may be nil
// for the system clock.
func (c *Cluster) NewClient(mode client.Mode, delta int64, src clock.Source) (*client.Client, error) {
	c.mu.Lock()
	id := c.nextClientID
	c.nextClientID++
	c.mu.Unlock()
	var router client.Router
	if c.director != nil {
		router = directorRouter{c.director}
	}
	cl, err := client.New(client.Config{
		ID:             id,
		Servers:        c.addrs,
		Router:         router,
		Network:        c.netFor(fmt.Sprintf("client-%d", id)),
		Mode:           mode,
		Delta:          delta,
		Clock:          src,
		Recorder:       c.cfg.Recorder,
		ConnsPerServer: c.cfg.ConnsPerServer,
		CallTimeout:    c.cfg.CallTimeout,
		DeadlockPoll:   c.cfg.DeadlockPoll,
		Timers:         c.cfg.Timers,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl, nil
}

// StartTimestampService launches the §8.1 purge/advance broadcaster with
// the given period and retention. It uses the first client (creating one
// if needed) as the purge channel.
func (c *Cluster) StartTimestampService(interval, retention time.Duration) error {
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		return err
	}
	c.ts = tsservice.Start(tsservice.Config{
		Interval:  interval,
		Retention: retention,
		Broadcast: func(bound timestamp.Timestamp) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _, _ = cl.PurgeServers(ctx, bound)
			c.mu.Lock()
			clients := append([]*client.Client(nil), c.clients...)
			c.mu.Unlock()
			for _, other := range clients {
				other.AdvanceClock(bound.Time)
			}
		},
	})
	return nil
}

// Stats aggregates state-size statistics across all servers.
func (c *Cluster) Stats(ctx context.Context) (wire.StatsResp, error) {
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		return wire.StatsResp{}, err
	}
	defer func() {
		_ = cl.Close()
	}()
	c.mu.Lock()
	addrs := append([]string(nil), c.addrs...)
	if c.director != nil {
		// Replicated: every live replica reports (the original heads may
		// be dead after a failover; standbys carry the repl counters).
		addrs = addrs[:0]
		for a, srv := range c.procs {
			if srv != nil {
				addrs = append(addrs, a)
			}
		}
		sort.Strings(addrs)
	}
	c.mu.Unlock()
	var total wire.StatsResp
	for _, addr := range addrs {
		st, err := cl.ServerStats(ctx, addr)
		if err != nil {
			return total, err
		}
		total.Keys += st.Keys
		total.LockEntries += st.LockEntries
		total.FrozenLocks += st.FrozenLocks
		total.Versions += st.Versions
		total.ReplPromotions += st.ReplPromotions
		total.ReplWrongEpoch += st.ReplWrongEpoch
		total.ReplCatchupBytes += st.ReplCatchupBytes
		if st.ReplLag > total.ReplLag {
			total.ReplLag = st.ReplLag
		}
		if st.ReplEpoch > total.ReplEpoch {
			total.ReplEpoch = st.ReplEpoch
		}
	}
	return total, nil
}

// Close stops the timestamp service, clients and servers.
func (c *Cluster) Close() {
	if c.ts != nil {
		c.ts.Stop()
		c.ts = nil
	}
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.servers = nil
	procs := c.procs
	c.procs = map[string]*server.Server{}
	c.mu.Unlock()
	for _, cl := range clients {
		_ = cl.Close()
	}
	for _, s := range procs {
		if s != nil {
			_ = s.Close()
		}
	}
}
