package cluster_test

import (
	"context"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/workload"
)

// TestClientReconnectsAfterServerRestart is the crash-restart
// reachability contract: a coordinator whose pooled connection died
// with a crashed server must evict it and redial once the server is
// back — without a new client, and without the restarted server
// resurrecting any pre-crash state.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		Servers:     1,
		Bed:         cluster.BedLocal,
		CallTimeout: 200 * time.Millisecond,
		ServerConfig: server.Config{
			LockWaitTimeout:  100 * time.Millisecond,
			WriteLockTimeout: 300 * time.Millisecond,
			ScanInterval:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := c.NewClient(client.ModeTILEarly, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	write := func(key string, val []byte) error {
		tx, err := cl.Begin(ctx)
		if err != nil {
			return err
		}
		if err := tx.Write(ctx, key, val); err != nil {
			return err
		}
		return tx.Commit(ctx)
	}
	key := workload.Key(1)
	if err := write(key, []byte("before")); err != nil {
		t.Fatal(err)
	}

	if err := c.StopServer(0); err != nil {
		t.Fatal(err)
	}
	if c.ServerRunning(0) {
		t.Fatal("server reported running after StopServer")
	}
	// The dead server must surface as an abort, not a hang.
	if err := write(key, []byte("down")); err == nil {
		t.Fatal("write against a crashed server committed")
	}
	if err := c.StopServer(0); err == nil {
		t.Fatal("double stop not rejected")
	}

	if err := c.RestartServer(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartServer(0); err == nil {
		t.Fatal("double restart not rejected")
	}
	// Same client, same pooled connection slot: the broken conn must
	// have been evicted so this redials the restarted server.
	tx, err := cl.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx.Read(ctx, key)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if got != nil {
		t.Fatalf("restarted server served pre-crash state %q", got)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := write(key, []byte("after")); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

// TestRestartUnknownServer exercises the index guards.
func TestRestartUnknownServer(t *testing.T) {
	c, err := cluster.Start(cluster.Config{Servers: 1, Bed: cluster.BedLocal})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.StopServer(3); err == nil {
		t.Fatal("StopServer(3) on a 1-server cluster succeeded")
	}
	if err := c.RestartServer(-1); err == nil {
		t.Fatal("RestartServer(-1) succeeded")
	}
}
