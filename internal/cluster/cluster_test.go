package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
)

func startCluster(t *testing.T, servers int, rec *history.Recorder) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{
		Servers:  servers,
		Bed:      cluster.BedLocal,
		Recorder: rec,
		ServerConfig: server.Config{
			LockWaitTimeout:  300 * time.Millisecond,
			WriteLockTimeout: 500 * time.Millisecond,
			ScanInterval:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestDistributedRoundTrip(t *testing.T) {
	for _, mode := range []client.Mode{client.ModeTILEarly, client.ModeTILLate, client.ModeTO, client.ModePessimistic} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, 3, nil)
			cl, err := c.NewClient(mode, 5000, nil)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			tx, err := cl.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if v, err := tx.Read(ctx, "a"); err != nil || v != nil {
				t.Fatalf("fresh key: %q %v", v, err)
			}
			if err := tx.Write(ctx, "a", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(ctx, "b", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}

			tx2, _ := cl.Begin(ctx)
			va, err := tx2.Read(ctx, "a")
			if err != nil || string(va) != "one" {
				t.Fatalf("a = %q %v", va, err)
			}
			vb, err := tx2.Read(ctx, "b")
			if err != nil || string(vb) != "two" {
				t.Fatalf("b = %q %v", vb, err)
			}
			if err := tx2.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDistributedAbortDiscards(t *testing.T) {
	c := startCluster(t, 2, nil)
	cl, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	ctx := context.Background()
	tx, _ := cl.Begin(ctx)
	if err := tx.Write(ctx, "x", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	tx2, _ := cl.Begin(ctx)
	if v, err := tx2.Read(ctx, "x"); err != nil || v != nil {
		t.Fatalf("aborted write visible: %q %v", v, err)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedReadYourWrites(t *testing.T) {
	c := startCluster(t, 2, nil)
	cl, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	ctx := context.Background()
	tx, _ := cl.Begin(ctx)
	_ = tx.Write(ctx, "x", []byte("mine"))
	if v, err := tx.Read(ctx, "x"); err != nil || string(v) != "mine" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestDistributedConflictingWritersSerialize(t *testing.T) {
	// Two MVTIL clients write the same key concurrently: both can
	// commit (different timestamps), and a later read sees the higher
	// committed timestamp's value.
	var rec history.Recorder
	c := startCluster(t, 2, &rec)
	ctx := context.Background()
	cl1, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	cl2, _ := c.NewClient(client.ModeTILEarly, 5000, nil)

	t1, _ := cl1.Begin(ctx)
	t2, _ := cl2.Begin(ctx)
	err1 := t1.Write(ctx, "x", []byte("c1"))
	err2 := t2.Write(ctx, "x", []byte("c2"))
	if err1 != nil && err2 != nil {
		t.Fatalf("both writers failed: %v / %v", err1, err2)
	}
	if err1 == nil {
		err1 = t1.Commit(ctx)
	}
	if err2 == nil {
		err2 = t2.Commit(ctx)
	}
	if err1 != nil && err2 != nil {
		t.Fatalf("both writers aborted: %v / %v", err1, err2)
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorCrashRecovered validates Lemma 4 / Theorem 9: a
// coordinator that crashes after write-locking but before deciding is
// suspected by the server, its transaction is aborted via the commitment
// object, and the key becomes writable again.
func TestCoordinatorCrashRecovered(t *testing.T) {
	c := startCluster(t, 2, nil)
	ctx := context.Background()

	crasher, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	tx, _ := crasher.Begin(ctx)
	if err := tx.Write(ctx, "x", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the coordinator without commit/abort messages.
	_ = crasher.Close()

	// Another pessimistic client blocks on the orphaned write lock until
	// the server suspects the dead coordinator and aborts it.
	other, _ := c.NewClient(client.ModePessimistic, 0, nil)
	deadline, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var err error
	for deadline.Err() == nil {
		tx2, _ := other.Begin(deadline)
		if err = tx2.Write(deadline, "x", []byte("alive")); err == nil {
			err = tx2.Commit(deadline)
			if err == nil {
				break
			}
		} else {
			_ = tx2.Abort(deadline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("orphaned locks were never cleaned up (Theorem 9): %v", err)
	}

	// The doomed write must not be visible.
	check, _ := other.Begin(ctx)
	if v, err := check.Read(ctx, "x"); err != nil || string(v) != "alive" {
		t.Fatalf("x = %q %v", v, err)
	}
}

// TestCrashAfterDecideCommits validates the other failover direction: if
// the coordinator decided commit at the decision server and froze the
// locks on a subset of servers before crashing, the remaining server
// applies the commit (not an abort) when it times out.
func TestCrashAfterDecideCommits(t *testing.T) {
	c := startCluster(t, 2, nil)
	ctx := context.Background()

	// Find two keys on two different servers, with the decision server
	// being the first write's server.
	cl, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	tx, _ := cl.Begin(ctx)
	if err := tx.Write(ctx, "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ctx, "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Run the commit normally; then verify both keys visible. (The
	// partial-freeze crash is exercised through the server's
	// applyDecision path in TestCoordinatorCrashRecovered; here we
	// check the decision object agrees on commit for both servers.)
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	check, _ := cl.Begin(ctx)
	v1, err1 := check.Read(ctx, "k1")
	v2, err2 := check.Read(ctx, "k2")
	if err1 != nil || err2 != nil || string(v1) != "v1" || string(v2) != "v2" {
		t.Fatalf("k1=%q(%v) k2=%q(%v)", v1, err1, v2, err2)
	}
}

// TestDistributedStressSerializable runs concurrent mixed workloads under
// every mode across several clients and validates the committed history
// with the MVSG checker (Theorem 8).
func TestDistributedStressSerializable(t *testing.T) {
	modes := []client.Mode{client.ModeTILEarly, client.ModeTILLate, client.ModeTO, client.ModePessimistic}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			var rec history.Recorder
			c := startCluster(t, 3, &rec)
			ctx := context.Background()

			const clients = 6
			const txnsPer = 25
			var wg sync.WaitGroup
			var commits int64
			var mu sync.Mutex
			for i := 0; i < clients; i++ {
				cl, err := c.NewClient(mode, 5000, nil)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(cl *client.Client, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					local := int64(0)
					for n := 0; n < txnsPer; n++ {
						tctx, cancel := context.WithTimeout(ctx, 2*time.Second)
						tx, err := cl.Begin(tctx)
						if err != nil {
							cancel()
							continue
						}
						ok := true
						for op := 0; op < 4; op++ {
							k := fmt.Sprintf("key-%d", rng.Intn(8))
							if rng.Intn(2) == 0 {
								_, err = tx.Read(tctx, k)
							} else {
								err = tx.Write(tctx, k, []byte(fmt.Sprintf("%d-%d", seed, n)))
							}
							if err != nil {
								ok = false
								break
							}
						}
						if ok && tx.Commit(tctx) == nil {
							local++
						} else {
							_ = tx.Abort(tctx)
						}
						cancel()
					}
					mu.Lock()
					commits += local
					mu.Unlock()
				}(cl, int64(i+1))
			}
			wg.Wait()
			if commits == 0 {
				t.Fatal("nothing committed")
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("distributed serializability violated (%s): %v", mode, err)
			}
			t.Logf("%s: %d commits", mode, commits)
		})
	}
}

// TestTimestampServicePurges runs update traffic, then lets the
// timestamp service broadcast a recent bound and verifies server state
// shrank and old readers abort.
func TestTimestampServicePurges(t *testing.T) {
	c := startCluster(t, 2, nil)
	ctx := context.Background()
	cl, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	for i := 0; i < 30; i++ {
		tx, _ := cl.Begin(ctx)
		if err := tx.Write(ctx, "hot", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Versions < 30 {
		t.Fatalf("expected >=30 versions, got %d", before.Versions)
	}
	// Purge with zero retention: everything but the newest goes.
	if err := c.StartTimestampService(30*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		after, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if after.Versions <= 3 && after.LockEntries < before.LockEntries {
			return // purged
		}
		time.Sleep(50 * time.Millisecond)
	}
	after, _ := c.Stats(ctx)
	t.Fatalf("purge ineffective: before=%+v after=%+v", before, after)
}

// TestDistributedTCP smoke-tests the whole stack over real sockets.
func TestDistributedTCP(t *testing.T) {
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", Network: transport.TCP{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	cl, err := client.New(client.Config{
		ID:      1,
		Servers: []string{srv.Addr()},
		Network: transport.TCP{},
		Mode:    client.ModeTILEarly,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	ctx := context.Background()
	tx, err := cl.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ctx, "tcp-key", []byte("over-the-wire")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx2, _ := cl.Begin(ctx)
	v, err := tx2.Read(ctx, "tcp-key")
	if err != nil || string(v) != "over-the-wire" {
		t.Fatalf("%q %v", v, err)
	}
}

// TestOperationsOnFinishedDTxn checks the kv.Txn contract.
func TestOperationsOnFinishedDTxn(t *testing.T) {
	c := startCluster(t, 1, nil)
	cl, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	ctx := context.Background()
	tx, _ := cl.Begin(ctx)
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(ctx, "x"); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("want ErrTxnDone, got %v", err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal("abort after commit must be a no-op")
	}
}

// TestPurgeAbortsOldDistributedReaders: after a purge, a client with a
// deliberately old clock aborts instead of reading stale state.
func TestPurgeAbortsOldDistributedReaders(t *testing.T) {
	c := startCluster(t, 1, nil)
	ctx := context.Background()
	cl, _ := c.NewClient(client.ModeTILEarly, 5000, nil)
	for i := 0; i < 5; i++ {
		tx, _ := cl.Begin(ctx)
		_ = tx.Write(ctx, "x", []byte{byte(i)})
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Purge everything below now.
	if _, _, err := cl.PurgeServers(ctx, timestamp.New(time.Now().UnixMicro(), 0)); err != nil {
		t.Fatal(err)
	}
	// A TO client pinned to an ancient clock must abort its read.
	oldClock := pinnedClock(1000) // microseconds since epoch: ancient
	oldCl, _ := c.NewClient(client.ModeTO, 0, oldClock)
	tx, _ := oldCl.Begin(ctx)
	if _, err := tx.Read(ctx, "x"); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("ancient reader must abort, got %v", err)
	}
}

// pinnedClock is a Source stuck at a fixed tick.
type pinnedClock int64

func (p pinnedClock) Now() int64 { return int64(p) }
