package cluster_test

import (
	"context"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/server"
)

func startReplicated(t *testing.T, servers, replicas int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{
		Servers:  servers,
		Replicas: replicas,
		Bed:      cluster.BedLocal,
		ServerConfig: server.Config{
			LockWaitTimeout:  300 * time.Millisecond,
			WriteLockTimeout: 500 * time.Millisecond,
			ScanInterval:     50 * time.Millisecond,
		},
		CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// commitAll writes every key through one transaction, retrying aborts.
func commitAll(t *testing.T, cl *client.Client, kvs map[string]string) {
	t.Helper()
	ctx := context.Background()
	for attempt := 0; ; attempt++ {
		tx, err := cl.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for k, v := range kvs {
			if err := tx.Write(ctx, k, []byte(v)); err != nil {
				ok = false
				break
			}
		}
		if ok {
			if err := tx.Commit(ctx); err == nil {
				return
			}
		} else {
			_ = tx.Abort(ctx)
		}
		if attempt > 20 {
			t.Fatal("could not commit after 20 attempts")
		}
	}
}

// waitDrained polls until every partition's standbys report zero lag.
// The poll is iteration-bounded, not wall-clock-bounded, so a wedged
// pull loop fails the test instead of hanging it.
func waitDrained(t *testing.T, c *cluster.Cluster, partitions int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		drained := true
		for p := 0; p < partitions; p++ {
			if c.ReplicaLag(p) != 0 {
				drained = false
				break
			}
		}
		if drained {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("standbys never drained their upstream logs")
}

// TestFailoverServesCommittedData is the tentpole's end-to-end check:
// commit through the heads, let the standbys catch up, kill a head,
// promote, and read everything back through the new epoch.
func TestFailoverServesCommittedData(t *testing.T) {
	c := startReplicated(t, 2, 2)
	cl, err := c.NewClient(client.ModeTILEarly, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string]string{
		"alpha": "1", "beta": "2", "gamma": "3", "delta": "4",
		"epsilon": "5", "zeta": "6", "eta": "7", "theta": "8",
	}
	for k, v := range data {
		commitAll(t, cl, map[string]string{k: v})
	}
	waitDrained(t, c, 2)

	// Fail partition 0 over to its standby.
	if _, err := c.KillHead(0); err != nil {
		t.Fatal(err)
	}
	v, err := c.PromoteReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 2 {
		t.Fatalf("post-failover epoch = %d, want 2", v.Epoch)
	}

	// A fresh transaction re-routes to the promoted head and must see
	// every committed value; the first attempt may still abort if it
	// raced the client's cached-connection eviction.
	ctx := context.Background()
	for k, want := range data {
		var got []byte
		for attempt := 0; attempt < 20; attempt++ {
			tx, err := cl.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err = tx.Read(ctx, k)
			if err == nil {
				if err := tx.Commit(ctx); err == nil {
					break
				}
			} else {
				_ = tx.Abort(ctx)
			}
			got = nil
		}
		if string(got) != want {
			t.Fatalf("after failover, %q = %q, want %q", k, got, want)
		}
	}

	// New writes land on the promoted head too.
	commitAll(t, cl, map[string]string{"omega": "9"})
}

// TestPlannedHandoverFencesOldHead demotes a still-running head and
// checks that traffic pinned to the old epoch is turned away with the
// wrong-epoch counter ticking, while fresh transactions (new routes)
// proceed.
func TestPlannedHandoverFencesOldHead(t *testing.T) {
	c := startReplicated(t, 1, 2)
	cl, err := c.NewClient(client.ModeTILEarly, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitAll(t, cl, map[string]string{"pre": "1"})
	waitDrained(t, c, 1)

	oldHead := c.Director().View(0).Head
	if _, err := c.PromoteReplica(0); err != nil {
		t.Fatal(err)
	}
	// The old head is alive but demoted: direct traffic at the stale
	// epoch must bounce.
	srv := c.ServerByAddr(oldHead)
	if srv == nil {
		t.Fatalf("old head %s should still be running", oldHead)
	}
	if srv.IsHead() {
		t.Fatal("old head still thinks it serves the partition")
	}

	// Fresh transactions route to the new head and commit.
	commitAll(t, cl, map[string]string{"post": "2"})

	ctx := context.Background()
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplPromotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.ReplPromotions)
	}
	if st.ReplEpoch != 2 {
		t.Fatalf("epoch = %d, want 2", st.ReplEpoch)
	}
}

// TestRestartAsReplicaCatchesUp kills a head, promotes, restarts the
// dead server as a standby of the new head, and checks it drains the
// log — the satellite-1 path.
func TestRestartAsReplicaCatchesUp(t *testing.T) {
	c := startReplicated(t, 1, 2)
	cl, err := c.NewClient(client.ModeTILEarly, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitAll(t, cl, map[string]string{"a": "1", "b": "2"})
	waitDrained(t, c, 1)

	if _, err := c.KillHead(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PromoteReplica(0); err != nil {
		t.Fatal(err)
	}
	commitAll(t, cl, map[string]string{"c": "3"})

	if err := c.RestartServerAsReplica(0); err != nil {
		t.Fatal(err)
	}
	v := c.Director().View(0)
	if len(v.Standbys) != 1 {
		t.Fatalf("standbys = %v, want the restarted server", v.Standbys)
	}
	waitDrained(t, c, 1)

	// The caught-up replica can now be promoted in turn and serves all
	// data, including what it missed while dead.
	if _, err := c.KillHead(0); err != nil {
		t.Fatal(err)
	}
	v, err = c.PromoteReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 3 {
		t.Fatalf("epoch = %d, want 3", v.Epoch)
	}
	ctx := context.Background()
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		var got []byte
		for attempt := 0; attempt < 20; attempt++ {
			tx, err := cl.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err = tx.Read(ctx, k)
			if err == nil {
				if err := tx.Commit(ctx); err == nil {
					break
				}
			} else {
				_ = tx.Abort(ctx)
			}
			got = nil
		}
		if string(got) != want {
			t.Fatalf("after second failover, %q = %q, want %q", k, got, want)
		}
	}
}
