package core_test

import (
	"context"
	"errors"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/policy"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func newTO(t *testing.T) *core.DB {
	t.Helper()
	var src clock.Logical
	return core.New(policy.NewTO(clock.NewProcess(&src, 1)), core.Options{})
}

func TestReadWriteCommitRoundtrip(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()

	tx1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(ctx, "x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if !tx1.Committed() {
		t.Fatal("tx1 should be committed")
	}

	tx2, _ := db.Begin(ctx)
	got, err := tx2.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnwrittenKeyIsBottom(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	v, err := tx.Read(ctx, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("unwritten key must read ⊥ (nil), got %q", v)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	if err := tx.Write(ctx, "x", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "mine" {
		t.Fatalf("read-your-writes broken: %q", v)
	}
}

func TestWriteOverwriteInSameTxn(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	_ = tx.Write(ctx, "x", []byte("a"))
	_ = tx.Write(ctx, "x", []byte("b"))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin(ctx)
	v, _ := tx2.Read(ctx, "x")
	if string(v) != "b" {
		t.Fatalf("got %q", v)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	_ = tx.Write(ctx, "x", []byte("secret"))
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if !tx.Aborted() {
		t.Fatal("should be aborted")
	}
	tx2, _ := db.Begin(ctx)
	if v, _ := tx2.Read(ctx, "x"); v != nil {
		t.Fatalf("aborted write visible: %q", v)
	}
}

func TestOperationsAfterFinishFail(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	_ = tx.Commit(ctx)
	if _, err := tx.Read(ctx, "x"); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("Read after commit: %v", err)
	}
	if err := tx.Write(ctx, "x", nil); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("Write after commit: %v", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("Commit after commit: %v", err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatalf("Abort after commit must be a no-op: %v", err)
	}
}

func TestAbortIdempotent(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	_ = tx.Abort(ctx)
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCommitConflictAborts(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()

	// t1 gets the earlier timestamp (logical clock).
	t1, _ := db.Begin(ctx)
	t2, _ := db.Begin(ctx)

	// Force policy timestamps in order: read from each to fix them.
	if _, err := t1.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	// t2 reads x, locking up to its (later) timestamp.
	if _, err := t2.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// t1 now writes x at its earlier timestamp: blocked by t2's read lock.
	if err := t1.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	err := t1.Commit(ctx)
	if !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if !t1.Aborted() {
		t.Fatal("t1 must be aborted")
	}
}

func TestTxnIDsUnique(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		tx, _ := db.Begin(ctx)
		if seen[tx.ID()] {
			t.Fatalf("duplicate txn id %d", tx.ID())
		}
		seen[tx.ID()] = true
		_ = tx.Abort(ctx)
	}
}

func TestBeginRespectsContext(t *testing.T) {
	db := newTO(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Begin(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestStateStatsAndPurge(t *testing.T) {
	db := newTO(t)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		tx, _ := db.Begin(ctx)
		_ = tx.Write(ctx, "k", []byte{byte(i)})
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := db.StateStats()
	if st.Keys != 1 {
		t.Fatalf("Keys = %d", st.Keys)
	}
	if st.Versions != 11 { // 10 writes + initial ⊥
		t.Fatalf("Versions = %d", st.Versions)
	}
	if st.FrozenLockEntries != 10 {
		t.Fatalf("FrozenLockEntries = %d", st.FrozenLockEntries)
	}
	vRemoved, lRemoved := db.PurgeBelow(timestamp.New(1<<40, 0))
	if vRemoved == 0 || lRemoved == 0 {
		t.Fatalf("purge removed %d versions %d locks", vRemoved, lRemoved)
	}
	st = db.StateStats()
	if st.Versions != 1 {
		t.Fatalf("after purge Versions = %d", st.Versions)
	}
}

func TestPurgedReadAborts(t *testing.T) {
	var src clock.Manual
	db := core.New(policy.NewTO(clock.NewProcess(&src, 1)), core.Options{})
	ctx := context.Background()

	src.Set(10)
	tx, _ := db.Begin(ctx)
	_ = tx.Write(ctx, "x", []byte("old"))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	src.Set(100)
	tx2, _ := db.Begin(ctx)
	_ = tx2.Write(ctx, "x", []byte("new"))
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	db.PurgeBelow(timestamp.New(50, 0))

	// A transaction whose timestamp falls at or below the kept boundary
	// version needs the purged region and must abort.
	tx3, _ := db.Begin(ctx)
	tx3.Clock = clock.NewProcess(func() *clock.Manual { var m clock.Manual; m.Set(5); return &m }(), 3)
	if _, err := tx3.Read(ctx, "x"); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("read of purged region must abort, got %v", err)
	}
}

func TestKVAdapter(t *testing.T) {
	db := newTO(t)
	var kvdb kv.DB = db.KV()
	ctx := context.Background()
	tx, err := kvdb.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderReceivesCommits(t *testing.T) {
	var rec history.Recorder
	var src clock.Logical
	db := core.New(policy.NewTO(clock.NewProcess(&src, 1)), core.Options{Recorder: &rec})
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	_, _ = tx.Read(ctx, "a")
	_ = tx.Write(ctx, "b", []byte("1"))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorded %d commits", rec.Len())
	}
	c := rec.Commits()[0]
	if len(c.Reads) != 1 || c.Reads[0].Key != "a" || len(c.WriteKeys) != 1 || c.WriteKeys[0] != "b" {
		t.Fatalf("commit footprint = %+v", c)
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBlindWritesDoNotConflict(t *testing.T) {
	// Multiversion protocols commit concurrent blind writes (§8.4.2):
	// each transaction writes at its own timestamp.
	db := newTO(t)
	ctx := context.Background()
	t1, _ := db.Begin(ctx)
	t2, _ := db.Begin(ctx)
	_ = t1.Write(ctx, "x", []byte("a"))
	_ = t2.Write(ctx, "x", []byte("b"))
	if err := t2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}
