package core

import (
	"context"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// Policy fixes the nondeterministic choices of the generic MVTL algorithm
// (Algorithm 2 of the paper): which timestamps each operation locks, how
// locks are acquired (waiting or giving up), which commit timestamp is
// picked among the candidates, and whether garbage collection runs at
// commit. Theorem 1 guarantees serializability for every policy; the
// policy only affects liveness and performance.
//
// Policies access lock tables and version lists exclusively through
// Txn.Key so the engine can track which keys a transaction touched.
type Policy interface {
	// Name identifies the policy in logs and benchmark output.
	Name() string

	// Begin initializes per-transaction policy state (the
	// "Initialization" step of the specialized algorithms), typically
	// reading a clock and storing a timestamp or timestamp set in
	// tx.PolicyState.
	Begin(tx *Txn)

	// WriteLocks acquires whatever write locks the policy takes at
	// write time for key k (possibly none; several policies defer all
	// write locking to commit). An error aborts the transaction.
	WriteLocks(ctx context.Context, tx *Txn, k string) error

	// Read selects the version of k to read and acquires read locks on
	// a contiguous interval immediately following that version. It
	// returns the version read. An error aborts the transaction.
	Read(ctx context.Context, tx *Txn, k string) (version.Version, error)

	// CommitLocks acquires the locks the policy takes at commit time
	// (for example, write locks on the chosen timestamp). An error
	// aborts the transaction.
	CommitLocks(ctx context.Context, tx *Txn) error

	// CommitTS picks the commit timestamp out of the candidate set T —
	// the timestamps locked across the whole read and write set
	// (Alg. 1 line 13). Returning ok=false aborts the transaction. The
	// engine verifies the choice is a member of T.
	CommitTS(tx *Txn, candidates timestamp.Set) (timestamp.Timestamp, bool)

	// CommitGC reports whether the engine should garbage collect the
	// transaction's locks when it finishes: freeze the read locks
	// between the version read and the commit timestamp and release
	// everything unfrozen (Alg. 1 lines 22-26). Policies that emulate
	// MVTO+ return false, deliberately leaving read locks behind.
	CommitGC(tx *Txn) bool
}
