package core_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/policy"
)

// BenchmarkCommitThroughputContended drives the full engine with
// parallel read-modify-write transactions over a small hot keyspace and
// reports committed transactions per operation attempt. It exercises the
// whole lock-manager hot path end to end: conflict scans on shared
// tables, the commit-time candidate intersection, freeze-and-release,
// and (under the ghostbuster policy) waiting on unfrozen conflicts with
// targeted wakeups.
func BenchmarkCommitThroughputContended(b *testing.B) {
	for _, hotKeys := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("hotkeys=%d", hotKeys), func(b *testing.B) {
			var src clock.Logical
			db := core.New(policy.NewGhostbuster(clock.NewProcess(&src, 1)), core.Options{})
			ctx := context.Background()
			keys := make([]string, hotKeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("hot-%03d", i)
			}
			var committed, next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := next.Add(1)
					k := keys[n%uint64(len(keys))]
					tx, err := db.Begin(ctx)
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := tx.Read(ctx, k); err != nil {
						continue // aborted by conflict; that's the workload
					}
					if err := tx.Write(ctx, k, []byte("v")); err != nil {
						continue
					}
					if err := tx.Commit(ctx); err == nil {
						committed.Add(1)
					}
				}
			})
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(committed.Load())/float64(b.N), "commits/op")
			}
		})
	}
}
