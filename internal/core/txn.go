package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// abortedErr wraps a policy failure as a kv.ErrAborted, keeping
// lock.ErrDeadlock victims distinguishable via kv.ErrDeadlock so
// callers can retry them immediately instead of backing off — the same
// classification the distributed client derives from
// wire.StatusDeadlock.
func abortedErr(op string, err error) error {
	if errors.Is(err, lock.ErrDeadlock) {
		return fmt.Errorf("%s: %w (%w: %v)", op, kv.ErrAborted, kv.ErrDeadlock, err)
	}
	return fmt.Errorf("%s: %w (%v)", op, kv.ErrAborted, err)
}

// txnState tracks the lifecycle of a transaction.
type txnState uint8

const (
	stateActive txnState = iota
	stateCommitted
	stateAborted
)

// ReadRecord is one entry of the read set: the key and the timestamp of
// the version the transaction read (Alg. 1 line 9).
type ReadRecord struct {
	Key string
	// VersionTS is the timestamp tr of the version returned by the
	// read; Zero denotes the initial version ⊥.
	VersionTS timestamp.Timestamp
}

// Txn is an MVTL transaction. It is not safe for concurrent use by
// multiple goroutines.
type Txn struct {
	id    uint64
	db    *DB
	state txnState

	readset    []ReadRecord
	writes     map[string][]byte
	writeOrder []string

	touched map[string]*KeyState

	// CommitTS is the serialization timestamp, set on successful commit.
	CommitTS timestamp.Timestamp

	// PolicyState carries per-transaction policy data (timestamps,
	// timestamp sets, priority flags, ...), owned by the policy.
	PolicyState any

	// Priority marks the transaction as critical for priority-aware
	// policies (§5.2). It must be set before the first operation.
	Priority bool

	// Clock, when non-nil, overrides the policy's default clock for
	// this transaction. Policies read their clock lazily at the first
	// operation, so callers may set Clock right after Begin; this is
	// how tests model per-process (skewed) clocks in a single engine.
	Clock *clock.Process

	// RestartHint, when nonzero, suggests a timestamp above which a
	// retry of this transaction is likely to succeed; policies set it
	// when they observe frozen conflicts (used by MVTIL restarts, §8.1).
	RestartHint timestamp.Timestamp
}

var _ kv.Txn = (*Txn)(nil)

// ID returns the transaction identifier.
func (tx *Txn) ID() uint64 { return tx.id }

// Owner returns the transaction's lock-owner identity.
func (tx *Txn) Owner() lock.Owner { return lock.Owner(tx.id) }

// Key returns the lock/version state for k, registering it as touched so
// that lock cleanup can find it. Policies must access keys only through
// this method.
func (tx *Txn) Key(k string) *KeyState {
	ks, ok := tx.touched[k]
	if !ok {
		ks = tx.db.keyState(k)
		tx.touched[k] = ks
	}
	return ks
}

// ReadSet returns the recorded reads.
func (tx *Txn) ReadSet() []ReadRecord { return tx.readset }

// WriteKeys returns the keys written, in first-write order.
func (tx *Txn) WriteKeys() []string { return tx.writeOrder }

// PendingWrite returns the buffered value for k, if the transaction
// wrote it.
func (tx *Txn) PendingWrite(k string) ([]byte, bool) {
	v, ok := tx.writes[k]
	return v, ok
}

// Aborted reports whether the transaction has aborted.
func (tx *Txn) Aborted() bool { return tx.state == stateAborted }

// Committed reports whether the transaction has committed.
func (tx *Txn) Committed() bool { return tx.state == stateCommitted }

// Write buffers value for key k after acquiring the policy's write-time
// locks (Alg. 1 lines 3-5). The write becomes visible only at commit.
func (tx *Txn) Write(ctx context.Context, k string, value []byte) error {
	if tx.state != stateActive {
		return kv.ErrTxnDone
	}
	if err := tx.db.policy.WriteLocks(ctx, tx, k); err != nil {
		tx.abort()
		return abortedErr(fmt.Sprintf("write %q", k), err)
	}
	if _, dup := tx.writes[k]; !dup {
		tx.writeOrder = append(tx.writeOrder, k)
	}
	tx.writes[k] = value
	return nil
}

// Read returns the value of k within the transaction (Alg. 1 lines
// 6-10). If the transaction previously wrote k, the buffered value is
// returned. A nil value with nil error is ⊥.
func (tx *Txn) Read(ctx context.Context, k string) ([]byte, error) {
	if tx.state != stateActive {
		return nil, kv.ErrTxnDone
	}
	if v, ok := tx.writes[k]; ok {
		return v, nil
	}
	ver, err := tx.db.policy.Read(ctx, tx, k)
	if err != nil {
		tx.abort()
		return nil, abortedErr(fmt.Sprintf("read %q", k), err)
	}
	tx.readset = append(tx.readset, ReadRecord{Key: k, VersionTS: ver.TS})
	return ver.Value, nil
}

// Commit tries to commit the transaction (Alg. 1 lines 11-21): it
// acquires the policy's commit-time locks, computes the candidate set T
// of timestamps locked across the whole footprint, lets the policy pick
// one, freezes the write locks there and exposes the written values.
func (tx *Txn) Commit(ctx context.Context) error {
	if tx.state != stateActive {
		return kv.ErrTxnDone
	}
	if err := tx.db.policy.CommitLocks(ctx, tx); err != nil {
		tx.abort()
		return abortedErr("commit locks", err)
	}

	candidates := tx.candidateSet()
	if candidates.IsEmpty() {
		tx.abort()
		return fmt.Errorf("no commonly locked timestamp: %w", kv.ErrAborted)
	}
	chosen, ok := tx.db.policy.CommitTS(tx, candidates)
	if !ok || !candidates.Contains(chosen) {
		tx.abort()
		return fmt.Errorf("policy declined candidates %v: %w", candidates, kv.ErrAborted)
	}
	tx.CommitTS = chosen

	// Expose committed values and freeze the write locks at the commit
	// timestamp. The value is installed before the freeze so that any
	// reader observing a frozen write lock is guaranteed to find the
	// version (the Go-idiomatic counterpart of the §6 special-value
	// construction that removes the atomic block of Alg. 1).
	for _, k := range tx.writeOrder {
		ks := tx.touched[k]
		if err := ks.Versions.Install(chosen, tx.writes[k]); err != nil {
			// Unreachable while the write lock at the chosen timestamp
			// is held and the purge bound trails active transactions;
			// abort defensively.
			tx.abort()
			return fmt.Errorf("install %q at %v: %w (%v)", k, chosen, kv.ErrAborted, err)
		}
		ks.Locks.FreezeWriteAt(tx.Owner(), chosen)
	}
	tx.state = stateCommitted

	if rec := tx.db.opts.Recorder; rec != nil {
		rec.Record(history.Commit{
			ID:        tx.id,
			CommitTS:  chosen,
			Reads:     toHistoryReads(tx.readset),
			WriteKeys: append([]string(nil), tx.writeOrder...),
		})
	}

	if tx.db.policy.CommitGC(tx) {
		tx.gc()
	}
	return nil
}

// Abort discards the transaction, releasing locks according to the
// policy's garbage-collection choice. Aborting a finished transaction is
// a no-op.
func (tx *Txn) Abort(context.Context) error {
	if tx.state != stateActive {
		return nil
	}
	tx.abort()
	return nil
}

// candidateSet computes T (Alg. 1 line 13): the timestamps read- or
// write-locked on every key read, and write-locked on every key written.
// One scratch pair of Owned snapshots is threaded through the whole
// footprint, so per-key snapshot storage is reused instead of
// reallocated key by key.
func (tx *Txn) candidateSet() timestamp.Set {
	candidates := timestamp.NewSet(timestamp.Full)

	readKeys := make(map[string]struct{}, len(tx.readset))
	for _, r := range tx.readset {
		readKeys[r.Key] = struct{}{}
	}
	// Deterministic iteration order aids debugging.
	orderedReads := make([]string, 0, len(readKeys))
	for k := range readKeys {
		orderedReads = append(orderedReads, k)
	}
	sort.Strings(orderedReads)

	var readOrWrite, writeOnly timestamp.Set
	for _, k := range orderedReads {
		if _, alsoWritten := tx.writes[k]; alsoWritten {
			continue // the write-lock requirement below subsumes this key
		}
		tx.touched[k].Locks.OwnedInto(tx.Owner(), &readOrWrite, &writeOnly)
		candidates.IntersectInto(readOrWrite)
		if candidates.IsEmpty() {
			return candidates
		}
	}
	for _, k := range tx.writeOrder {
		tx.touched[k].Locks.OwnedInto(tx.Owner(), &readOrWrite, &writeOnly)
		candidates.IntersectInto(writeOnly)
		if candidates.IsEmpty() {
			return candidates
		}
	}
	return candidates
}

// abort marks the transaction aborted and cleans up its locks. Policies
// that garbage collect drop every unfrozen lock; MVTO-style policies
// keep their read locks (emulating persistent read timestamps) but must
// not leave write intentions behind.
func (tx *Txn) abort() {
	tx.state = stateAborted
	if tx.db.policy.CommitGC(tx) {
		for _, ks := range tx.touched {
			ks.Locks.ReleaseUnfrozen(tx.Owner())
		}
		return
	}
	for _, ks := range tx.touched {
		ks.Locks.ReleaseWrites(tx.Owner())
	}
}

// gc implements Alg. 1 lines 22-26 for a committed transaction: freeze
// the read locks between each version read and the commit timestamp, and
// release all unfrozen locks.
func (tx *Txn) gc() {
	for _, r := range tx.readset {
		iv := timestamp.Span(r.VersionTS.Next(), tx.CommitTS)
		tx.touched[r.Key].Locks.FreezeReadIn(tx.Owner(), iv)
	}
	for _, ks := range tx.touched {
		ks.Locks.ReleaseUnfrozen(tx.Owner())
	}
}

// toHistoryReads converts the read set for the history recorder.
func toHistoryReads(rs []ReadRecord) []history.Read {
	out := make([]history.Read, len(rs))
	for i, r := range rs {
		out[i] = history.Read{Key: r.Key, VersionTS: r.VersionTS}
	}
	return out
}
