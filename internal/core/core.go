// Package core implements the generic MVTL algorithm (§4 of the paper):
// a transactional multiversion store in which transactions lock
// individual timestamps of keys rather than whole keys, and commit at any
// timestamp they hold locked across their entire footprint.
//
// The engine is parameterized by a Policy (Algorithm 2) supplying the
// nondeterministic choices; the specialized algorithms of §5 live in the
// policy package. Correctness (Theorem 1) is independent of the policy.
package core

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// shardCount is the number of key-map shards; a power of two.
const shardCount = 64

// KeyState bundles the per-key state: the freezable interval lock table
// and the version history.
type KeyState struct {
	// Locks is the interval-compressed lock state of the key.
	Locks *lock.Table
	// Versions is the committed version history of the key.
	Versions *version.List
}

type shard struct {
	mu   sync.RWMutex
	keys map[string]*KeyState
}

// Options configure a DB.
type Options struct {
	// Recorder, when non-nil, receives every committed transaction's
	// footprint for offline serializability checking. Intended for
	// tests; it adds overhead.
	Recorder *history.Recorder
}

// DB is an MVTL transactional store.
type DB struct {
	policy Policy
	opts   Options

	shards [shardCount]shard
	// waits is the store-wide wait-for graph: blocking policies fail
	// fast with lock.ErrDeadlock on wait cycles instead of relying on
	// context timeouts (§4.3).
	waits *lock.WaitGraph

	// nextID is the transaction-id allocator. It is atomic rather than
	// mutex-guarded so Begin never serializes transactions behind a
	// store-wide lock.
	nextID atomic.Uint64
}

// New returns an empty store governed by the given policy.
func New(policy Policy, opts Options) *DB {
	db := &DB{policy: policy, opts: opts, waits: lock.NewWaitGraph()}
	for i := range db.shards {
		db.shards[i].keys = make(map[string]*KeyState)
	}
	return db
}

// Policy returns the policy the store was created with.
func (db *DB) Policy() Policy { return db.policy }

// kvAdapter adapts DB to the engine-neutral kv.DB interface.
type kvAdapter struct{ db *DB }

// Begin implements kv.DB.
func (a kvAdapter) Begin(ctx context.Context) (kv.Txn, error) { return a.db.Begin(ctx) }

// KV returns a kv.DB view of the store, for workload drivers that treat
// all engines uniformly.
func (db *DB) KV() kv.DB { return kvAdapter{db: db} }

// keyState returns the state for k, creating it if needed.
func (db *DB) keyState(k string) *KeyState {
	sh := &db.shards[strhash.FNV1a(k)&(shardCount-1)]
	sh.mu.RLock()
	ks, ok := sh.keys[k]
	sh.mu.RUnlock()
	if ok {
		return ks
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ks, ok = sh.keys[k]; ok {
		return ks
	}
	ks = &KeyState{Locks: lock.NewTableDetected(db.waits), Versions: version.NewList()}
	sh.keys[k] = ks
	return ks
}

// Begin starts a transaction (Alg. 1 line 1).
func (db *DB) Begin(ctx context.Context) (*Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id := db.nextID.Add(1)
	tx := &Txn{
		id:      id,
		db:      db,
		writes:  make(map[string][]byte),
		touched: make(map[string]*KeyState),
	}
	db.policy.Begin(tx)
	return tx, nil
}

// StateStats summarizes the store's state size, used by the state-size
// experiment (§8.4.5, Figure 6).
type StateStats struct {
	// Keys is the number of distinct keys materialized.
	Keys int
	// LockEntries is the total number of interval-compressed lock
	// records across all keys.
	LockEntries int
	// FrozenLockEntries is how many of those records are frozen.
	FrozenLockEntries int
	// Versions is the total number of stored versions across all keys.
	Versions int
}

// StateStats scans the store and returns its current state size. Key
// pointers are snapshotted per shard before the per-key statistics are
// gathered, so the scan never holds a shard lock while taking per-key
// locks and stats collection cannot stall writers.
func (db *DB) StateStats() StateStats {
	var st StateStats
	var states []*KeyState
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		states = states[:0]
		for _, ks := range sh.keys {
			states = append(states, ks)
		}
		sh.mu.RUnlock()
		st.Keys += len(states)
		for _, ks := range states {
			ls := ks.Locks.Stats()
			st.LockEntries += ls.Entries
			st.FrozenLockEntries += ls.Frozen
			st.Versions += ks.Versions.Count()
		}
	}
	return st
}

// PurgeBelow discards versions and frozen lock state older than the
// bound (§6): each key keeps the newest version below the bound, and
// frozen lock records entirely below the bound are dropped. It returns
// the number of versions and lock records removed. Transactions that
// later need a purged version abort with version.ErrPurged.
func (db *DB) PurgeBelow(bound timestamp.Timestamp) (versionsRemoved, locksRemoved int) {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		states := make([]*KeyState, 0, len(sh.keys))
		for _, ks := range sh.keys {
			states = append(states, ks)
		}
		sh.mu.RUnlock()
		for _, ks := range states {
			versionsRemoved += ks.Versions.PurgeBelow(bound)
			locksRemoved += ks.Locks.PurgeFrozenBelow(bound)
		}
	}
	return versionsRemoved, locksRemoved
}
