package tsservice

import (
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func TestBoundSubtractsRetention(t *testing.T) {
	var m clock.Manual
	m.Set(10_000_000) // 10s in µs
	s := Start(Config{
		Interval:       time.Hour, // never fires during the test
		Retention:      2 * time.Second,
		Clock:          &m,
		TicksPerSecond: 1_000_000,
	})
	defer s.Stop()
	if got := s.Bound(); got != timestamp.New(8_000_000, 0) {
		t.Fatalf("Bound = %v", got)
	}
}

func TestBoundClampsAtZero(t *testing.T) {
	var m clock.Manual
	m.Set(5)
	s := Start(Config{Interval: time.Hour, Retention: time.Minute, Clock: &m})
	defer s.Stop()
	if got := s.Bound(); got != timestamp.New(0, 0) {
		t.Fatalf("Bound = %v", got)
	}
}

func TestBroadcastFires(t *testing.T) {
	var m clock.Manual
	m.Set(1_000_000)
	var mu sync.Mutex
	var bounds []timestamp.Timestamp
	s := Start(Config{
		Interval:  10 * time.Millisecond,
		Retention: 0,
		Clock:     &m,
		Broadcast: func(b timestamp.Timestamp) {
			mu.Lock()
			bounds = append(bounds, b)
			mu.Unlock()
		},
	})
	time.Sleep(60 * time.Millisecond)
	s.Stop()
	mu.Lock()
	n := len(bounds)
	mu.Unlock()
	if n < 2 {
		t.Fatalf("expected several broadcasts, got %d", n)
	}
	for _, b := range bounds {
		if b != timestamp.New(1_000_000, 0) {
			t.Fatalf("bound = %v", b)
		}
	}
}

func TestStopIsIdempotentlySafe(t *testing.T) {
	s := Start(Config{Interval: 5 * time.Millisecond})
	s.Stop()
	// Second stop would panic on a closed channel; ensure the API is
	// used once. (Documented contract: Stop once.)
}
