// Package tsservice implements the timestamp service of §8.1: a
// component that periodically broadcasts a time T in the past — the
// current time minus a retention constant K — with two effects: storage
// servers purge versions (and lock state) older than T, and clients
// advance their local clocks to at least T so that slow clocks do not
// start transactions that would need purged versions.
package tsservice

import (
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// Config parameterizes the service.
type Config struct {
	// Interval is the broadcast period (the paper purges every 15s on
	// the local bed; scale down for tests).
	Interval time.Duration
	// Retention is K: the broadcast bound is now − K.
	Retention time.Duration
	// Clock supplies "now" in ticks; defaults to the system clock
	// (microseconds).
	Clock clock.Source
	// TicksPerSecond converts Retention to ticks; defaults to 1e6
	// (microsecond ticks).
	TicksPerSecond int64
	// Broadcast receives the bound on every period. Implementations
	// purge servers and advance client clocks.
	Broadcast func(bound timestamp.Timestamp)
}

// Service is a running timestamp service.
type Service struct {
	cfg  Config
	stop chan struct{}
	wg   sync.WaitGroup
}

// Start launches the service.
func Start(cfg Config) *Service {
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	if cfg.TicksPerSecond == 0 {
		cfg.TicksPerSecond = 1_000_000
	}
	s := &Service{cfg: cfg, stop: make(chan struct{})}
	s.wg.Add(1)
	go s.run()
	return s
}

// Bound computes the current broadcast bound.
func (s *Service) Bound() timestamp.Timestamp {
	retentionTicks := int64(s.cfg.Retention.Seconds() * float64(s.cfg.TicksPerSecond))
	t := s.cfg.Clock.Now() - retentionTicks
	if t < 0 {
		t = 0
	}
	return timestamp.New(t, 0)
}

func (s *Service) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if s.cfg.Broadcast != nil {
				s.cfg.Broadcast(s.Bound())
			}
		}
	}
}

// Stop halts the service and waits for the broadcast goroutine.
func (s *Service) Stop() {
	close(s.stop)
	s.wg.Wait()
}
