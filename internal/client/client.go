// Package client implements the transaction coordinator of the
// distributed MVTL algorithm (§7/§H, Algorithms 11-12). A Client owns
// connections to the storage servers, partitions keys among them, and
// runs transactions under one of three locking strategies:
//
//   - ModeTILEarly / ModeTILLate — MVTIL, the interval-locking variant
//     evaluated in §8: the transaction's interval I=[t, t+Δ] shrinks as
//     locks are partially acquired, and the commit timestamp is the
//     smallest (early) or largest (late) commonly locked point;
//   - ModeTO — distributed timestamp ordering, the MVTO+ comparison
//     point (Theorem 5);
//   - ModePessimistic — distributed 2PL via timeline-tail locking
//     (Theorem 6).
//
// All three run against the same storage servers and wire protocol, so
// the comparison isolates the concurrency control discipline, exactly as
// in the paper's evaluation framework (§8.1).
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/rpc"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Mode selects the coordinator's concurrency control strategy.
type Mode uint8

// Coordinator modes.
const (
	ModeTILEarly Mode = iota + 1
	ModeTILLate
	ModeTO
	ModePessimistic
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeTILEarly:
		return "mvtil-early"
	case ModeTILLate:
		return "mvtil-late"
	case ModeTO:
		return "mvto+"
	case ModePessimistic:
		return "2pl"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Router resolves partitions to their serving heads in replicated
// clusters. Route is consulted at most once per partition per
// transaction — the transaction pins what it gets, so a failover never
// moves a transaction's freeze or decide target mid-flight. Refresh is
// called when a pinned route proved stale (the server is unreachable,
// or it fenced the request's epoch with wire.StatusWrongEpoch) and
// should consult the membership authority so the next Route returns
// the new head. Implementations must be safe for concurrent use.
type Router interface {
	Route(partition int) (addr string, epoch uint64)
	Refresh(partition int)
}

// Config parameterizes a Client.
type Config struct {
	// ID distinguishes this client process; it is folded into
	// transaction ids and timestamp process ids, so it must be unique
	// across clients. Must be nonzero.
	ID int32
	// Servers are the storage server addresses; keys partition across
	// them by hash (§7).
	Servers []string
	// Network provides the transport.
	Network transport.Network
	// Router, when non-nil, overlays replication-aware routing on the
	// static partitioning: keys still partition by hash over Servers,
	// but partition p's traffic goes to the router's current head for p,
	// stamped with its epoch. Nil keeps the static Servers routing with
	// epoch 0 (unfenced).
	Router Router
	// Mode selects the strategy.
	Mode Mode
	// Delta is the MVTIL interval width in clock ticks (the paper uses
	// Δ = 5ms with microsecond ticks).
	Delta int64
	// Clock is the client's local clock; no synchronization is assumed
	// (§8). Defaults to the system clock.
	Clock clock.Source
	// Recorder, when non-nil, receives committed transaction footprints
	// for offline serializability checking (tests only).
	Recorder *history.Recorder
	// DeadlockPoll is the cross-server deadlock detector's poll
	// interval: while one of this coordinator's lock requests is
	// blocked, every server's wait-for edges are polled this often and
	// victims of confirmed global cycles are aborted (see package
	// deadlock). Zero selects the 10ms default; a negative value
	// disables the detector, leaving cross-server cycles to the
	// server-side lock-wait timeout.
	DeadlockPoll time.Duration
	// ConnsPerServer sizes the RPC connection pool per server (see
	// package rpc). The default of one preserves strict FIFO ordering
	// of this coordinator's frames to each server — and with it
	// read-your-own-writes freshness across this coordinator's
	// transactions after a fire-and-forget freeze. Larger pools lift
	// per-connection throughput under many concurrent transactions;
	// frames then stay FIFO only within one transaction, so another
	// transaction's read may overtake an earlier commit's freeze and
	// observe the previous version (still serializable, possibly
	// stale).
	ConnsPerServer int
	// CallTimeout bounds each RPC: a partitioned or crashed server
	// costs one timeout instead of hanging the transaction. It must
	// exceed the servers' lock-wait timeout, or waiting lock requests
	// are cut off spuriously. Zero disables per-call deadlines (the
	// caller's context still applies).
	CallTimeout time.Duration
	// Timers supplies every timed wait the coordinator performs (call
	// timeouts, detector polls, fan-out joins). Nil means SystemTimers;
	// the fault bed passes a clock.Virtual so those waits resolve by
	// timeline jump.
	Timers clock.Timers
}

// RetryPolicy bounds retries of retryable failures (rpc.IsRetryable)
// with exponential backoff. The backoff is deterministic — no jitter —
// so a seeded fault scenario replays the same schedule run after run.
type RetryPolicy struct {
	// Base is the pause after the first failure; zero retries
	// immediately.
	Base time.Duration
	// Max caps the doubling; zero leaves it uncapped.
	Max time.Duration
	// Attempts is the total number of tries including the first;
	// values below one mean one (no retries).
	Attempts int
}

// Backoff returns the pause before retry number attempt (1-based: the
// pause after the attempt-th failure), doubling from Base, capped at
// Max.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	if p.Base <= 0 || attempt < 1 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

// Client coordinates transactions from one client process.
type Client struct {
	cfg    Config
	clk    *clock.Process
	timers clock.Timers
	// det is the cross-server deadlock detector; nil when disabled.
	det *detector

	mu     sync.Mutex
	conns  map[string]*rpc.Client
	nextSq uint32
}

var _ kv.DB = (*Client)(nil)

// New returns a coordinator. Dial errors surface lazily on first use of
// each server.
func New(cfg Config) (*Client, error) {
	if cfg.ID == 0 {
		return nil, fmt.Errorf("client: Config.ID must be nonzero")
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("client: no servers configured")
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("client: Config.Network is required")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeTILEarly
	}
	if cfg.Delta == 0 {
		cfg.Delta = 5000 // 5ms in microsecond ticks
	}
	src := cfg.Clock
	if src == nil {
		src = clock.System{}
	}
	c := &Client{
		cfg:    cfg,
		clk:    clock.NewProcess(src, cfg.ID),
		timers: clock.OrSystem(cfg.Timers),
		conns:  make(map[string]*rpc.Client),
	}
	if cfg.DeadlockPoll >= 0 {
		poll := cfg.DeadlockPoll
		if poll == 0 {
			poll = 10 * time.Millisecond
		}
		c.det = newDetector(c, poll)
	}
	return c, nil
}

// Close stops the deadlock detector and tears down all server
// connections.
func (c *Client) Close() error {
	if c.det != nil {
		c.det.close()
	}
	c.mu.Lock()
	conns := c.conns
	c.conns = map[string]*rpc.Client{}
	c.mu.Unlock()
	for _, conn := range conns {
		_ = conn.Close()
	}
	return nil
}

// AdvanceClock pushes the client clock to at least t, as done when the
// timestamp service broadcasts its purge bound (§8.1) so that slow
// clients do not start transactions needing purged versions.
func (c *Client) AdvanceClock(t int64) { c.clk.AdvanceTo(t) }

// serverFor maps a key to its server address under static routing.
func (c *Client) serverFor(key string) string {
	return c.cfg.Servers[strhash.FNV1a(key)%uint32(len(c.cfg.Servers))]
}

// partitionFor maps a key to its partition index.
func (c *Client) partitionFor(key string) int {
	return int(strhash.FNV1a(key) % uint32(len(c.cfg.Servers)))
}

// routeFor resolves a partition to its current head and fencing epoch:
// through the Router when configured, else the static server list with
// epoch 0.
func (c *Client) routeFor(p int) (string, uint64) {
	if r := c.cfg.Router; r != nil {
		return r.Route(p)
	}
	return c.cfg.Servers[p], 0
}

// conn returns the pooled RPC client for addr, creating it on first
// use; dial errors surface lazily from the calls themselves.
func (c *Client) conn(addr string) *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	rc, ok := c.conns[addr]
	if !ok {
		rc = rpc.NewClientTimers(c.cfg.Network, addr, c.cfg.ConnsPerServer, c.timers)
		c.conns[addr] = rc
	}
	return rc
}

// evict drops the pooled RPC client for addr — if it is still the
// cached one (identity-checked, so a concurrent redial is never torn
// down) and err says the connection itself died rather than the one
// request — so the next use redials. Package rpc is crash-stop: a
// broken Client never redials on its own, which is correct for the
// paper's failure model but would leave a crash-RESTARTED server
// permanently unreachable without this.
func (c *Client) evict(addr string, rc *rpc.Client, err error) {
	if !errors.Is(err, rpc.ErrClosed) && !errors.Is(err, transport.ErrClosed) && !errors.Is(err, transport.ErrTimeout) {
		return
	}
	c.mu.Lock()
	if c.conns[addr] == rc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	_ = rc.Close()
}

// call performs one RPC against the server at addr, bounded by
// CallTimeout when configured. flow pins all frames of one transaction
// to one pooled connection (FIFO within the flow); callers outside any
// transaction pass 0. The caller owns the returned frame buffer and
// must Release it after decoding the response (copying out anything
// that escapes, see package wire).
func (c *Client) call(ctx context.Context, addr string, flow uint64, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	rc := c.conn(addr)
	if d := c.cfg.CallTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = c.timers.WithTimeout(ctx, d)
		defer cancel()
	}
	f, err := rc.Call(ctx, flow, t, m)
	if err != nil {
		c.evict(addr, rc, err)
	}
	return f, err
}

// callWaitable is call for lock requests that may park server-side:
// when wait is set, the RPC is bracketed by the deadlock detector's
// blocked-call tracking, which is what switches its polling on.
func (c *Client) callWaitable(ctx context.Context, addr string, flow uint64, t wire.MsgType, m wire.Message, wait bool) (*wire.FrameBuf, error) {
	if wait && c.det != nil {
		c.det.enter()
		defer c.det.exit()
	}
	return c.call(ctx, addr, flow, t, m)
}

// cast sends a one-way message to addr without waiting for the reply
// (Alg. 11's freeze and release sends). Per-flow FIFO ordering
// guarantees that the transaction's subsequent frames to the same
// server observe the message's effects.
func (c *Client) cast(addr string, flow uint64, t wire.MsgType, m wire.Message) error {
	rc := c.conn(addr)
	err := rc.Cast(flow, t, m)
	if err != nil {
		c.evict(addr, rc, err)
	}
	return err
}

// Begin implements kv.DB.
func (c *Client) Begin(ctx context.Context) (kv.Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextSq++
	sq := c.nextSq
	c.mu.Unlock()
	// Transaction ids are globally unique: client id in the high bits.
	id := uint64(uint32(c.cfg.ID))<<32 | uint64(sq)
	tx := &DTxn{
		client:      c,
		id:          id,
		routes:      map[int]txnRoute{},
		partOf:      map[string]int{},
		readLocked:  map[string]timestamp.Set{},
		writeLocked: map[string]timestamp.Set{},
		readVers:    map[string]timestamp.Timestamp{},
		writes:      map[string][]byte{},
		touched:     map[string]bool{},
	}
	now := c.clk.Now()
	tx.start = now
	switch c.cfg.Mode {
	case ModeTILEarly, ModeTILLate:
		lo := timestamp.New(now.Time, -1<<30)
		if !lo.After(timestamp.Zero) {
			lo = timestamp.Zero.Next()
		}
		tx.interval = timestamp.NewSet(timestamp.Span(lo, timestamp.New(now.Time+c.cfg.Delta, 1<<30)))
	case ModeTO:
		tx.ts = now
	case ModePessimistic:
		// no timestamp state: the tail is discovered from locks
	}
	return tx, nil
}

// ServerStats queries one server's state-size statistics (Figure 6).
func (c *Client) ServerStats(ctx context.Context, addr string) (wire.StatsResp, error) {
	f, err := c.call(ctx, addr, 0, wire.TStatsReq, nil)
	if err != nil {
		return wire.StatsResp{}, err
	}
	defer f.Release()
	return wire.DecodeStatsResp(f.Body())
}

// PurgeServers asks every server to purge state below bound, returning
// totals; the timestamp service calls this periodically (§8.1).
func (c *Client) PurgeServers(ctx context.Context, bound timestamp.Timestamp) (versions, locks int64, err error) {
	for _, addr := range c.cfg.Servers {
		f, callErr := c.call(ctx, addr, 0, wire.TPurgeReq, wire.PurgeReq{Bound: bound})
		if callErr != nil {
			return versions, locks, callErr
		}
		resp, decErr := wire.DecodePurgeResp(f.Body())
		f.Release()
		if decErr != nil {
			return versions, locks, decErr
		}
		if resp.Status != wire.StatusOK {
			return versions, locks, fmt.Errorf("client: purge via %s: %s", addr, resp.Err)
		}
		versions += resp.Versions
		locks += resp.Locks
	}
	return versions, locks, nil
}
