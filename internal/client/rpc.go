package client

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// ErrConnClosed reports an RPC on a torn-down connection.
var ErrConnClosed = errors.New("client: connection closed")

// rpcConn multiplexes many in-flight requests over one transport
// connection: requests carry unique ids, a background goroutine routes
// responses to their waiters.
type rpcConn struct {
	conn transport.Conn

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]chan wire.Frame
	closed  bool

	done chan struct{}
}

// newRPCConn wraps conn and starts the demultiplexer.
func newRPCConn(conn transport.Conn) *rpcConn {
	c := &rpcConn{
		conn:    conn,
		nextID:  1,
		waiters: make(map[uint64]chan wire.Frame),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

func (c *rpcConn) recvLoop() {
	defer close(c.done)
	for {
		f, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for id, ch := range c.waiters {
				close(ch)
				delete(c.waiters, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[f.ID]
		if ok {
			delete(c.waiters, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// call performs one request/response exchange.
func (c *rpcConn) call(ctx context.Context, t wire.MsgType, body []byte) (wire.Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Frame{}, ErrConnClosed
	}
	id := c.nextID
	c.nextID++
	ch := make(chan wire.Frame, 1)
	c.waiters[id] = ch
	c.mu.Unlock()

	if err := c.conn.Send(wire.Frame{ID: id, Type: t, Body: body}); err != nil {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return wire.Frame{}, fmt.Errorf("client: send: %w", err)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return wire.Frame{}, ErrConnClosed
		}
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return wire.Frame{}, ctx.Err()
	}
}

// cast sends a request without waiting for the response; the reply is
// dropped by the demultiplexer. Used for the fire-and-forget messages of
// Alg. 11 — freeze-write-locks, freeze-read-locks and releases are sent
// "without waiting for replies" (§H), which is what makes the protocol
// communication efficient.
func (c *rpcConn) cast(t wire.MsgType, body []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrConnClosed
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()
	return c.conn.Send(wire.Frame{ID: id, Type: t, Body: body})
}

// close tears the connection down.
func (c *rpcConn) close() {
	_ = c.conn.Close()
	<-c.done
}
