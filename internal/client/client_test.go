package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

func TestConfigValidation(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	cases := []Config{
		{Servers: []string{"a"}, Network: n},          // missing ID
		{ID: 1, Network: n},                           // missing servers
		{ID: 1, Servers: []string{"a"}, Network: nil}, // missing network
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(Config{ID: 1, Servers: []string{"a"}, Network: n}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	pairs := map[Mode]string{
		ModeTILEarly:    "mvtil-early",
		ModeTILLate:     "mvtil-late",
		ModeTO:          "mvto+",
		ModePessimistic: "2pl",
		Mode(99):        "mode(99)",
	}
	for m, want := range pairs {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q want %q", m, got, want)
		}
	}
}

func TestServerForIsStable(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	c, err := New(Config{ID: 1, Servers: []string{"s0", "s1", "s2"}, Network: n})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		first := c.serverFor(k)
		for i := 0; i < 10; i++ {
			if got := c.serverFor(k); got != first {
				t.Fatalf("serverFor(%q) unstable: %q vs %q", k, first, got)
			}
		}
		seen[first] = k
	}
	if len(seen) < 2 {
		t.Log("all keys landed on one server (possible but unlikely); not fatal")
	}
}

func TestTxnIDsEmbedClientID(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	a, _ := New(Config{ID: 1, Servers: []string{"s"}, Network: n})
	b, _ := New(Config{ID: 2, Servers: []string{"s"}, Network: n})
	ctx := context.Background()
	ta, _ := a.Begin(ctx)
	tb, _ := b.Begin(ctx)
	if ta.ID() == tb.ID() {
		t.Fatal("txn ids from different clients must differ")
	}
	if ta.ID()>>32 != 1 || tb.ID()>>32 != 2 {
		t.Fatalf("client id not embedded: %x %x", ta.ID(), tb.ID())
	}
}

// echoServer answers every frame with an empty OK ack of the matching
// response type, after an optional delay.
func echoServer(t *testing.T, n transport.Network, addr string, delay time.Duration) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn transport.Conn) {
				var mu sync.Mutex
				for {
					f, err := conn.Recv()
					if err != nil {
						return
					}
					go func(f wire.Frame) {
						if delay > 0 {
							time.Sleep(delay)
						}
						mu.Lock()
						defer mu.Unlock()
						_ = conn.Send(wire.Frame{ID: f.ID, Type: f.Type + 1, Body: wire.Ack{Status: wire.StatusOK}.Encode()})
					}(f)
				}
			}(conn)
		}
	}()
}

func TestRPCConnMultiplexing(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "echo", 2*time.Millisecond)
	conn, err := n.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	rc := newRPCConn(conn)
	defer rc.close()

	const inflight = 24
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if _, err := rc.call(ctx, wire.TReleaseReq, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRPCConnCallTimeout(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "slow", 500*time.Millisecond)
	conn, _ := n.Dial("slow")
	rc := newRPCConn(conn)
	defer rc.close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := rc.call(ctx, wire.TReleaseReq, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRPCConnClosedErrors(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "echo2", 0)
	conn, _ := n.Dial("echo2")
	rc := newRPCConn(conn)
	rc.close()
	if _, err := rc.call(context.Background(), wire.TReleaseReq, nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("want ErrConnClosed, got %v", err)
	}
}

func TestRPCConnServerDisappears(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	l, err := n.Listen("flaky")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, _ := n.Dial("flaky")
	rc := newRPCConn(conn)
	defer rc.close()
	srvConn := <-accepted
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, err := rc.call(ctx, wire.TReleaseReq, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = srvConn.Close() // server dies mid-call
	if err := <-done; err == nil {
		t.Fatal("call must fail when the server connection drops")
	}
}
