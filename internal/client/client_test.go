package client

import (
	"context"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/transport"
)

func TestConfigValidation(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	cases := []Config{
		{Servers: []string{"a"}, Network: n},          // missing ID
		{ID: 1, Network: n},                           // missing servers
		{ID: 1, Servers: []string{"a"}, Network: nil}, // missing network
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(Config{ID: 1, Servers: []string{"a"}, Network: n}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	pairs := map[Mode]string{
		ModeTILEarly:    "mvtil-early",
		ModeTILLate:     "mvtil-late",
		ModeTO:          "mvto+",
		ModePessimistic: "2pl",
		Mode(99):        "mode(99)",
	}
	for m, want := range pairs {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q want %q", m, got, want)
		}
	}
}

func TestServerForIsStable(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	c, err := New(Config{ID: 1, Servers: []string{"s0", "s1", "s2"}, Network: n})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		first := c.serverFor(k)
		for i := 0; i < 10; i++ {
			if got := c.serverFor(k); got != first {
				t.Fatalf("serverFor(%q) unstable: %q vs %q", k, first, got)
			}
		}
		seen[first] = k
	}
	if len(seen) < 2 {
		t.Log("all keys landed on one server (possible but unlikely); not fatal")
	}
}

func TestTxnIDsEmbedClientID(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	a, _ := New(Config{ID: 1, Servers: []string{"s"}, Network: n})
	b, _ := New(Config{ID: 2, Servers: []string{"s"}, Network: n})
	ctx := context.Background()
	ta, _ := a.Begin(ctx)
	tb, _ := b.Begin(ctx)
	if ta.ID() == tb.ID() {
		t.Fatal("txn ids from different clients must differ")
	}
	if ta.ID()>>32 != 1 || tb.ID()>>32 != 2 {
		t.Fatalf("client id not embedded: %x %x", ta.ID(), tb.ID())
	}
}

// The former rpcConn tests (multiplexing, timeout, closed-connection
// errors, server disappearing mid-call) moved with the implementation
// to internal/rpc.
