package client_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
)

// benchCluster starts S storage servers on an in-memory network with the
// given one-way latency and returns a coordinator in the given mode.
func benchCluster(b *testing.B, servers int, mode client.Mode, latency time.Duration) *client.Client {
	b.Helper()
	return benchClusterNet(b, transport.NewMem(transport.LatencyModel{Base: latency}), servers, mode)
}

// benchClusterNet is benchCluster over an arbitrary transport (TCP
// binds loopback ephemeral ports).
func benchClusterNet(b *testing.B, n transport.Network, servers int, mode client.Mode) *client.Client {
	b.Helper()
	addrs := make([]string, servers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("srv-%d", i)
		if _, isTCP := n.(transport.TCP); isTCP {
			addrs[i] = "127.0.0.1:0"
		}
		srv, err := server.New(server.Config{Addr: addrs[i], Network: n})
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = srv.Addr()
		b.Cleanup(func() { _ = srv.Close() })
	}
	cl, err := client.New(client.Config{ID: 1, Servers: addrs, Network: n, Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = cl.Close() })
	return cl
}

// BenchmarkDistributedCommitTO measures one W-write transaction across S
// servers under timestamp ordering, whose commit step write-locks every
// written key over the wire. The per-transaction wall time is dominated
// by commit round trips, so it exposes whether the footprint travels
// key-at-a-time (O(W) round trips) or batched per server (O(S)).
func BenchmarkDistributedCommitTO(b *testing.B) {
	for _, shape := range []struct{ servers, writes int }{{2, 8}, {4, 16}} {
		b.Run(fmt.Sprintf("s%d_w%d", shape.servers, shape.writes), func(b *testing.B) {
			cl := benchCluster(b, shape.servers, client.ModeTO, 200*time.Microsecond)
			ctx := context.Background()
			keys := make([]string, shape.writes)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%03d", i)
			}
			val := []byte("v")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := cl.Begin(ctx)
				if err != nil {
					b.Fatal(err)
				}
				for _, k := range keys {
					if err := tx.Write(ctx, k, val); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(ctx); err != nil {
					b.Fatal(err)
				}
				// Keep server-side lock tables and version lists from
				// growing across iterations, off the clock.
				if i%64 == 63 {
					b.StopTimer()
					bound := timestamp.New(time.Now().UnixMicro()-1, 0)
					if _, _, err := cl.PurgeServers(ctx, bound); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkDistributedAbortRelease measures the cleanup fan-out of an
// aborting MVTIL transaction holding locks on W keys across S servers.
func BenchmarkDistributedAbortRelease(b *testing.B) {
	const servers, writes = 4, 16
	cl := benchCluster(b, servers, client.ModeTILEarly, 200*time.Microsecond)
	ctx := context.Background()
	keys := make([]string, writes)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	val := []byte("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := cl.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range keys {
			if err := tx.Write(ctx, k, val); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Abort(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedReadPath measures a 16-key static read set over 4
// servers, on the Mem latency bed (200µs one-way) and over real TCP
// loopback sockets. Sequential Reads pay one round trip per key (O(R));
// GetMulti groups the set by owning server and pays one batched,
// parallel round trip per server (O(S), overlapped — the wall clock is
// a single round trip). This is the read-side mirror of
// BenchmarkDistributedCommitTO.
func BenchmarkDistributedReadPath(b *testing.B) {
	const servers, reads = 4, 16
	for _, bed := range []struct {
		name string
		net  func() transport.Network
	}{
		{"mem", func() transport.Network {
			return transport.NewMem(transport.LatencyModel{Base: 200 * time.Microsecond})
		}},
		{"tcp", func() transport.Network { return transport.TCP{} }},
	} {
		for _, batched := range []struct {
			name string
			on   bool
		}{{"sequential", false}, {"getmulti", true}} {
			b.Run(bed.name+"/"+batched.name, func(b *testing.B) {
				cl := benchClusterNet(b, bed.net(), servers, client.ModeTILEarly)
				ctx := context.Background()
				keys := make([]string, reads)
				for i := range keys {
					keys[i] = fmt.Sprintf("key-%03d", i)
				}
				seed, err := cl.Begin(ctx)
				if err != nil {
					b.Fatal(err)
				}
				for _, k := range keys {
					if err := seed.Write(ctx, k, []byte("v")); err != nil {
						b.Fatal(err)
					}
				}
				if err := seed.Commit(ctx); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tx, err := cl.Begin(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if batched.on {
						got, err := tx.(*client.DTxn).GetMulti(ctx, keys)
						if err != nil {
							b.Fatal(err)
						}
						if len(got) != reads {
							b.Fatalf("got %d values", len(got))
						}
					} else {
						for _, k := range keys {
							if _, err := tx.Read(ctx, k); err != nil {
								b.Fatal(err)
							}
						}
					}
					if err := tx.Commit(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
