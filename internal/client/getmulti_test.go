package client_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// countingNetwork wraps a Network and counts, per server address, the
// frames sent on client-side (dialed) connections.
type countingNetwork struct {
	transport.Network
	mu   sync.Mutex
	sent map[string]*atomic.Int64
}

func newCountingNetwork(inner transport.Network) *countingNetwork {
	return &countingNetwork{Network: inner, sent: make(map[string]*atomic.Int64)}
}

func (n *countingNetwork) counter(addr string) *atomic.Int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.sent[addr]
	if !ok {
		c = &atomic.Int64{}
		n.sent[addr] = c
	}
	return c
}

func (n *countingNetwork) Dial(addr string) (transport.Conn, error) {
	conn, err := n.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: conn, sent: n.counter(addr)}, nil
}

// snapshot returns the total frames sent and the number of addresses
// with at least one frame since the given baseline.
func (n *countingNetwork) snapshot() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int64, len(n.sent))
	for addr, c := range n.sent {
		out[addr] = c.Load()
	}
	return out
}

type countingConn struct {
	transport.Conn
	sent *atomic.Int64
}

func (c *countingConn) Send(f *wire.FrameBuf) error {
	c.sent.Add(1)
	return c.Conn.Send(f)
}

// SendBatch keeps the frame counts exact under opportunistic
// coalescing: a batch of n frames is n sends, not one.
func (c *countingConn) SendBatch(fbs []*wire.FrameBuf) error {
	c.sent.Add(int64(len(fbs)))
	return c.Conn.SendBatch(fbs)
}

func startServers(t *testing.T, n transport.Network, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("s%d", i)
		srv, err := server.New(server.Config{Addr: addrs[i], Network: n})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	return addrs
}

// TestGetMultiRoundTripsPerServer pins the acceptance criterion of the
// batched read path: a 16-key static read set over 4 servers costs one
// request frame per contacted server — O(servers) round trips — where a
// sequential Read loop costs one per key.
func TestGetMultiRoundTripsPerServer(t *testing.T) {
	const servers, nkeys = 4, 16
	n := newCountingNetwork(transport.NewMem(transport.LatencyModel{}))
	addrs := startServers(t, n, servers)
	cl, err := client.New(client.Config{ID: 1, Servers: addrs, Network: n, Mode: client.ModeTILEarly})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	ctx := context.Background()

	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	seed, err := cl.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := seed.Write(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// The "before": one Read per key costs one frame per key.
	rd, _ := cl.Begin(ctx)
	before := n.snapshot()
	for _, k := range keys {
		if _, err := rd.Read(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	mid := n.snapshot()
	var seqFrames int64
	for addr, c := range mid {
		seqFrames += c - before[addr]
	}
	if seqFrames != nkeys {
		t.Fatalf("sequential reads sent %d frames, want %d (one per key)", seqFrames, nkeys)
	}
	_ = rd.Abort(ctx)

	// The "after": GetMulti costs one frame per contacted server.
	tx, err := cl.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	base := n.snapshot()
	got, err := tx.(*client.DTxn).GetMulti(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	after := n.snapshot()
	var batchFrames int64
	contacted := 0
	for addr, c := range after {
		if d := c - base[addr]; d > 0 {
			batchFrames += d
			contacted++
		}
	}
	if batchFrames > servers {
		t.Fatalf("GetMulti sent %d frames for %d keys over %d servers; want at most one per server", batchFrames, nkeys, servers)
	}
	if int(batchFrames) != contacted {
		t.Fatalf("GetMulti sent %d frames to %d servers; want exactly one per contacted server", batchFrames, contacted)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	if len(got) != nkeys {
		t.Fatalf("got %d values, want %d", len(got), nkeys)
	}
	for _, k := range keys {
		if string(got[k]) != "v-"+k {
			t.Fatalf("got[%q] = %q", k, got[k])
		}
	}
}

// TestGetMultiAllModes runs the batched read path under every protocol:
// buffered writes overlay the snapshot, duplicates collapse, missing
// keys come back as ⊥ (nil), and the transaction still commits.
func TestGetMultiAllModes(t *testing.T) {
	for _, mode := range []client.Mode{client.ModeTILEarly, client.ModeTILLate, client.ModeTO, client.ModePessimistic} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			n := transport.NewMem(transport.LatencyModel{})
			addrs := startServers(t, n, 3)
			cl, err := client.New(client.Config{ID: 1, Servers: addrs, Network: n, Mode: mode, ConnsPerServer: 2})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = cl.Close() })
			ctx := context.Background()

			seed, _ := cl.Begin(ctx)
			for _, k := range []string{"a", "b", "c"} {
				if err := seed.Write(ctx, k, []byte("old-"+k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := seed.Commit(ctx); err != nil {
				t.Fatal(err)
			}

			tx, err := cl.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(ctx, "b", []byte("buffered")); err != nil {
				t.Fatal(err)
			}
			got, err := kv.GetMulti(ctx, tx, []string{"a", "b", "a", "c", "missing"})
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]string{"a": "old-a", "b": "buffered", "c": "old-c"}
			if len(got) != 4 {
				t.Fatalf("got %d entries, want 4 (duplicates collapse): %v", len(got), got)
			}
			for k, w := range want {
				if string(got[k]) != w {
					t.Fatalf("%s mode: got[%q] = %q want %q", mode, k, got[k], w)
				}
			}
			if v, ok := got["missing"]; !ok || v != nil {
				t.Fatalf("missing key must be present and ⊥: %v %v", v, ok)
			}
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGetMultiAfterFinish pins the done-transaction behavior.
func TestGetMultiAfterFinish(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	addrs := startServers(t, n, 1)
	cl, err := client.New(client.Config{ID: 1, Servers: addrs, Network: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	ctx := context.Background()
	tx, _ := cl.Begin(ctx)
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.(*client.DTxn).GetMulti(ctx, []string{"a"}); err != kv.ErrTxnDone {
		t.Fatalf("want ErrTxnDone, got %v", err)
	}
}

// TestGetMultiPartialFailureReleasesLocks is the regression test for
// the partial-failure path: when a GetMulti spans a healthy and an
// unreachable server, the transaction aborts — and the read locks it
// did acquire on the healthy server must be released, not leaked until
// the purge bound passes them.
func TestGetMultiPartialFailureReleasesLocks(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	healthy := startServers(t, n, 1)[0]
	addrs := []string{healthy, "dead"} // second server never listens
	cl, err := client.New(client.Config{ID: 1, Servers: addrs, Network: n, Mode: client.ModeTILEarly})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	ctx := context.Background()

	// Find one key per server; seed the healthy one.
	var healthyKey, deadKey string
	for i := 0; healthyKey == "" || deadKey == ""; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if addrs[strhash.FNV1a(k)%2] == healthy {
			if healthyKey == "" {
				healthyKey = k
			}
		} else if deadKey == "" {
			deadKey = k
		}
	}
	seed, _ := cl.Begin(ctx)
	if err := seed.Write(ctx, healthyKey, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := cl.ServerStats(ctx, healthy)
	if err != nil {
		t.Fatal(err)
	}

	tx, _ := cl.Begin(ctx)
	if _, err := tx.(*client.DTxn).GetMulti(ctx, []string{healthyKey, deadKey}); err == nil {
		t.Fatal("GetMulti spanning an unreachable server must fail")
	}
	// The release is a fire-and-forget cast; poll until it lands.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after, err := cl.ServerStats(ctx, healthy)
		if err != nil {
			t.Fatal(err)
		}
		if after.LockEntries == before.LockEntries {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read locks leaked on the healthy server: %d entries before GetMulti, %d after abort",
				before.LockEntries, after.LockEntries)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
