package client

import (
	"context"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// DTxn is one distributed transaction (Alg. 11). Not safe for concurrent
// use by multiple goroutines.
type DTxn struct {
	client *Client
	id     uint64
	start  timestamp.Timestamp

	// interval is MVTIL's shrinking set I.
	interval timestamp.Set
	// ts is the fixed timestamp in TO mode.
	ts timestamp.Timestamp

	readLocked  map[string]timestamp.Set
	writeLocked map[string]timestamp.Set
	readVers    map[string]timestamp.Timestamp
	readOrder   []string
	writes      map[string][]byte
	writeOrder  []string
	touched     map[string]bool

	decisionSrv string
	done        bool
	committed   bool

	// CommitTS is the serialization timestamp after a successful commit.
	CommitTS timestamp.Timestamp
	// RestartHint suggests a clock value for a retry (set on aborts
	// caused by frozen conflicts).
	RestartHint int64
}

var _ kv.Txn = (*DTxn)(nil)

// ID implements kv.Txn.
func (tx *DTxn) ID() uint64 { return tx.id }

// Committed reports whether Commit succeeded.
func (tx *DTxn) Committed() bool { return tx.committed }

// abortErr marks the transaction aborted, performs distributed cleanup,
// and wraps the cause.
func (tx *DTxn) abortErr(ctx context.Context, cause error) error {
	tx.abort(ctx)
	return fmt.Errorf("%w (%v)", kv.ErrAborted, cause)
}

// Read implements kv.Txn (Alg. 11 lines 10-14).
func (tx *DTxn) Read(ctx context.Context, key string) ([]byte, error) {
	if tx.done {
		return nil, kv.ErrTxnDone
	}
	if v, ok := tx.writes[key]; ok {
		return v, nil
	}
	mode := tx.client.cfg.Mode

	var upper timestamp.Timestamp
	wait := false
	switch mode {
	case ModeTILEarly, ModeTILLate:
		m, ok := tx.interval.Max()
		if !ok {
			return nil, tx.abortErr(ctx, fmt.Errorf("mvtil: interval exhausted"))
		}
		upper = m
	case ModeTO:
		upper, wait = tx.ts, true
	case ModePessimistic:
		upper, wait = timestamp.Infinity, true
	}

	addr := tx.client.serverFor(key)
	f, err := tx.client.call(ctx, addr, wire.TReadLockReq,
		wire.ReadLockReq{Txn: tx.id, Key: key, Upper: upper, Wait: wait}.Encode())
	if err != nil {
		return nil, tx.abortErr(ctx, err)
	}
	resp, err := wire.DecodeReadLockResp(f.Body)
	if err != nil {
		return nil, tx.abortErr(ctx, err)
	}
	if resp.Status != wire.StatusOK {
		return nil, tx.abortErr(ctx, fmt.Errorf("read %q: %s", key, resp.Err))
	}
	tx.touched[key] = true
	if _, seen := tx.readVers[key]; !seen {
		tx.readOrder = append(tx.readOrder, key)
	}
	tx.readVers[key] = resp.VersionTS
	tx.readLocked[key] = tx.readLocked[key].Union(setOf(resp.Got))

	switch mode {
	case ModeTILEarly, ModeTILLate:
		if resp.Got.IsEmpty() {
			return nil, tx.abortErr(ctx, fmt.Errorf("mvtil: read of %q locked nothing", key))
		}
		tx.interval = tx.interval.IntersectInterval(timestamp.Span(resp.VersionTS.Next(), resp.Got.Hi))
		if tx.interval.IsEmpty() {
			return nil, tx.abortErr(ctx, fmt.Errorf("mvtil: read of %q emptied the interval", key))
		}
	case ModeTO:
		// The commit check requires tx.ts locked; a short prefix will
		// surface as an abort at commit, matching MVTO+.
	case ModePessimistic:
		// The read locks the tail; nothing to track beyond Got.
	}
	return resp.Value, nil
}

// Write implements kv.Txn (Alg. 11 lines 3-9).
func (tx *DTxn) Write(ctx context.Context, key string, value []byte) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	mode := tx.client.cfg.Mode
	if mode == ModeTO {
		// Timestamp ordering locks the write set only at commit.
		tx.bufferWrite(key, value)
		return nil
	}

	var req timestamp.Set
	wait := false
	switch mode {
	case ModeTILEarly, ModeTILLate:
		if tx.interval.IsEmpty() {
			return tx.abortErr(ctx, fmt.Errorf("mvtil: interval exhausted"))
		}
		req = tx.interval
	case ModePessimistic:
		req = timestamp.NewSet(timestamp.Span(timestamp.Zero.Next(), timestamp.Infinity))
		wait = true
	}
	resp, err := tx.writeLock(ctx, key, req, wait, value)
	if err != nil {
		return tx.abortErr(ctx, err)
	}
	tx.bufferWrite(key, value)
	tx.writeLocked[key] = tx.writeLocked[key].Union(resp.Got)
	if mode == ModeTILEarly || mode == ModeTILLate {
		if max, ok := resp.Denied.Max(); ok && max.Time > tx.RestartHint {
			tx.RestartHint = max.Time
		}
		tx.interval = tx.interval.Intersect(resp.Got)
		if tx.interval.IsEmpty() {
			return tx.abortErr(ctx, fmt.Errorf("mvtil: write of %q emptied the interval", key))
		}
	}
	return nil
}

// writeLock sends one write-lock request, establishing the decision
// server on first use (§H.1: the first server reached by a write).
func (tx *DTxn) writeLock(ctx context.Context, key string, req timestamp.Set, wait bool, value []byte) (wire.WriteLockResp, error) {
	addr := tx.client.serverFor(key)
	if tx.decisionSrv == "" {
		tx.decisionSrv = addr
	}
	f, err := tx.client.call(ctx, addr, wire.TWriteLockReq, wire.WriteLockReq{
		Txn:         tx.id,
		Key:         key,
		DecisionSrv: tx.decisionSrv,
		Set:         req,
		Wait:        wait,
		Value:       value,
	}.Encode())
	if err != nil {
		return wire.WriteLockResp{}, err
	}
	resp, err := wire.DecodeWriteLockResp(f.Body)
	if err != nil {
		return wire.WriteLockResp{}, err
	}
	if resp.Status != wire.StatusOK {
		return resp, fmt.Errorf("write-lock %q: %s", key, resp.Err)
	}
	tx.touched[key] = true
	return resp, nil
}

func (tx *DTxn) bufferWrite(key string, value []byte) {
	if _, dup := tx.writes[key]; !dup {
		tx.writeOrder = append(tx.writeOrder, key)
	}
	tx.writes[key] = value
	tx.touched[key] = true
}

// Commit implements kv.Txn (Alg. 11 lines 15-29).
func (tx *DTxn) Commit(ctx context.Context) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	mode := tx.client.cfg.Mode

	// Commit-time locking: TO write-locks its timestamp on every
	// written key, without waiting (Alg. 8 via the wire protocol).
	if mode == ModeTO {
		for _, key := range tx.writeOrder {
			resp, err := tx.writeLock(ctx, key, setOf(timestamp.Point(tx.ts)), false, tx.writes[key])
			if err != nil || !resp.Got.Contains(tx.ts) {
				if err == nil {
					err = fmt.Errorf("write-lock %q at %v denied", key, tx.ts)
				}
				return tx.abortErr(ctx, err)
			}
			tx.writeLocked[key] = tx.writeLocked[key].Union(resp.Got)
		}
	}

	// Find a commonly locked timestamp (Alg. 11 line 17).
	candidates := timestamp.NewSet(timestamp.Full)
	for key := range tx.readVers {
		if _, alsoWritten := tx.writes[key]; alsoWritten {
			continue
		}
		candidates = candidates.Intersect(tx.readLocked[key].Union(tx.writeLocked[key]))
	}
	for _, key := range tx.writeOrder {
		candidates = candidates.Intersect(tx.writeLocked[key])
	}
	if candidates.IsEmpty() {
		return tx.abortErr(ctx, fmt.Errorf("no commonly locked timestamp"))
	}

	var commitTS timestamp.Timestamp
	var ok bool
	switch mode {
	case ModeTILEarly:
		narrowed := candidates.Intersect(tx.interval)
		if !narrowed.IsEmpty() {
			candidates = narrowed
		}
		commitTS, ok = candidates.Min()
	case ModeTILLate:
		narrowed := candidates.Intersect(tx.interval)
		if !narrowed.IsEmpty() {
			candidates = narrowed
		}
		commitTS, ok = candidates.Max()
	case ModeTO:
		commitTS, ok = tx.ts, candidates.Contains(tx.ts)
	case ModePessimistic:
		commitTS, ok = candidates.At(candidates.NumIntervals()-1).Lo, true
	}
	if !ok {
		return tx.abortErr(ctx, fmt.Errorf("no usable commit timestamp in %v", candidates))
	}

	// Decide the outcome via the commitment object (Alg. 11 line 23).
	if len(tx.writeOrder) > 0 {
		d, err := tx.decide(ctx, wire.DecideCommit, commitTS)
		if err != nil {
			return tx.abortErr(ctx, err)
		}
		if d.Kind != wire.DecideCommit {
			return tx.abortErr(ctx, fmt.Errorf("commitment object decided abort"))
		}
	}
	tx.CommitTS = commitTS
	tx.committed = true
	tx.done = true

	if rec := tx.client.cfg.Recorder; rec != nil {
		reads := make([]history.Read, 0, len(tx.readOrder))
		for _, key := range tx.readOrder {
			reads = append(reads, history.Read{Key: key, VersionTS: tx.readVers[key]})
		}
		rec.Record(history.Commit{
			ID:        tx.id,
			CommitTS:  commitTS,
			Reads:     reads,
			WriteKeys: append([]string(nil), tx.writeOrder...),
		})
	}

	// Inform the write-set servers so they freeze the write locks and
	// expose the values, without waiting for replies (Alg. 11 lines
	// 27-28; the decision is already durable at the commitment object,
	// and servers left waiting freeze through the timeout path).
	for _, key := range tx.writeOrder {
		addr := tx.client.serverFor(key)
		if err := tx.client.cast(addr, wire.TFreezeWriteReq,
			wire.FreezeWriteReq{Txn: tx.id, Key: key, TS: commitTS}.Encode()); err != nil {
			return fmt.Errorf("client: freeze %q: %w", key, err)
		}
	}

	// Garbage collection (Alg. 11 lines 29-34): freeze the read locks
	// between version read and commit timestamp, release the rest.
	// Timestamp ordering skips this, leaving its read locks behind like
	// MVTO+ read timestamps.
	if mode != ModeTO {
		tx.gc(ctx)
	}
	return nil
}

// Abort implements kv.Txn.
func (tx *DTxn) Abort(ctx context.Context) error {
	if tx.done {
		return nil
	}
	tx.abort(ctx)
	return nil
}

// abort decides abort (when writes may be pending anywhere) and releases
// locks.
func (tx *DTxn) abort(ctx context.Context) {
	if tx.done {
		return
	}
	tx.done = true
	if tx.decisionSrv != "" {
		// Ignore failures: servers will suspect us and clean up on
		// their own (Lemma 4).
		_, _ = tx.decide(ctx, wire.DecideAbort, timestamp.Timestamp{})
	}
	writesOnly := tx.client.cfg.Mode == ModeTO
	for key := range tx.touched {
		addr := tx.client.serverFor(key)
		_ = tx.client.cast(addr, wire.TReleaseReq,
			wire.ReleaseReq{Txn: tx.id, Key: key, WritesOnly: writesOnly}.Encode())
	}
}

// gc freezes read locks [tr+1, commitTS] per read key and releases all
// remaining unfrozen locks, fire-and-forget (Alg. 11 lines 30-34).
func (tx *DTxn) gc(context.Context) {
	for _, key := range tx.readOrder {
		addr := tx.client.serverFor(key)
		lo := tx.readVers[key].Next()
		if lo.After(tx.CommitTS) {
			continue
		}
		_ = tx.client.cast(addr, wire.TFreezeReadReq,
			wire.FreezeReadReq{Txn: tx.id, Key: key, Lo: lo, Hi: tx.CommitTS}.Encode())
	}
	for key := range tx.touched {
		addr := tx.client.serverFor(key)
		_ = tx.client.cast(addr, wire.TReleaseReq,
			wire.ReleaseReq{Txn: tx.id, Key: key}.Encode())
	}
}

// decide proposes an outcome to the transaction's commitment object. A
// read-only transaction has no decision server; its outcome is decided
// locally (nothing is pending anywhere).
func (tx *DTxn) decide(ctx context.Context, kind wire.DecisionKind, ts timestamp.Timestamp) (wire.DecideResp, error) {
	if tx.decisionSrv == "" {
		return wire.DecideResp{Kind: kind, TS: ts}, nil
	}
	f, err := tx.client.call(ctx, tx.decisionSrv, wire.TDecideReq,
		wire.DecideReq{Txn: tx.id, Proposal: kind, TS: ts}.Encode())
	if err != nil {
		return wire.DecideResp{}, err
	}
	return wire.DecodeDecideResp(f.Body)
}

// setOf wraps one interval in a set.
func setOf(iv timestamp.Interval) timestamp.Set { return timestamp.NewSet(iv) }
