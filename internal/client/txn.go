package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// txnRoute is a transaction's pinned route for one partition: every
// message the transaction sends the partition goes to this head under
// this epoch, even if a failover happens mid-flight (the stale pin is
// fenced server-side; the transaction aborts and the retry re-routes).
type txnRoute struct {
	addr  string
	epoch uint64
}

// errStaleRoute marks a request rejected by the epoch fence before it
// reached any decision point: provably not acted on, so the coordinator
// may abort cleanly instead of reporting an uncertain outcome.
var errStaleRoute = errors.New("stale route: wrong epoch")

// DTxn is one distributed transaction (Alg. 11). Not safe for concurrent
// use by multiple goroutines.
type DTxn struct {
	client *Client
	id     uint64
	start  timestamp.Timestamp

	// routes pins each partition's (head, epoch) at first use; partOf
	// maps a pinned head back to its partition for epoch lookups and
	// route-failure reporting.
	routes map[int]txnRoute
	partOf map[string]int

	// interval is MVTIL's shrinking set I.
	interval timestamp.Set
	// ts is the fixed timestamp in TO mode.
	ts timestamp.Timestamp

	readLocked  map[string]timestamp.Set
	writeLocked map[string]timestamp.Set
	readVers    map[string]timestamp.Timestamp
	readOrder   []string
	writes      map[string][]byte
	writeOrder  []string
	touched     map[string]bool

	decisionSrv string
	done        bool
	committed   bool

	// CommitTS is the serialization timestamp after a successful commit.
	CommitTS timestamp.Timestamp
	// RestartHint suggests a clock value for a retry (set on aborts
	// caused by frozen conflicts).
	RestartHint int64
}

var _ kv.Txn = (*DTxn)(nil)

// ID implements kv.Txn.
func (tx *DTxn) ID() uint64 { return tx.id }

// route returns the transaction's pinned route for key's partition,
// pinning the client's current route on first use.
func (tx *DTxn) route(key string) txnRoute {
	p := tx.client.partitionFor(key)
	if r, ok := tx.routes[p]; ok {
		return r
	}
	addr, epoch := tx.client.routeFor(p)
	r := txnRoute{addr: addr, epoch: epoch}
	tx.routes[p] = r
	tx.partOf[addr] = p
	return r
}

// epochFor returns the epoch pinned with addr (0 when addr was never
// pinned — the unreplicated paths).
func (tx *DTxn) epochFor(addr string) uint64 {
	if p, ok := tx.partOf[addr]; ok {
		return tx.routes[p].epoch
	}
	return 0
}

// routeFail reports a pinned route gone stale — the server at addr is
// unreachable or fenced this transaction's epoch — so the router
// re-resolves the partition. The pin itself is kept: a transaction
// never switches servers mid-flight; it aborts, and the retry pins
// fresh routes.
func (tx *DTxn) routeFail(addr string) {
	if r := tx.client.cfg.Router; r != nil {
		if p, ok := tx.partOf[addr]; ok {
			r.Refresh(p)
		}
	}
}

// Committed reports whether Commit succeeded.
func (tx *DTxn) Committed() bool { return tx.committed }

// abortErr marks the transaction aborted, performs distributed cleanup,
// and wraps the cause. Both errors stay in the chain, so callers can
// test errors.Is(err, kv.ErrAborted) as before and additionally
// errors.Is(err, kv.ErrDeadlock) to pick a retry policy.
func (tx *DTxn) abortErr(ctx context.Context, cause error) error {
	tx.abort(ctx)
	return fmt.Errorf("%w (%w)", kv.ErrAborted, cause)
}

// uncertainErr finishes the transaction in the unknown state: the
// commit proposal departed but its outcome never came back, so the
// commitment object may have decided commit — reporting an abort here
// would be a lie the fault bed is built to catch. No locks are
// released and no abort is proposed (either could fight a decided
// commit); the servers' suspicion path resolves the outcome through
// the commitment object and cleans up either way (Lemma 4). The
// recorder, when present, is told the commit is a "maybe" at commitTS
// so the checker can resolve it from observation.
func (tx *DTxn) uncertainErr(commitTS timestamp.Timestamp, cause error) error {
	tx.done = true
	tx.CommitTS = commitTS
	if rec := tx.client.cfg.Recorder; rec != nil {
		reads := make([]history.Read, 0, len(tx.readOrder))
		for _, key := range tx.readOrder {
			reads = append(reads, history.Read{Key: key, VersionTS: tx.readVers[key]})
		}
		rec.Record(history.Commit{
			ID:        tx.id,
			CommitTS:  commitTS,
			Reads:     reads,
			WriteKeys: append([]string(nil), tx.writeOrder...),
			Maybe:     true,
		})
	}
	return fmt.Errorf("%w (%w)", kv.ErrUncertain, cause)
}

// Read implements kv.Txn (Alg. 11 lines 10-14): a batch of one key
// through GetMulti, exactly as the server's single-key read handler is
// a batch of one server-side — one read path, two entry points.
func (tx *DTxn) Read(ctx context.Context, key string) ([]byte, error) {
	out, err := tx.GetMulti(ctx, []string{key})
	if err != nil {
		return nil, err
	}
	return out[key], nil
}

// GetMulti implements kv.MultiGetter: it reads a static set of keys,
// grouping them by owning server and issuing one batched read-lock
// request per server in parallel, so an R-key read set costs O(servers)
// round trips instead of O(R) — mirroring the write-side batching of
// Commit. Duplicate keys are read once; keys the transaction has
// written are served from the write buffer. The returned map has one
// entry per distinct key (a nil value means ⊥). Any per-key failure
// aborts the transaction, as a failed Read would.
//
// The whole batch is requested under the transaction's upper bound at
// call time: under MVTIL a batched read may pick a newer version than a
// sequential Read loop (whose interval shrinks between reads) and abort
// where the loop would have settled for an older version — retry as
// with any abort.
func (tx *DTxn) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	if tx.done {
		return nil, kv.ErrTxnDone
	}
	out := make(map[string][]byte, len(keys))
	remote := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if v, ok := tx.writes[k]; ok {
			out[k] = v
			continue
		}
		remote = append(remote, k)
	}
	if len(remote) == 0 {
		return out, nil
	}

	mode := tx.client.cfg.Mode
	var upper timestamp.Timestamp
	wait := false
	switch mode {
	case ModeTILEarly, ModeTILLate:
		m, ok := tx.interval.Max()
		if !ok {
			return nil, tx.abortErr(ctx, fmt.Errorf("mvtil: interval exhausted"))
		}
		upper = m
	case ModeTO:
		upper, wait = tx.ts, true
	case ModePessimistic:
		upper, wait = timestamp.Infinity, true
	}

	batches := tx.fanOutBatches(ctx, tx.serverGroups(remote), wire.TReadLockBatchReq, wait, func(addr string, keys []string) wire.Message {
		return wire.ReadLockBatchReq{Txn: tx.id, Epoch: tx.epochFor(addr), Upper: upper, Wait: wait, Keys: keys}
	})
	// Decoded read results borrow their Value views from the response
	// frames, so the pooled buffers stay alive until the folds below
	// have copied every escaping value out.
	defer func() {
		for _, r := range batches {
			r.fb.Release()
		}
	}()
	byKey := make(map[string]wire.ReadLockResult, len(remote))
	var firstErr error
	// One response struct for the whole fan-in: DecodeInto reuses its
	// Results capacity across batches (byKey copies the per-key result
	// values, so overwriting between iterations is safe).
	var resp wire.ReadLockBatchResp
	for _, r := range batches {
		if r.err == nil {
			r.err = resp.DecodeInto(r.fb.Body())
		}
		if det := tx.client.det; det != nil && r.err == nil {
			det.observe(r.addr, resp.Edges)
		}
		switch {
		case r.err != nil:
			// transport/codec error: the head may be gone
			tx.routeFail(r.addr)
		case resp.Status == wire.StatusWrongEpoch:
			tx.routeFail(r.addr)
			r.err = fmt.Errorf("read batch via %s: %s: %w", r.addr, resp.Err, errStaleRoute)
		case resp.Status != wire.StatusOK:
			r.err = fmt.Errorf("read batch via %s: %s", r.addr, resp.Err)
		case len(resp.Results) != len(r.keys):
			r.err = fmt.Errorf("read batch via %s: %d results for %d keys", r.addr, len(resp.Results), len(r.keys))
		}
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		for i, k := range r.keys {
			byKey[k] = resp.Results[i]
		}
	}
	// Record every acquired lock before acting on any failure: the
	// abort path releases what tx.touched names, so a key locked on a
	// healthy server must be tracked even when a sibling batch failed
	// or an earlier key in the fold below aborts the transaction —
	// otherwise its read locks would linger server-side until purge.
	for k, res := range byKey {
		if res.Status == wire.StatusOK {
			tx.touched[k] = true
			tx.readLocked[k] = tx.readLocked[k].Union(setOf(res.Got))
		}
	}
	if firstErr != nil {
		return nil, tx.abortErr(ctx, firstErr)
	}

	// Fold per-key results in the caller's key order, so interval
	// narrowing and the reported abort cause are deterministic.
	for _, k := range remote {
		res := byKey[k]
		if res.Status != wire.StatusOK {
			if res.Status == wire.StatusDeadlock {
				return nil, tx.abortErr(ctx, fmt.Errorf("read %q: %w: %s", k, kv.ErrDeadlock, res.Err))
			}
			return nil, tx.abortErr(ctx, fmt.Errorf("read %q: %s", k, res.Err))
		}
		if _, read := tx.readVers[k]; !read {
			tx.readOrder = append(tx.readOrder, k)
		}
		tx.readVers[k] = res.VersionTS
		// res.Value is a borrowed view of a pooled response frame; the
		// result map outlives it (bytes.Clone keeps nil nil, so ⊥
		// round-trips).
		out[k] = bytes.Clone(res.Value)
		if mode == ModeTILEarly || mode == ModeTILLate {
			if res.Got.IsEmpty() {
				return nil, tx.abortErr(ctx, fmt.Errorf("mvtil: read of %q locked nothing", k))
			}
			tx.interval = tx.interval.IntersectInterval(timestamp.Span(res.VersionTS.Next(), res.Got.Hi))
			if tx.interval.IsEmpty() {
				return nil, tx.abortErr(ctx, fmt.Errorf("mvtil: read of %q emptied the interval", k))
			}
		}
	}
	return out, nil
}

// Write implements kv.Txn (Alg. 11 lines 3-9).
func (tx *DTxn) Write(ctx context.Context, key string, value []byte) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	mode := tx.client.cfg.Mode
	if mode == ModeTO {
		// Timestamp ordering locks the write set only at commit.
		tx.bufferWrite(key, value)
		return nil
	}

	var req timestamp.Set
	wait := false
	switch mode {
	case ModeTILEarly, ModeTILLate:
		if tx.interval.IsEmpty() {
			return tx.abortErr(ctx, fmt.Errorf("mvtil: interval exhausted"))
		}
		req = tx.interval
	case ModePessimistic:
		req = timestamp.NewSet(timestamp.Span(timestamp.Zero.Next(), timestamp.Infinity))
		wait = true
	}
	resp, err := tx.writeLock(ctx, key, req, wait, value)
	if err != nil {
		return tx.abortErr(ctx, err)
	}
	tx.bufferWrite(key, value)
	tx.writeLocked[key] = tx.writeLocked[key].Union(resp.Got)
	if mode == ModeTILEarly || mode == ModeTILLate {
		if max, ok := resp.Denied.Max(); ok && max.Time > tx.RestartHint {
			tx.RestartHint = max.Time
		}
		tx.interval = tx.interval.Intersect(resp.Got)
		if tx.interval.IsEmpty() {
			return tx.abortErr(ctx, fmt.Errorf("mvtil: write of %q emptied the interval", key))
		}
	}
	return nil
}

// writeLock sends one write-lock request, establishing the decision
// server on first use (§H.1: the first server reached by a write).
func (tx *DTxn) writeLock(ctx context.Context, key string, req timestamp.Set, wait bool, value []byte) (wire.WriteLockResp, error) {
	rt := tx.route(key)
	addr := rt.addr
	if tx.decisionSrv == "" {
		tx.decisionSrv = addr
	}
	f, err := tx.client.callWaitable(ctx, addr, tx.id, wire.TWriteLockReq, wire.WriteLockReq{
		Txn:         tx.id,
		Epoch:       rt.epoch,
		Key:         key,
		DecisionSrv: tx.decisionSrv,
		Set:         req,
		Wait:        wait,
		Value:       value,
	}, wait)
	if err != nil {
		tx.routeFail(addr)
		return wire.WriteLockResp{}, err
	}
	resp, err := wire.DecodeWriteLockResp(f.Body())
	f.Release() // nothing borrowed: Sets and strings are owned copies
	if err != nil {
		return wire.WriteLockResp{}, err
	}
	if resp.Status != wire.StatusOK {
		if resp.Status == wire.StatusDeadlock {
			return resp, fmt.Errorf("write-lock %q: %w: %s", key, kv.ErrDeadlock, resp.Err)
		}
		if resp.Status == wire.StatusWrongEpoch {
			tx.routeFail(addr)
			return resp, fmt.Errorf("write-lock %q: %s: %w", key, resp.Err, errStaleRoute)
		}
		return resp, fmt.Errorf("write-lock %q: %s", key, resp.Err)
	}
	tx.touched[key] = true
	return resp, nil
}

func (tx *DTxn) bufferWrite(key string, value []byte) {
	if _, dup := tx.writes[key]; !dup {
		tx.writeOrder = append(tx.writeOrder, key)
	}
	tx.writes[key] = value
	tx.touched[key] = true
}

// serverGroups partitions keys by their owning server, preserving the
// given key order within each group.
func (tx *DTxn) serverGroups(keys []string) map[string][]string {
	groups := make(map[string][]string)
	for _, k := range keys {
		addr := tx.route(k).addr
		groups[addr] = append(groups[addr], k)
	}
	return groups
}

// serverBatch is one settled per-server batch request: the group's keys
// and either the pooled response frame (owned by the caller, who must
// Release it after folding) or the transport error.
type serverBatch struct {
	addr string
	keys []string
	fb   *wire.FrameBuf
	err  error
}

// fanOutBatches issues one request per server group in parallel —
// build constructs a group's request message from its keys, encoded
// straight into a pooled frame by the RPC layer — and returns once
// every batch has settled. It is the shared scaffold of the batched
// read and write paths; decoding, per-key folding and releasing the
// response frames stay with the caller.
func (tx *DTxn) fanOutBatches(ctx context.Context, groups map[string][]string, t wire.MsgType, wait bool, build func(addr string, keys []string) wire.Message) []serverBatch {
	results := make(chan serverBatch, len(groups))
	join := clock.NewJoin(tx.client.timers, len(groups))
	for addr, keys := range groups {
		addr, keys := addr, keys
		tx.client.timers.Go(func() {
			f, err := tx.client.callWaitable(ctx, addr, tx.id, t, build(addr, keys), wait)
			results <- serverBatch{addr: addr, keys: keys, fb: f, err: err}
			join.Done() // while this child is still a registered actor
		})
	}
	// Credited join, not an Idle-bracketed channel drain: the last
	// child's Done wakes this goroutine with a runnability credit, so
	// the virtual timeline cannot slip timer fires into the handoff.
	join.Wait()
	out := make([]serverBatch, 0, len(groups))
	for range groups {
		out = append(out, <-results)
	}
	return out
}

// writeLockBatches write-locks the transaction's whole write set at ts
// with one batch request per server, fanning out across servers in
// parallel: a W-write commit costs O(servers) round trips instead of
// O(W). Acquired sets are folded into writeLocked; the first per-key
// denial or transport failure is returned after all batches settle.
func (tx *DTxn) writeLockBatches(ctx context.Context, ts timestamp.Timestamp) error {
	batches := tx.fanOutBatches(ctx, tx.serverGroups(tx.writeOrder), wire.TWriteLockBatchReq, false, func(addr string, keys []string) wire.Message {
		items := make([]wire.WriteLockItem, len(keys))
		for i, k := range keys {
			items[i] = wire.WriteLockItem{Key: k, Set: setOf(timestamp.Point(ts)), Value: tx.writes[k]}
		}
		return wire.WriteLockBatchReq{Txn: tx.id, Epoch: tx.epochFor(addr), DecisionSrv: tx.decisionSrv, Items: items}
	})
	var firstErr error
	for _, r := range batches {
		var resp wire.WriteLockBatchResp
		if r.err == nil {
			resp, r.err = wire.DecodeWriteLockBatchResp(r.fb.Body())
			r.fb.Release() // nothing borrowed: Sets and strings are owned
		}
		if det := tx.client.det; det != nil && r.err == nil {
			det.observe(r.addr, resp.Edges)
		}
		switch {
		case r.err != nil:
			// transport/codec error: the head may be gone
			tx.routeFail(r.addr)
		case resp.Status == wire.StatusWrongEpoch:
			tx.routeFail(r.addr)
			r.err = fmt.Errorf("write-lock batch via %s: %s: %w", r.addr, resp.Err, errStaleRoute)
		case resp.Status != wire.StatusOK:
			r.err = fmt.Errorf("write-lock batch: %s", resp.Err)
		case len(resp.Results) != len(r.keys):
			r.err = fmt.Errorf("write-lock batch: %d results for %d keys", len(resp.Results), len(r.keys))
		}
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		for i, k := range r.keys {
			res := resp.Results[i]
			if res.Status != wire.StatusOK || !res.Got.Contains(ts) {
				if firstErr == nil {
					firstErr = fmt.Errorf("write-lock %q at %v denied: %s", k, ts, res.Err)
				}
				continue
			}
			tx.writeLocked[k] = tx.writeLocked[k].Union(res.Got)
		}
	}
	return firstErr
}

// Commit implements kv.Txn (Alg. 11 lines 15-29).
func (tx *DTxn) Commit(ctx context.Context) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	mode := tx.client.cfg.Mode

	// Commit-time locking: TO write-locks its timestamp on every
	// written key, without waiting (Alg. 8 via the wire protocol),
	// batched per server.
	if mode == ModeTO && len(tx.writeOrder) > 0 {
		if tx.decisionSrv == "" {
			tx.decisionSrv = tx.route(tx.writeOrder[0]).addr
		}
		if err := tx.writeLockBatches(ctx, tx.ts); err != nil {
			return tx.abortErr(ctx, err)
		}
	}

	// Find a commonly locked timestamp (Alg. 11 line 17).
	candidates := timestamp.NewSet(timestamp.Full)
	for key := range tx.readVers {
		if _, alsoWritten := tx.writes[key]; alsoWritten {
			continue
		}
		candidates = candidates.Intersect(tx.readLocked[key].Union(tx.writeLocked[key]))
	}
	for _, key := range tx.writeOrder {
		candidates = candidates.Intersect(tx.writeLocked[key])
	}
	if candidates.IsEmpty() {
		return tx.abortErr(ctx, fmt.Errorf("no commonly locked timestamp"))
	}

	var commitTS timestamp.Timestamp
	var ok bool
	switch mode {
	case ModeTILEarly:
		narrowed := candidates.Intersect(tx.interval)
		if !narrowed.IsEmpty() {
			candidates = narrowed
		}
		commitTS, ok = candidates.Min()
	case ModeTILLate:
		narrowed := candidates.Intersect(tx.interval)
		if !narrowed.IsEmpty() {
			candidates = narrowed
		}
		commitTS, ok = candidates.Max()
	case ModeTO:
		commitTS, ok = tx.ts, candidates.Contains(tx.ts)
	case ModePessimistic:
		commitTS, ok = candidates.At(candidates.NumIntervals()-1).Lo, true
	}
	if !ok {
		return tx.abortErr(ctx, fmt.Errorf("no usable commit timestamp in %v", candidates))
	}

	// Decide the outcome via the commitment object (Alg. 11 line 23).
	if len(tx.writeOrder) > 0 {
		d, err := tx.decide(ctx, wire.DecideCommit, commitTS)
		if err != nil {
			// A dial that never connected provably never delivered the
			// proposal, and an epoch fence provably rejected it before
			// the commitment object; only the coordinator proposes
			// commit, so in both cases the outcome can still only be
			// abort. Any other failure — timeout, reset, partition —
			// leaves the proposal possibly delivered and possibly
			// decided: the outcome is unknown.
			if errors.Is(err, transport.ErrUnavailable) || errors.Is(err, errStaleRoute) {
				return tx.abortErr(ctx, err)
			}
			return tx.uncertainErr(commitTS, err)
		}
		if d.Kind != wire.DecideCommit {
			return tx.abortErr(ctx, fmt.Errorf("commitment object decided abort"))
		}
	}
	tx.CommitTS = commitTS
	tx.committed = true
	tx.done = true

	if rec := tx.client.cfg.Recorder; rec != nil {
		reads := make([]history.Read, 0, len(tx.readOrder))
		for _, key := range tx.readOrder {
			reads = append(reads, history.Read{Key: key, VersionTS: tx.readVers[key]})
		}
		rec.Record(history.Commit{
			ID:        tx.id,
			CommitTS:  commitTS,
			Reads:     reads,
			WriteKeys: append([]string(nil), tx.writeOrder...),
		})
	}

	// Inform the footprint's servers, one freeze batch per server and
	// without waiting for replies (Alg. 11 lines 27-34; the decision is
	// already durable at the commitment object, and servers left waiting
	// freeze through the timeout path): freeze the write locks at the
	// commit timestamp and expose the values, and — except under
	// timestamp ordering, which leaves its read locks behind like MVTO+
	// read timestamps — freeze the read locks between version read and
	// commit timestamp. A release batch per server then drops the
	// remaining unfrozen locks (garbage collection).
	freeze := make(map[string]*wire.FreezeBatchReq)
	batchFor := func(key string) *wire.FreezeBatchReq {
		addr := tx.route(key).addr
		fb, ok := freeze[addr]
		if !ok {
			fb = &wire.FreezeBatchReq{Txn: tx.id, Epoch: tx.epochFor(addr), TS: commitTS}
			freeze[addr] = fb
		}
		return fb
	}
	for _, key := range tx.writeOrder {
		fb := batchFor(key)
		fb.WriteKeys = append(fb.WriteKeys, key)
	}
	if mode != ModeTO {
		for _, key := range tx.readOrder {
			lo := tx.readVers[key].Next()
			if lo.After(commitTS) {
				continue
			}
			fb := batchFor(key)
			fb.Reads = append(fb.Reads, wire.FreezeReadItem{Key: key, Lo: lo, Hi: commitTS})
		}
	}
	for addr, fb := range freeze {
		if err := tx.client.cast(addr, tx.id, wire.TFreezeBatchReq, fb); err != nil {
			tx.routeFail(addr)
			return fmt.Errorf("client: freeze batch via %s: %w", addr, err)
		}
	}
	if mode != ModeTO {
		tx.releaseCommitted(commitTS)
	}
	return nil
}

// Abort implements kv.Txn.
func (tx *DTxn) Abort(ctx context.Context) error {
	if tx.done {
		return nil
	}
	tx.abort(ctx)
	return nil
}

// abort decides abort (when writes may be pending anywhere) and releases
// locks.
func (tx *DTxn) abort(ctx context.Context) {
	if tx.done {
		return
	}
	tx.done = true
	if tx.decisionSrv != "" {
		// Ignore failures: servers will suspect us and clean up on
		// their own (Lemma 4).
		_, _ = tx.decide(ctx, wire.DecideAbort, timestamp.Timestamp{})
	}
	tx.releaseAll(tx.client.cfg.Mode == ModeTO)
}

// releaseAll drops the transaction's unfrozen locks on every touched
// key, one release batch per server, fire-and-forget (Alg. 11 line 34).
// Safe on the abort path even when the decide call failed: only the
// coordinator proposes commit, so an aborting coordinator's outcome can
// only be abort and dropping pending writes is correct.
func (tx *DTxn) releaseAll(writesOnly bool) {
	tx.release(wire.ReleaseBatchReq{Txn: tx.id, WritesOnly: writesOnly})
}

// releaseCommitted is releaseAll for a decided-commit transaction: the
// batch carries the commit timestamp so a server whose freeze cast was
// lost installs the pending write instead of discarding it (the release
// subsumes the freeze — see wire.ReleaseBatchReq.Committed).
func (tx *DTxn) releaseCommitted(commitTS timestamp.Timestamp) {
	tx.release(wire.ReleaseBatchReq{Txn: tx.id, Committed: true, TS: commitTS})
}

func (tx *DTxn) release(req wire.ReleaseBatchReq) {
	touched := make([]string, 0, len(tx.touched))
	for key := range tx.touched {
		touched = append(touched, key)
	}
	for addr, keys := range tx.serverGroups(touched) {
		req.Epoch = tx.epochFor(addr)
		req.Keys = keys
		if err := tx.client.cast(addr, tx.id, wire.TReleaseBatchReq, req); err != nil {
			tx.routeFail(addr)
		}
	}
}

// decide proposes an outcome to the transaction's commitment object. A
// read-only transaction has no decision server; its outcome is decided
// locally (nothing is pending anywhere).
func (tx *DTxn) decide(ctx context.Context, kind wire.DecisionKind, ts timestamp.Timestamp) (wire.DecideResp, error) {
	if tx.decisionSrv == "" {
		return wire.DecideResp{Status: wire.StatusOK, Kind: kind, TS: ts}, nil
	}
	f, err := tx.client.call(ctx, tx.decisionSrv, tx.id, wire.TDecideReq,
		wire.DecideReq{Txn: tx.id, Epoch: tx.epochFor(tx.decisionSrv), Proposal: kind, TS: ts})
	if err != nil {
		tx.routeFail(tx.decisionSrv)
		return wire.DecideResp{}, err
	}
	resp, err := wire.DecodeDecideResp(f.Body())
	f.Release()
	if err != nil {
		return wire.DecideResp{}, err
	}
	if resp.Status == wire.StatusWrongEpoch {
		// The fence turned the proposal away before the commitment
		// object saw it: provably undecided.
		tx.routeFail(tx.decisionSrv)
		return wire.DecideResp{}, fmt.Errorf("decide %q: %s: %w", tx.decisionSrv, resp.Err, errStaleRoute)
	}
	if resp.Status != wire.StatusOK {
		// A request-level failure is not a decision; treating it as one
		// would report "decided abort" for what was e.g. a codec error.
		return wire.DecideResp{}, fmt.Errorf("decide %q: %s", tx.decisionSrv, resp.Err)
	}
	return resp, nil
}

// setOf wraps one interval in a set.
func setOf(iv timestamp.Interval) timestamp.Set { return timestamp.NewSet(iv) }
