package client

import (
	"context"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/deadlock"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// firedWindow suppresses re-firing a victim abort for the same
// transaction while the previous one is still taking effect.
const firedWindow = 500 * time.Millisecond

// detector is the per-coordinator half of cross-server deadlock
// detection (see package deadlock for the protocol). While any of this
// client's lock RPCs may be parked server-side, it polls every server's
// wait-for edges on a short interval, merges them with the snapshots
// piggybacked on conflicted lock responses, and — for each cycle
// observed on two consecutive merges — sends a victim abort for the
// cycle's lowest transaction id to the server where that transaction is
// parked.
type detector struct {
	c        *Client
	poll     time.Duration
	graph    *deadlock.Graph
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu sync.Mutex
	// blocked counts in-flight lock RPCs that may park server-side;
	// polling only runs while it is nonzero.
	blocked int
	// fired maps recently aborted victims to the time of the abort.
	fired map[uint64]time.Time
}

func newDetector(c *Client, poll time.Duration) *detector {
	d := &detector{
		c:     c,
		poll:  poll,
		graph: deadlock.NewGraph(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		fired: make(map[uint64]time.Time),
	}
	c.timers.Go(d.run)
	return d
}

// close stops the polling goroutine; safe to call more than once
// (Client.Close may run from both a test cleanup and a cluster
// teardown).
func (d *detector) close() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// enter and exit bracket a lock RPC that can block on conflicts. When
// the last one finishes the merged graph is reset: without blocked
// calls this coordinator has no stake in any cycle, and stale edges
// must not trigger aborts later.
func (d *detector) enter() {
	d.mu.Lock()
	d.blocked++
	d.mu.Unlock()
}

func (d *detector) exit() {
	d.mu.Lock()
	d.blocked--
	idle := d.blocked == 0
	d.mu.Unlock()
	if idle {
		d.graph.Reset()
	}
}

// observe merges a snapshot piggybacked on a conflicted lock response.
// Empty snapshots are ignored here — only the authoritative poll clears
// a server's entry.
func (d *detector) observe(addr string, edges []wire.WaitEdge) {
	if len(edges) == 0 {
		return
	}
	d.graph.Observe(addr, edges)
}

func (d *detector) run() {
	defer close(d.done)
	for {
		if d.c.timers.SleepStop(d.poll, d.stop) {
			return
		}
		d.mu.Lock()
		blocked := d.blocked
		d.mu.Unlock()
		if blocked == 0 {
			continue
		}
		d.pollOnce()
		victims := d.graph.Victims()
		if len(victims) == 0 {
			continue
		}
		// Confirm before shooting: per-server snapshots mix moments, so
		// re-poll and only abort victims of cycles present in both
		// views (the wire-level analogue of WaitGraph's confirm under
		// all stripe locks).
		d.pollOnce()
		confirmed := make(map[uint64]deadlock.Victim, len(victims))
		for _, v := range d.graph.Victims() {
			confirmed[v.Txn] = v
		}
		now := d.c.timers.Now()
		for _, v := range victims {
			cv, ok := confirmed[v.Txn]
			if !ok || cv.Key == "" {
				continue
			}
			d.mu.Lock()
			last, seen := d.fired[v.Txn]
			recent := seen && now.Sub(last) < firedWindow
			if !recent {
				d.fired[v.Txn] = now
			}
			for txn, at := range d.fired {
				if now.Sub(at) > 4*firedWindow {
					delete(d.fired, txn)
				}
			}
			d.mu.Unlock()
			if recent {
				continue
			}
			d.abortVictim(cv)
		}
	}
}

// pollOnce fetches every server's wait-for snapshot in parallel and
// folds them into the merged graph. Unreachable servers keep their
// previous snapshot; cycle confirmation bounds the staleness risk.
func (d *detector) pollOnce() {
	ctx, cancel := d.c.timers.WithTimeout(context.Background(), 4*d.poll)
	defer cancel()
	join := clock.NewJoin(d.c.timers, 0)
	// Poll the current head of every partition (not the static list):
	// after a failover the waits live on the promoted replica.
	for p := range d.c.cfg.Servers {
		addr, _ := d.c.routeFor(p)
		join.Add(1)
		d.c.timers.Go(func() {
			defer join.Done()
			f, err := d.c.call(ctx, addr, 0, wire.TWaitGraphReq, nil)
			if err != nil {
				return
			}
			resp, err := wire.DecodeWaitGraphResp(f.Body())
			f.Release()
			if err != nil {
				return
			}
			d.graph.Observe(addr, resp.Edges)
		})
	}
	join.Wait()
}

// abortVictim routes the abort to the server owning the key the victim
// is parked on. The reply is advisory (the server validates that the
// victim is really waiting there); failures are resolved by the next
// poll or, ultimately, the lock-wait timeout.
func (d *detector) abortVictim(v deadlock.Victim) {
	ctx, cancel := d.c.timers.WithTimeout(context.Background(), 4*d.poll)
	defer cancel()
	addr, _ := d.c.routeFor(d.c.partitionFor(v.Key))
	f, err := d.c.call(ctx, addr, 0, wire.TVictimAbortReq,
		wire.VictimAbortReq{Txn: v.Txn, Key: v.Key})
	if err == nil {
		f.Release()
	}
}
