package history

import (
	"strings"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func ts(t int64) timestamp.Timestamp { return timestamp.New(t, 0) }

func TestEmptyHistoryOK(t *testing.T) {
	var r Recorder
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSerialHistoryOK(t *testing.T) {
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(1), WriteKeys: []string{"x"}})
	r.Record(Commit{
		ID: 2, CommitTS: ts(2),
		Reads:     []Read{{Key: "x", VersionTS: ts(1)}},
		WriteKeys: []string{"y"},
	})
	r.Record(Commit{
		ID: 3, CommitTS: ts(3),
		Reads: []Read{{Key: "x", VersionTS: ts(1)}, {Key: "y", VersionTS: ts(2)}},
	})
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestReadFromInitialVersion(t *testing.T) {
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(5), Reads: []Read{{Key: "x", VersionTS: timestamp.Zero}}})
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsWriteSkewCycle(t *testing.T) {
	// Classic write skew expressed in multiversion terms:
	// T1 reads x@0 writes y@1; T2 reads y@0 writes x@2.
	// T1 read x@0 while T2 wrote x@2 -> edge T1->T2.
	// T2 read y@0 while T1 wrote y@1 -> edge T2->T1. Cycle.
	var r Recorder
	r.Record(Commit{
		ID: 1, CommitTS: ts(1),
		Reads:     []Read{{Key: "x", VersionTS: timestamp.Zero}},
		WriteKeys: []string{"y"},
	})
	r.Record(Commit{
		ID: 2, CommitTS: ts(2),
		Reads:     []Read{{Key: "y", VersionTS: timestamp.Zero}},
		WriteKeys: []string{"x"},
	})
	err := r.Check()
	if err == nil {
		t.Fatal("expected cycle")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDetectsStaleRead(t *testing.T) {
	// T1 writes x@1. T2 writes x@2. T3 commits at ts 3 but read x@1:
	// rule (2): T3 reads xj=x@1, wi=x@2 with xj << xi -> edge T3->T2.
	// Plus reads-from T1->T3. No cycle yet. Now T4 reads x@2 and y
	// written by T3... build an actual cycle:
	// T3 reads x@1 (so T3 -> T2) and T3 writes y@3.
	// T2 reads y@3 (reads-from T3 -> T2 ... wait that's same direction).
	// Make T2 read y@0 while T3 wrote y@3: edge T2 -> T3. Cycle T2<->T3.
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(1), WriteKeys: []string{"x"}})
	r.Record(Commit{
		ID: 2, CommitTS: ts(2),
		Reads:     []Read{{Key: "y", VersionTS: timestamp.Zero}},
		WriteKeys: []string{"x"},
	})
	r.Record(Commit{
		ID: 3, CommitTS: ts(3),
		Reads:     []Read{{Key: "x", VersionTS: ts(1)}},
		WriteKeys: []string{"y"},
	})
	if err := r.Check(); err == nil {
		t.Fatal("expected cycle from stale read")
	}
}

func TestDetectsDuplicateVersion(t *testing.T) {
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(1), WriteKeys: []string{"x"}})
	r.Record(Commit{ID: 2, CommitTS: ts(1), WriteKeys: []string{"x"}})
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "both wrote") {
		t.Fatalf("expected duplicate-version error, got %v", err)
	}
}

func TestDetectsUnknownVersion(t *testing.T) {
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(5), Reads: []Read{{Key: "x", VersionTS: ts(3)}}})
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "unknown version") {
		t.Fatalf("expected unknown-version error, got %v", err)
	}
}

func TestLongChainNoCycle(t *testing.T) {
	var r Recorder
	prev := timestamp.Zero
	for i := 1; i <= 200; i++ {
		r.Record(Commit{
			ID: uint64(i), CommitTS: ts(int64(i)),
			Reads:     []Read{{Key: "x", VersionTS: prev}},
			WriteKeys: []string{"x"},
		})
		prev = ts(int64(i))
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeNodeCycle(t *testing.T) {
	// T1 reads a@0, writes b. T2 reads b@0, writes c. T3 reads c@0, writes a.
	// Edges: T1->T2 (T1 read b... wait).
	// T1 reads a@0 and T3 wrote a@3 -> T1->T3.
	// T2 reads b@0 and T1 wrote b@1 -> T2->T1.
	// T3 reads c@0 and T2 wrote c@2 -> T3->T2.
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(1), Reads: []Read{{Key: "a", VersionTS: timestamp.Zero}}, WriteKeys: []string{"b"}})
	r.Record(Commit{ID: 2, CommitTS: ts(2), Reads: []Read{{Key: "b", VersionTS: timestamp.Zero}}, WriteKeys: []string{"c"}})
	r.Record(Commit{ID: 3, CommitTS: ts(3), Reads: []Read{{Key: "c", VersionTS: timestamp.Zero}}, WriteKeys: []string{"a"}})
	if err := r.Check(); err == nil {
		t.Fatal("expected three-node cycle")
	}
}

func TestCommitsReturnsCopy(t *testing.T) {
	var r Recorder
	r.Record(Commit{ID: 1, CommitTS: ts(1), WriteKeys: []string{"x"}})
	cs := r.Commits()
	cs[0].ID = 99
	if r.Commits()[0].ID != 1 {
		t.Fatal("Commits must return a copy")
	}
}
