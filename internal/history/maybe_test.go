package history

import (
	"testing"
)

// TestMaybeDroppedWhenUnobserved: an uncertain commit nobody read is
// set aside, and the rest of the history checks clean.
func TestMaybeDroppedWhenUnobserved(t *testing.T) {
	commits := []Commit{
		{ID: 1, CommitTS: ts(10), WriteKeys: []string{"a"}},
		{ID: 2, CommitTS: ts(20), WriteKeys: []string{"b"}, Maybe: true},
		{ID: 3, CommitTS: ts(30), Reads: []Read{{Key: "a", VersionTS: ts(10)}}, WriteKeys: []string{"c"}},
	}
	included, dropped := ResolveMaybes(commits)
	if len(included) != 2 || len(dropped) != 1 || dropped[0].ID != 2 {
		t.Fatalf("included %d, dropped %+v", len(included), dropped)
	}
	if err := CheckCommits(commits); err != nil {
		t.Fatal(err)
	}
}

// TestMaybeIncludedWhenRead: a read of the uncertain commit's version
// proves it committed — servers expose values only after a decided
// commit — so it joins the checked history, Maybe flag cleared.
func TestMaybeIncludedWhenRead(t *testing.T) {
	commits := []Commit{
		{ID: 1, CommitTS: ts(10), WriteKeys: []string{"a"}, Maybe: true},
		{ID: 2, CommitTS: ts(20), Reads: []Read{{Key: "a", VersionTS: ts(10)}}},
	}
	included, dropped := ResolveMaybes(commits)
	if len(included) != 2 || len(dropped) != 0 {
		t.Fatalf("included %d, dropped %d", len(included), len(dropped))
	}
	for _, c := range included {
		if c.Maybe {
			t.Fatalf("included commit %d still flagged Maybe", c.ID)
		}
	}
}

// TestMaybeTransitiveInclusion: Maybe M2 is observed only by Maybe M1,
// and M1 is observed by a definite commit — the fixpoint must pull both
// in, in whatever order they appear.
func TestMaybeTransitiveInclusion(t *testing.T) {
	commits := []Commit{
		{ID: 1, CommitTS: ts(10), WriteKeys: []string{"a"}, Maybe: true},
		{ID: 2, CommitTS: ts(20), Reads: []Read{{Key: "a", VersionTS: ts(10)}}, WriteKeys: []string{"b"}, Maybe: true},
		{ID: 3, CommitTS: ts(30), Reads: []Read{{Key: "b", VersionTS: ts(20)}}},
	}
	included, dropped := ResolveMaybes(commits)
	if len(included) != 3 || len(dropped) != 0 {
		t.Fatalf("included %d, dropped %d (want 3, 0)", len(included), len(dropped))
	}
}

// TestMaybeViolationStillDetected: resolving maybes must not launder a
// real violation — here a stale read among the definite commits.
func TestMaybeViolationStillDetected(t *testing.T) {
	commits := []Commit{
		{ID: 1, CommitTS: ts(10), WriteKeys: []string{"a", "b"}},
		{ID: 2, CommitTS: ts(15), WriteKeys: []string{"x"}, Maybe: true},
		// Fractured read: sees T1's b but pre-T1 a, a T3<->T1 cycle.
		{ID: 3, CommitTS: ts(30),
			Reads:     []Read{{Key: "a", VersionTS: ts(0)}, {Key: "b", VersionTS: ts(10)}},
			WriteKeys: []string{"c"}},
	}
	if err := CheckCommits(commits); err == nil {
		t.Fatal("fractured read not detected once maybes were resolved")
	}
}

// TestMaybeIncludedViolation: a Maybe proven committed participates in
// the graph — if its inclusion creates a duplicate version, that must
// surface.
func TestMaybeIncludedViolation(t *testing.T) {
	commits := []Commit{
		{ID: 1, CommitTS: ts(10), WriteKeys: []string{"a"}, Maybe: true},
		{ID: 2, CommitTS: ts(20), Reads: []Read{{Key: "a", VersionTS: ts(10)}}},
		{ID: 3, CommitTS: ts(10), WriteKeys: []string{"a"}},
	}
	if err := CheckCommits(commits); err == nil {
		t.Fatal("duplicate version involving an included maybe not detected")
	}
}
