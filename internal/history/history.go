// Package history records committed transaction histories and checks
// them for multiversion serializability.
//
// The correctness condition of the paper is multiversion view
// serializability (§2), proven via the multiversion serialization graph
// (MVSG) argument of Appendix A: if the MVSG of the committed projection
// of a history is acyclic, the history is one-copy serializable. This
// package builds exactly that graph — reads-from edges plus the two
// version-order edge rules — and detects cycles. Every engine in the
// repository is validated against it under randomized concurrent stress.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// InitialTxn is the pseudo transaction id that wrote the initial version
// ⊥ of every key at timestamp Zero.
const InitialTxn uint64 = 0

// Read records that a transaction read the version of Key committed at
// VersionTS (timestamp Zero denotes the initial version ⊥).
type Read struct {
	Key       string
	VersionTS timestamp.Timestamp
}

// Commit is the committed footprint of one transaction.
type Commit struct {
	ID       uint64
	CommitTS timestamp.Timestamp
	Reads    []Read
	// WriteKeys lists the keys whose versions this transaction created,
	// all at CommitTS.
	WriteKeys []string
	// Maybe marks a commit whose outcome the coordinator never learned:
	// the commit proposal was sent but its reply was lost (partition,
	// crash), so the transaction either committed at CommitTS or
	// aborted. The checker resolves Maybe commits from observation —
	// see ResolveMaybes.
	Maybe bool
}

// Recorder accumulates committed transactions. It is safe for concurrent
// use. The zero value is ready to use.
type Recorder struct {
	mu      sync.Mutex
	commits []Commit
}

// Record appends one committed transaction.
func (r *Recorder) Record(c Commit) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commits = append(r.commits, c)
}

// Len returns the number of recorded commits.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.commits)
}

// Commits returns a copy of the recorded commits.
func (r *Recorder) Commits() []Commit {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Commit, len(r.commits))
	copy(out, r.commits)
	return out
}

// Check builds the MVSG of the recorded history and reports the first
// violation found: a read of a nonexistent version, two versions of one
// key at the same timestamp, or a cycle in the graph.
func (r *Recorder) Check() error {
	return CheckCommits(r.Commits())
}

// versionKey identifies one version of one key.
type versionKey struct {
	key string
	ts  timestamp.Timestamp
}

// ResolveMaybes splits a history with uncertain outcomes into the
// commits to check and the Maybe commits to drop. A Maybe commit really
// committed iff some transaction observed one of its versions: storage
// servers expose a value only once its writer's commit is decided, so a
// read of (key, CommitTS) written only by the Maybe commit proves the
// decision was commit. The inclusion is a fixpoint — a Maybe observed
// only by another included Maybe counts — and unobserved Maybe commits
// are dropped, which is sound: removing a version nobody read removes
// MVSG nodes and edges but never adds any, so it cannot mask a cycle
// among the remaining commits.
func ResolveMaybes(commits []Commit) (included, dropped []Commit) {
	var maybes []Commit
	for _, c := range commits {
		if c.Maybe {
			maybes = append(maybes, c)
		} else {
			included = append(included, c)
		}
	}
	if len(maybes) == 0 {
		return included, nil
	}
	observed := map[versionKey]bool{}
	for _, c := range included {
		for _, rd := range c.Reads {
			observed[versionKey{key: rd.Key, ts: rd.VersionTS}] = true
		}
	}
	pending := maybes
	for {
		var still []Commit
		changed := false
		for _, m := range pending {
			wasRead := false
			for _, k := range m.WriteKeys {
				if observed[versionKey{key: k, ts: m.CommitTS}] {
					wasRead = true
					break
				}
			}
			if !wasRead {
				still = append(still, m)
				continue
			}
			m.Maybe = false
			included = append(included, m)
			for _, rd := range m.Reads {
				observed[versionKey{key: rd.Key, ts: rd.VersionTS}] = true
			}
			changed = true
		}
		pending = still
		if !changed {
			break
		}
	}
	return included, pending
}

// CheckCommits validates a committed history; see Recorder.Check.
// Maybe commits are first resolved from observation (ResolveMaybes).
func CheckCommits(commits []Commit) error {
	commits, _ = ResolveMaybes(commits)
	writer := map[versionKey]uint64{} // (key, ts) -> writer txn
	for _, c := range commits {
		for _, k := range c.WriteKeys {
			vk := versionKey{key: k, ts: c.CommitTS}
			if prev, dup := writer[vk]; dup {
				return fmt.Errorf("history: txns %d and %d both wrote %q at %v", prev, c.ID, k, c.CommitTS)
			}
			writer[vk] = c.ID
		}
	}
	// versionsOf[k] = sorted committed version timestamps of key k.
	versionsOf := map[string][]timestamp.Timestamp{}
	for vk := range writer {
		versionsOf[vk.key] = append(versionsOf[vk.key], vk.ts)
	}
	for k := range versionsOf {
		vs := versionsOf[k]
		sort.Slice(vs, func(i, j int) bool { return vs[i].Before(vs[j]) })
	}

	edges := map[uint64]map[uint64]bool{}
	addEdge := func(from, to uint64) {
		if from == to {
			return
		}
		m, ok := edges[from]
		if !ok {
			m = map[uint64]bool{}
			edges[from] = m
		}
		m[to] = true
	}

	for _, c := range commits {
		for _, rd := range c.Reads {
			// Identify the writer Tj of the version read.
			var writerID uint64
			if rd.VersionTS == timestamp.Zero {
				writerID = InitialTxn
			} else {
				w, ok := writer[versionKey{key: rd.Key, ts: rd.VersionTS}]
				if !ok {
					return fmt.Errorf("history: txn %d read unknown version of %q at %v", c.ID, rd.Key, rd.VersionTS)
				}
				writerID = w
			}
			// (1) reads-from edge Tj -> Tk.
			addEdge(writerID, c.ID)
			// (2) version-order edges: for every other committed write
			// wi[xi] of the same key, if xi << xj then Ti -> Tj, else
			// Tk -> Ti.
			for _, vts := range versionsOf[rd.Key] {
				wi := writer[versionKey{key: rd.Key, ts: vts}]
				if wi == writerID || wi == c.ID {
					continue
				}
				if vts.Before(rd.VersionTS) {
					addEdge(wi, writerID)
				} else if vts.After(rd.VersionTS) {
					addEdge(c.ID, wi)
				}
			}
		}
	}

	if cycle := findCycle(edges); cycle != nil {
		parts := make([]string, len(cycle))
		for i, id := range cycle {
			parts[i] = fmt.Sprintf("T%d", id)
		}
		return fmt.Errorf("history: MVSG cycle %s", strings.Join(parts, " -> "))
	}
	return nil
}

// findCycle runs an iterative three-color DFS over the edge map and
// returns one cycle (as a node path) or nil.
func findCycle(edges map[uint64]map[uint64]bool) []uint64 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[uint64]int{}
	parent := map[uint64]uint64{}

	// Deterministic iteration order for reproducible error messages.
	nodes := make([]uint64, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var dfs func(u uint64) []uint64
	dfs = func(u uint64) []uint64 {
		color[u] = gray
		// sorted successors for determinism
		succ := make([]uint64, 0, len(edges[u]))
		for v := range edges[u] {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		for _, v := range succ {
			switch color[v] {
			case white:
				parent[v] = u
				if cyc := dfs(v); cyc != nil {
					return cyc
				}
			case gray:
				// Reconstruct the cycle as v -> ... -> u -> v: walk the
				// parent chain u back to v, reverse it into edge
				// direction, and close the loop with a second v.
				var back []uint64
				for x := u; x != v; x = parent[x] {
					back = append(back, x)
				}
				cyc := []uint64{v}
				for i := len(back) - 1; i >= 0; i-- {
					cyc = append(cyc, back[i])
				}
				return append(cyc, v)
			}
		}
		color[u] = black
		return nil
	}

	for _, n := range nodes {
		if color[n] == white {
			if cyc := dfs(n); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}
