package faultbed

import (
	"fmt"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/workload"
)

// Action is one scripted fault transition.
type Action uint8

// Scenario actions. All fire at transaction boundaries — between the
// completion of one workload transaction and the submission of the
// next — so a fault window's membership is a pure function of the
// schedule, not of timing.
const (
	// ActPartition cuts both directions between endpoints A and B
	// ("*" is a wildcard).
	ActPartition Action = iota + 1
	// ActPartitionAsym cuts only the A->B direction.
	ActPartitionAsym
	// ActHeal removes every partition rule, then waits for the
	// cluster to settle (all servers report zero live transactions) so
	// post-heal transactions start from a quiescent state.
	ActHeal
	// ActCrash waits for the cluster to settle, then crash-stops
	// server Server: connections break, state is lost.
	ActCrash
	// ActRestart restarts server Server empty on its old address,
	// waits for the survivors to settle, then runs a recovery
	// transaction through the control client re-writing every
	// committed key the crashed server owned (restore-from-backup in
	// miniature) — without it, the restarted server would serve stale
	// or initial versions of keys whose newer versions died with it,
	// and the checker would report the resulting fractured reads.
	ActRestart
	// ActKillHead (replicated scenarios only) settles, waits for
	// partition Server's standbys to drain the head's log, then
	// crash-stops the head and promotes the first standby at the next
	// epoch. The settle+drain barrier makes the handover lossless and
	// schedule-deterministic: with no live transactions the head's log
	// watermark is fixed, so drained standbys hold exactly the committed
	// state and no recovery transaction is needed — replication, not
	// restore-from-backup, carries the data across the crash.
	ActKillHead
	// ActRestartReplica (replicated scenarios only) restarts crashed
	// server Server on its old address as a catching-up standby of
	// partition Server's current head — it snapshots, tails the log,
	// and joins the chain — then waits for it to drain so a later
	// ActKillHead can promote it.
	ActRestartReplica
)

// Event schedules one action before the transaction with index
// BeforeTxn is submitted.
type Event struct {
	BeforeTxn int
	Act       Action
	// A, B are the partition endpoints (ActPartition/ActPartitionAsym).
	A, B string
	// Server is the target server index (ActCrash/ActRestart).
	Server int
}

// Scenario is one workload × fault-schedule combination.
type Scenario struct {
	// Name identifies the scenario in the matrix and the CLI.
	Name string
	// Note is a one-line description.
	Note string
	// Seed drives every random stream of the run: network jitter,
	// chaos coins, and the workload generator.
	Seed int64
	// Servers is the cluster size. Default 3.
	Servers int
	// Replicas is the per-partition replication factor (see
	// cluster.Config.Replicas). Values <= 1 run unreplicated; scenarios
	// using ActKillHead/ActRestartReplica need at least 2.
	Replicas int
	// Txns is the number of workload transactions driven. Default 40.
	Txns int
	// Mode is the coordinator's concurrency control strategy. Default
	// ModeTILEarly. Transcript-asserted scenarios should keep it:
	// late-point commit timestamps land near the top of the interval,
	// where overlap with the next transaction's interval — and with it
	// the conflict outcome — depends on wall-clock spacing.
	Mode client.Mode
	// Delta is the MVTIL interval width in microsecond ticks; zero
	// keeps the client default.
	Delta int64
	// Workload shapes the generated transactions (OpsPerTxn, Keys,
	// WriteFraction, ValueSize, Dist are used).
	Workload workload.Config
	// Disjoint switches the generator to per-transaction disjoint key
	// blocks: transaction i reads keys it never writes and writes keys
	// no other transaction touches. With no key overlap there are no
	// lock conflicts, so the commit/abort transcript is a pure
	// function of the chaos coins — this is what makes a scenario with
	// stochastic frame faults transcript-assertable. Shared-key
	// scenarios exercise real data flow instead and keep chaos off.
	Disjoint bool
	// Chaos configures stochastic per-frame faults; the runner aims it
	// at the workload client's links only.
	Chaos Chaos
	// Events is the fault schedule, ordered by BeforeTxn.
	Events []Event
	// Retry bounds per-transaction retries. Zero value means single
	// attempt.
	Retry client.RetryPolicy
	// AssertTranscript marks the scenario as H13-deterministic: two
	// runs with the same seed must produce byte-identical transcripts,
	// fault logs and event logs. Scenarios whose outcomes race against
	// wall-clock maintenance (shared keys under stochastic chaos)
	// leave this false and are serializability-checked only.
	AssertTranscript bool
}

// withDefaults fills zero fields.
func (s Scenario) withDefaults() Scenario {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Servers == 0 {
		s.Servers = 3
	}
	if s.Txns == 0 {
		s.Txns = 40
	}
	if s.Mode == 0 {
		s.Mode = client.ModeTILEarly
	}
	if s.Workload.OpsPerTxn == 0 {
		s.Workload.OpsPerTxn = 6
	}
	if s.Workload.Keys == 0 {
		s.Workload.Keys = 48
	}
	if s.Workload.WriteFraction == 0 {
		s.Workload.WriteFraction = 0.5
	}
	if s.Workload.ValueSize == 0 {
		s.Workload.ValueSize = 8
	}
	if s.Retry.Attempts == 0 {
		s.Retry = client.RetryPolicy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Attempts: 2}
	}
	return s
}

// Matrix returns the scenario matrix: the named workload ×
// fault-schedule combinations checked by CI. Every scenario is
// serializability-checked; the AssertTranscript ones are additionally
// H13 determinism-checked (same seed ⇒ identical transcript).
func Matrix() []Scenario {
	return []Scenario{
		{
			Name:             "baseline",
			Note:             "no faults: every transaction commits",
			Txns:             32,
			AssertTranscript: true,
		},
		{
			Name:             "chaos",
			Note:             "seeded frame drop/dup/delay on the client's links, disjoint keys",
			Txns:             48,
			Disjoint:         true,
			Workload:         workload.Config{OpsPerTxn: 4},
			Chaos:            Chaos{Drop: 0.02, Dup: 0.04, Delay: 0.05},
			AssertTranscript: true,
		},
		{
			Name: "asym-partition",
			Note: "one-way partition client->server-2: requests vanish, a window of timeouts",
			Txns: 36,
			Events: []Event{
				{BeforeTxn: 10, Act: ActPartitionAsym, A: "client-1", B: "server-2"},
				{BeforeTxn: 18, Act: ActHeal},
			},
			AssertTranscript: true,
		},
		{
			Name: "crash-restart",
			Note: "crash one server mid-run, restart it empty, recover its keys",
			Txns: 40,
			Events: []Event{
				{BeforeTxn: 10, Act: ActCrash, Server: 0},
				{BeforeTxn: 20, Act: ActRestart, Server: 0},
			},
			AssertTranscript: true,
		},
		{
			Name: "partition-crash",
			Note: "partition one server, heal, then crash-restart it (the acceptance scenario)",
			Txns: 56,
			Events: []Event{
				{BeforeTxn: 12, Act: ActPartition, A: "server-1", B: "*"},
				{BeforeTxn: 22, Act: ActHeal},
				{BeforeTxn: 30, Act: ActCrash, Server: 1},
				{BeforeTxn: 40, Act: ActRestart, Server: 1},
			},
			AssertTranscript: true,
		},
		{
			Name:     "failover",
			Note:     "kill the partition-0 head, promote its standby, restart the dead server as a replica, fail over again onto it",
			Txns:     48,
			Replicas: 2,
			Events: []Event{
				{BeforeTxn: 12, Act: ActKillHead, Server: 0},
				{BeforeTxn: 24, Act: ActRestartReplica, Server: 0},
				{BeforeTxn: 36, Act: ActKillHead, Server: 0},
			},
			AssertTranscript: true,
		},
		{
			Name:     "monkey",
			Note:     "shared keys under drop/dup/delay/reset: serializability-checked only",
			Txns:     64,
			Chaos:    Chaos{Drop: 0.04, Dup: 0.04, Delay: 0.04, Reset: 0.01},
			Retry:    client.RetryPolicy{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Attempts: 3},
			AssertTranscript: false,
		},
	}
}

// Extras returns named scenarios that are findable (CLI, targeted
// tests) but deliberately not part of the CI matrix: they are sized for
// virtual time, where a thousand timeout windows cost no wall clock,
// and would be prohibitively slow as wall-clock CI rows.
func Extras() []Scenario {
	return []Scenario{
		{
			Name:     "big-topology",
			Note:     "256 servers under chaotic client links — a topology only virtual time can afford",
			Servers:  256,
			Txns:     64,
			Disjoint: true,
			Workload: workload.Config{OpsPerTxn: 8, Keys: 2048},
			Chaos:    Chaos{Drop: 0.02, Dup: 0.04, Delay: 0.05},
			AssertTranscript: true,
		},
	}
}

// Find returns the named scenario, searching the matrix and the extras.
func Find(name string) (Scenario, error) {
	for _, s := range append(Matrix(), Extras()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("faultbed: unknown scenario %q", name)
}
