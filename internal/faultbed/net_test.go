package faultbed

import (
	"errors"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// fastModel keeps unit tests snappy.
var fastModel = transport.LatencyModel{Base: 50 * time.Microsecond}

// send encodes body into a pooled frame and sends it.
func send(tb testing.TB, c transport.Conn, id uint64, body []byte) error {
	tb.Helper()
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(id, 1, wire.Raw(body)); err != nil {
		fb.Release()
		tb.Fatal(err)
	}
	return c.Send(fb)
}

// collect receives frames until the connection goes quiet for the grace
// period, returning the received bodies.
func collect(tb testing.TB, c transport.Conn, grace time.Duration) []string {
	tb.Helper()
	var got []string
	frames := make(chan string)
	fail := make(chan error, 1)
	go func() {
		for {
			f, err := c.Recv()
			if err != nil {
				fail <- err
				return
			}
			frames <- string(f.Body())
			f.Release()
		}
	}()
	for {
		select {
		case b := <-frames:
			got = append(got, b)
		case <-fail:
			return got
		case <-time.After(grace):
			return got
		}
	}
}

// accept starts a listener for name and returns the first accepted conn.
func accept(tb testing.TB, n *Net, name string) (transport.Listener, <-chan transport.Conn) {
	tb.Helper()
	l, err := n.Endpoint(name).Listen(name)
	if err != nil {
		tb.Fatal(err)
	}
	ch := make(chan transport.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			ch <- c
		}
	}()
	return l, ch
}

func TestPartitionBlocksDialAndHeals(t *testing.T) {
	n := New(Config{Model: fastModel, Seed: 1})
	l, _ := accept(t, n, "b")
	defer func() { _ = l.Close() }()

	n.Partition("a", "b")
	if _, err := n.Endpoint("a").Dial("b"); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("dial across partition: %v, want ErrUnavailable", err)
	}
	// Wildcards cut too.
	n.Partition("c", "*")
	if _, err := n.Endpoint("c").Dial("b"); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("dial across wildcard partition: %v, want ErrUnavailable", err)
	}
	n.Heal("a", "b")
	n.Heal("c", "*")
	if _, err := n.Endpoint("a").Dial("b"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestAsymPartitionDropsOneDirection(t *testing.T) {
	n := New(Config{Model: fastModel, Seed: 1})
	l, accepted := accept(t, n, "b")
	defer func() { _ = l.Close() }()

	cl, err := n.Endpoint("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	// Cut a->b only: a's frames vanish, b's still arrive.
	n.PartitionAsym("a", "b")
	if err := send(t, cl, 1, []byte("lost")); err != nil {
		t.Fatalf("send into asym partition: %v (must be silent)", err)
	}
	if got := collect(t, srv, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("frames crossed the cut direction: %v", got)
	}
	if err := send(t, srv, 2, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, cl, 100*time.Millisecond); len(got) != 1 || got[0] != "back" {
		t.Fatalf("reverse direction: got %v, want [back]", got)
	}
}

func TestChaosDropAndDup(t *testing.T) {
	// Drop everything on a's links.
	n := New(Config{Model: fastModel, Seed: 1, Chaos: Chaos{Drop: 1, Endpoints: []string{"a"}}})
	l, accepted := accept(t, n, "b")
	cl, err := n.Endpoint("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	for i := 0; i < 5; i++ {
		if err := send(t, cl, uint64(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, srv, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("Drop=1 delivered %v", got)
	}
	// Chaos applies only to the named endpoint: an unlisted client's
	// frames (on its own connection) sail through.
	cl2, err := n.Endpoint("ctl").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	srvCtl := <-accepted
	if err := send(t, cl2, 9, []byte("ctl")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, srvCtl, 100*time.Millisecond); len(got) != 1 || got[0] != "ctl" {
		t.Fatalf("unlisted endpoint: got %v, want [ctl]", got)
	}
	_ = l.Close()

	// Duplicate everything: one send, two arrivals.
	n2 := New(Config{Model: fastModel, Seed: 1, Chaos: Chaos{Dup: 1, Endpoints: []string{"a"}}})
	l2, accepted2 := accept(t, n2, "b")
	defer func() { _ = l2.Close() }()
	cl3, err := n2.Endpoint("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := <-accepted2
	if err := send(t, cl3, 1, []byte("twice")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, srv2, 100*time.Millisecond); len(got) != 2 || got[0] != "twice" || got[1] != "twice" {
		t.Fatalf("Dup=1: got %v, want [twice twice]", got)
	}
}

func TestChaosResetBreaksConn(t *testing.T) {
	n := New(Config{Model: fastModel, Seed: 1, Chaos: Chaos{Reset: 1, Endpoints: []string{"a"}}})
	l, _ := accept(t, n, "b")
	defer func() { _ = l.Close() }()
	cl, err := n.Endpoint("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := send(t, cl, 1, []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Reset=1 send: %v, want ErrClosed", err)
	}
}

// TestFaultLogDeterminism drives the same frame sequence through two
// identically seeded chaos nets and requires byte-identical fault
// logs; a different seed must produce a different log.
func TestFaultLogDeterminism(t *testing.T) {
	run := func(seed int64) string {
		n := New(Config{Model: fastModel, Seed: seed,
			Chaos: Chaos{Drop: 0.3, Dup: 0.3, Delay: 0.3, Endpoints: []string{"a"}}})
		l, accepted := accept(t, n, "b")
		defer func() { _ = l.Close() }()
		cl, err := n.Endpoint("a").Dial("b")
		if err != nil {
			t.Fatal(err)
		}
		srv := <-accepted
		for i := 0; i < 40; i++ {
			if err := send(t, cl, uint64(i), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		collect(t, srv, 50*time.Millisecond)
		return n.FaultLog()
	}
	a, b := run(3), run(3)
	if a != b {
		t.Fatalf("same seed, different fault logs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a == run(4) {
		t.Fatal("different seeds produced identical fault logs")
	}
	if a == "" {
		t.Fatal("chaos at 30% injected nothing over 40 frames")
	}
}

// TestFaultLogBatchingInvariance pins the H13 batching rule: chaos
// coins are per frame, so the same frame sequence must produce a
// byte-identical fault log and identical deliveries whether the sender
// flushed frame by frame or in arbitrary coalesced batches — including
// the frames behind a mid-batch reset, which still roll their coins.
func TestFaultLogBatchingInvariance(t *testing.T) {
	chaos := Chaos{Drop: 0.25, Dup: 0.2, Delay: 0.2, Reset: 0.03, Endpoints: []string{"a"}}
	const frames = 40
	run := func(groups []int) (string, []string) {
		n := New(Config{Model: fastModel, Seed: 7, Chaos: chaos})
		l, accepted := accept(t, n, "b")
		defer func() { _ = l.Close() }()
		cl, err := n.Endpoint("a").Dial("b")
		if err != nil {
			t.Fatal(err)
		}
		srv := <-accepted
		id := uint64(0)
		mk := func() *wire.FrameBuf {
			fb := wire.GetFrameBuf()
			body := []byte{byte('a' + id%26)}
			if err := fb.SetFrame(id, 1, wire.Raw(body)); err != nil {
				t.Fatal(err)
			}
			id++
			return fb
		}
		for _, g := range groups {
			// Errors are expected once a reset coin fires; the frame
			// sequence continues either way, exactly like the unbatched
			// sender whose post-reset sends fail one by one.
			if g == 1 {
				_ = cl.Send(mk())
				continue
			}
			batch := make([]*wire.FrameBuf, g)
			for j := range batch {
				batch[j] = mk()
			}
			_ = cl.SendBatch(batch)
		}
		if id != frames {
			t.Fatalf("grouping covers %d frames, want %d", id, frames)
		}
		return n.FaultLog(), collect(t, srv, 50*time.Millisecond)
	}
	singles := make([]int, frames)
	for i := range singles {
		singles[i] = 1
	}
	logA, gotA := run(singles)
	logB, gotB := run([]int{1, 3, 7, 1, 5, 2, 11, 4, 6})
	if logA != logB {
		t.Fatalf("batching changed the fault log:\n--- unbatched\n%s--- batched\n%s", logA, logB)
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("batching changed deliveries: %v vs %v", gotA, gotB)
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, gotA[i], gotB[i])
		}
	}
	if logA == "" {
		t.Fatal("chaos injected nothing over 40 frames")
	}
}
