// Package faultbed is the deterministic fault-injection layer of the
// repository: a chaos network wrapping transport.Mem, crash-restart
// orchestration over package cluster, and a scenario runner that drives
// seeded workloads through fault schedules and checks every surviving
// commit for serializability (package history).
//
// # Determinism discipline
//
// Everything random is derived from one scenario seed with partitioned
// streams, following the H13 invariant: same seed, same run.
//
//   - The underlying Mem network derives each connection's jitter
//     stream from (seed, address, dial index) — dialing one link never
//     perturbs another (see transport.NewMemSeeded).
//   - Chaos decisions (drop, duplicate, delay, reorder, reset) are
//     stateless hashes of (seed, link, dial index, direction, frame
//     index, fault kind): no generator state, so the decision for frame
//     k of a link is a pure function of the scenario seed and the
//     frame's position — immune to goroutine interleaving and to
//     draw-order perturbation from other links.
//   - Partitions are scripted (scenario events), not sampled; their
//     drops are deliberately not per-frame-logged, because background
//     traffic (suspicion scanners) is wall-clock-paced and would make
//     log counts run-dependent. The event log records the windows.
//
// The fault log therefore reproduces byte-identically across same-seed
// runs whenever the frame sequence itself is deterministic — which the
// runner arranges by driving transactions sequentially from one
// scripted generator (see runner.go).
//
// # Topology
//
// One Net is shared by the whole cluster. Every process gets a named
// view of it (Endpoint), so each frame is attributable to a directed
// link "from->to". Chaos is restricted to the links of the endpoints
// named in Chaos.Endpoints (the scenario's workload client); partitions
// apply to every link they name, with "*" as a wildcard.
package faultbed

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Chaos configures per-frame stochastic faults on the links of the
// named endpoints. Probabilities are per frame, in [0,1]; zero values
// disable the fault.
type Chaos struct {
	// Drop loses the frame silently (send and receive direction).
	Drop float64
	// Dup sends the frame twice (send direction). The duplicate is a
	// copy: the receiver sees the same correlation id and body again.
	Dup float64
	// Delay stalls the link before forwarding the frame (send
	// direction), holding the sender's FIFO — a latency spike, not a
	// reorder. The spike length is derived from the same hash stream,
	// uniform in [DelayMin, DelayMax].
	Delay float64
	// Reorder holds the frame back for ReorderDelay while later frames
	// of the same connection pass it (send direction). NOTE: this
	// breaks the per-connection FIFO contract that transport.Conn
	// documents and the coordinator's cast protocol is entitled to
	// (TCP never reorders within a connection), so checked scenarios
	// leave it off; see TESTING.md.
	Reorder float64
	// Reset tears the connection down (send direction): the sender
	// sees a closed-connection error, the peer's reads fail, and the
	// next use redials.
	Reset float64

	// DelayMin/DelayMax bound a delay spike. Defaults 1ms/5ms.
	DelayMin, DelayMax time.Duration
	// ReorderDelay is how long a reordered frame is held. Default 2ms.
	ReorderDelay time.Duration

	// Endpoints names the endpoints whose links are subject to the
	// stochastic faults above (either direction of connections they
	// dialed). Empty means every endpoint.
	Endpoints []string
}

// enabled reports whether any stochastic fault is configured.
func (c Chaos) enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0 || c.Reorder > 0 || c.Reset > 0
}

// appliesTo reports whether endpoint name is subject to chaos.
func (c Chaos) appliesTo(name string) bool {
	if !c.enabled() {
		return false
	}
	if len(c.Endpoints) == 0 {
		return true
	}
	for _, e := range c.Endpoints {
		if e == name || e == "*" {
			return true
		}
	}
	return false
}

// Config parameterizes a Net.
type Config struct {
	// Model is the latency model of the underlying Mem network.
	Model transport.LatencyModel
	// Seed drives every random stream (link jitter and chaos).
	Seed int64
	// Chaos configures the stochastic per-frame faults.
	Chaos Chaos
	// Timers supplies the timeline for modeled delays (chaos delay
	// spikes, reorder holds) and the inner Mem network's pacing. Nil
	// means SystemTimers; virtual runs pass a clock.Virtual so fault
	// windows cost no wall clock.
	Timers clock.Timers
}

// edge is one directed link rule endpoint pair ("*" wildcards allowed).
type edge struct{ from, to string }

// Net is the chaos network: a seeded in-memory transport whose
// per-endpoint views inject partitions and per-frame faults. Create
// with New; use Endpoint to hand each process its view. Net itself
// implements transport.Network as the anonymous endpoint "env"
// (pass-through, never subject to chaos).
type Net struct {
	inner  *transport.Mem
	seed   uint64
	chaos  Chaos
	timers clock.Timers

	mu    sync.Mutex
	cut   map[edge]bool
	dials map[string]uint64
	// log collects chaos fault records per (link, direction); each
	// stream is appended serially (Send and Recv are each
	// single-caller per connection), so its order is deterministic.
	log map[string][]string
}

// New returns a chaos network for cfg.
func New(cfg Config) *Net {
	ch := cfg.Chaos
	if ch.DelayMin <= 0 {
		ch.DelayMin = time.Millisecond
	}
	if ch.DelayMax < ch.DelayMin {
		ch.DelayMax = 5 * time.Millisecond
		if ch.DelayMax < ch.DelayMin {
			ch.DelayMax = ch.DelayMin
		}
	}
	if ch.ReorderDelay <= 0 {
		ch.ReorderDelay = 2 * time.Millisecond
	}
	return &Net{
		inner:  transport.NewMemSeededTimers(cfg.Model, cfg.Seed, cfg.Timers),
		seed:   uint64(cfg.Seed),
		chaos:  ch,
		timers: clock.OrSystem(cfg.Timers),
		cut:    make(map[edge]bool),
		dials:  make(map[string]uint64),
		log:    make(map[string][]string),
	}
}

// Endpoint returns the network view of the named process. Dials through
// the view run over links "name->addr"; Listen is pass-through (faults
// ride on the dialer-side connection wrapper, both directions).
func (n *Net) Endpoint(name string) transport.Network { return view{n: n, name: name} }

var _ transport.Network = (*Net)(nil)

// Dial implements transport.Network via the anonymous endpoint.
func (n *Net) Dial(addr string) (transport.Conn, error) { return n.Endpoint("env").Dial(addr) }

// Listen implements transport.Network.
func (n *Net) Listen(addr string) (transport.Listener, error) { return n.inner.Listen(addr) }

// Partition cuts both directions between a and b ("*" matches any
// endpoint): frames between them vanish silently and new dials fail
// with transport.ErrUnavailable.
func (n *Net) Partition(a, b string) {
	n.mu.Lock()
	n.cut[edge{a, b}] = true
	n.cut[edge{b, a}] = true
	n.mu.Unlock()
}

// PartitionAsym cuts only the from->to direction: frames and dials from
// `from` toward `to` are lost while the reverse direction still works.
func (n *Net) PartitionAsym(from, to string) {
	n.mu.Lock()
	n.cut[edge{from, to}] = true
	n.mu.Unlock()
}

// Heal removes the partition rules between a and b (both directions).
func (n *Net) Heal(a, b string) {
	n.mu.Lock()
	delete(n.cut, edge{a, b})
	delete(n.cut, edge{b, a})
	n.mu.Unlock()
}

// HealAll removes every partition rule.
func (n *Net) HealAll() {
	n.mu.Lock()
	n.cut = make(map[edge]bool)
	n.mu.Unlock()
}

// isCut reports whether the from->to direction is partitioned.
func (n *Net) isCut(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.cut) == 0 {
		return false
	}
	return n.cut[edge{from, to}] || n.cut[edge{from, "*"}] || n.cut[edge{"*", to}]
}

// nextDial counts dials per link, so every connection of a link gets
// its own deterministic chaos stream.
func (n *Net) nextDial(link string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := n.dials[link]
	n.dials[link] = d + 1
	return d
}

// record appends one chaos fault to the (link, direction) stream.
func (n *Net) record(stream, entry string) {
	n.mu.Lock()
	n.log[stream] = append(n.log[stream], entry)
	n.mu.Unlock()
}

// FaultLog renders every chaos fault injected so far, grouped by link
// stream in sorted order — the byte-comparable fault schedule of the
// determinism invariant.
func (n *Net) FaultLog() string {
	n.mu.Lock()
	streams := make([]string, 0, len(n.log))
	for s := range n.log {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	var b strings.Builder
	for _, s := range streams {
		fmt.Fprintf(&b, "%s:\n", s)
		for _, e := range n.log[s] {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	n.mu.Unlock()
	return b.String()
}

// view is one endpoint's Network.
type view struct {
	n    *Net
	name string
}

var _ transport.Network = view{}

// Listen implements transport.Network.
func (v view) Listen(addr string) (transport.Listener, error) { return v.n.inner.Listen(addr) }

// Dial implements transport.Network: partitioned dials fail with
// transport.ErrUnavailable (retryable — the partition may heal), and
// established connections are wrapped with the link's chaos stream.
func (v view) Dial(addr string) (transport.Conn, error) {
	if v.n.isCut(v.name, addr) {
		return nil, fmt.Errorf("faultbed: dial %s->%s: partitioned: %w", v.name, addr, transport.ErrUnavailable)
	}
	inner, err := v.n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	link := v.name + "->" + addr
	c := &chaosConn{
		net:   v.n,
		in:    inner,
		from:  v.name,
		to:    addr,
		link:  link,
		chaos: v.n.chaos.appliesTo(v.name),
	}
	c.base = strhash.Mix64(v.n.seed ^ strhash.FNV1a64(link) ^ (v.n.nextDial(link) << 17))
	return c, nil
}

// Fault-kind constants folded into the decision hash: each (frame,
// kind) pair gets an independent coin.
const (
	kindReset uint64 = iota + 1
	kindDrop
	kindDup
	kindDelay
	kindDelayLen
	kindReorder
)

// chaosConn wraps the dialer side of one connection. Send carries the
// from->to direction, Recv the reverse. Like every transport.Conn,
// Send and Recv are each safe for one concurrent caller — which is
// what keeps sendIdx/recvIdx race-free and their fault streams ordered.
type chaosConn struct {
	net      *Net
	in       transport.Conn
	from, to string
	link     string
	base     uint64
	chaos    bool

	sendIdx uint64
	recvIdx uint64
}

var _ transport.Conn = (*chaosConn)(nil)

// roll returns the deterministic uniform [0,1) coin for (direction,
// frame index, fault kind) on this connection.
func (c *chaosConn) roll(dir, idx, kind uint64) float64 {
	h := strhash.Mix64(c.base ^ (dir << 62) ^ (idx << 8) ^ kind)
	return float64(h>>11) / float64(1<<53)
}

// Send implements transport.Conn: partition drop, then reset, drop,
// duplicate, delay spike, reorder, in that order, each decided by the
// frame's own coin.
func (c *chaosConn) Send(fb *wire.FrameBuf) error {
	idx := c.sendIdx
	c.sendIdx++
	if c.net.isCut(c.from, c.to) {
		// The frame vanishes in the partition: the sender sees success,
		// exactly like a one-way loss on a real network. Not per-frame
		// logged (see the package comment).
		fb.Release()
		return nil
	}
	if !c.chaos {
		return c.in.Send(fb)
	}
	ch := c.net.chaos
	stream := c.link + " send"
	if ch.Reset > 0 && c.roll(0, idx, kindReset) < ch.Reset {
		c.net.record(stream, fmt.Sprintf("%04d reset", idx))
		fb.Release()
		_ = c.in.Close()
		return fmt.Errorf("faultbed: %s: connection reset: %w", c.link, transport.ErrClosed)
	}
	if ch.Drop > 0 && c.roll(0, idx, kindDrop) < ch.Drop {
		c.net.record(stream, fmt.Sprintf("%04d drop", idx))
		fb.Release()
		return nil
	}
	var dup *wire.FrameBuf
	if ch.Dup > 0 && c.roll(0, idx, kindDup) < ch.Dup {
		d := wire.GetFrameBuf()
		if err := d.SetFrame(fb.ID(), fb.Type(), wire.Raw(fb.Body())); err != nil {
			d.Release()
		} else {
			c.net.record(stream, fmt.Sprintf("%04d dup", idx))
			dup = d
		}
	}
	if ch.Delay > 0 && c.roll(0, idx, kindDelay) < ch.Delay {
		span := ch.DelayMax - ch.DelayMin
		d := ch.DelayMin
		if span > 0 {
			d += time.Duration(c.roll(0, idx, kindDelayLen) * float64(span))
		}
		c.net.record(stream, fmt.Sprintf("%04d delay %v", idx, d.Round(time.Microsecond)))
		c.net.timers.Sleep(d)
	}
	if ch.Reorder > 0 && c.roll(0, idx, kindReorder) < ch.Reorder {
		c.net.record(stream, fmt.Sprintf("%04d reorder", idx))
		// Hold the frame while later sends pass it; the inner Send
		// consumes the buffer whenever it fires (a connection closed in
		// the meantime releases it).
		c.net.timers.AfterFunc(ch.ReorderDelay, func() {
			_ = c.in.Send(fb)
			if dup != nil {
				_ = c.in.Send(dup)
			}
		})
		return nil
	}
	err := c.in.Send(fb)
	if dup != nil {
		_ = c.in.Send(dup)
	}
	return err
}

// SendBatch implements transport.Conn. Chaos stays per-frame: every
// frame of the batch consumes its own send index and rolls its own
// coins, exactly as len(fbs) unbatched Sends would, so the fault
// schedule of a link depends only on the frame sequence — never on how
// the sender happened to group frames into flushes (H13). Surviving
// frames are re-grouped and forwarded as a batch. A delay spike flushes
// the survivors collected so far before sleeping, and a reset before
// closing the inner connection — on the unbatched path those frames
// were already on the wire when the fault hit. Frames behind a reset
// keep rolling their coins (on the unbatched path each would reach this
// wrapper and roll before its doomed inner Send), so the recorded fault
// schedule is byte-identical however the frames were grouped; their
// forwarding then fails on the closed inner connection, which consumes
// them.
func (c *chaosConn) SendBatch(fbs []*wire.FrameBuf) error {
	var firstErr error
	fwd := make([]*wire.FrameBuf, 0, len(fbs))
	flush := func() {
		if len(fwd) == 0 {
			return
		}
		if err := c.in.SendBatch(fwd); err != nil && firstErr == nil {
			firstErr = err
		}
		fwd = fwd[:0]
	}
	ch := c.net.chaos
	stream := c.link + " send"
	for i, fb := range fbs {
		fbs[i] = nil
		idx := c.sendIdx
		c.sendIdx++
		if c.net.isCut(c.from, c.to) {
			fb.Release()
			continue
		}
		if !c.chaos {
			fwd = append(fwd, fb)
			continue
		}
		if ch.Reset > 0 && c.roll(0, idx, kindReset) < ch.Reset {
			c.net.record(stream, fmt.Sprintf("%04d reset", idx))
			fb.Release()
			flush() // frames ahead of the reset were already sent
			_ = c.in.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("faultbed: %s: connection reset: %w", c.link, transport.ErrClosed)
			}
			continue
		}
		if ch.Drop > 0 && c.roll(0, idx, kindDrop) < ch.Drop {
			c.net.record(stream, fmt.Sprintf("%04d drop", idx))
			fb.Release()
			continue
		}
		var dup *wire.FrameBuf
		if ch.Dup > 0 && c.roll(0, idx, kindDup) < ch.Dup {
			d := wire.GetFrameBuf()
			if err := d.SetFrame(fb.ID(), fb.Type(), wire.Raw(fb.Body())); err != nil {
				d.Release()
			} else {
				c.net.record(stream, fmt.Sprintf("%04d dup", idx))
				dup = d
			}
		}
		if ch.Delay > 0 && c.roll(0, idx, kindDelay) < ch.Delay {
			span := ch.DelayMax - ch.DelayMin
			d := ch.DelayMin
			if span > 0 {
				d += time.Duration(c.roll(0, idx, kindDelayLen) * float64(span))
			}
			c.net.record(stream, fmt.Sprintf("%04d delay %v", idx, d.Round(time.Microsecond)))
			flush()
			c.net.timers.Sleep(d)
		}
		if ch.Reorder > 0 && c.roll(0, idx, kindReorder) < ch.Reorder {
			c.net.record(stream, fmt.Sprintf("%04d reorder", idx))
			fb := fb
			dup := dup
			c.net.timers.AfterFunc(ch.ReorderDelay, func() {
				_ = c.in.Send(fb)
				if dup != nil {
					_ = c.in.Send(dup)
				}
			})
			continue
		}
		fwd = append(fwd, fb)
		if dup != nil {
			fwd = append(fwd, dup)
		}
	}
	flush()
	return firstErr
}

// Recv implements transport.Conn: frames arriving through a partition
// of the reverse direction are swallowed, and chaos can drop them.
func (c *chaosConn) Recv() (*wire.FrameBuf, error) {
	for {
		fb, err := c.in.Recv()
		if err != nil {
			return nil, err
		}
		idx := c.recvIdx
		c.recvIdx++
		if c.net.isCut(c.to, c.from) {
			fb.Release()
			continue
		}
		if c.chaos {
			ch := c.net.chaos
			if ch.Drop > 0 && c.roll(1, idx, kindDrop) < ch.Drop {
				c.net.record(c.link+" recv", fmt.Sprintf("%04d drop", idx))
				fb.Release()
				continue
			}
		}
		return fb, nil
	}
}

// Close implements transport.Conn.
func (c *chaosConn) Close() error { return c.in.Close() }
