package faultbed

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// TestScenarioMatrix runs every matrix scenario once and requires a
// serializable history from each — including the acceptance scenario,
// which partitions a server mid-run and then crash-restarts it. The
// matrix runs on the virtual timeline: modeled delays cost no wall
// clock, and TestH13SameSeedSameTranscript separately proves virtual
// runs are byte-identical to wall-clock ones, so no coverage is lost
// by the speedup.
func TestScenarioMatrix(t *testing.T) {
	for _, s := range Matrix() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunVirtual(s)
			if err != nil {
				t.Fatalf("harness: %v\nevents:\n%s\ntranscript:\n%s", err, res.Events, res.Transcript)
			}
			t.Log(res.Summary())
			if res.CheckErr != nil {
				t.Fatalf("serializability violation: %v\nevents:\n%s\ntranscript:\n%s",
					res.CheckErr, res.Events, res.Transcript)
			}
			if res.Commits == 0 {
				t.Fatalf("nothing committed:\n%s", res.Transcript)
			}
			// Unreplicated fault schedules must visibly bite. Replicated
			// ones assert the opposite claim: the settle+drain handover
			// hides scheduled head crashes behind a promotion, so the
			// proof the faults ran is the event log, not aborts.
			if len(s.Events) > 0 && res.Aborts == 0 && s.Replicas <= 1 {
				t.Fatalf("fault schedule caused no aborts — the faults did not bite:\n%s", res.Transcript)
			}
			if s.Replicas > 1 && !strings.Contains(res.Events, "promote") {
				t.Fatalf("replicated scenario logged no promotion:\n%s", res.Events)
			}
		})
	}
}

// TestBigTopologyVirtual runs the extras-only big-topology scenario:
// 256 servers under chaotic client links, a cluster size the wall-clock
// runner could not afford in CI. The wall budget assertion is the
// tentpole claim — a thousand-component topology's fault window costs
// seconds, not minutes, because every modeled delay is a timeline jump.
func TestBigTopologyVirtual(t *testing.T) {
	s, err := Find("big-topology")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := RunVirtual(s)
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("harness: %v\nevents:\n%s", err, res.Events)
	}
	t.Logf("%d servers, %d txns in %v wall: %s", s.Servers, s.Txns, wall, res.Summary())
	if res.CheckErr != nil {
		t.Fatalf("serializability violation: %v\ntranscript:\n%s", res.CheckErr, res.Transcript)
	}
	if res.Commits == 0 {
		t.Fatalf("nothing committed:\n%s", res.Transcript)
	}
	if budget := 30 * time.Second; wall > budget {
		t.Fatalf("big-topology took %v wall, over the %v budget", wall, budget)
	}
}

// TestH13SameSeedSameTranscript is the determinism invariant: running a
// transcript-asserted scenario twice with the same seed must reproduce
// the commit/abort transcript, the fault log and the event log byte for
// byte — and a virtual-timeline run must reproduce all three against
// the wall-clock runs, which is what licenses the rest of the suite to
// run virtual. It exercises both flavors of nondeterminism source —
// stochastic frame chaos ("chaos"), scheduled partition plus
// crash-restart ("partition-crash", the unreplicated acceptance
// scenario), and replicated failover with promotions and a catch-up
// rejoin ("failover").
func TestH13SameSeedSameTranscript(t *testing.T) {
	for _, name := range []string{"chaos", "partition-crash", "failover"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := Find(name)
			if err != nil {
				t.Fatal(err)
			}
			if !s.AssertTranscript {
				t.Fatalf("scenario %s is not transcript-asserted", name)
			}
			first, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			virtual, err := RunVirtual(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, cmp := range []struct{ what, a, b string }{
				{"transcript", first.Transcript, second.Transcript},
				{"fault log", first.FaultLog, second.FaultLog},
				{"event log", first.Events, second.Events},
				{"transcript (virtual vs wall)", first.Transcript, virtual.Transcript},
				{"fault log (virtual vs wall)", first.FaultLog, virtual.FaultLog},
				{"event log (virtual vs wall)", first.Events, virtual.Events},
			} {
				if cmp.a != cmp.b {
					t.Errorf("same seed, different %s:\n--- run 1\n%s--- run 2\n%s", cmp.what, cmp.a, cmp.b)
				}
			}
			if first.CheckErr != nil {
				t.Errorf("serializability violation: %v", first.CheckErr)
			}
		})
	}
}

// TestSeedSweepVirtual is the promoted multi-seed soak: every matrix
// scenario across many seeds on the virtual timeline, asserting a
// serializable history per seed, and — for the transcript-asserted
// scenarios — running each seed twice and requiring byte-identical
// transcripts and fault logs. (The monkey scenario is exempt from the
// determinism compare by design: its connection resets make frame
// order schedule-dependent, which is the very property it exists to
// exercise.) Before virtual time this breadth was an opt-in 45-minute
// workflow_dispatch job; at zero wall cost per modeled second it is
// tier-1. -short trims the sweep for quick local iteration.
func TestSeedSweepVirtual(t *testing.T) {
	seeds := int64(32)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			for _, base := range Matrix() {
				s := base
				s.Seed = seed
				first, err := RunVirtual(s)
				if err != nil {
					t.Fatalf("%s: %v", s.Name, err)
				}
				if first.CheckErr != nil {
					t.Fatalf("%s: serializability violation: %v\n%s", s.Name, first.CheckErr, first.Transcript)
				}
				if !s.AssertTranscript {
					continue
				}
				second, err := RunVirtual(s)
				if err != nil {
					t.Fatalf("%s (rerun): %v", s.Name, err)
				}
				if first.FaultLog != second.FaultLog {
					t.Errorf("%s: same seed, different fault logs:\n--- run 1\n%s--- run 2\n%s",
						s.Name, first.FaultLog, second.FaultLog)
				}
				if first.Transcript != second.Transcript {
					t.Errorf("%s: same seed, different transcripts:\n--- run 1\n%s--- run 2\n%s",
						s.Name, first.Transcript, second.Transcript)
				}
			}
		})
	}
}

// TestSoakMatrix is the opt-in wall-clock soak: every scenario across
// several seeds on the real clock, each transcript-asserted one run
// twice and compared. TestSeedSweepVirtual gives far more breadth in
// tier-1; this job remains the proof that the wall-clock path itself
// stays deterministic across seeds. Enable with MVTL_SOAK=1.
func TestSoakMatrix(t *testing.T) {
	if os.Getenv("MVTL_SOAK") == "" {
		t.Skip("set MVTL_SOAK=1 to run the long fault matrix")
	}
	for _, base := range Matrix() {
		for seed := int64(1); seed <= 5; seed++ {
			s := base
			s.Seed = seed
			t.Run(fmt.Sprintf("%s/seed=%d", s.Name, seed), func(t *testing.T) {
				first, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				t.Log(first.Summary())
				if first.CheckErr != nil {
					t.Fatalf("serializability violation: %v\n%s", first.CheckErr, first.Transcript)
				}
				if !s.AssertTranscript {
					return
				}
				second, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				if first.Transcript != second.Transcript || first.FaultLog != second.FaultLog {
					t.Errorf("same seed, different runs:\n--- run 1\n%s--- run 2\n%s",
						first.Transcript, second.Transcript)
				}
			})
		}
	}
}
