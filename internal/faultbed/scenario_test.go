package faultbed

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestScenarioMatrix runs every matrix scenario once and requires a
// serializable history from each — including the acceptance scenario,
// which partitions a server mid-run and then crash-restarts it.
func TestScenarioMatrix(t *testing.T) {
	for _, s := range Matrix() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := Run(s)
			if err != nil {
				t.Fatalf("harness: %v\nevents:\n%s\ntranscript:\n%s", err, res.Events, res.Transcript)
			}
			t.Log(res.Summary())
			if res.CheckErr != nil {
				t.Fatalf("serializability violation: %v\nevents:\n%s\ntranscript:\n%s",
					res.CheckErr, res.Events, res.Transcript)
			}
			if res.Commits == 0 {
				t.Fatalf("nothing committed:\n%s", res.Transcript)
			}
			// Unreplicated fault schedules must visibly bite. Replicated
			// ones assert the opposite claim: the settle+drain handover
			// hides scheduled head crashes behind a promotion, so the
			// proof the faults ran is the event log, not aborts.
			if len(s.Events) > 0 && res.Aborts == 0 && s.Replicas <= 1 {
				t.Fatalf("fault schedule caused no aborts — the faults did not bite:\n%s", res.Transcript)
			}
			if s.Replicas > 1 && !strings.Contains(res.Events, "promote") {
				t.Fatalf("replicated scenario logged no promotion:\n%s", res.Events)
			}
		})
	}
}

// TestH13SameSeedSameTranscript is the determinism invariant: running a
// transcript-asserted scenario twice with the same seed must reproduce
// the commit/abort transcript, the fault log and the event log byte for
// byte. It exercises both flavors of nondeterminism source — stochastic
// frame chaos ("chaos"), scheduled partition plus crash-restart
// ("partition-crash", the unreplicated acceptance scenario), and
// replicated failover with promotions and a catch-up rejoin
// ("failover").
func TestH13SameSeedSameTranscript(t *testing.T) {
	for _, name := range []string{"chaos", "partition-crash", "failover"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := Find(name)
			if err != nil {
				t.Fatal(err)
			}
			if !s.AssertTranscript {
				t.Fatalf("scenario %s is not transcript-asserted", name)
			}
			first, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, cmp := range []struct{ what, a, b string }{
				{"transcript", first.Transcript, second.Transcript},
				{"fault log", first.FaultLog, second.FaultLog},
				{"event log", first.Events, second.Events},
			} {
				if cmp.a != cmp.b {
					t.Errorf("same seed, different %s:\n--- run 1\n%s--- run 2\n%s", cmp.what, cmp.a, cmp.b)
				}
			}
			if first.CheckErr != nil {
				t.Errorf("serializability violation: %v", first.CheckErr)
			}
		})
	}
}

// TestSoakMatrix is the opt-in long matrix: every transcript-asserted
// scenario across several seeds, each run twice and compared. Enable
// with MVTL_SOAK=1.
func TestSoakMatrix(t *testing.T) {
	if os.Getenv("MVTL_SOAK") == "" {
		t.Skip("set MVTL_SOAK=1 to run the long fault matrix")
	}
	for _, base := range Matrix() {
		for seed := int64(1); seed <= 5; seed++ {
			s := base
			s.Seed = seed
			t.Run(fmt.Sprintf("%s/seed=%d", s.Name, seed), func(t *testing.T) {
				first, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				t.Log(first.Summary())
				if first.CheckErr != nil {
					t.Fatalf("serializability violation: %v\n%s", first.CheckErr, first.Transcript)
				}
				if !s.AssertTranscript {
					return
				}
				second, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				if first.Transcript != second.Transcript || first.FaultLog != second.FaultLog {
					t.Errorf("same seed, different runs:\n--- run 1\n%s--- run 2\n%s",
						first.Transcript, second.Transcript)
				}
			})
		}
	}
}
