package faultbed

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/rpc"
	"github.com/lpd-epfl/mvtl/internal/server"
	"github.com/lpd-epfl/mvtl/internal/strhash"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/workload"
)

// Harness timing. Kept small so fault windows cost timeouts, not
// seconds, while staying far above the in-memory network's RTT (sub-ms
// even with chaos delay spikes). The coordinators in the matrix run
// TIL modes, whose lock requests never park server-side, so CallTimeout
// does not need to cover LockWaitTimeout.
const (
	callTimeout      = 60 * time.Millisecond
	lockWaitTimeout  = 50 * time.Millisecond
	writeLockTimeout = 300 * time.Millisecond
	scanInterval     = 50 * time.Millisecond
	peerCallTimeout  = 100 * time.Millisecond
	settleTimeout    = 10 * time.Second
	settlePoll       = 10 * time.Millisecond
)

// Result is one scenario run's full observable output.
type Result struct {
	// Scenario is the (defaulted) scenario that ran.
	Scenario Scenario
	// Transcript has one line per driven transaction: index, outcome
	// and attempt count. It deliberately excludes timestamps — commit
	// timestamps come from the wall clock — so that for deterministic
	// scenarios the transcript is a pure function of the seed (H13).
	Transcript string
	// Events logs the applied fault schedule.
	Events string
	// FaultLog is the chaos layer's per-link fault trace.
	FaultLog string
	// Commits, Aborts and Uncertains count final per-transaction
	// outcomes (retries collapse into one outcome).
	Commits, Aborts, Uncertains int
	// CheckedCommits is the number of commits the serializability
	// checker validated after resolving uncertain ("maybe") commits
	// from observation; DroppedMaybes is how many unobserved maybes it
	// set aside.
	CheckedCommits, DroppedMaybes int
	// CheckErr is the serializability verdict: nil, or the first
	// violation found in the MVSG of the recorded history.
	CheckErr error

	// commits is the raw recorded history, kept for in-package
	// diagnostics (the soak and probe tests dump it on violation).
	commits []history.Commit
}

// Summary renders the headline counts.
func (r Result) Summary() string {
	verdict := "serializable"
	if r.CheckErr != nil {
		verdict = "VIOLATION: " + r.CheckErr.Error()
	}
	return fmt.Sprintf("%s: %d commits, %d aborts, %d uncertain (checked %d, dropped %d unobserved maybes) — %s",
		r.Scenario.Name, r.Commits, r.Aborts, r.Uncertains, r.CheckedCommits, r.DroppedMaybes, verdict)
}

// runner holds one scenario run's moving parts.
type runner struct {
	s      Scenario
	timers clock.Timers
	net    *Net
	clus *cluster.Cluster
	rec  *history.Recorder
	// work is the chaos-facing workload coordinator (client-1); ctrl is
	// the fault-free control-plane coordinator (client-2) used for
	// settle barriers and recovery writes.
	work kv.DB
	ctrl *client.Client

	// shadow mirrors the last definitely-committed value of every key,
	// maintained from commit outcomes only (uncertain outcomes do not
	// update it). It plays the role of the backup a recovering server
	// would restore from.
	shadow map[string][]byte

	transcript strings.Builder
	events     strings.Builder
}

// Run executes one scenario in wall-clock time and returns its result.
// The returned error reports harness failures (a server that would not
// start, a settle barrier that timed out); serializability violations
// are reported in Result.CheckErr so callers can render the transcript
// alongside.
func Run(s Scenario) (Result, error) {
	return run(s, clock.SystemTimers{})
}

// RunVirtual executes one scenario on a fresh virtual timeline: every
// modeled delay — link latency, chaos delay spikes, lock-wait budgets,
// scanner periods, settle polls, retry backoffs — resolves by timeline
// jump, so a scenario full of timeout windows completes in milliseconds
// of wall clock. Transcripts are byte-identical to Run's for the same
// scenario (H13 extended: the virtual/wall mode switch is not allowed
// to change any observable output).
func RunVirtual(s Scenario) (Result, error) {
	v := clock.NewVirtual()
	v.Register() // the driver goroutine is the timeline's root actor
	defer v.Unregister()
	return run(s, v)
}

func run(s Scenario, timers clock.Timers) (Result, error) {
	s = s.withDefaults()
	chaos := s.Chaos
	if len(chaos.Endpoints) == 0 {
		// Aim chaos at the workload coordinator's links only: the
		// control plane (settle barriers, recovery writes) must stay
		// reliable, like an operator console on a separate network.
		chaos.Endpoints = []string{"client-1"}
	}
	net := New(Config{
		Model:  transport.LatencyModel{Base: 100 * time.Microsecond, Jitter: 50 * time.Microsecond},
		Seed:   s.Seed,
		Chaos:  chaos,
		Timers: timers,
	})
	rec := &history.Recorder{}
	clus, err := cluster.Start(cluster.Config{
		Servers:  s.Servers,
		Replicas: s.Replicas,
		Network:  net,
		Recorder: rec,
		// The deadlock detector's timer-driven polls would consume
		// chaos coins nondeterministically; lock requests in TIL modes
		// never park, so the lock-wait timeout alone is enough here.
		DeadlockPoll: -1,
		CallTimeout:  callTimeout,
		Timers:       timers,
		ServerConfig: server.Config{
			LockWaitTimeout:  lockWaitTimeout,
			WriteLockTimeout: writeLockTimeout,
			ScanInterval:     scanInterval,
			PeerCallTimeout:  peerCallTimeout,
		},
	})
	if err != nil {
		return Result{}, err
	}
	defer clus.Close()

	r := &runner{s: s, timers: timers, net: net, clus: clus, rec: rec, shadow: make(map[string][]byte)}
	// Client ids are allocated in order: the workload coordinator gets
	// "client-1" (the chaos target), the control client "client-2".
	// Both stamp transactions from the run's timeline (not the raw
	// system clock): under virtual time, timestamp spacing must follow
	// the virtual clock or successive TIL intervals would overlap locks
	// frozen microseconds of wall clock earlier.
	src := clock.TimersSource{T: timers}
	work, err := clus.NewClient(s.Mode, s.Delta, src)
	if err != nil {
		return Result{}, err
	}
	r.work = work
	ctrl, err := clus.NewClient(client.ModeTILEarly, 0, src)
	if err != nil {
		return Result{}, err
	}
	r.ctrl = ctrl

	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].BeforeTxn < events[j].BeforeTxn })

	gen := newOpGen(s)
	res := Result{Scenario: s}
	// pace separates successive transactions by more than the TIL
	// interval width Δ, so no transaction's interval can overlap locks
	// frozen by its predecessor. Wall runs get this spacing for free
	// from real execution overhead; sleeping it out explicitly makes
	// the spacing part of the schedule — identical in both modes —
	// instead of an accident of wall-clock speed.
	delta := s.Delta
	if delta == 0 {
		delta = 5000 // the client's default Δ, in microsecond ticks
	}
	pace := time.Duration(delta)*time.Microsecond + time.Millisecond
	next := 0
	for i := 0; i < s.Txns; i++ {
		for next < len(events) && events[next].BeforeTxn <= i {
			if err := r.apply(events[next]); err != nil {
				return res, err
			}
			next++
		}
		r.timers.Sleep(pace)
		ops := gen.txn(i)
		outcome, attempts := r.runTxn(ops, gen.value)
		fmt.Fprintf(&r.transcript, "t%03d %-17s a%d\n", i, outcome, attempts)
		switch outcome {
		case "commit":
			res.Commits++
			for _, o := range ops {
				if o.Write {
					r.shadow[o.Key] = gen.value
				}
			}
		case "uncertain":
			res.Uncertains++
		default:
			res.Aborts++
		}
	}

	res.Transcript = r.transcript.String()
	res.Events = r.events.String()
	res.FaultLog = net.FaultLog()
	commits := r.rec.Commits()
	res.commits = commits
	included, dropped := history.ResolveMaybes(commits)
	res.CheckedCommits = len(included)
	res.DroppedMaybes = len(dropped)
	res.CheckErr = history.CheckCommits(commits)
	return res, nil
}

// apply executes one scheduled fault action.
func (r *runner) apply(ev Event) error {
	switch ev.Act {
	case ActPartition:
		r.net.Partition(ev.A, ev.B)
		r.eventf(ev, "partition %s <-> %s", ev.A, ev.B)
	case ActPartitionAsym:
		r.net.PartitionAsym(ev.A, ev.B)
		r.eventf(ev, "partition %s -> %s", ev.A, ev.B)
	case ActHeal:
		r.net.HealAll()
		if err := r.settle(); err != nil {
			return err
		}
		r.eventf(ev, "heal all + settle")
	case ActCrash:
		// Settle first so no in-flight freeze/release cast is racing
		// the crash: whether such a cast lands is a microsecond-scale
		// race the transcript must not depend on.
		if err := r.settle(); err != nil {
			return err
		}
		if err := r.clus.StopServer(ev.Server); err != nil {
			return err
		}
		r.eventf(ev, "crash server-%d", ev.Server)
	case ActRestart:
		if err := r.clus.RestartServer(ev.Server); err != nil {
			return err
		}
		if err := r.settle(); err != nil {
			return err
		}
		n, err := r.recoverServer(ev.Server)
		if err != nil {
			return err
		}
		r.eventf(ev, "restart server-%d + recover %d keys", ev.Server, n)
	case ActKillHead:
		// Settle, then drain: with zero live transactions the head's log
		// watermark is fixed, so a drained standby holds exactly the
		// committed state and the handover loses nothing.
		if err := r.settle(); err != nil {
			return err
		}
		if err := r.drain(); err != nil {
			return err
		}
		dead, err := r.clus.KillHead(ev.Server)
		if err != nil {
			return err
		}
		v, err := r.clus.PromoteReplica(ev.Server)
		if err != nil {
			return err
		}
		r.eventf(ev, "kill head %s of partition %d; promote %s at epoch %d", dead, ev.Server, v.Head, v.Epoch)
	case ActRestartReplica:
		if err := r.clus.RestartServerAsReplica(ev.Server); err != nil {
			return err
		}
		if err := r.drain(); err != nil {
			return err
		}
		r.eventf(ev, "restart server-%d as a replica of partition %d + drain", ev.Server, ev.Server)
	default:
		return fmt.Errorf("faultbed: unknown action %d", ev.Act)
	}
	return nil
}

func (r *runner) eventf(ev Event, format string, args ...any) {
	fmt.Fprintf(&r.events, "before t%03d: %s\n", ev.BeforeTxn, fmt.Sprintf(format, args...))
}

// settle blocks until every running server reports zero live
// transaction records, i.e. all cleanup casts have landed and the
// suspicion scanner has reaped whatever a fault window orphaned. Fault
// actions settle around their transitions so that the transactions that
// follow start against a quiescent cluster — the settle duration itself
// is wall-clock-dependent and therefore never recorded.
func (r *runner) settle() error {
	// Iteration-bounded rather than deadline-bounded: the retry budget
	// is a fixed count instead of a wall-clock read, so the watchdog
	// itself cannot become a hidden source of timing dependence (the
	// determinism analyzer forbids time.Now in this package).
	attempts := int(settleTimeout / settlePoll)
	var live int64
	for try := 0; try <= attempts; try++ {
		if try > 0 {
			r.timers.Sleep(settlePoll)
		}
		reachable := true
		live = 0
		// LiveAddrs rather than the fixed slot list: in replicated
		// scenarios the serving head may be a promoted standby that never
		// had a slot.
		for _, addr := range r.clus.LiveAddrs() {
			st, err := r.ctrl.ServerStats(context.Background(), addr)
			if err != nil {
				reachable = false
				break
			}
			live += st.LiveTxns
		}
		if reachable && live == 0 {
			return nil
		}
	}
	return fmt.Errorf("faultbed: cluster did not settle within %v (%d live txn records)", settleTimeout, live)
}

// drain blocks until every partition's standbys have applied everything
// their head has logged (cluster.ReplicaLag 0 partition-wide). Like
// settle it is iteration-bounded, and like settle its duration is
// wall-clock-dependent and never recorded — only the fact that the
// schedule passed the barrier is.
func (r *runner) drain() error {
	attempts := int(settleTimeout / settlePoll)
	for try := 0; try <= attempts; try++ {
		if try > 0 {
			r.timers.Sleep(settlePoll)
		}
		drained := true
		for p := 0; p < r.s.Servers; p++ {
			if r.clus.ReplicaLag(p) != 0 {
				drained = false
				break
			}
		}
		if drained {
			return nil
		}
	}
	return fmt.Errorf("faultbed: standbys did not drain within %v", settleTimeout)
}

// recoverServer re-writes, through the control client, the
// last-committed value of every key the restarted server owns —
// restore-from-backup in miniature, sourced from the shadow map. The
// recovery transaction is recorded in the history like any other
// commit, so the checker sees post-restart reads as reads of the
// recovery writes rather than impossible reads of versions that died
// with the crash.
func (r *runner) recoverServer(i int) (int, error) {
	addrs := r.clus.Addrs()
	addr := addrs[i]
	keys := make([]string, 0, len(r.shadow))
	for k := range r.shadow {
		if addrs[strhash.FNV1a(k)%uint32(len(addrs))] == addr {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, nil
	}
	ctx := context.Background()
	for attempt := 1; attempt <= 5; attempt++ {
		tx, err := r.ctrl.Begin(ctx)
		if err != nil {
			return 0, err
		}
		err = func() error {
			for _, k := range keys {
				if err := tx.Write(ctx, k, r.shadow[k]); err != nil {
					return err
				}
			}
			return tx.Commit(ctx)
		}()
		if err == nil || tx.(*client.DTxn).Committed() {
			return len(keys), nil
		}
		if errors.Is(err, kv.ErrUncertain) {
			// The control plane is fault-free; an uncertain recovery
			// means the harness itself is broken.
			return 0, fmt.Errorf("faultbed: recovery commit uncertain: %w", err)
		}
		r.timers.Sleep(20 * time.Millisecond)
	}
	return 0, fmt.Errorf("faultbed: recovery for %s kept aborting", addr)
}

// runTxn drives one workload transaction to a final outcome, retrying
// retryable aborts under the scenario's policy. Retries replay the same
// operations; an uncertain outcome is never retried (the first attempt
// may have committed — blindly replaying it could apply its writes
// twice).
func (r *runner) runTxn(ops []workload.Op, value []byte) (outcome string, attempts int) {
	for attempt := 1; ; attempt++ {
		err := r.attempt(ops, value)
		if err == nil {
			return "commit", attempt
		}
		outcome, retryable := classify(err)
		if !retryable || attempt >= r.s.Retry.Attempts {
			return outcome, attempt
		}
		r.timers.Sleep(r.s.Retry.Backoff(attempt))
	}
}

// attempt runs the operations as one transaction. A commit whose only
// failure was in post-decision cleanup (the commitment object decided
// commit, then a freeze cast hit a broken connection) counts as
// committed: the decision is durable and the servers' suspicion path
// finishes the exposure.
func (r *runner) attempt(ops []workload.Op, value []byte) error {
	ctx := context.Background()
	tx, err := r.work.Begin(ctx)
	if err != nil {
		return err
	}
	for _, o := range ops {
		if o.Write {
			err = tx.Write(ctx, o.Key, value)
		} else {
			_, err = tx.Read(ctx, o.Key)
		}
		if err != nil {
			return err
		}
	}
	err = tx.Commit(ctx)
	if err != nil && tx.(*client.DTxn).Committed() {
		return nil
	}
	return err
}

// classify maps a transaction error to a transcript outcome and whether
// it is worth retrying. Order matters: an abort caused by an
// unreachable server wraps both kv.ErrAborted and the transport error,
// and must not be misread as a data conflict.
func classify(err error) (outcome string, retryable bool) {
	switch {
	case errors.Is(err, kv.ErrUncertain):
		return "uncertain", false
	case errors.Is(err, kv.ErrDeadlock):
		return "abort:deadlock", true
	case rpc.IsRetryable(err) || errors.Is(err, context.DeadlineExceeded):
		return "abort:unreachable", true
	case errors.Is(err, kv.ErrAborted):
		return "abort:conflict", false
	default:
		return "abort:other", false
	}
}

// opGen generates each transaction's operations.
type opGen struct {
	s     Scenario
	gen   *workload.Gen
	value []byte
}

func newOpGen(s Scenario) *opGen {
	wcfg := s.Workload
	wcfg.Seed = s.Seed
	gen := workload.NewGen(wcfg, s.Seed)
	return &opGen{s: s, gen: gen, value: gen.Value()}
}

// txn returns transaction i's operations. Shared-key scenarios draw
// from the workload generator; disjoint scenarios give transaction i a
// private write block and a read block no transaction ever writes, so
// no two transactions contend and the commit/abort transcript is a pure
// function of the chaos coins.
func (g *opGen) txn(i int) []workload.Op {
	if !g.s.Disjoint {
		return g.gen.Txn()
	}
	n := g.s.Workload.OpsPerTxn
	ops := make([]workload.Op, n)
	for j := range ops {
		write := j >= n/2
		block := 2 * i
		if write {
			block = 2*i + 1
		}
		ops[j] = workload.Op{Key: workload.Key(block*n + j), Write: write}
	}
	return ops
}
