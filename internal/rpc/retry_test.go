package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/transport"
)

// timeoutErr implements net.Error with Timeout() true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "synthetic timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

var _ net.Error = timeoutErr{}

func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"rpc closed", ErrClosed, true},
		{"rpc closed wrapped", closedErr("server-1"), true},
		{"transport closed", transport.ErrClosed, true},
		{"transport closed wrapped", fmt.Errorf("rpc: send to x: %w", transport.ErrClosed), true},
		{"peer unavailable", fmt.Errorf("rpc: dial x: %w", transport.ErrUnavailable), true},
		{"io deadline", fmt.Errorf("transport: send: %w", transport.ErrTimeout), true},
		{"call deadline", context.DeadlineExceeded, true},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"conn reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"conn refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"broken pipe", &net.OpError{Op: "write", Err: syscall.EPIPE}, true},
		{"net timeout", timeoutErr{}, true},
		{"net timeout wrapped", fmt.Errorf("recv: %w", timeoutErr{}), true},
		{"caller cancelled", context.Canceled, false},
		{"codec corruption", errors.New("wire: frame too large"), false},
		{"plain error", errors.New("boom"), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("%s: IsRetryable(%v) = %v, want %v", c.name, c.err, got, c.want)
		}
	}
}

// TestCallAgainstDownServerIsRetryable exercises the predicate against
// real errors from the stack: dialing an address nobody listens on, and
// a call cut off by the peer closing mid-flight.
func TestCallAgainstDownServerIsRetryable(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	c := NewClient(n, "down", 1)
	defer func() { _ = c.Close() }()
	_, err := c.Call(context.Background(), 1, 1, nil)
	if err == nil {
		t.Fatal("call to down server succeeded")
	}
	if !IsRetryable(err) {
		t.Fatalf("dial to down server not retryable: %v", err)
	}

	l, err := n.Listen("up")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Accept one frame, then hang up without replying.
		f, err := conn.Recv()
		if err == nil {
			f.Release()
		}
		_ = conn.Close()
	}()
	c2 := NewClient(n, "up", 1)
	defer func() { _ = c2.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = c2.Call(ctx, 1, 1, nil)
	if err == nil {
		t.Fatal("call cut off by peer succeeded")
	}
	if !IsRetryable(err) {
		t.Fatalf("peer hang-up not retryable: %v", err)
	}
	_ = l.Close()
}
