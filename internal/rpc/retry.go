package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"

	"github.com/lpd-epfl/mvtl/internal/transport"
)

// IsRetryable reports whether err is a transient peer/network failure —
// one where re-issuing the request against a fresh connection (possibly
// after the peer restarts) can legitimately succeed: the peer is gone
// or unreachable (ErrClosed, transport.ErrClosed, transport.
// ErrUnavailable, connection refused), the connection died under the
// call (reset, broken pipe, unexpected EOF), or an I/O deadline expired
// (transport.ErrTimeout, context.DeadlineExceeded, net timeouts).
//
// It deliberately excludes context.Canceled (the caller gave up — a
// retry would outlive its owner) and anything else, in particular codec
// or protocol errors: a frame that fails to decode will fail to decode
// again, and retrying it only hides the corruption. Callers classify
// with this predicate instead of string-matching error text.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, ErrClosed) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, transport.ErrUnavailable) ||
		errors.Is(err, transport.ErrTimeout) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return false
}
