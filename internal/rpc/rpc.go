// Package rpc is the multiplexed request/response layer between
// coordinators and storage servers: many goroutines issue RPCs against
// one server and share a small pool of pipelined transport connections
// instead of waiting for each other's replies.
//
// # Correlation ids
//
// Every call occupies a waiter slot in a per-connection freelist, and
// the frame's correlation id encodes the slot's position:
//
//	bit  63     cast flag (fire-and-forget, no waiter)
//	bits 32-62  slot index
//	bits 0-31   slot generation
//
// A slot holds a persistent buffered response channel and a generation
// counter that is bumped every time the slot is recycled. The response
// to a request is the frame carrying the same id back; responses may
// arrive in any order (server handlers block on locks independently),
// and the per-connection demux goroutine routes each response by
// indexing the slot table and comparing generations — no map lookup, no
// per-call channel allocation. A response whose generation no longer
// matches — the reply to a call whose context was cancelled, a chaos
// duplicate, or the echo of a cast (cast flag set) — is released back
// to the buffer pool immediately. A call can therefore never observe
// another call's response: a slot is recycled only after its tenant is
// done, and recycling changes the generation every response must match.
//
// # Frame coalescing
//
// Senders do not write to the transport directly: each connection owns
// a batcher that appends encoded frames to a pending list, and whichever
// sender finds the connection idle drains the whole list through
// transport.Conn.SendBatch — one vectored write (one syscall on TCP) for
// every frame that accumulated while the previous flush was in flight.
// Coalescing is opportunistic: a lone frame flushes immediately, so idle
// connections pay no added latency, and concurrent callers amortize the
// per-frame transmission cost that would otherwise serialize them.
// Frames flush in enqueue order and flushes never overlap, so the
// transport's per-connection FIFO guarantee is preserved. The server
// half coalesces through a dedicated flusher goroutine instead: replies
// are generated sequentially by the read loop, so a sender-flushes
// scheme would never see two replies pending at once — handlers enqueue
// and return, and every reply that accumulates while the flusher's
// previous write is on the wire goes out in the next vectored write.
//
// # Buffer ownership
//
// Requests are append-encoded (wire.Message) directly into a pooled
// wire.FrameBuf, which the transport consumes — the frame path
// allocates nothing in steady state. A successful Call returns the
// response's pooled buffer: the caller decodes in place and MUST
// Release it once done with the response and everything borrowed from
// its body (see package wire for the borrow rules). On the server half,
// ServeConn releases each request frame after its handler returns, and
// Reply encodes the response message into a fresh pooled buffer that
// the transport consumes.
//
// # Pool semantics and ordering
//
// A Client owns up to `conns` connections to one address, dialed
// lazily. Every Call and Cast names a flow (callers use the transaction
// id): all frames of one flow travel over the same pooled connection,
// in send order, so the transport's per-connection FIFO guarantee
// becomes a per-flow FIFO guarantee — a transaction's release cast can
// never overtake its freeze cast. Between different flows there is no
// ordering: with a pool larger than one, a frame of flow A may reach
// the server before an earlier frame of flow B. Callers that rely on
// cross-transaction FIFO to one server (the coordinator's
// read-your-own-writes freshness after a fire-and-forget freeze) must
// use a pool of one, which is the default and restores exactly the old
// single-connection ordering.
//
// # Shutdown
//
// Close tears every pooled connection down. A call in flight when its
// connection closes — locally via Close or remotely by the peer — fails
// fast with ErrClosed wrapped with the server address; it never hangs
// and never receives another call's response. A sender whose frame was
// coalesced behind another caller's failing flush learns of the failure
// the same way: the flusher closes the transport, the demux fails every
// outstanding slot. Once closed (or once a connection breaks), a Client
// stays closed: calls fail immediately and no redial is attempted,
// matching the crash-stop failure model of §H.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// ErrClosed reports an RPC on a torn-down connection. It is always
// returned wrapped with the server address; test with errors.Is.
var ErrClosed = errors.New("rpc: connection closed")

// Client is a pool of pipelined connections to one server. The zero
// value is not usable; call NewClient.
type Client struct {
	network transport.Network
	addr    string
	timers  clock.Timers

	mu     sync.Mutex
	conns  []*conn // lazily dialed, one slot per pool index
	closed bool
}

// NewClient returns a client for addr over network with a pool of
// `conns` connections (values below one are treated as one). Dialing is
// lazy: errors surface on first use of each pool slot.
func NewClient(network transport.Network, addr string, conns int) *Client {
	return NewClientTimers(network, addr, conns, nil)
}

// NewClientTimers is NewClient on an explicit timeline: response waits
// park on the timeline's waiters and the demux goroutines register as
// actors, so the fault bed can run the whole RPC layer in virtual
// time. A nil t means SystemTimers.
func NewClientTimers(network transport.Network, addr string, conns int, t clock.Timers) *Client {
	if conns < 1 {
		conns = 1
	}
	return &Client{network: network, addr: addr, timers: clock.OrSystem(t), conns: make([]*conn, conns)}
}

// Addr returns the server address this client talks to.
func (c *Client) Addr() string { return c.addr }

// closedErr is the fail-fast error for a torn-down connection.
func closedErr(addr string) error {
	return fmt.Errorf("rpc: server %s: %w", addr, ErrClosed)
}

// slotFor maps a flow to a pool slot. Transaction ids carry the client
// id in the high half and the sequence number in the low half, so both
// are folded in.
func (c *Client) slotFor(flow uint64) int {
	return int((flow ^ flow>>32) % uint64(len(c.conns)))
}

// conn returns (dialing if needed) the pooled connection for flow.
func (c *Client) conn(flow uint64) (*conn, error) {
	slot := c.slotFor(flow)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, closedErr(c.addr)
	}
	cn := c.conns[slot]
	c.mu.Unlock()
	if cn != nil {
		return cn, nil
	}
	tc, err := c.network.Dial(c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		_ = tc.Close()
		return nil, closedErr(c.addr)
	}
	if existing := c.conns[slot]; existing != nil {
		_ = tc.Close()
		return existing, nil
	}
	cn = newConn(c.addr, tc, c.timers)
	c.conns[slot] = cn
	return cn, nil
}

// Call performs one request/response exchange on the flow's pooled
// connection: m is append-encoded into a pooled frame buffer (nil for
// an empty body) that the transport consumes. It returns the response
// frame's pooled buffer — which the caller must Release after decoding
// and copying out anything that escapes — or ctx.Err() on cancellation,
// or ErrClosed (wrapped with the address) if the connection goes down
// mid-call.
func (c *Client) Call(ctx context.Context, flow uint64, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	cn, err := c.conn(flow)
	if err != nil {
		return nil, err
	}
	return cn.call(ctx, t, m)
}

// Cast sends a request on the flow's pooled connection without waiting
// for the response; the reply carries the cast flag back and is dropped
// (and its buffer recycled) by the demultiplexer. Used for the
// fire-and-forget messages of Alg. 11 — freeze-write-locks,
// freeze-read-locks and releases are sent "without waiting for replies"
// (§H), which is what makes the protocol communication efficient.
func (c *Client) Cast(flow uint64, t wire.MsgType, m wire.Message) error {
	cn, err := c.conn(flow)
	if err != nil {
		return err
	}
	return cn.cast(t, m)
}

// Close tears every pooled connection down, failing calls in flight,
// and waits for the demux goroutines to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*conn, 0, len(c.conns))
	for _, cn := range c.conns {
		if cn != nil {
			conns = append(conns, cn)
		}
	}
	c.mu.Unlock()
	for _, cn := range conns {
		cn.close()
	}
	return nil
}

// castFlag marks a correlation id as having no waiter: the demux
// releases the response unexamined. Server handlers echo the id back
// verbatim, so the flag round-trips.
const castFlag = uint64(1) << 63

// callID packs a waiter slot's position into a correlation id.
func callID(idx uint32, gen uint32) uint64 { return uint64(idx)<<32 | uint64(gen) }

// waiterSlot is one reusable waiter: a persistent response channel plus
// the generation that distinguishes its current tenant from every past
// and future one.
type waiterSlot struct {
	// ch is buffered (capacity 1), never closed, and reused across
	// calls: the demux delivers at most one frame (or one nil closed
	// sentinel) per activation, so a send never blocks.
	ch chan *wire.FrameBuf
	// gen is bumped every time the slot is recycled; a late response
	// carrying an old generation can never be delivered to the slot's
	// next tenant. It wraps at 2^32, which would take 2^32 recycles of
	// the same slot with a response from the very first still in flight
	// to confuse — beyond any connection's plausible lifetime.
	gen uint32
	// active is set while a call owns the slot and no response has been
	// delivered; the demux claims a delivery by clearing it, so a
	// duplicated response (chaos Dup) cannot deliver twice.
	active bool
	// w parks the calling goroutine while the response is in flight;
	// the demux wakes it after delivering into ch. On a virtual
	// timeline the park marks the caller quiescent, which is what lets
	// modeled latencies and timeouts advance without wall clock.
	w clock.Waiter
}

// conn is one pipelined connection: a waiter-slot freelist, a demux
// goroutine routing response frames by slot index + generation, and a
// batcher coalescing concurrent senders' frames into vectored writes.
type conn struct {
	addr   string
	tc     transport.Conn
	timers clock.Timers
	castID atomic.Uint64
	out    batcher

	mu     sync.Mutex
	slots  []*waiterSlot // grows on demand, never shrinks
	free   []uint32      // LIFO freelist of slot indices
	closed bool

	// lateDrops counts responses released by slot/generation mismatch:
	// late replies to cancelled calls and chaos duplicates (cast echoes
	// are expected traffic and not counted).
	lateDrops atomic.Uint64

	// done joins the demux goroutine's exit. A credited clock.Join, not
	// a bare channel: close() may run on a registered virtual-timeline
	// actor while the demux is mid-Sleep on a modeled delivery delay,
	// and a raw channel receive would keep the closer counted runnable,
	// so the timer that would let the demux finish could never fire.
	done *clock.Join
}

func newConn(addr string, tc transport.Conn, t clock.Timers) *conn {
	cn := &conn{addr: addr, tc: tc, timers: clock.OrSystem(t)}
	cn.out.tc = tc
	cn.done = clock.NewJoin(cn.timers, 1)
	cn.timers.Go(cn.recvLoop)
	return cn
}

// acquire claims a waiter slot (growing the table if the freelist is
// empty) and returns its index, the slot, and the correlation id of its
// new tenancy.
func (cn *conn) acquire() (uint32, *waiterSlot, uint64, error) {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return 0, nil, 0, closedErr(cn.addr)
	}
	if len(cn.free) == 0 {
		cn.free = append(cn.free, uint32(len(cn.slots)))
		cn.slots = append(cn.slots, &waiterSlot{ch: make(chan *wire.FrameBuf, 1), w: cn.timers.NewWaiter()})
	}
	idx := cn.free[len(cn.free)-1]
	cn.free = cn.free[:len(cn.free)-1]
	s := cn.slots[idx]
	s.active = true
	id := callID(idx, s.gen)
	cn.mu.Unlock()
	return idx, s, id, nil
}

// freeSlot recycles a slot whose tenant is done: the generation bump
// invalidates any response still in flight for the old tenancy.
func (cn *conn) freeSlot(idx uint32, s *waiterSlot) {
	cn.mu.Lock()
	s.active = false
	s.gen++
	cn.free = append(cn.free, idx)
	cn.mu.Unlock()
	// Discard any wake the demux signaled after this tenant stopped
	// listening, so it cannot leak into the slot's next tenancy.
	s.w.Drain()
}

// unregister abandons a slot mid-call (context cancelled, send failed).
// If the demux already claimed a delivery for this tenancy, the frame —
// or the nil closed sentinel — is drained from the persistent channel
// and released, fixing the old map-based demux's tolerated leak of late
// responses into abandoned channels.
func (cn *conn) unregister(idx uint32, s *waiterSlot) {
	cn.mu.Lock()
	if s.active {
		s.active = false
		s.gen++
		cn.free = append(cn.free, idx)
		cn.mu.Unlock()
		return
	}
	cn.mu.Unlock()
	// The demux (or the close sweep) claimed the slot before we could
	// invalidate it: exactly one value is in the channel or about to be
	// sent — a bounded wait, since claimed sends never block.
	if f := <-s.ch; f != nil {
		f.Release()
	}
	cn.freeSlot(idx, s)
}

// deliver hands a claimed response (or the nil closed sentinel) to the
// slot's tenant: the value first, then the wake, so a woken caller
// always finds the channel populated.
func deliver(s *waiterSlot, f *wire.FrameBuf) {
	s.ch <- f // capacity 1 and claimed exactly once: never blocks
	s.w.Wake()
}

// recvLoop routes response frames to their slots until the transport
// fails, then fails every active slot fast by delivering a nil closed
// sentinel on its persistent channel.
func (cn *conn) recvLoop() {
	defer cn.done.Done()
	for {
		f, err := cn.tc.Recv()
		if err != nil {
			cn.mu.Lock()
			cn.closed = true
			var fail []*waiterSlot
			for _, s := range cn.slots {
				if s.active {
					s.active = false
					fail = append(fail, s)
				}
			}
			cn.mu.Unlock()
			for _, s := range fail {
				deliver(s, nil) // claimed above: the channel is empty
			}
			return
		}
		cn.route(f)
	}
}

// route delivers one response frame by slot index + generation, or
// releases it back to the pool: cast echoes (cast flag), late replies
// to cancelled calls (generation mismatch), duplicates (active already
// cleared), and garbage ids all recycle here.
func (cn *conn) route(f *wire.FrameBuf) {
	id := f.ID()
	if id&castFlag != 0 {
		f.Release()
		return
	}
	idx, gen := uint32(id>>32), uint32(id)
	var s *waiterSlot
	cn.mu.Lock()
	if int(idx) < len(cn.slots) {
		if cand := cn.slots[idx]; cand.active && cand.gen == gen {
			cand.active = false // claim the delivery; a dup can't deliver twice
			s = cand
		}
	}
	cn.mu.Unlock()
	if s == nil {
		cn.lateDrops.Add(1)
		f.Release()
		return
	}
	deliver(s, f)
}

// send encodes m into a pooled frame buffer and enqueues it on the
// connection's batcher, which flushes it — coalesced with any frames
// concurrent senders enqueued — as one vectored write.
func (cn *conn) send(id uint64, t wire.MsgType, m wire.Message) error {
	out := wire.GetFrameBuf()
	if err := out.SetFrame(id, t, m); err != nil {
		out.Release()
		return err
	}
	return cn.out.send(out)
}

func (cn *conn) call(ctx context.Context, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	idx, s, id, err := cn.acquire()
	if err != nil {
		return nil, err
	}
	if err := cn.send(id, t, m); err != nil {
		cn.unregister(idx, s)
		if errors.Is(err, transport.ErrClosed) {
			return nil, closedErr(cn.addr)
		}
		return nil, fmt.Errorf("rpc: send to %s: %w", cn.addr, err)
	}
	for {
		if err := s.w.ParkCtx(ctx); err != nil {
			cn.unregister(idx, s)
			return nil, err
		}
		select {
		case f := <-s.ch:
			cn.freeSlot(idx, s)
			if f == nil {
				return nil, closedErr(cn.addr)
			}
			return f, nil
		default:
			// A stale buffered wake from a past tenancy; park again.
		}
	}
}

func (cn *conn) cast(t wire.MsgType, m wire.Message) error {
	cn.mu.Lock()
	closed := cn.closed
	cn.mu.Unlock()
	if closed {
		return closedErr(cn.addr)
	}
	id := castFlag | cn.castID.Add(1)
	if err := cn.send(id, t, m); err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return closedErr(cn.addr)
		}
		return fmt.Errorf("rpc: send to %s: %w", cn.addr, err)
	}
	return nil
}

func (cn *conn) close() {
	_ = cn.tc.Close()
	cn.done.Wait()
}

// batcher coalesces concurrent frame sends on one transport connection.
// Senders append to a pending list; whichever sender finds the
// connection idle becomes the flusher and drains the list through
// SendBatch — repeatedly, so frames that accumulate while a flush's
// vectored write is in the kernel go out together on the next one —
// while later senders just append and return. Frames flush in enqueue
// order and flushes never overlap, preserving the transport's
// per-connection FIFO. Two swapped backing arrays make the steady state
// allocation-free.
type batcher struct {
	tc transport.Conn

	mu       sync.Mutex
	pending  []*wire.FrameBuf
	spare    []*wire.FrameBuf // previous flush's array, reused for the next
	flushing bool
	err      error // first flush error; the connection is dead beyond it
}

// send enqueues fb, taking ownership like transport.Conn.Send. An error
// is returned only if the connection is already known broken or this
// caller's own flush failed; a frame enqueued behind an active flusher
// reports success, and if its flush later fails the flusher closes the
// transport, so the demux fails the waiting call fast (casts are
// fire-and-forget anyway).
func (b *batcher) send(fb *wire.FrameBuf) error {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		fb.Release()
		return err
	}
	b.pending = append(b.pending, fb)
	if b.flushing {
		b.mu.Unlock()
		return nil
	}
	b.flushing = true
	var err error
	for err == nil && len(b.pending) > 0 {
		batch := b.pending
		b.pending = b.spare[:0]
		b.mu.Unlock()
		if len(batch) == 1 {
			err = b.tc.Send(batch[0])
			batch[0] = nil
		} else {
			err = b.tc.SendBatch(batch) // consumes and nils every entry
		}
		b.mu.Lock()
		b.spare = batch[:0]
	}
	b.flushing = false
	if err == nil {
		b.mu.Unlock()
		return nil
	}
	b.err = err
	pend := b.pending
	b.pending = nil
	b.mu.Unlock()
	// Frames enqueued while the failing flush was in flight are
	// consumed here (their senders already returned nil); closing the
	// transport makes the receive loop fail every outstanding call.
	wire.ReleaseAll(pend)
	_ = b.tc.Close()
	return err
}

// replyFlusher coalesces response frames through a dedicated flusher
// goroutine. The server's replies are generated sequentially by the
// read loop, so unlike the client's concurrent callers they would never
// coalesce under a sender-flushes scheme — and a reply send that blocks
// (transport backpressure) would stall request dispatch. Here handlers
// enqueue and return immediately; the flusher drains everything that
// accumulated during its previous write into one vectored write. Frames
// flush in enqueue order, so per-connection FIFO is preserved.
type replyFlusher struct {
	tc    transport.Conn
	onErr func(error) // reported once per failing flush; may be nil

	mu      sync.Mutex
	pending []*wire.FrameBuf
	spare   []*wire.FrameBuf // previous flush's array, reused
	err     error            // first flush error; the connection is dead beyond it
	stopped bool

	wake clock.Waiter // at most one buffered wakeup
	// done joins the flusher goroutine's exit; a credited clock.Join
	// for the same reason as conn.done (the loop may be sleeping in the
	// transport's modeled backpressure when stop is called).
	done *clock.Join
}

func newReplyFlusher(tc transport.Conn, onErr func(error), t clock.Timers) *replyFlusher {
	q := &replyFlusher{tc: tc, onErr: onErr, wake: t.NewWaiter(), done: clock.NewJoin(t, 1)}
	t.Go(q.loop)
	return q
}

// send enqueues fb, taking ownership like transport.Conn.Send. Flush
// failures surface asynchronously through onErr; send itself fails only
// once the connection is already known broken or the flusher stopped.
func (q *replyFlusher) send(fb *wire.FrameBuf) error {
	q.mu.Lock()
	if q.err != nil || q.stopped {
		err := q.err
		q.mu.Unlock()
		fb.Release()
		if err == nil {
			err = transport.ErrClosed
		}
		return err
	}
	q.pending = append(q.pending, fb)
	q.mu.Unlock()
	q.wake.Wake()
	return nil
}

func (q *replyFlusher) loop() {
	defer q.done.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 {
			if q.stopped || q.err != nil {
				q.mu.Unlock()
				return
			}
			q.mu.Unlock()
			q.wake.Park()
			q.mu.Lock()
		}
		batch := q.pending
		q.pending = q.spare[:0]
		q.mu.Unlock()
		var err error
		if len(batch) == 1 {
			err = q.tc.Send(batch[0])
			batch[0] = nil
		} else {
			err = q.tc.SendBatch(batch) // consumes and nils every entry
		}
		q.mu.Lock()
		q.spare = batch[:0]
		if err == nil {
			q.mu.Unlock()
			continue
		}
		q.err = err
		pend := q.pending
		q.pending = nil
		q.mu.Unlock()
		wire.ReleaseAll(pend)
		if q.onErr != nil {
			q.onErr(err)
		}
		// Closing the transport fails ServeConn's read loop, tearing the
		// connection down rather than serving requests whose responses
		// can no longer be written.
		_ = q.tc.Close()
		return
	}
}

// stop drains queued replies through a final flush and waits for the
// flusher goroutine to exit. Callers must ensure no further send can
// race with it (ServeConn stops only after every handler returned).
func (q *replyFlusher) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.wake.Wake()
	q.done.Wait()
}

// Reply sends one response frame, correlated with the request that the
// enclosing handler is serving: m is append-encoded into a pooled
// buffer that the transport consumes. It is safe for concurrent use
// while the handler runs, and must not be called after the handler has
// returned.
type Reply func(t wire.MsgType, m wire.Message)

// replyState backs the inline dispatch path's single Reply closure:
// inline handlers run sequentially on the read loop and may not retain
// reply beyond the handler's return, so one mutable correlation id per
// connection is safe — and the per-frame closure allocation of the old
// code is gone.
type replyState struct {
	out       *replyFlusher
	onSendErr func(error)
	id        uint64
}

func (r *replyState) reply(t wire.MsgType, m wire.Message) {
	sendReply(r.out, r.onSendErr, r.id, t, m)
}

// sendReply encodes one response frame and enqueues it on the
// connection's reply flusher, so consecutive replies coalesce into
// vectored writes and handlers never block on transmission.
func sendReply(out *replyFlusher, onSendErr func(error), id uint64, t wire.MsgType, m wire.Message) {
	fb := wire.GetFrameBuf()
	if err := fb.SetFrame(id, t, m); err != nil {
		fb.Release()
		if onSendErr != nil {
			onSendErr(err)
		}
		return
	}
	if err := out.send(fb); err != nil && onSendErr != nil {
		onSendErr(err)
	}
}

// ServeConn is the server half of the mux: it reads frames from conn
// and dispatches each to handle with a Reply bound to the frame's
// correlation id. Responses are enqueued on the connection's reply
// flusher — consecutive replies coalesce into vectored writes, never
// interleave bytes, and never block the handler that sent them. Frames
// whose type spawn reports true (handlers that may block, e.g. on lock
// waits) run in their own goroutine; all others run inline on the read
// loop, in arrival order — preserving the per-flow FIFO semantics
// coordinators rely on when they fire-and-forget a freeze and then
// issue the next request on the same flow — and share one pre-allocated
// Reply, so the inline request/reply path allocates nothing beyond the
// pooled frames. Each request frame is released back to the pool after
// its handler returns: handlers may decode in place, but anything that
// outlives the handler must be copied out, and reply must not be called
// after the handler has returned. ServeConn returns when Recv fails
// (connection closed), after every spawned handler finished. Failed
// response writes are reported to onSendErr (nil discards them) — a
// client waiting on a correlation id whose response was never written
// is otherwise invisible on the server side.
func ServeConn(conn transport.Conn, spawn func(wire.MsgType) bool, handle func(f *wire.FrameBuf, reply Reply), onSendErr func(error)) {
	ServeConnTimers(conn, spawn, handle, onSendErr, nil)
}

// ServeConnTimers is ServeConn on an explicit timeline: spawned
// handlers register as actors and the teardown wait is a credited
// clock.Join, so parked handlers can still be expired by virtual
// lock-wait deadlines while the connection drains without opening a
// free-running-advance window at the final handoff. A nil t means
// SystemTimers.
func ServeConnTimers(conn transport.Conn, spawn func(wire.MsgType) bool, handle func(f *wire.FrameBuf, reply Reply), onSendErr func(error), t clock.Timers) {
	timers := clock.OrSystem(t)
	out := newReplyFlusher(conn, onSendErr, timers)
	inline := &replyState{out: out, onSendErr: onSendErr}
	inlineReply := Reply(inline.reply) // one closure for the whole connection
	handlers := clock.NewJoin(timers, 0)
	defer func() {
		handlers.Wait() // no reply can be enqueued past this point
		out.stop()
	}()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		if spawn != nil && spawn(f.Type()) {
			handlers.Add(1)
			id := f.ID()
			timers.Go(func() {
				defer handlers.Done()
				defer f.Release()
				handle(f, func(t wire.MsgType, m wire.Message) {
					sendReply(out, onSendErr, id, t, m)
				})
			})
		} else {
			inline.id = f.ID()
			handle(f, inlineReply)
			f.Release()
		}
	}
}
