// Package rpc is the multiplexed request/response layer between
// coordinators and storage servers: many goroutines issue RPCs against
// one server and share a small pool of pipelined transport connections
// instead of waiting for each other's replies.
//
// # Wire format
//
// Every request is one frame whose correlation id is allocated from a
// per-connection counter and never reused for the lifetime of the
// connection. The response to a request is the frame carrying the same
// id back; responses may arrive in any order (server handlers block on
// locks independently), and a per-connection demux goroutine routes
// each response frame to the channel of the one call that sent its ID.
// A response whose ID matches no outstanding call — e.g. the reply to a
// call whose context was cancelled, or to a Cast — is dropped (and its
// pooled buffer released). A call can therefore never observe another
// call's response.
//
// # Buffer ownership
//
// Requests are append-encoded (wire.Message) directly into a pooled
// wire.FrameBuf, which the transport consumes — the frame path
// allocates nothing in steady state. A successful Call returns the
// response's pooled buffer: the caller decodes in place and MUST
// Release it once done with the response and everything borrowed from
// its body (see package wire for the borrow rules). On the server half,
// ServeConn releases each request frame after its handler returns, and
// Reply encodes the response message into a fresh pooled buffer that
// the transport consumes.
//
// # Pool semantics and ordering
//
// A Client owns up to `conns` connections to one address, dialed
// lazily. Every Call and Cast names a flow (callers use the transaction
// id): all frames of one flow travel over the same pooled connection,
// in send order, so the transport's per-connection FIFO guarantee
// becomes a per-flow FIFO guarantee — a transaction's release cast can
// never overtake its freeze cast. Between different flows there is no
// ordering: with a pool larger than one, a frame of flow A may reach
// the server before an earlier frame of flow B. Callers that rely on
// cross-transaction FIFO to one server (the coordinator's
// read-your-own-writes freshness after a fire-and-forget freeze) must
// use a pool of one, which is the default and restores exactly the old
// single-connection ordering.
//
// # Shutdown
//
// Close tears every pooled connection down. A call in flight when its
// connection closes — locally via Close or remotely by the peer — fails
// fast with ErrClosed wrapped with the server address; it never hangs
// and never receives another call's response. Once closed (or once a
// connection breaks), a Client stays closed: calls fail immediately and
// no redial is attempted, matching the crash-stop failure model of §H.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// ErrClosed reports an RPC on a torn-down connection. It is always
// returned wrapped with the server address; test with errors.Is.
var ErrClosed = errors.New("rpc: connection closed")

// Client is a pool of pipelined connections to one server. The zero
// value is not usable; call NewClient.
type Client struct {
	network transport.Network
	addr    string

	mu     sync.Mutex
	conns  []*conn // lazily dialed, one slot per pool index
	closed bool
}

// NewClient returns a client for addr over network with a pool of
// `conns` connections (values below one are treated as one). Dialing is
// lazy: errors surface on first use of each pool slot.
func NewClient(network transport.Network, addr string, conns int) *Client {
	if conns < 1 {
		conns = 1
	}
	return &Client{network: network, addr: addr, conns: make([]*conn, conns)}
}

// Addr returns the server address this client talks to.
func (c *Client) Addr() string { return c.addr }

// closedErr is the fail-fast error for a torn-down connection.
func closedErr(addr string) error {
	return fmt.Errorf("rpc: server %s: %w", addr, ErrClosed)
}

// slotFor maps a flow to a pool slot. Transaction ids carry the client
// id in the high half and the sequence number in the low half, so both
// are folded in.
func (c *Client) slotFor(flow uint64) int {
	return int((flow ^ flow>>32) % uint64(len(c.conns)))
}

// conn returns (dialing if needed) the pooled connection for flow.
func (c *Client) conn(flow uint64) (*conn, error) {
	slot := c.slotFor(flow)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, closedErr(c.addr)
	}
	cn := c.conns[slot]
	c.mu.Unlock()
	if cn != nil {
		return cn, nil
	}
	tc, err := c.network.Dial(c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		_ = tc.Close()
		return nil, closedErr(c.addr)
	}
	if existing := c.conns[slot]; existing != nil {
		_ = tc.Close()
		return existing, nil
	}
	cn = newConn(c.addr, tc)
	c.conns[slot] = cn
	return cn, nil
}

// Call performs one request/response exchange on the flow's pooled
// connection: m is append-encoded into a pooled frame buffer (nil for
// an empty body) that the transport consumes. It returns the response
// frame's pooled buffer — which the caller must Release after decoding
// and copying out anything that escapes — or ctx.Err() on cancellation,
// or ErrClosed (wrapped with the address) if the connection goes down
// mid-call.
func (c *Client) Call(ctx context.Context, flow uint64, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	cn, err := c.conn(flow)
	if err != nil {
		return nil, err
	}
	return cn.call(ctx, t, m)
}

// Cast sends a request on the flow's pooled connection without waiting
// for the response; the reply is dropped (and its buffer recycled) by
// the demultiplexer. Used for the fire-and-forget messages of Alg. 11 —
// freeze-write-locks, freeze-read-locks and releases are sent "without
// waiting for replies" (§H), which is what makes the protocol
// communication efficient.
func (c *Client) Cast(flow uint64, t wire.MsgType, m wire.Message) error {
	cn, err := c.conn(flow)
	if err != nil {
		return err
	}
	return cn.cast(t, m)
}

// Close tears every pooled connection down, failing calls in flight,
// and waits for the demux goroutines to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*conn, 0, len(c.conns))
	for _, cn := range c.conns {
		if cn != nil {
			conns = append(conns, cn)
		}
	}
	c.mu.Unlock()
	for _, cn := range conns {
		cn.close()
	}
	return nil
}

// conn is one pipelined connection: a correlation-id counter, a demux
// goroutine, and the waiter registry it routes response frames through.
type conn struct {
	addr   string
	tc     transport.Conn
	nextID atomic.Uint64

	mu      sync.Mutex
	sendMu  sync.Mutex
	waiters map[uint64]chan *wire.FrameBuf
	closed  bool

	done chan struct{}
}

func newConn(addr string, tc transport.Conn) *conn {
	cn := &conn{addr: addr, tc: tc, waiters: make(map[uint64]chan *wire.FrameBuf)}
	cn.done = make(chan struct{})
	go cn.recvLoop()
	return cn
}

// recvLoop routes response frames to their callers until the transport
// fails, then fails every outstanding call fast by closing its channel.
// Frames with no registered waiter (cast replies, cancelled calls) are
// released back to the pool here.
func (cn *conn) recvLoop() {
	defer close(cn.done)
	for {
		f, err := cn.tc.Recv()
		if err != nil {
			cn.mu.Lock()
			cn.closed = true
			for id, ch := range cn.waiters {
				close(ch)
				delete(cn.waiters, id)
			}
			cn.mu.Unlock()
			return
		}
		cn.mu.Lock()
		ch, ok := cn.waiters[f.ID()]
		if ok {
			delete(cn.waiters, f.ID())
		}
		cn.mu.Unlock()
		if ok {
			// Buffered (capacity 1) and registered exactly once, so this
			// never blocks the demux loop.
			ch <- f
		} else {
			f.Release()
		}
	}
}

// send encodes m into a pooled frame buffer and hands it to the
// transport (which consumes it), serializing concurrent senders.
func (cn *conn) send(id uint64, t wire.MsgType, m wire.Message) error {
	out := wire.GetFrameBuf()
	if err := out.SetFrame(id, t, m); err != nil {
		out.Release()
		return err
	}
	cn.sendMu.Lock()
	err := cn.tc.Send(out)
	cn.sendMu.Unlock()
	return err
}

func (cn *conn) call(ctx context.Context, t wire.MsgType, m wire.Message) (*wire.FrameBuf, error) {
	id := cn.nextID.Add(1)
	ch := make(chan *wire.FrameBuf, 1)
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return nil, closedErr(cn.addr)
	}
	cn.waiters[id] = ch
	cn.mu.Unlock()

	if err := cn.send(id, t, m); err != nil {
		cn.mu.Lock()
		delete(cn.waiters, id)
		cn.mu.Unlock()
		if errors.Is(err, transport.ErrClosed) {
			return nil, closedErr(cn.addr)
		}
		return nil, fmt.Errorf("rpc: send to %s: %w", cn.addr, err)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return nil, closedErr(cn.addr)
		}
		return f, nil
	case <-ctx.Done():
		// Unregister so a late response is dropped (and recycled by the
		// demux) instead of leaking a registry entry. The demux may
		// already hold the channel, in which case the frame sits in the
		// abandoned buffered channel — garbage for the GC, a tolerated
		// pool miss.
		cn.mu.Lock()
		delete(cn.waiters, id)
		cn.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (cn *conn) cast(t wire.MsgType, m wire.Message) error {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return closedErr(cn.addr)
	}
	cn.mu.Unlock()
	id := cn.nextID.Add(1)
	if err := cn.send(id, t, m); err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return closedErr(cn.addr)
		}
		return fmt.Errorf("rpc: send to %s: %w", cn.addr, err)
	}
	return nil
}

func (cn *conn) close() {
	_ = cn.tc.Close()
	<-cn.done
}

// Reply sends one response frame, correlated with the request that the
// enclosing handler is serving: m is append-encoded into a pooled
// buffer that the transport consumes. It is safe for concurrent use.
type Reply func(t wire.MsgType, m wire.Message)

// ServeConn is the server half of the mux: it reads frames from conn
// and dispatches each to handle with a Reply bound to the frame's
// correlation id. Response encodes and frame writes are serialized
// internally, so handlers running in parallel may reply out of order
// without interleaving bytes. Frames whose type spawn reports true
// (handlers that may block, e.g. on lock waits) run in their own
// goroutine; all others run inline on the read loop, in arrival order —
// preserving the per-flow FIFO semantics coordinators rely on when they
// fire-and-forget a freeze and then issue the next request on the same
// flow. Each request frame is released back to the pool after its
// handler returns: handlers may decode in place, but anything that
// outlives the handler must be copied out, and reply must not be called
// after the handler has returned. ServeConn returns when Recv fails
// (connection closed), after every spawned handler finished. Failed
// response writes are reported to onSendErr (nil discards them) — a
// client waiting on a correlation id whose response was never written
// is otherwise invisible on the server side.
func ServeConn(conn transport.Conn, spawn func(wire.MsgType) bool, handle func(f *wire.FrameBuf, reply Reply), onSendErr func(error)) {
	var sendMu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		reply := func(id uint64) Reply {
			return func(t wire.MsgType, m wire.Message) {
				out := wire.GetFrameBuf()
				if err := out.SetFrame(id, t, m); err != nil {
					out.Release()
					if onSendErr != nil {
						onSendErr(err)
					}
					return
				}
				sendMu.Lock()
				err := conn.Send(out) // Send consumes out
				sendMu.Unlock()
				if err != nil && onSendErr != nil {
					onSendErr(err)
				}
			}
		}(f.ID())
		if spawn != nil && spawn(f.Type()) {
			handlers.Add(1)
			go func(f *wire.FrameBuf, reply Reply) {
				defer handlers.Done()
				defer f.Release()
				handle(f, reply)
			}(f, reply)
		} else {
			handle(f, reply)
			f.Release()
		}
	}
}
