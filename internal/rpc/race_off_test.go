//go:build !race

package rpc

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = false
