package rpc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// benchMux drives one Client with `workers` concurrent callers, each
// pinned to its own flow so the pool spreads them over its connections.
func benchMux(b *testing.B, n transport.Network, addr string, conns, workers int) {
	b.Helper()
	c := NewClient(n, addr, conns)
	b.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()
	// Warm every pool slot off the clock.
	for f := 0; f < conns; f++ {
		fb, err := c.Call(ctx, uint64(f), wire.TReleaseReq, nil)
		if err != nil {
			b.Fatal(err)
		}
		fb.Release()
	}
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				fb, err := c.Call(ctx, uint64(w), wire.TReleaseReq, nil)
				if err != nil {
					b.Error(err)
					return
				}
				fb.Release()
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkMuxInflightMem measures RPC throughput against an in-memory
// echo server whose latency model charges a per-frame transmission
// cost: 250µs of connection occupancy per frame, i.e. a single
// connection carries at most 4k frames/s no matter how many requests
// are pipelined on it (think a congested single-stream link or a
// saturated NIC queue). With many callers in flight the single
// connection is the bottleneck resource and throughput pins at the cap,
// while a pool of four transmits in parallel. The workers=32/conns=1 vs
// conns=4 pair is the "throughput vs in-flight transactions per
// connection" series of BENCH_rpc.json.
func BenchmarkMuxInflightMem(b *testing.B) {
	for _, workers := range []int{1, 8, 32} {
		for _, conns := range []int{1, 4} {
			b.Run(fmt.Sprintf("w%d_conns%d", workers, conns), func(b *testing.B) {
				n := transport.NewMem(transport.LatencyModel{
					PerFrame: 250 * time.Microsecond,
				})
				addr, _ := startEcho(b, n, "echo", 0)
				benchMux(b, n, addr, conns, workers)
			})
		}
	}
}

// BenchmarkMuxInflightTCP is the same sweep over real loopback sockets:
// the per-frame cost is the actual write/read syscall pair, so the pool
// win is whatever the kernel grants.
func BenchmarkMuxInflightTCP(b *testing.B) {
	for _, workers := range []int{1, 8, 32} {
		for _, conns := range []int{1, 4} {
			b.Run(fmt.Sprintf("w%d_conns%d", workers, conns), func(b *testing.B) {
				addr, _ := startEcho(b, transport.TCP{}, "127.0.0.1:0", 0)
				benchMux(b, transport.TCP{}, addr, conns, workers)
			})
		}
	}
}
