//go:build race

package rpc

// raceEnabled reports that this binary was built with -race, under
// which allocation counts are instrumented and not meaningful.
const raceEnabled = true
