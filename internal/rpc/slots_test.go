package rpc

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// poolConn digs the pooled connection for flow 0 out of a client, for
// white-box assertions on the waiter-slot table.
func poolConn(t *testing.T, c *Client) *conn {
	t.Helper()
	cn, err := c.conn(0)
	if err != nil {
		t.Fatal(err)
	}
	return cn
}

// slotTable snapshots (slots, free) sizes under the connection lock.
func slotTable(cn *conn) (slots, free int) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return len(cn.slots), len(cn.free)
}

// TestCancelledCallReleasesLateResponse is the regression test for the
// ctx-cancel frame leak: a response that arrives after its call was
// cancelled must be released back to the frame pool by the generation
// mismatch (the old map-based demux parked it in an abandoned channel),
// and the slot must be recycled for the next caller.
func TestCancelledCallReleasesLateResponse(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{Base: 60 * time.Millisecond})
	echoServer(t, n, "late", 0)
	c := NewClient(n, "late", 1)
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, 0, wire.TReleaseReq, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	cn := poolConn(t, c)
	if slots, free := slotTable(cn); slots != 1 || free != 1 {
		t.Fatalf("cancelled call must recycle its slot: slots=%d free=%d", slots, free)
	}

	// The response is still in flight (round trip is 2×60ms); when it
	// lands, the bumped generation must release it, not deliver it.
	deadline := time.Now().Add(2 * time.Second)
	for cn.lateDrops.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late response never released by generation mismatch")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next call reuses the recycled slot — and can never observe
	// the cancelled call's response, which the demux already dropped.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	f, err := c.Call(ctx2, 0, wire.TReleaseReq, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	if slots, _ := slotTable(cn); slots != 1 {
		t.Fatalf("sequential calls must reuse the one slot, table grew to %d", slots)
	}
}

// TestRouteGenerationChecks exercises the demux routing rules directly:
// a stale generation is dropped without touching the active tenancy, a
// matching response is delivered exactly once, and a duplicate of an
// already-delivered id is released.
func TestRouteGenerationChecks(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	l, err := n.Listen("routes")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c := NewClient(n, "routes", 1)
	defer func() { _ = c.Close() }()
	cn := poolConn(t, c)

	idx, s, id, err := cn.acquire()
	if err != nil {
		t.Fatal(err)
	}
	frame := func(id uint64) *wire.FrameBuf {
		fb := wire.GetFrameBuf()
		if err := fb.SetFrame(id, wire.TReleaseResp, nil); err != nil {
			t.Fatal(err)
		}
		return fb
	}

	cn.route(frame(callID(idx, s.gen+1))) // stale/future generation
	if got := cn.lateDrops.Load(); got != 1 {
		t.Fatalf("generation mismatch must be dropped and counted, lateDrops=%d", got)
	}
	cn.mu.Lock()
	active := s.active
	cn.mu.Unlock()
	if !active {
		t.Fatal("mismatched response must not claim the active tenancy")
	}

	cn.route(frame(id)) // the real response
	select {
	case f := <-s.ch:
		if f == nil {
			t.Fatal("delivered frame is nil")
		}
		f.Release()
	default:
		t.Fatal("matching response not delivered")
	}

	cn.route(frame(id)) // chaos duplicate: tenancy already claimed
	if got := cn.lateDrops.Load(); got != 2 {
		t.Fatalf("duplicate must be dropped and counted, lateDrops=%d", got)
	}

	cn.route(frame(castFlag | 7)) // cast echo: released, not counted
	if got := cn.lateDrops.Load(); got != 2 {
		t.Fatalf("cast echo is expected traffic, lateDrops=%d", got)
	}

	cn.freeSlot(idx, s)
	if slots, free := slotTable(cn); slots != 1 || free != 1 {
		t.Fatalf("slot not recycled: slots=%d free=%d", slots, free)
	}
}

// TestSlotGenerationWraparound pins that correlation ids survive the
// 32-bit generation counter wrapping: calls spanning gen=2^32-1 → 0
// still match their own responses.
func TestSlotGenerationWraparound(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "wrap", 0)
	c := NewClient(n, "wrap", 1)
	defer func() { _ = c.Close() }()
	ctx := context.Background()

	if f, err := c.Call(ctx, 0, wire.TReleaseReq, nil); err != nil {
		t.Fatal(err)
	} else {
		f.Release()
	}
	cn := poolConn(t, c)
	cn.mu.Lock()
	cn.slots[0].gen = math.MaxUint32
	cn.mu.Unlock()

	for i := 0; i < 3; i++ { // gens MaxUint32, 0, 1
		f, err := c.Call(ctx, 0, wire.TReleaseReq, nil)
		if err != nil {
			t.Fatalf("call %d across generation wrap: %v", i, err)
		}
		f.Release()
	}
	cn.mu.Lock()
	gen := cn.slots[0].gen
	nslots := len(cn.slots)
	cn.mu.Unlock()
	if nslots != 1 || gen != 2 {
		t.Fatalf("after wrap want 1 slot at gen 2, got %d slots gen %d", nslots, gen)
	}
}

// TestFreelistGrowthUnderConcurrency floods one connection with 1000
// concurrent callers (run with -race): the slot table must grow to
// cover the peak, every slot must return to the freelist, and every
// call must get its own response.
func TestFreelistGrowthUnderConcurrency(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "grow", 2*time.Millisecond)
	c := NewClient(n, "grow", 1)
	defer func() { _ = c.Close() }()

	const callers = 1000
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			f, err := c.Call(ctx, 0, wire.TReleaseReq, nil)
			if err != nil {
				errs <- err
				return
			}
			f.Release()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cn := poolConn(t, c)
	slots, free := slotTable(cn)
	if slots > callers {
		t.Fatalf("slot table grew past the caller peak: %d > %d", slots, callers)
	}
	if free != slots {
		t.Fatalf("slots leaked: %d in table, %d on the freelist", slots, free)
	}
}

// TestCloseMidCallStress closes a client while ~200 calls are parked in
// waiter slots against a server that never replies: every outstanding
// slot must fail fast with ErrClosed — no hang, no lost caller.
func TestCloseMidCallStress(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	l, err := n.Listen("stall")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	var received atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn transport.Conn) {
				for {
					f, err := conn.Recv()
					if err != nil {
						return
					}
					f.Release()
					received.Add(1)
				}
			}(conn)
		}
	}()

	const callers = 200
	c := NewClient(n, "stall", 1)
	results := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := c.Call(context.Background(), 0, wire.TReleaseReq, nil)
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < callers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls reached the server", received.Load(), callers)
		}
		time.Sleep(time.Millisecond)
	}
	_ = c.Close()
	for i := 0; i < callers; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("caller %d: want ErrClosed, got %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d hung across Close", i)
		}
	}
}

// TestCallCastZeroAllocSteadyState extends the frame-path zero-alloc
// gate across the whole mux: a steady-state Call round trip — client
// encode, batcher flush, server inline dispatch, reply flush, demux
// delivery — and a steady-state Cast must not allocate. The budget is
// <1 alloc/op rather than exactly 0 because a GC between runs may clear
// the frame pool and slice doubling amortizes to a fraction; a real
// per-op allocation (the old per-call waiter channel, a per-reply
// closure) averages ≥1 and fails.
func TestCallCastZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "zeroalloc", 0)
	c := NewClient(n, "zeroalloc", 1)
	defer func() { _ = c.Close() }()
	ctx := context.Background()

	call := func() {
		f, err := c.Call(ctx, 0, wire.TReleaseReq, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	for i := 0; i < 64; i++ {
		call() // reach steady state: slot table, batcher arrays, pipe queues
	}
	if avg := testing.AllocsPerRun(400, call); avg >= 1 {
		t.Errorf("steady-state Call: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(400, func() {
		if err := c.Cast(0, wire.TReleaseReq, nil); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("steady-state Cast: %v allocs/op, want 0", avg)
	}
}
